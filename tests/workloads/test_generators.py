"""Workload generators and registry."""

import numpy as np
import pytest

from repro.hamming.packing import packed_words
from repro.workloads.spec import WorkloadSpec, make_workload, registry


def _spec(**kw):
    defaults = dict(n=80, d=128, num_queries=8, seed=0)
    defaults.update(kw)
    return WorkloadSpec(**defaults)


class TestRegistry:
    def test_all_registered(self):
        assert {"uniform", "planted", "shells", "clustered"} <= set(registry)

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            make_workload("bogus", _spec())

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            WorkloadSpec(n=1, d=128)
        with pytest.raises(ValueError):
            WorkloadSpec(n=10, d=2)
        with pytest.raises(ValueError):
            WorkloadSpec(n=10, d=128, num_queries=0)


class TestShapes:
    @pytest.mark.parametrize("name", ["uniform", "planted", "shells", "clustered"])
    def test_sizes(self, name):
        wl = make_workload(name, _spec())
        assert len(wl.database) == 80
        assert wl.queries.shape == (8, packed_words(128))
        assert wl.num_queries == 8

    @pytest.mark.parametrize("name", ["uniform", "planted", "shells", "clustered"])
    def test_deterministic_by_seed(self, name):
        a = make_workload(name, _spec(seed=5))
        b = make_workload(name, _spec(seed=5))
        assert (a.database.words == b.database.words).all()
        assert (a.queries == b.queries).all()


class TestPlanted:
    def test_flip_range_respected(self):
        wl = make_workload("planted", _spec(), min_flips=2, max_flips=6)
        flips = wl.meta["flips"]
        assert (flips >= 2).all() and (flips <= 6).all()
        # Every query is within max_flips of some database point.
        for qi in range(wl.num_queries):
            assert int(wl.database.distances_from(wl.queries[qi]).min()) <= 6

    def test_bad_range_rejected(self):
        with pytest.raises(ValueError):
            make_workload("planted", _spec(), min_flips=5, max_flips=2)


class TestShells:
    def test_queries_are_centers_with_near_neighbors(self):
        wl = make_workload("shells", _spec(n=60), alpha=2.0, centers=3)
        for qi in range(wl.num_queries):
            dmin = int(wl.database.distances_from(wl.queries[qi]).min())
            assert dmin <= 16  # an inner shell point exists

    def test_rejects_zero_centers(self):
        with pytest.raises(ValueError):
            make_workload("shells", _spec(), centers=0)


class TestClustered:
    def test_cluster_structure(self):
        wl = make_workload("clustered", _spec(n=100), clusters=4, cluster_radius=3)
        assert wl.meta["clusters"] == 4
        near = 0
        for qi in range(wl.num_queries):
            if int(wl.database.distances_from(wl.queries[qi]).min()) <= 9:
                near += 1
        assert near >= wl.num_queries // 2
