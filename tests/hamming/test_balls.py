"""Ground-truth ball helpers."""

import numpy as np
import pytest

from repro.hamming.balls import (
    ball_members,
    ball_sizes_by_level,
    min_distance,
    nearest_neighbor,
    within_distance_one,
)
from repro.hamming.points import PackedPoints
from repro.hamming.sampling import flip_random_bits, random_points


@pytest.fixture
def db():
    rng = np.random.default_rng(0)
    return PackedPoints(random_points(rng, 50, 128), 128)


class TestBalls:
    def test_ball_members_radius_zero(self, db):
        mask = ball_members(db, db.row(7), 0)
        assert mask[7]
        assert mask.sum() >= 1

    def test_ball_members_full_radius(self, db):
        mask = ball_members(db, db.row(0), 128)
        assert mask.all()

    def test_fractional_radius_equals_floor(self, db):
        x = db.row(3)
        assert (ball_members(db, x, 10.9) == ball_members(db, x, 10)).all()

    def test_min_distance_zero_for_member(self, db):
        assert min_distance(db, db.row(5)) == 0

    def test_nearest_neighbor_planted(self, db):
        rng = np.random.default_rng(1)
        q = flip_random_bits(rng, db.row(9), 3, db.d)
        idx, dist = nearest_neighbor(db, q)
        assert dist <= 3
        if dist == 3:
            assert idx == 9 or db.distances_from(q)[idx] == 3

    def test_empty_db_raises(self):
        empty = PackedPoints(np.zeros((0, 2), dtype=np.uint64), 128)
        with pytest.raises(ValueError):
            min_distance(empty, np.zeros(2, dtype=np.uint64))


class TestWithinOne:
    def test_exact_match_preferred(self, db):
        assert within_distance_one(db, db.row(4)) == 4

    def test_distance_one(self, db):
        rng = np.random.default_rng(2)
        q = flip_random_bits(rng, db.row(8), 1, db.d)
        idx = within_distance_one(db, q)
        assert idx is not None
        assert db.distances_from(q)[idx] <= 1

    def test_far_point_none(self, db):
        rng = np.random.default_rng(3)
        q = flip_random_bits(rng, db.row(0), 60, db.d)
        # 60 flips from one point is w.h.p. > 1 from every point.
        if min_distance(db, q) > 1:
            assert within_distance_one(db, q) is None


class TestLevelSizes:
    def test_monotone_in_level(self, db):
        sizes = ball_sizes_by_level(db, db.row(0), alpha=2.0, levels=7)
        assert (np.diff(sizes) >= 0).all()

    def test_top_level_is_n(self, db):
        sizes = ball_sizes_by_level(db, db.row(0), alpha=2.0, levels=7)
        assert sizes[-1] == len(db)

    def test_level_zero_counts_radius_one(self, db):
        sizes = ball_sizes_by_level(db, db.row(0), alpha=2.0, levels=7)
        dists = db.distances_from(db.row(0))
        assert sizes[0] == (dists <= 1).sum()
