"""PackedPoints container behaviour."""

import numpy as np
import pytest

from repro.hamming.packing import PackedArrayError, random_packed
from repro.hamming.points import PackedPoints


@pytest.fixture
def pts():
    bits = np.random.default_rng(0).integers(0, 2, size=(10, 100)).astype(np.uint8)
    return PackedPoints.from_bits(bits), bits


class TestConstruction:
    def test_from_bits_roundtrip(self, pts):
        packed, bits = pts
        assert (packed.to_bits() == bits).all()

    def test_len_and_d(self, pts):
        packed, _ = pts
        assert len(packed) == 10
        assert packed.d == 100
        assert packed.word_count == 2

    def test_from_packed_rows(self, pts):
        packed, _ = pts
        rebuilt = PackedPoints.from_packed_rows([packed.row(i) for i in range(3)], 100)
        assert len(rebuilt) == 3
        assert (rebuilt.row(1) == packed.row(1)).all()

    def test_rejects_1d_bits(self):
        with pytest.raises(ValueError):
            PackedPoints.from_bits(np.zeros(10, dtype=np.uint8))

    def test_rejects_wrong_words(self):
        with pytest.raises(PackedArrayError):
            PackedPoints(np.zeros((3, 5), dtype=np.uint64), d=100)

    def test_words_readonly(self, pts):
        packed, _ = pts
        with pytest.raises(ValueError):
            packed.words[0, 0] = 1


class TestAccess:
    def test_iteration(self, pts):
        packed, _ = pts
        rows = list(packed)
        assert len(rows) == 10
        assert (rows[3] == packed.row(3)).all()

    def test_take_preserves_order(self, pts):
        packed, _ = pts
        sub = packed.take([4, 1])
        assert (sub.row(0) == packed.row(4)).all()
        assert (sub.row(1) == packed.row(1)).all()

    def test_distances_from_self_row(self, pts):
        packed, _ = pts
        dists = packed.distances_from(packed.row(2))
        assert dists[2] == 0
        assert (dists >= 0).all()

    def test_distances_match_bits(self, pts):
        packed, bits = pts
        dists = packed.distances_from(packed.row(0))
        expected = (bits != bits[0]).sum(axis=1)
        assert (dists == expected).all()


class TestLarge:
    def test_random_large_dims(self):
        words = random_packed(np.random.default_rng(1), 4, 1000)
        p = PackedPoints(words, 1000)
        assert p.word_count == 16
        assert p.distances_from(p.row(0))[0] == 0
