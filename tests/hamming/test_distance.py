"""Metric correctness of the vectorized Hamming distances."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hamming.distance import (
    hamming_distance,
    hamming_distance_many,
    pairwise_distances,
    popcount_rows,
)
from repro.hamming.packing import pack_bits


def _random_bits(seed, m, d):
    return np.random.default_rng(seed).integers(0, 2, size=(m, d)).astype(np.uint8)


class TestHammingDistance:
    def test_identical(self):
        x = pack_bits(np.ones(100, dtype=np.uint8))
        assert hamming_distance(x, x) == 0

    def test_complement(self):
        d = 100
        zero = pack_bits(np.zeros(d, dtype=np.uint8))
        one = pack_bits(np.ones(d, dtype=np.uint8))
        assert hamming_distance(zero, one) == d

    def test_matches_bit_count(self):
        bits = _random_bits(0, 2, 257)
        expected = int((bits[0] != bits[1]).sum())
        assert hamming_distance(pack_bits(bits[0]), pack_bits(bits[1])) == expected

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            hamming_distance(np.zeros(2, dtype=np.uint64), np.zeros(3, dtype=np.uint64))

    @settings(max_examples=40)
    @given(st.integers(min_value=1, max_value=400), st.integers(min_value=0, max_value=2**32))
    def test_symmetry_and_triangle(self, d, seed):
        bits = np.random.default_rng(seed).integers(0, 2, size=(3, d)).astype(np.uint8)
        x, y, z = (pack_bits(b) for b in bits)
        assert hamming_distance(x, y) == hamming_distance(y, x)
        assert hamming_distance(x, z) <= hamming_distance(x, y) + hamming_distance(y, z)


class TestOneVsMany:
    def test_matches_scalar(self):
        bits = _random_bits(1, 20, 300)
        packed = pack_bits(bits)
        dists = hamming_distance_many(packed[0], packed)
        for i in range(20):
            assert dists[i] == hamming_distance(packed[0], packed[i])

    def test_chunking_consistency(self, monkeypatch):
        import repro.hamming.distance as mod

        bits = _random_bits(2, 50, 128)
        packed = pack_bits(bits)
        full = hamming_distance_many(packed[0], packed)
        monkeypatch.setattr(mod, "_CHUNK_WORD_BUDGET", 4)
        chunked = hamming_distance_many(packed[0], packed)
        assert (full == chunked).all()

    def test_word_mismatch(self):
        with pytest.raises(ValueError):
            hamming_distance_many(np.zeros(2, dtype=np.uint64), np.zeros((3, 3), dtype=np.uint64))

    def test_single_row_batch(self):
        bits = _random_bits(3, 1, 64)
        packed = pack_bits(bits)
        assert hamming_distance_many(packed[0], packed).tolist() == [0]


class TestPairwise:
    def test_diagonal_zero(self):
        packed = pack_bits(_random_bits(4, 6, 90))
        dmat = pairwise_distances(packed)
        assert (np.diag(dmat) == 0).all()

    def test_symmetric(self):
        packed = pack_bits(_random_bits(5, 6, 90))
        dmat = pairwise_distances(packed)
        assert (dmat == dmat.T).all()

    def test_two_batches(self):
        a = pack_bits(_random_bits(6, 3, 70))
        b = pack_bits(_random_bits(7, 4, 70))
        dmat = pairwise_distances(a, b)
        assert dmat.shape == (3, 4)
        assert dmat[1, 2] == hamming_distance(a[1], b[2])


class TestPopcount:
    def test_known(self):
        arr = np.array([[1, 3], [0, 0]], dtype=np.uint64)
        assert popcount_rows(arr).tolist() == [3, 0]

    def test_single_row(self):
        assert popcount_rows(np.array([7], dtype=np.uint64)).tolist() == [3]


class TestCrossDistances:
    """cross_distances is the many-vs-many kernel behind batch prefetching;
    it must agree exactly with per-row hamming_distance_many on both the
    small-word (accumulate) and wide-word (chunked 3-D) code paths."""

    @pytest.mark.parametrize("d", [70, 130, 1000])  # 2, 3, and 16 words
    def test_matches_per_row_kernel(self, d):
        from repro.hamming.distance import cross_distances

        a = pack_bits(_random_bits(1, 9, d))
        b = pack_bits(_random_bits(2, 23, d))
        got = cross_distances(a, b)
        assert got.shape == (9, 23)
        for i in range(9):
            assert got[i].tolist() == hamming_distance_many(a[i], b).tolist()

    def test_empty_sides(self):
        from repro.hamming.distance import cross_distances

        a = pack_bits(_random_bits(3, 4, 64))
        empty = np.empty((0, 1), dtype=np.uint64)
        assert cross_distances(empty, a).shape == (0, 4)
        assert cross_distances(a, empty).shape == (4, 0)

    def test_word_count_mismatch(self):
        from repro.hamming.distance import cross_distances

        with pytest.raises(ValueError, match="word-count"):
            cross_distances(
                np.zeros((2, 2), dtype=np.uint64), np.zeros((2, 3), dtype=np.uint64)
            )
