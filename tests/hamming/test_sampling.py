"""Sampling helpers: exact flip counts, shells."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hamming.distance import hamming_distance
from repro.hamming.packing import tail_mask
from repro.hamming.sampling import (
    flip_random_bits,
    point_at_distance,
    random_points,
    shell_points,
)


class TestFlipRandomBits:
    @settings(max_examples=50)
    @given(
        st.integers(min_value=1, max_value=300),
        st.integers(min_value=0, max_value=2**32),
        st.data(),
    )
    def test_exact_distance(self, d, seed, data):
        rng = np.random.default_rng(seed)
        x = random_points(rng, 1, d)[0]
        count = data.draw(st.integers(min_value=0, max_value=d))
        y = flip_random_bits(rng, x, count, d)
        assert hamming_distance(x, y) == count

    def test_zero_flips_copy(self):
        rng = np.random.default_rng(0)
        x = random_points(rng, 1, 100)[0]
        y = flip_random_bits(rng, x, 0, 100)
        assert (x == y).all()
        assert y is not x

    def test_does_not_mutate_input(self):
        rng = np.random.default_rng(0)
        x = random_points(rng, 1, 100)[0]
        before = x.copy()
        flip_random_bits(rng, x, 5, 100)
        assert (x == before).all()

    def test_padding_stays_clean(self):
        rng = np.random.default_rng(1)
        x = random_points(rng, 1, 70)[0]
        for _ in range(20):
            y = flip_random_bits(rng, x, 70, 70)
            assert int(y[-1]) <= tail_mask(70)

    def test_rejects_out_of_range(self):
        rng = np.random.default_rng(0)
        x = random_points(rng, 1, 10)[0]
        with pytest.raises(ValueError):
            flip_random_bits(rng, x, 11, 10)
        with pytest.raises(ValueError):
            flip_random_bits(rng, x, -1, 10)


class TestPointAtDistance:
    def test_matches_flip(self):
        rng = np.random.default_rng(2)
        x = random_points(rng, 1, 200)[0]
        y = point_at_distance(rng, x, 17, 200)
        assert hamming_distance(x, y) == 17


class TestShellPoints:
    def test_exact_radii(self):
        rng = np.random.default_rng(3)
        center = random_points(rng, 1, 256)[0]
        radii = np.array([1, 2, 4, 8, 16])
        shells = shell_points(rng, center, radii, 256)
        assert shells.shape == (5, 4)
        for i, r in enumerate(radii):
            assert hamming_distance(center, shells[i]) == r


class TestRandomPoints:
    def test_shape(self):
        pts = random_points(np.random.default_rng(0), 9, 130)
        assert pts.shape == (9, 3)

    def test_roughly_balanced(self):
        pts = random_points(np.random.default_rng(0), 200, 64)
        ones = np.bitwise_count(pts).sum()
        total = 200 * 64
        assert 0.45 < ones / total < 0.55
