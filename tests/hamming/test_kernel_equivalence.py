"""Differential kernel-equivalence suite: every backend vs the reference.

The kernel seam's hard contract (ARCHITECTURE invariant #7): every
registered :class:`~repro.hamming.kernels.KernelBackend` returns
**bitwise-identical** results to the NumPy ``reference`` backend for all
six seam functions, over adversarial shapes — zero-word rows, a single
word, non-contiguous views, inputs larger than the chunk budget,
all-ones/all-zeros words — and raises the *same* ``ValueError`` text on
contract violations (validation lives in the dispatchers, and these
tests pin that down).

Parametrization runs over ``KNOWN_KERNELS`` (not just the registered
ones) so a missing compiled backend shows up as an explicit skip with
its unavailability reason, never as silently shrunk coverage.
"""

from __future__ import annotations

import hashlib
import os
import subprocess
import sys

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.hamming import distance as distance_mod
from repro.hamming.distance import (
    cross_distances,
    hamming_distance,
    hamming_distance_many,
    paired_distances,
    pairwise_distances,
    popcount_rows,
)
from repro.hamming.kernels import (
    KNOWN_KERNELS,
    ScratchPool,
    available_kernels,
    get_kernel,
    kernel_info,
    set_kernel,
    unavailable_kernels,
    use_kernel,
)

SEAM = [
    lambda a, b: popcount_rows(a),
    lambda a, b: hamming_distance(a[0], b[0]) if len(a) and len(b) else 0,
    lambda a, b: hamming_distance_many(a[0], b) if len(a) else 0,
    cross_distances,
    lambda a, b: paired_distances(a, a[::-1]),
    lambda a, b: pairwise_distances(a),
]

words = st.integers(min_value=0, max_value=2**64 - 1)


def kernel_params():
    params = []
    for name in KNOWN_KERNELS:
        if name in available_kernels():
            params.append(pytest.param(name))
        else:
            reason = unavailable_kernels().get(name, "not registered")
            params.append(
                pytest.param(name, marks=pytest.mark.skip(reason=f"{name}: {reason}"))
            )
    return params


@pytest.fixture(params=kernel_params())
def kernel(request):
    with use_kernel(request.param):
        yield request.param


def assert_matches_reference(fn, *arrays_in):
    got = fn(*arrays_in)
    with use_kernel("reference"):
        want = fn(*arrays_in)
    if isinstance(want, int):
        assert isinstance(got, int)
        assert got == want
    else:
        assert got.dtype == want.dtype
        assert np.array_equal(got, want)


# -- adversarial fixed shapes ---------------------------------------------

ADVERSARIAL = [
    ("zero-rows", np.empty((0, 3), dtype=np.uint64), np.empty((0, 3), dtype=np.uint64)),
    ("zero-words", np.zeros((4, 0), dtype=np.uint64), np.zeros((4, 0), dtype=np.uint64)),
    ("single-word", np.array([[0], [2**63], [2**64 - 1]], dtype=np.uint64), np.array([[5], [0], [2**64 - 1]], dtype=np.uint64)),
    ("all-zeros", np.zeros((6, 5), dtype=np.uint64), np.zeros((6, 5), dtype=np.uint64)),
    ("all-ones", np.full((6, 5), 2**64 - 1, dtype=np.uint64), np.full((6, 5), 2**64 - 1, dtype=np.uint64)),
    ("mixed", (np.arange(40, dtype=np.uint64) * np.uint64(0x9E3779B97F4A7C15)).reshape(8, 5), (np.arange(40, 80, dtype=np.uint64) * np.uint64(0xBF58476D1CE4E5B9)).reshape(8, 5)),
]


@pytest.mark.parametrize("label,a,b", ADVERSARIAL, ids=[c[0] for c in ADVERSARIAL])
def test_adversarial_shapes_match_reference(kernel, label, a, b):
    for fn in SEAM:
        assert_matches_reference(fn, a, b)


def test_non_contiguous_views_match_reference(kernel):
    base = (np.arange(160, dtype=np.uint64) * np.uint64(0x2545F4914F6CDD1D)).reshape(16, 10)
    a = base[::2, ::2]  # strided in both axes
    b = base[1::2, ::2]
    assert not a.flags["C_CONTIGUOUS"]
    for fn in SEAM:
        assert_matches_reference(fn, a, b)


def test_inputs_beyond_chunk_budget_match_reference(kernel, monkeypatch):
    # A tiny budget forces many chunks through whichever backend chunks;
    # results must not depend on the chunking at all.
    monkeypatch.setattr(distance_mod, "_CHUNK_WORD_BUDGET", 32)
    a = (np.arange(120, dtype=np.uint64) * np.uint64(0x9E3779B97F4A7C15)).reshape(15, 8)
    b = (np.arange(120, 216, dtype=np.uint64) * np.uint64(0x94D049BB133111EB)).reshape(12, 8)
    assert_matches_reference(cross_distances, a, b)
    assert_matches_reference(lambda x, y: hamming_distance_many(x[0], y), a, b)
    assert_matches_reference(lambda x, y: paired_distances(x[:12], y), a, b)


# -- hypothesis differential ----------------------------------------------


@settings(
    max_examples=60,
    deadline=None,
    derandomize=True,
    # The kernel fixture is constant for a test item; no per-example reset
    # is needed, so the function-scoped-fixture health check is moot here.
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(data=st.data())
def test_differential_random_shapes(kernel, data):
    w = data.draw(st.integers(0, 7), label="words")
    ma = data.draw(st.integers(0, 10), label="rows_a")
    mb = data.draw(st.integers(0, 10), label="rows_b")
    a = data.draw(arrays(np.uint64, (ma, w), elements=words), label="a")
    b = data.draw(arrays(np.uint64, (mb, w), elements=words), label="b")
    assert_matches_reference(lambda x, y: popcount_rows(x), a, b)
    assert_matches_reference(cross_distances, a, b)
    assert_matches_reference(lambda x, y: pairwise_distances(x), a, b)
    assert_matches_reference(lambda x, y: paired_distances(x, x[::-1]), a, b)
    if ma:
        assert_matches_reference(lambda x, y: hamming_distance_many(x[0], y), a, b)
        if mb:
            assert_matches_reference(lambda x, y: hamming_distance(x[0], y[0]), a, b)


# -- error-contract parity ------------------------------------------------

MISMATCHES = [
    (hamming_distance, (np.zeros(2, np.uint64), np.zeros(3, np.uint64))),
    (hamming_distance_many, (np.zeros(2, np.uint64), np.zeros((4, 3), np.uint64))),
    (cross_distances, (np.zeros((2, 2), np.uint64), np.zeros((2, 3), np.uint64))),
    (paired_distances, (np.zeros((2, 3), np.uint64), np.zeros((4, 3), np.uint64))),
    (pairwise_distances, (np.zeros((2, 2), np.uint64), np.zeros((2, 5), np.uint64))),
]


@pytest.mark.parametrize("fn,args", MISMATCHES, ids=lambda v: getattr(v, "__name__", ""))
def test_error_contract_parity(kernel, fn, args):
    with pytest.raises(ValueError) as active_exc:
        fn(*args)
    with use_kernel("reference"):
        with pytest.raises(ValueError) as reference_exc:
            fn(*args)
    assert str(active_exc.value) == str(reference_exc.value)


# -- selection surface ----------------------------------------------------


def test_set_kernel_unknown_name_lists_alternatives():
    with pytest.raises(ValueError, match="available: "):
        set_kernel("definitely-not-a-kernel")
    # Selection failures never change the active backend.
    assert kernel_info()["active"] in available_kernels()


def test_set_kernel_reports_unavailability_reason():
    missing = [k for k in KNOWN_KERNELS if k not in available_kernels()]
    if not missing:
        pytest.skip("every known kernel is available here")
    with pytest.raises(ValueError, match="unavailable"):
        set_kernel(missing[0])


def test_use_kernel_restores_previous_backend(kernel):
    before = kernel_info()["active"]
    with use_kernel("reference"):
        assert kernel_info()["active"] == "reference"
    assert kernel_info()["active"] == before


def test_env_var_selects_backend_in_subprocess():
    code = "from repro.hamming import active_kernel; print(active_kernel())"
    env = dict(os.environ, REPRO_KERNEL="reference")
    out = subprocess.run(
        [sys.executable, "-c", code], env=env, capture_output=True, text=True
    )
    assert out.stdout.strip() == "reference"


@pytest.mark.slow
def test_env_var_unknown_name_warns_and_falls_back():
    code = (
        "import warnings\n"
        "warnings.simplefilter('error')\n"
        "try:\n"
        "    from repro.hamming import active_kernel\n"
        "except RuntimeWarning as w:\n"
        "    assert 'bogus' in str(w), w\n"
        "    print('warned')\n"
        "else:\n"
        "    print('no warning:', active_kernel())\n"
    )
    env = dict(os.environ, REPRO_KERNEL="bogus")
    out = subprocess.run(
        [sys.executable, "-c", code], env=env, capture_output=True, text=True
    )
    assert out.stdout.strip() == "warned", out.stdout + out.stderr


@pytest.mark.slow
def test_no_cbits_env_gates_the_compiled_backend():
    code = (
        "from repro.hamming import available_kernels, unavailable_kernels\n"
        "assert 'cbits' not in available_kernels(), available_kernels()\n"
        "print(unavailable_kernels().get('cbits', ''))\n"
    )
    env = dict(os.environ, REPRO_NO_CBITS="1")
    env.pop("REPRO_KERNEL", None)
    out = subprocess.run(
        [sys.executable, "-c", code], env=env, capture_output=True, text=True
    )
    assert out.returncode == 0, out.stderr
    assert "REPRO_NO_CBITS" in out.stdout


# -- cbits cache hygiene --------------------------------------------------


def test_cbits_cache_defaults_under_user_cache_dir(monkeypatch):
    from pathlib import Path

    from repro.hamming import _cbits

    monkeypatch.delenv("REPRO_CBITS_CACHE", raising=False)
    monkeypatch.setenv("XDG_CACHE_HOME", "/fake/cache")
    assert _cbits._cache_dir() == Path("/fake/cache/repro/cbits")
    monkeypatch.setenv("REPRO_CBITS_CACHE", "/override")
    assert _cbits._cache_dir() == Path("/override")


def test_cbits_cache_refuses_world_writable_artifacts(tmp_path):
    from repro.hamming import _cbits

    lib = tmp_path / "cbits-deadbeef.so"
    lib.write_bytes(b"")
    os.chmod(lib, 0o777)
    with pytest.raises(RuntimeError, match="writable"):
        _cbits._assert_private(lib, "library")
    os.chmod(lib, 0o700)
    _cbits._assert_private(lib, "library")  # private artifact passes


def test_cbits_cache_digest_covers_compiler_identity():
    # Distinct compiler fingerprints must map to distinct cache targets,
    # so a toolchain change rebuilds instead of reusing a stale binary.
    from repro.hamming import _cbits

    digests = [
        hashlib.sha256(
            "\n".join(
                [_cbits._SOURCE, repr(_cbits._BASE_FLAGS), repr([]), fp]
            ).encode()
        ).hexdigest()[:16]
        for fp in ("/usr/bin/cc gcc 12.2.0", "/usr/bin/cc gcc 13.1.0")
    ]
    assert digests[0] != digests[1]


# -- scratch pooling ------------------------------------------------------


def test_scratch_pool_reuses_buffers_across_shapes():
    pool = ScratchPool()
    first = pool.take(64, np.uint64)
    assert pool.misses == 1
    again = pool.take(64, np.uint64)
    assert pool.hits == 1
    assert again.base is first.base
    smaller = pool.take(16, np.uint64)
    assert smaller.size == 16 and pool.hits == 2
    grown = pool.take(256, np.uint64)
    assert grown.size == 256 and pool.misses == 2
    # Per-dtype arenas never alias each other.
    other = pool.take(64, np.uint8)
    assert other.dtype == np.uint8 and pool.misses == 3


def test_scratch_pool_arenas_are_per_thread():
    import threading

    pool = ScratchPool()
    main_view = pool.take(64, np.uint64)
    other_base = []

    def worker():
        other_base.append(pool.take(64, np.uint64).base)

    t = threading.Thread(target=worker)
    t.start()
    t.join()
    # Another thread must get its own arena, never a view of ours.
    assert other_base[0] is not main_view.base
    # stats() still accounts for every thread's arenas.
    assert pool.stats()["bytes"] == 2 * 64 * 8


def test_reference_backend_is_thread_safe():
    # Regression: the module-global reference backend pooled one shared
    # arena across threads, so concurrent distance sweeps overwrote each
    # other's XOR temporaries and returned silently wrong counts.
    import threading

    rng = np.random.default_rng(7)
    # Sized so the ufunc bodies release the GIL long enough for arena
    # sharing to corrupt results: with the pre-fix shared pool this
    # mismatches on roughly half the queries per run.
    m, w = 20000, 16
    rows = rng.integers(0, 2**64, size=(m, w), dtype=np.uint64)
    queries = rng.integers(0, 2**64, size=(8, w), dtype=np.uint64)
    with use_kernel("reference"):
        want = [
            np.bitwise_count(rows ^ q[None, :]).sum(axis=1, dtype=np.int64)
            for q in queries
        ]
        results = [None] * len(queries)
        barrier = threading.Barrier(4)

        def worker(tid):
            barrier.wait()
            for i in range(tid, len(queries), 4):
                for _ in range(5):
                    results[i] = hamming_distance_many(queries[i], rows)

        threads = [threading.Thread(target=worker, args=(t,)) for t in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
    for got, expected in zip(results, want):
        assert np.array_equal(got, expected)


def test_reference_pooling_is_bitwise_stable_across_calls():
    # Interleave shapes so pooled buffers shrink/grow between calls; every
    # answer must still match a fresh unpooled computation.
    backend = get_kernel("reference")
    rng_words = (np.arange(600, dtype=np.uint64) * np.uint64(0x9E3779B97F4A7C15))
    with use_kernel("reference"):
        for m, w in [(10, 6), (3, 6), (25, 6), (4, 20), (25, 6), (1, 5)]:
            a = rng_words[: m * w].reshape(m, w)
            b = rng_words[m * w : 2 * m * w].reshape(m, w)
            got = cross_distances(a, b)
            want = np.bitwise_count(a[:, None, :] ^ b[None, :, :]).sum(
                axis=2, dtype=np.int64
            )
            assert np.array_equal(got, want)
    assert backend.pool.hits > 0
