"""Unit + property tests for bit packing."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hamming.packing import (
    PackedArrayError,
    pack_bits,
    packed_words,
    random_packed,
    tail_mask,
    unpack_bits,
    validate_packed,
)


class TestPackedWords:
    def test_exact_multiple(self):
        assert packed_words(128) == 2

    def test_round_up(self):
        assert packed_words(65) == 2

    def test_one_bit(self):
        assert packed_words(1) == 1

    def test_rejects_zero(self):
        with pytest.raises(PackedArrayError):
            packed_words(0)


class TestTailMask:
    def test_full_word(self):
        assert tail_mask(64) == (1 << 64) - 1

    def test_partial(self):
        assert tail_mask(3) == 0b111

    def test_65(self):
        assert tail_mask(65) == 1


class TestPackUnpack:
    def test_known_value(self):
        packed = pack_bits(np.array([1, 0, 1], dtype=np.uint8))
        assert packed.tolist() == [5]

    def test_single_point_shape(self):
        packed = pack_bits(np.ones(70, dtype=np.uint8))
        assert packed.shape == (2,)

    def test_batch_shape(self):
        packed = pack_bits(np.zeros((5, 130), dtype=np.uint8))
        assert packed.shape == (5, 3)

    def test_padding_zeroed(self):
        packed = pack_bits(np.ones(70, dtype=np.uint8))
        assert packed[1] == (1 << 6) - 1  # only 6 valid bits in word 2

    def test_rejects_non_binary(self):
        with pytest.raises(PackedArrayError):
            pack_bits(np.array([0, 2, 1], dtype=np.uint8))

    def test_rejects_wrong_d(self):
        with pytest.raises(PackedArrayError):
            pack_bits(np.zeros(10, dtype=np.uint8), d=12)

    def test_rejects_empty(self):
        with pytest.raises(PackedArrayError):
            pack_bits(np.zeros((3, 0), dtype=np.uint8))

    def test_rejects_3d(self):
        with pytest.raises(PackedArrayError):
            pack_bits(np.zeros((2, 2, 2), dtype=np.uint8))

    def test_unpack_wrong_words(self):
        with pytest.raises(PackedArrayError):
            unpack_bits(np.zeros(3, dtype=np.uint64), d=64)

    @settings(max_examples=60)
    @given(st.integers(min_value=1, max_value=300), st.integers(min_value=0, max_value=2**32))
    def test_roundtrip_property(self, d, seed):
        rng = np.random.default_rng(seed)
        bits = rng.integers(0, 2, size=(3, d)).astype(np.uint8)
        assert (unpack_bits(pack_bits(bits), d) == bits).all()

    @given(st.integers(min_value=1, max_value=200))
    def test_roundtrip_single(self, d):
        rng = np.random.default_rng(d)
        bits = rng.integers(0, 2, size=d).astype(np.uint8)
        assert (unpack_bits(pack_bits(bits), d) == bits).all()


class TestRandomPacked:
    def test_shape(self):
        out = random_packed(np.random.default_rng(0), 7, 100)
        assert out.shape == (7, 2)

    def test_padding_respected(self):
        out = random_packed(np.random.default_rng(0), 50, 70)
        assert (out[:, -1] <= tail_mask(70)).all()

    def test_validate_accepts(self):
        out = random_packed(np.random.default_rng(0), 5, 70)
        validate_packed(out, 70)

    def test_validate_rejects_dirty_padding(self):
        out = random_packed(np.random.default_rng(0), 5, 70).copy()
        out[0, -1] = np.uint64(1) << np.uint64(63)
        with pytest.raises(PackedArrayError):
            validate_packed(out, 70)

    def test_validate_rejects_wrong_dtype(self):
        with pytest.raises(PackedArrayError):
            validate_packed(np.zeros((2, 2), dtype=np.int64), 128)
