"""Level tables T_i."""

import numpy as np

from repro.cellprobe.words import EMPTY, PointWord
from repro.hamming.points import PackedPoints
from repro.hamming.sampling import random_points
from repro.sketch.approx_balls import ApproxBallEvaluator
from repro.sketch.family import SketchFamily
from repro.sketch.levels import LevelSketches
from repro.structures.main_table import MainLevelTable, main_table_logical_cells
from repro.utils.rng import RngTree


def _setup(accurate_rows=64):
    rng = np.random.default_rng(0)
    db = PackedPoints(random_points(rng, 40, 256), 256)
    fam = SketchFamily(256, 2.0, 8, accurate_rows, None, rng_tree=RngTree(1))
    ev = ApproxBallEvaluator(LevelSketches(db, fam))
    return db, fam, ev


class TestMainLevelTable:
    def test_logical_cells_formula(self):
        assert main_table_logical_cells(10) == 1024

    def test_own_point_address_returns_member(self):
        db, fam, ev = _setup()
        table = MainLevelTable(ev, level=6)
        addr = fam.accurate_address(6, db.row(3))
        content = table.table.read(addr)
        assert isinstance(content, PointWord)
        # Returned point is a C_6 member for this address.
        assert ev.c_mask(6, addr)[content.index]

    def test_far_address_empty_at_level_zero(self):
        db, fam, ev = _setup()
        table = MainLevelTable(ev, level=0)
        rng = np.random.default_rng(9)
        x = random_points(rng, 1, 256)[0]
        addr = fam.accurate_address(0, x)
        content = table.table.read(addr)
        if not ev.c_mask(0, addr).any():
            assert content == EMPTY

    def test_content_word_fits(self):
        db, fam, ev = _setup()
        table = MainLevelTable(ev, level=8)
        addr = fam.accurate_address(8, db.row(0))
        table.table.read(addr)  # would raise if the word exceeded O(d)

    def test_deterministic_content(self):
        db, fam, ev = _setup()
        t1 = MainLevelTable(ev, level=5)
        t2 = MainLevelTable(ev, level=5)
        addr = fam.accurate_address(5, db.row(10))
        assert t1.table.read(addr) == t2.table.read(addr)

    def test_names_distinct_by_level(self):
        _, _, ev = _setup()
        assert MainLevelTable(ev, 2).table.name != MainLevelTable(ev, 3).table.name
