"""Batched content functions must agree elementwise with the scalar
``content_fn`` — this is the property that makes engine prefetching
invisible to results."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cellprobe.table import LazyTable
from repro.cellprobe.words import EmptyWord, IntWord, PointWord
from repro.hamming.points import PackedPoints
from repro.hamming.sampling import flip_random_bits, random_points
from repro.sketch.approx_balls import ApproxBallEvaluator
from repro.sketch.family import SketchFamily
from repro.sketch.levels import LevelSketches
from repro.structures.aux_table import AuxCountTable, group_levels
from repro.structures.main_table import MainLevelTable
from repro.structures.perfect_hash import MembershipStructure
from repro.utils.rng import RngTree


@pytest.fixture(scope="module")
def setup():
    gen = np.random.default_rng(17)
    n, d = 90, 192
    db = PackedPoints(random_points(gen, n, d), d)
    family = SketchFamily(
        d=d, alpha=2.0, levels=7, accurate_rows=48, coarse_rows=12,
        rng_tree=RngTree(3),
    )
    evaluator = ApproxBallEvaluator(LevelSketches(db, family))
    return gen, db, family, evaluator


def words_equal(a, b):
    if isinstance(a, EmptyWord):
        return isinstance(b, EmptyWord)
    if isinstance(a, PointWord):
        return isinstance(b, PointWord) and a.index == b.index and a.packed == b.packed
    if isinstance(a, IntWord):
        return isinstance(b, IntWord) and a.value == b.value
    return a == b


def test_main_table_batch_matches_scalar(setup):
    gen, db, family, evaluator = setup
    for level in (0, 3, 7):
        table = MainLevelTable(evaluator, level)
        points = random_points(gen, 30, db.d)
        addresses = [family.accurate_address(level, p) for p in points]
        batch = table._batch_contents(addresses)
        scalar = [table._content(a) for a in addresses]
        assert all(words_equal(b, s) for b, s in zip(batch, scalar))


@pytest.mark.parametrize("radius", [0, 1])
def test_membership_batch_matches_scalar(setup, radius):
    gen, db, _, _ = setup
    structure = MembershipStructure(db, radius=radius, name=f"B{radius}")
    # Mix of exact members, 1-flip neighbors, 2-flip points, and uniform.
    probes = [db.row(i) for i in range(6)]
    probes += [flip_random_bits(gen, db.row(i), 1, db.d) for i in range(6)]
    probes += [flip_random_bits(gen, db.row(i), 2, db.d) for i in range(6)]
    probes += list(random_points(gen, 6, db.d))
    addresses = [structure.address_for(p) for p in probes]
    batch = structure._batch_contents(addresses)
    scalar = [structure._content(a) for a in addresses]
    assert all(words_equal(b, s) for b, s in zip(batch, scalar))
    # Sanity: exact members must hit and return themselves.
    assert all(isinstance(w, PointWord) for w in batch[:6])


def test_membership_batch_empty_database():
    empty = PackedPoints(np.zeros((0, 2), dtype=np.uint64), 128)
    structure = MembershipStructure(empty, radius=0, name="B0")
    batch = structure._batch_contents([(0, 0), (1, 2)])
    assert all(isinstance(w, EmptyWord) for w in batch)


def test_aux_table_batch_matches_scalar(setup):
    gen, db, family, evaluator = setup
    tau, s = 4, 2
    level = 6
    aux = AuxCountTable(evaluator, level, tau=tau, s=s, frac_exponent=2.0)
    points = random_points(gen, 12, db.d)
    addresses = []
    l, u = 0, 6
    for p in points:
        acc = family.accurate_address(level, p)
        for g in (1, 2):
            levels = group_levels(l, u, tau, s, g, 1 if g == 2 else s)
            coarse = [family.coarse_address(j, p) for j in levels]
            addresses.append(aux.address(acc, l, u, g, coarse))
    batch = aux._batch_contents(addresses)
    scalar = [aux._content(a) for a in addresses]
    assert all(words_equal(b, s_) for b, s_ in zip(batch, scalar))


def test_lazy_table_prefetch_primes_cache_and_counts():
    calls = {"batch": 0, "scalar": 0}

    def content(addr):
        calls["scalar"] += 1
        return IntWord(addr % 5, 10)

    def batch_content(addrs):
        calls["batch"] += 1
        return [IntWord(a % 5, 10) for a in addrs]

    table = LazyTable("t", 100, 8, content, batch_content_fn=batch_content)
    assert table.supports_prefetch
    filled = table.prefetch([1, 2, 2, 3])  # duplicate collapses
    assert filled == 3
    assert table.prefetched_cells == 3
    assert calls == {"batch": 1, "scalar": 0}
    # Reads hit the primed cells; only address 4 goes through content_fn.
    assert table.read(2).value == 2
    assert table.read(4).value == 4
    assert calls == {"batch": 1, "scalar": 1}
    # Prefetching again skips everything already cached.
    assert table.prefetch([1, 2, 3]) == 0


def test_lazy_table_without_batch_fn_ignores_prefetch():
    table = LazyTable("t", 10, 8, lambda a: IntWord(0, 1))
    assert not table.supports_prefetch
    assert table.prefetch([1, 2]) == 0


def test_lazy_table_prefetch_validates_words():
    table = LazyTable(
        "t", 10, 2, lambda a: IntWord(0, 1),
        batch_content_fn=lambda addrs: [IntWord(7, 7) for _ in addrs],
    )
    with pytest.raises(ValueError, match="exceeds"):
        table.prefetch([1])


def test_lazy_table_prefetch_length_mismatch_raises():
    table = LazyTable(
        "t", 10, 8, lambda a: IntWord(0, 1), batch_content_fn=lambda addrs: []
    )
    with pytest.raises(ValueError, match="addresses"):
        table.prefetch([1, 2])
