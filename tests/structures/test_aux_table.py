"""Auxiliary tables T̃ and the ρ interpolation."""

import numpy as np
import pytest

from repro.cellprobe.words import IntWord
from repro.hamming.points import PackedPoints
from repro.hamming.sampling import random_points
from repro.sketch.approx_balls import ApproxBallEvaluator
from repro.sketch.family import SketchFamily
from repro.sketch.levels import LevelSketches
from repro.structures.aux_table import (
    AuxCountTable,
    aux_table_logical_cells,
    group_levels,
    rho,
)
from repro.utils.rng import RngTree


def _setup(s=2, tau=5):
    rng = np.random.default_rng(0)
    db = PackedPoints(random_points(rng, 50, 256), 256)
    fam = SketchFamily(256, 2.0, 8, 64, coarse_rows=12, rng_tree=RngTree(2))
    ev = ApproxBallEvaluator(LevelSketches(db, fam))
    aux = AuxCountTable(ev, level=8, tau=tau, s=s, frac_exponent=float(s))
    return db, fam, ev, aux


class TestRho:
    def test_endpoints(self):
        assert rho(0, 20, 5, 0) == 0
        assert rho(0, 20, 5, 5) == 20

    def test_monotone(self):
        vals = [rho(3, 40, 7, r) for r in range(8)]
        assert vals == sorted(vals)

    def test_group_levels_consecutive_positions(self):
        levels = group_levels(0, 40, 8, 3, group_index=2, w0=3)
        expected = [rho(0, 40, 8, 4 + q) for q in range(3)]
        assert levels == expected


class TestSizing:
    def test_logical_cells_positive_bigint(self):
        cells = aux_table_logical_cells(levels=8, accurate_rows=64, coarse_rows=12, s=2)
        assert cells > (1 << 64)  # astronomically large but exact

    def test_word_size_covers_sentinel(self):
        _, _, _, aux = _setup(s=2)
        assert aux.table.word_size_bits >= 1 + (3).bit_length()


class TestContent:
    def test_returns_intword_in_range(self):
        db, fam, ev, aux = _setup(s=2, tau=5)
        x = db.row(1)
        acc = fam.accurate_address(8, x)
        coarse = [fam.coarse_address(rho(0, 8, 5, 1 + q), x) for q in range(2)]
        addr = aux.address(acc, 0, 8, 1, coarse)
        content = aux.table.read(addr)
        assert isinstance(content, IntWord)
        assert 1 <= content.value <= 3  # 1..s or sentinel s+1

    def test_content_matches_direct_counting(self):
        db, fam, ev, aux = _setup(s=2, tau=5)
        x = db.row(2)
        acc = fam.accurate_address(8, x)
        levels = group_levels(0, 8, 5, 2, 1, 2)
        coarse = [fam.coarse_address(lvl, x) for lvl in levels]
        addr = aux.address(acc, 0, 8, 1, coarse)
        content = aux.table.read(addr)
        c_size = ev.c_count(8, acc)
        cut = aux.density_threshold(c_size)
        expected = 3  # sentinel
        for q, (lvl, w) in enumerate(zip(levels, coarse), start=1):
            if ev.d_count(8, acc, lvl, w) > cut:
                expected = q
                break
        assert content.value == expected

    def test_address_validates_group_size(self):
        db, fam, _, aux = _setup(s=2)
        x = db.row(0)
        acc = fam.accurate_address(8, x)
        with pytest.raises(ValueError):
            aux.address(acc, 0, 8, 1, [fam.coarse_address(0, x)] * 3)  # > s

    def test_validation_errors(self):
        db, fam, ev, _ = _setup()
        with pytest.raises(ValueError):
            AuxCountTable(ev, 0, tau=1, s=1, frac_exponent=1.0)
        with pytest.raises(ValueError):
            AuxCountTable(ev, 0, tau=3, s=0, frac_exponent=1.0)
        with pytest.raises(ValueError):
            AuxCountTable(ev, 0, tau=3, s=1, frac_exponent=0.0)

    def test_density_threshold(self):
        _, _, _, aux = _setup(s=2)
        n = 50
        assert aux.density_threshold(10) == pytest.approx((n ** -0.5) * 10)
