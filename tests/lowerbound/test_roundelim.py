"""Round-elimination ledger (Claim 25 replay)."""

import pytest

from repro.lowerbound.roundelim import (
    RoundEliminationLedger,
    lpm_string_length,
    lpm_string_length_from_log,
)


def _ledger(k=2, log2_d=1e6, c1=2.0):
    return RoundEliminationLedger(
        gamma=3.0, k=k, log2_n=log2_d**2, log2_d=log2_d, c1=c1, c2=1.0
    )


class TestStringLength:
    def test_theta_log_gamma_d(self):
        """m tracks log_γ d within a constant factor."""
        import math

        for dpow in (20, 30, 40):
            m = lpm_string_length(2**dpow, 3.0)
            ref = math.log(2**dpow, 3.0)
            assert 0.5 * ref <= m <= 2.0 * ref

    def test_log_form_agrees(self):
        assert lpm_string_length(2**30, 3.0) == lpm_string_length_from_log(30.0, 3.0)

    def test_rejects_small_gamma(self):
        with pytest.raises(ValueError):
            lpm_string_length(2**20, 2.0)

    def test_monotone_in_d(self):
        assert lpm_string_length_from_log(1e6, 3.0) > lpm_string_length_from_log(1e4, 3.0)


class TestLedger:
    def test_trivially_large_t(self):
        led = _ledger(k=2)
        res = led.run(led.m)  # way above m^{1/k}
        assert res.trivially_large
        assert not res.contradiction_derived

    def test_contradiction_for_tiny_t_in_regime(self):
        led = _ledger(k=2)
        t_star, res = led.implied_lower_bound()
        assert t_star > 0
        assert res.contradiction_derived
        assert res.steps[-1].error <= 7.0 / 8.0 + 1e-9

    def test_k_steps_recorded(self):
        led = _ledger(k=2)
        res = led.run(0.5)
        assert len(res.steps) == 2

    def test_regime_flag(self):
        assert _ledger(k=2, log2_d=1e6).regime_ok
        assert not _ledger(k=8, log2_d=1e6).regime_ok  # k too large

    def test_lower_bound_scales_with_xi(self):
        """t*/ξ stays within a fixed band across scales — the Θ((1/k)m^{1/k})
        shape of Theorem 4."""
        ratios = []
        for log2_d in (1e6, 1e8):
            led = _ledger(k=2, log2_d=log2_d)
            t_star, res = led.implied_lower_bound()
            ratios.append(t_star / res.xi)
        assert all(r > 0 for r in ratios)
        assert max(ratios) / min(ratios) < 10.0

    def test_final_problem_nontrivial(self):
        """After k eliminations, m_k ≈ 1: the contradiction bites at
        LPM_{1,1} exactly as Claim 26 needs."""
        led = _ledger(k=2)
        t_star, res = led.implied_lower_bound()
        assert abs(res.steps[-1].log2_m) < 8.0

    def test_per_round_schedule_validation(self):
        led = _ledger(k=2)
        with pytest.raises(ValueError):
            led.run([1.0])  # wrong length
        with pytest.raises(ValueError):
            led.run([1.0, -1.0])

    def test_failing_condition_reported(self):
        led = _ledger(k=3, log2_d=1e4)  # regime too small for k=3
        res = led.run(0.5)
        if not res.contradiction_derived and not res.trivially_large:
            assert res.failing_condition is not None


class TestNonUniformSchedules:
    """The paper's technical novelty is round elimination with
    *non-uniform* message sizes (Section 4.2); the ledger must consume
    per-round probe schedules, not just uniform splits."""

    def test_uniform_split_equals_explicit_schedule(self):
        led = _ledger(k=2)
        total = 1.0
        a = led.run(total)
        b = led.run([total / 2, total / 2])
        assert a.t_total == b.t_total
        for sa, sb in zip(a.steps, b.steps):
            assert sa.log2_q == sb.log2_q
            assert sa.a_first == sb.a_first

    def test_front_loaded_schedule_changes_steps(self):
        led = _ledger(k=2)
        uniform = led.run([0.5, 0.5])
        front = led.run([0.9, 0.1])
        assert front.steps[0].log2_q != uniform.steps[0].log2_q

    def test_skewed_schedule_can_break_conditions(self):
        """An extremely skewed schedule starves one round's message budget
        — the exact situation the generalized Lemma 19 must handle; the
        ledger reports which condition gives out rather than crashing."""
        led = _ledger(k=2)
        res = led.run([0.999, 0.001])
        assert res.t_total == pytest.approx(1.0)
        # Either the contradiction still derives or a named condition fails.
        assert res.contradiction_derived or res.failing_condition is not None

    def test_schedule_conservation(self):
        led = _ledger(k=3, log2_d=1e8)
        res = led.run([0.4, 0.3, 0.3])
        assert res.t_total == pytest.approx(1.0)
        assert len(res.steps) == 3
