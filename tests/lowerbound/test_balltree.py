"""γ-separated ball tree construction and verification."""

import numpy as np
import pytest

from repro.lowerbound.balltree import SeparatedBallTree, max_feasible_depth


@pytest.fixture(scope="module")
def tree():
    return SeparatedBallTree(
        d=2048, gamma=2.0, fanout=4, depth=2, rng=np.random.default_rng(0)
    )


class TestConstruction:
    def test_node_count(self, tree):
        assert tree.num_nodes == 1 + 4 + 16

    def test_radii_follow_formula(self, tree):
        assert tree.radius(0) == 2048
        assert tree.radius(1) == pytest.approx(2048 / 16)
        assert tree.radius(2) == pytest.approx(2048 / 256)

    def test_all_invariants_verify(self, tree):
        assert all(tree.verify().values())

    def test_separation_margin_above_one(self, tree):
        assert tree.verification_margin() > 1.0

    def test_depth_infeasible_raises(self):
        with pytest.raises(ValueError):
            SeparatedBallTree(d=256, gamma=2.0, fanout=2, depth=5, rng=np.random.default_rng(0))

    def test_rejects_bad_gamma(self):
        with pytest.raises(ValueError):
            SeparatedBallTree(d=1024, gamma=1.0, fanout=2, depth=1, rng=np.random.default_rng(0))

    def test_rejects_tiny_fanout(self):
        with pytest.raises(ValueError):
            SeparatedBallTree(d=1024, gamma=2.0, fanout=1, depth=1, rng=np.random.default_rng(0))


class TestAccess:
    def test_center_paths(self, tree):
        root = tree.center(())
        child = tree.center((2,))
        assert root.shape == child.shape

    def test_leaf_center_prefix_path(self, tree):
        assert (tree.leaf_center((1,)) == tree.center((1,))).all()

    def test_nodes_at_depth(self, tree):
        assert len(tree.nodes_at_depth(0)) == 1
        assert len(tree.nodes_at_depth(1)) == 4
        assert len(tree.nodes_at_depth(2)) == 16


class TestFeasibleDepth:
    def test_monotone_in_d(self):
        assert max_feasible_depth(2**16, 2.0) >= max_feasible_depth(2**10, 2.0)

    def test_matches_radius_constraint(self):
        depth = max_feasible_depth(4096, 2.0)
        assert 4096 / (16.0**depth) >= 4
        assert 4096 / (16.0 ** (depth + 1)) < 4
