"""Proposition 18: schemes as protocols."""

import pytest

from repro.cellprobe.accounting import ProbeAccountant
from repro.core.algorithm1 import SimpleKRoundScheme
from repro.core.params import Algorithm1Params, BaseParameters
from repro.lowerbound.protocol import ProtocolShape, trace_to_protocol
from repro.utils.intmath import ilog2_ceil


class TestProtocolShape:
    def test_rounds(self):
        shape = ProtocolShape((8.0, 4.0), (64.0, 32.0))
        assert shape.k == 2
        assert shape.communication_rounds == 4

    def test_totals(self):
        shape = ProtocolShape((8.0, 4.0), (64.0, 32.0))
        assert shape.alice_bits == 12.0
        assert shape.bob_bits == 96.0
        assert shape.total_bits == 108.0

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            ProtocolShape((1.0,), (1.0, 2.0))

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            ProtocolShape((-1.0,), (1.0,))

    def test_suffix(self):
        shape = ProtocolShape((1.0, 2.0, 3.0), (4.0, 5.0, 6.0))
        suf = shape.suffix(1)
        assert suf.a == (2.0, 3.0)
        assert suf.b == (5.0, 6.0)

    def test_scale_alice(self):
        shape = ProtocolShape((2.0,), (4.0,))
        scaled = shape.scale_alice(1.5)
        assert scaled.a == (3.0,)
        assert scaled.b == (4.0,)

    def test_scale_rejects_shrink(self):
        with pytest.raises(ValueError):
            ProtocolShape((2.0,), (4.0,)).scale_alice(0.5)


class TestTraceConversion:
    def test_per_round_sizes(self):
        acc = ProbeAccountant()
        r1 = acc.begin_round()
        acc.charge(r1, "T", 0)
        acc.charge(r1, "T", 1)
        r2 = acc.begin_round()
        acc.charge(r2, "T", 2)
        shape = trace_to_protocol(acc, table_cells=1 << 20, word_bits=100)
        assert shape.a == (2 * 20.0, 1 * 20.0)
        assert shape.b == (200.0, 100.0)

    def test_empty_rounds_dropped(self):
        acc = ProbeAccountant()
        acc.begin_round()  # empty
        r = acc.begin_round()
        acc.charge(r, "T", 0)
        shape = trace_to_protocol(acc, table_cells=4, word_bits=8)
        assert shape.k == 1

    def test_validation(self):
        acc = ProbeAccountant()
        with pytest.raises(ValueError):
            trace_to_protocol(acc, table_cells=1, word_bits=8)
        with pytest.raises(ValueError):
            trace_to_protocol(acc, table_cells=8, word_bits=0)

    def test_real_scheme_trace_has_2k_rounds(self, small_db, small_queries):
        """A k-round query maps to ≤ 2k communication rounds with the
        Prop. 18 message sizes."""
        base = BaseParameters(n=len(small_db), d=small_db.d, gamma=4.0, c1=8.0)
        scheme = SimpleKRoundScheme(small_db, Algorithm1Params(base, k=3), seed=0)
        res = scheme.query(small_queries[0])
        report = scheme.size_report()
        shape = trace_to_protocol(res.accountant, report.table_cells, report.word_bits)
        assert shape.communication_rounds <= 2 * 3
        addr_bits = ilog2_ceil(report.table_cells)
        assert shape.alice_bits == res.probes * addr_bits
        assert shape.bob_bits == res.probes * report.word_bits
