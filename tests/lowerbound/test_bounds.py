"""Closed-form bound curves."""

import math

import pytest

from repro.lowerbound.bounds import (
    cr_fully_adaptive_bound,
    lb_tradeoff,
    lb_valid_k_max,
    phase_transition_k,
    ub_algorithm1,
    ub_algorithm2,
)


class TestLowerBound:
    def test_k1_is_log(self):
        assert lb_tradeoff(1, 2**16, gamma=2.0) == pytest.approx(16.0)

    def test_decreasing_in_k(self):
        vals = [lb_tradeoff(k, 2**16, 2.0) for k in (1, 2, 3, 4)]
        assert all(b < a for a, b in zip(vals, vals[1:]))

    def test_increasing_in_d(self):
        assert lb_tradeoff(2, 2**20, 2.0) > lb_tradeoff(2, 2**10, 2.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            lb_tradeoff(0, 2**10)
        with pytest.raises(ValueError):
            lb_tradeoff(1, 8)
        with pytest.raises(ValueError):
            lb_tradeoff(1, 2**10, gamma=1.0)


class TestUpperBounds:
    def test_ub1_k1_is_log(self):
        assert ub_algorithm1(1, 2**12) == pytest.approx(12.0)

    def test_ub1_above_lb_everywhere(self):
        """Algorithm 1's envelope dominates the lower bound — consistency
        of Theorems 2 and 4 (lb·k ≤ ub/k up to the claimed factor k²)."""
        for d in (2**10, 2**16, 2**24):
            for k in (1, 2, 3, 4):
                assert ub_algorithm1(k, d) >= lb_tradeoff(k, d, 2.0) / 4.0

    def test_ub2_requires_c_gt_2(self):
        with pytest.raises(ValueError):
            ub_algorithm2(8, 2**16, c=2.0)

    def test_ub2_approaches_k_for_large_k(self):
        d = 2**16
        val = ub_algorithm2(64, d, c=3.0)
        assert val == pytest.approx(64.0, rel=0.1)

    def test_gap_between_ub1_and_lb_is_k_squared(self):
        """ub1/lb = k² · (log2/logγ adjust) — the paper's optimality-gap
        statement for constant k."""
        d = 2**20
        for k in (1, 2, 3):
            ratio = ub_algorithm1(k, d) / lb_tradeoff(k, d, 2.0)
            assert ratio == pytest.approx(k * k, rel=0.05)


class TestFullyAdaptive:
    def test_cr_value(self):
        lld = math.log2(math.log2(2**16))
        assert cr_fully_adaptive_bound(2**16) == pytest.approx(lld / math.log2(lld))

    def test_phase_transition_positive(self):
        assert phase_transition_k(2**16) >= 1

    def test_valid_k_max_below_transition(self):
        for d in (2**10, 2**16, 2**32):
            assert lb_valid_k_max(d) <= phase_transition_k(d) + 1
