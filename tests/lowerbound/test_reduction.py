"""LPM → ANNS reduction: end-to-end answer recovery."""

import numpy as np
import pytest

from repro.core.algorithm1 import SimpleKRoundScheme
from repro.core.params import Algorithm1Params, BaseParameters
from repro.hamming.balls import nearest_neighbor
from repro.lowerbound.balltree import SeparatedBallTree
from repro.lowerbound.lpm import random_lpm_instance
from repro.lowerbound.reduction import LPMToANNSReduction


@pytest.fixture(scope="module")
def setup():
    rng = np.random.default_rng(7)
    inst, queries = random_lpm_instance(rng, m=2, n=10, sigma=4, skew=0.8)
    tree = SeparatedBallTree(d=2048, gamma=2.0, fanout=4, depth=2, rng=rng)
    return inst, queries, LPMToANNSReduction(inst, tree)


def _exact_solver(db, x):
    idx, _ = nearest_neighbor(db, x)
    return db.row(idx)


class TestMapping:
    def test_database_size(self, setup):
        inst, _, red = setup
        assert len(red.database) == inst.n

    def test_query_length_validated(self, setup):
        _, _, red = setup
        with pytest.raises(ValueError):
            red.map_query((0,))

    def test_symbol_validated(self, setup):
        _, _, red = setup
        with pytest.raises(ValueError):
            red.map_query((0, 9))

    def test_recover_inverts(self, setup):
        inst, _, red = setup
        for i in range(inst.n):
            assert red.recover(red.database.row(i)) == i

    def test_recover_rejects_foreign_point(self, setup):
        _, _, red = setup
        with pytest.raises(ValueError):
            red.recover(np.zeros(red.database.word_count, dtype=np.uint64))

    def test_gamma_gap_exceeds_gamma(self, setup):
        """The mapped instances are γ-unconfusable — the soundness core."""
        _, queries, red = setup
        for q in queries[:6]:
            assert red.gamma_gap(q) > red.tree.gamma


class TestEndToEnd:
    def test_exact_solver_recovers_lpm(self, setup):
        _, queries, red = setup
        for q in queries:
            check = red.solve_with(_exact_solver, q)
            assert check.correct

    def test_algorithm1_recovers_lpm(self, setup):
        """The paper's own scheme, run on the reduced instance, solves LPM
        (Lemma 14's reduction, end to end)."""
        inst, queries, red = setup
        db = red.database
        base = BaseParameters(n=len(db), d=db.d, gamma=2.0, c1=10.0)
        scheme = SimpleKRoundScheme(db, Algorithm1Params(base, k=3), seed=0)

        def ann_solver(database, x):
            res = scheme.query(x)
            assert res.answered
            return res.answer_packed

        correct = sum(red.solve_with(ann_solver, q).correct for q in queries)
        assert correct / len(queries) >= 0.75

    def test_fanout_validation(self, setup):
        inst, _, _ = setup
        small_tree = SeparatedBallTree(
            d=2048, gamma=2.0, fanout=2, depth=2, rng=np.random.default_rng(0)
        )
        with pytest.raises(ValueError):
            LPMToANNSReduction(inst, small_tree)  # fanout 2 < sigma 4
