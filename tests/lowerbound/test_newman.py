"""Newman / Proposition 6 accounting."""

import pytest

from repro.lowerbound.newman import (
    log2_database_universe,
    newman_private_coin_cells,
    newman_random_bits,
    proposition6_cells,
)


class TestUniverse:
    def test_scales_with_n_and_d(self):
        assert log2_database_universe(100, 512) > log2_database_universe(100, 128)
        assert log2_database_universe(200, 128) > log2_database_universe(100, 128)

    def test_roughly_nd(self):
        val = log2_database_universe(1000, 4096)
        assert 0.9 * 1000 * 4096 < val < 1.1 * 1000 * 4096

    def test_validation(self):
        with pytest.raises(ValueError):
            log2_database_universe(0, 10)


class TestNewman:
    def test_random_bits_logarithmic(self):
        bits = newman_random_bits(512.0, 1000 * 512.0)
        assert bits < 30  # log of the blowup, tiny

    def test_private_cells_blowup(self):
        cells = newman_private_coin_cells(1000, 512.0, 100 * 512.0)
        assert cells >= 1000 * (512 + 100 * 512)

    def test_validation(self):
        with pytest.raises(ValueError):
            newman_private_coin_cells(0, 1.0, 1.0)


class TestProposition6:
    def test_order_dns(self):
        """Blowup factor is Θ(d·n) as Proposition 6 states."""
        s, n, d = 10_000, 500, 1024
        cells = proposition6_cells(s, n, d)
        assert 0.5 * d * n * s < cells < 2.0 * d * n * s

    def test_monotone(self):
        assert proposition6_cells(100, 50, 64) < proposition6_cells(100, 500, 64)
