"""Claim 26: silent LPM₁,₁ protocols."""

import numpy as np
import pytest

from repro.lowerbound.claim26 import best_silent_success, simulate_silent_protocol


class TestBound:
    def test_formula(self):
        assert best_silent_success(4) == 0.25

    def test_rejects_tiny_alphabet(self):
        with pytest.raises(ValueError):
            best_silent_success(1)


class TestSimulation:
    def test_echo_strategy_near_bound(self):
        rng = np.random.default_rng(0)
        result = simulate_silent_protocol(8, trials=8000, rng=rng)
        assert abs(result.rate - result.bound) < 0.02

    def test_constant_strategy_near_bound(self):
        rng = np.random.default_rng(1)
        result = simulate_silent_protocol(8, trials=8000, rng=rng, strategy=lambda q: 3)
        assert abs(result.rate - 1.0 / 8) < 0.02

    def test_no_strategy_beats_bound_significantly(self):
        """Any silent strategy is a function query→symbol; the database
        symbol is independent and uniform, so success stays ≈ 1/σ."""
        rng = np.random.default_rng(2)
        for strat in (lambda q: q, lambda q: (q + 1) % 4, lambda q: 0):
            result = simulate_silent_protocol(4, trials=8000, rng=rng, strategy=strat)
            assert result.rate <= 0.25 + 3 * (0.25 * 0.75 / 8000) ** 0.5 + 0.01

    def test_validation(self):
        rng = np.random.default_rng(3)
        with pytest.raises(ValueError):
            simulate_silent_protocol(4, trials=0, rng=rng)
