"""LPM problem and trie solver."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lowerbound.lpm import (
    LPMInstance,
    LPMTrie,
    common_prefix_length,
    random_lpm_instance,
)


class TestCommonPrefix:
    def test_empty(self):
        assert common_prefix_length((), ()) == 0

    def test_full_match(self):
        assert common_prefix_length((1, 2, 3), (1, 2, 3)) == 3

    def test_partial(self):
        assert common_prefix_length((1, 2, 3), (1, 2, 9)) == 2

    def test_no_match(self):
        assert common_prefix_length((1,), (2,)) == 0


class TestInstanceValidation:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            LPMInstance((), sigma=2)

    def test_rejects_ragged(self):
        with pytest.raises(ValueError):
            LPMInstance(((1, 2), (1,)), sigma=3)

    def test_rejects_symbol_out_of_alphabet(self):
        with pytest.raises(ValueError):
            LPMInstance(((0, 5),), sigma=3)

    def test_properties(self):
        inst = LPMInstance(((0, 1), (1, 1)), sigma=2)
        assert inst.m == 2
        assert inst.n == 2


class TestTrie:
    @settings(max_examples=40)
    @given(
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=1, max_value=20),
        st.integers(min_value=2, max_value=5),
        st.integers(min_value=0, max_value=2**32),
    )
    def test_trie_matches_brute_force_lcp(self, m, n, sigma, seed):
        if n > sigma**m:
            n = sigma**m
        rng = np.random.default_rng(seed)
        inst, queries = random_lpm_instance(rng, m, n, sigma, skew=0.5)
        trie = LPMTrie(inst)
        for q in queries[:5]:
            idx, lcp = trie.query(q)
            _, best = inst.brute_force(q)
            assert lcp == best
            assert common_prefix_length(q, inst.strings[idx]) == best

    def test_exact_string_full_lcp(self):
        inst = LPMInstance(((0, 1, 2), (2, 1, 0)), sigma=3)
        trie = LPMTrie(inst)
        idx, lcp = trie.query((2, 1, 0))
        assert (idx, lcp) == (1, 3)

    def test_no_common_prefix_returns_some_string(self):
        inst = LPMInstance(((0, 0), (0, 1)), sigma=3)
        trie = LPMTrie(inst)
        idx, lcp = trie.query((2, 2))
        assert lcp == 0
        assert idx in (0, 1)


class TestGenerator:
    def test_unique_strings(self):
        rng = np.random.default_rng(0)
        inst, _ = random_lpm_instance(rng, m=3, n=10, sigma=4)
        assert len(set(inst.strings)) == 10

    def test_rejects_small_alphabet(self):
        with pytest.raises(ValueError):
            random_lpm_instance(np.random.default_rng(0), 2, 2, sigma=1)

    def test_skewed_queries_share_prefixes(self):
        rng = np.random.default_rng(1)
        inst, queries = random_lpm_instance(rng, m=6, n=20, sigma=3, skew=1.0)
        lcps = [inst.brute_force(q)[1] for q in queries]
        assert max(lcps) >= 2
