"""Growth-exponent fitting."""

import pytest

from repro.analysis.exponents import ExponentFit, fit_probe_exponent


class TestFit:
    def test_recovers_known_exponent(self):
        dims = [2**e for e in (8, 12, 16, 24, 32)]
        # probes = (log2 d)^{1/2} exactly
        probes = [(e) ** 0.5 for e in (8, 12, 16, 24, 32)]
        fit = fit_probe_exponent(2, dims, probes)
        assert fit.slope == pytest.approx(0.5, abs=1e-9)
        assert fit.absolute_error < 1e-9

    def test_constant_probes_zero_exponent(self):
        dims = [256, 1024, 4096]
        fit = fit_probe_exponent(4, dims, [7.0, 7.0, 7.0])
        assert fit.slope == pytest.approx(0.0)

    def test_target_is_one_over_k(self):
        fit = fit_probe_exponent(3, [256, 512, 1024], [1.0, 2.0, 3.0])
        assert fit.target == pytest.approx(1.0 / 3.0)

    def test_as_row_keys(self):
        fit = fit_probe_exponent(1, [256, 512, 1024], [8.0, 9.0, 10.0])
        row = fit.as_row()
        assert set(row) == {"k", "fitted exponent", "target 1/k", "|error|"}

    def test_needs_three_points(self):
        with pytest.raises(ValueError):
            fit_probe_exponent(1, [256, 512], [1.0, 2.0])

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            fit_probe_exponent(1, [256, 512, 1024], [1.0, 2.0])

    def test_immutability(self):
        fit = fit_probe_exponent(1, [256, 512, 1024], [8.0, 9.0, 10.0])
        assert isinstance(fit, ExponentFit)
        with pytest.raises(AttributeError):
            fit.slope = 2.0  # frozen dataclass
