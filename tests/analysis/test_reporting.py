"""Markdown table rendering."""

from repro.analysis.reporting import format_markdown_table, print_table


class TestFormat:
    def test_basic_table(self):
        text = format_markdown_table([{"a": 1, "b": 2.5}, {"a": 3, "b": None}])
        lines = text.splitlines()
        assert lines[0] == "| a | b |"
        assert lines[1] == "| --- | --- |"
        assert "| 3 | — |" in text

    def test_column_union_across_rows(self):
        text = format_markdown_table([{"a": 1}, {"a": 2, "b": 9}])
        assert "b" in text.splitlines()[0]

    def test_explicit_columns(self):
        text = format_markdown_table([{"a": 1, "b": 2}], columns=["b"])
        assert text.splitlines()[0] == "| b |"

    def test_empty(self):
        assert format_markdown_table([]) == "(no rows)"

    def test_float_formatting(self):
        text = format_markdown_table([{"x": 0.123456789}])
        assert "0.1235" in text


class TestPrint:
    def test_prints_and_returns(self, capsys):
        text = print_table("Title", [{"a": 1}])
        out = capsys.readouterr().out
        assert "### Title" in out
        assert text in out + "\n"
