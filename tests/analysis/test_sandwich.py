"""Lemma 8 empirical verification harness."""

import numpy as np

from repro.analysis.sandwich import verify_lemma8
from repro.sketch.family import SketchFamily
from repro.utils.rng import RngTree
from tests.conftest import planted_queries


def _family(db, accurate_rows, coarse_rows=None, seed=0):
    return SketchFamily(db.d, 2.0, 8, accurate_rows, coarse_rows, rng_tree=RngTree(seed))


class TestVerifyLemma8:
    def test_wide_rows_pass_floor(self, small_db):
        queries = planted_queries(small_db, 10, max_flips=8)
        fam = _family(small_db, accurate_rows=384)
        report = verify_lemma8(small_db, fam, queries)
        assert report.simultaneous_rate >= 0.75

    def test_narrow_rows_fail_more(self, small_db):
        queries = planted_queries(small_db, 10, max_flips=8)
        wide = verify_lemma8(small_db, _family(small_db, 384), queries)
        narrow = verify_lemma8(small_db, _family(small_db, 16), queries)
        assert narrow.simultaneous_rate <= wide.simultaneous_rate

    def test_rows_output_per_level(self, small_db):
        queries = planted_queries(small_db, 4, max_flips=4)
        report = verify_lemma8(small_db, _family(small_db, 64), queries)
        rows = report.rows()
        assert len(rows) == report.levels + 1
        assert all(0.0 <= r["P[B_i ⊄ C_i]"] <= 1.0 for r in rows)

    def test_coarse_fractions_checked_when_available(self, small_db):
        queries = planted_queries(small_db, 4, max_flips=4)
        fam = _family(small_db, 128, coarse_rows=24)
        report = verify_lemma8(
            small_db, fam, queries, s_exponent=2.0, coarse_level_pairs=[(6, 4), (8, 8)]
        )
        assert report.coarse_checked == 4 * 2
        assert 0 <= report.coarse_miss_ok <= report.coarse_checked

    def test_single_query_shape(self, small_db):
        fam = _family(small_db, 64)
        report = verify_lemma8(small_db, fam, planted_queries(small_db, 1, 2)[0])
        assert report.num_queries == 1
