"""Statistics helpers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.stats import loglog_slope, mean_ci, summarize, wilson_interval


class TestSummarize:
    def test_basic(self):
        s = summarize([1.0, 2.0, 3.0])
        assert s.count == 3
        assert s.mean == pytest.approx(2.0)
        assert s.minimum == 1.0
        assert s.maximum == 3.0

    def test_single_value_zero_std(self):
        assert summarize([5.0]).std == 0.0

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            summarize([])


class TestMeanCI:
    def test_contains_mean(self):
        mean, lo, hi = mean_ci([1.0, 2.0, 3.0, 4.0])
        assert lo <= mean <= hi

    def test_single_point_degenerate(self):
        mean, lo, hi = mean_ci([2.0])
        assert lo == hi == mean


class TestWilson:
    def test_half(self):
        p, lo, hi = wilson_interval(50, 100)
        assert p == 0.5
        assert lo < 0.5 < hi

    def test_bounds_clamped(self):
        _, lo, _ = wilson_interval(0, 10)
        _, _, hi = wilson_interval(10, 10)
        assert lo >= 0.0
        assert hi <= 1.0

    @settings(max_examples=50)
    @given(st.integers(min_value=0, max_value=100), st.integers(min_value=1, max_value=100))
    def test_interval_ordering(self, successes, trials):
        successes = min(successes, trials)
        p, lo, hi = wilson_interval(successes, trials)
        assert 0.0 <= lo <= hi <= 1.0
        assert lo <= p + 1e-12
        assert p <= hi + 1e-12

    def test_validation(self):
        with pytest.raises(ValueError):
            wilson_interval(5, 0)
        with pytest.raises(ValueError):
            wilson_interval(11, 10)


class TestLogLogSlope:
    def test_power_law_recovered(self):
        xs = [2.0, 4.0, 8.0, 16.0]
        ys = [x**0.5 for x in xs]
        assert loglog_slope(xs, ys) == pytest.approx(0.5)

    def test_constant_zero_slope(self):
        assert loglog_slope([1.0, 2.0, 4.0], [3.0, 3.0, 3.0]) == pytest.approx(0.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            loglog_slope([1.0], [1.0])
        with pytest.raises(ValueError):
            loglog_slope([2.0, 2.0], [1.0, 2.0])
