"""Evaluation sweeps."""

from repro.analysis.tradeoff import evaluate_scheme, sweep_algorithm1, sweep_algorithm2
from repro.baselines.linear_scan import LinearScanScheme
from repro.workloads.spec import Workload


def _workload(db, queries):
    return Workload(name="test", database=db, queries=queries)


class TestEvaluateScheme:
    def test_linear_scan_perfect(self, small_db, small_queries):
        summary = evaluate_scheme(
            LinearScanScheme(small_db), _workload(small_db, small_queries), gamma=4.0
        )
        assert summary.success_rate == 1.0
        assert summary.answered_rate == 1.0
        assert summary.mean_probes == len(small_db)
        assert summary.max_rounds == 1

    def test_max_queries_limits(self, small_db, small_queries):
        summary = evaluate_scheme(
            LinearScanScheme(small_db), _workload(small_db, small_queries),
            gamma=4.0, max_queries=5,
        )
        assert summary.num_queries == 5

    def test_row_rendering(self, small_db, small_queries):
        summary = evaluate_scheme(
            LinearScanScheme(small_db), _workload(small_db, small_queries), gamma=4.0
        )
        row = summary.row()
        assert row["scheme"] == "linear-scan"
        assert row["success"] == 1.0


class TestSweeps:
    def test_algorithm1_sweep_rows(self, small_db, small_queries):
        out = sweep_algorithm1(_workload(small_db, small_queries), 4.0, ks=[1, 2], c1=8.0)
        assert len(out) == 2
        assert out[0].extras["k"] == 1
        assert out[0].extras["tau"] >= out[1].extras["tau"]

    def test_algorithm1_probes_decrease_with_k(self, medium_db, medium_queries):
        out = sweep_algorithm1(_workload(medium_db, medium_queries), 4.0, ks=[1, 3], c1=8.0)
        assert out[1].mean_probes < out[0].mean_probes

    def test_algorithm2_sweep_skips_invalid_k(self, small_db, small_queries):
        out = sweep_algorithm2(_workload(small_db, small_queries), 4.0, ks=[3, 16], c=3.0)
        ks = [s.extras["k"] for s in out]
        assert 3 not in ks  # s < 1 at k=3
        assert 16 in ks

    def test_algorithm2_reports_probes_per_round(self, small_db, small_queries):
        out = sweep_algorithm2(_workload(small_db, small_queries), 4.0, ks=[16], c=3.0)
        assert "probes_per_round" in out[0].extras
