"""CLI smoke tests (python -m repro)."""

import pytest

from repro.cli import main


class TestCLI:
    def test_tradeoff(self, capsys):
        code = main(["tradeoff", "--n", "64", "--d", "128", "--queries", "4",
                     "--ks", "1", "2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Tradeoff" in out
        assert "Alg1" in out

    def test_tradeoff_with_alg2(self, capsys):
        code = main(["tradeoff", "--n", "64", "--d", "128", "--queries", "4",
                     "--ks", "1", "--alg2-ks", "16"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Alg2" in out

    def test_baselines(self, capsys):
        code = main(["baselines", "--n", "64", "--d", "128", "--queries", "4"])
        out = capsys.readouterr().out
        assert code == 0
        assert "linear-scan" in out
        assert "LSH" in out

    def test_lemma8(self, capsys):
        code = main(["lemma8", "--n", "64", "--d", "128", "--queries", "4",
                     "--rows", "32", "64"])
        out = capsys.readouterr().out
        assert code == 0
        assert "P[sandwich]" in out

    def test_ledger(self, capsys):
        code = main(["ledger", "--log2d", "1e6", "--ks", "1", "2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "t*" in out

    def test_demo(self, capsys):
        code = main(["demo"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Demo" in out

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["bogus"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])
