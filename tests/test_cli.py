"""CLI smoke tests (python -m repro)."""

import pytest

from repro.cli import main


class TestCLI:
    def test_tradeoff(self, capsys):
        code = main(["tradeoff", "--n", "64", "--d", "128", "--queries", "4",
                     "--ks", "1", "2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Tradeoff" in out
        assert "Alg1" in out

    def test_tradeoff_with_alg2(self, capsys):
        code = main(["tradeoff", "--n", "64", "--d", "128", "--queries", "4",
                     "--ks", "1", "--alg2-ks", "16"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Alg2" in out

    def test_baselines(self, capsys):
        code = main(["baselines", "--n", "64", "--d", "128", "--queries", "4"])
        out = capsys.readouterr().out
        assert code == 0
        assert "linear-scan" in out
        assert "lsh" in out
        assert "fully-adaptive" in out

    def test_schemes_lists_registry(self, capsys):
        from repro.registry import available_schemes

        code = main(["schemes"])
        out = capsys.readouterr().out
        assert code == 0
        for name in available_schemes():
            assert name in out

    def test_bench_compares_schemes_by_name(self, capsys):
        code = main(["bench", "--scheme", "lsh", "--scheme", "algorithm1",
                     "--scheme", "linear-scan",
                     "--n", "64", "--d", "128", "--queries", "4"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Bench" in out
        for name in ("lsh", "algorithm1", "linear-scan"):
            assert name in out

    def test_bench_batched_evaluation(self, capsys):
        code = main(["bench", "--scheme", "algorithm1", "--batch",
                     "--n", "64", "--d", "128", "--queries", "4"])
        assert code == 0
        assert "algorithm1" in capsys.readouterr().out

    def test_bench_set_overrides(self, capsys):
        code = main(["bench", "--scheme", "lsh", "--scheme", "linear-scan",
                     "--set", "mode=adaptive", "--set", "bucket_capacity=8",
                     "--n", "64", "--d", "128", "--queries", "4"])
        out = capsys.readouterr().out
        assert code == 0
        assert "lsh" in out  # overrides apply only to schemes accepting them

    def test_bench_rejects_unknown_scheme(self):
        with pytest.raises(SystemExit):
            main(["bench", "--scheme", "bogus", "--n", "64", "--d", "128"])

    def test_bench_rejects_malformed_set(self):
        with pytest.raises(SystemExit):
            main(["bench", "--scheme", "lsh", "--set", "no-equals-sign",
                  "--n", "64", "--d", "128", "--queries", "4"])

    def test_bench_rejects_set_key_no_scheme_accepts(self):
        # "round" (typo for "rounds") is accepted by no selected scheme.
        with pytest.raises(SystemExit, match="accepted by none"):
            main(["bench", "--scheme", "algorithm1", "--set", "round=4",
                  "--n", "64", "--d", "128", "--queries", "4"])

    def test_tradeoff_passes_c2_through(self, capsys):
        # Regression: --c2 used to be silently set to --c1's value; a c2
        # too small for Algorithm 2's coarse sketch must now surface.
        code = main(["tradeoff", "--n", "64", "--d", "128", "--queries", "4",
                     "--ks", "1", "--alg2-ks", "16", "--c2", "24.0"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Alg2" in out

    def test_build_then_bench_index_roundtrip(self, tmp_path, capsys):
        out_dir = str(tmp_path / "idx")
        code = main(["build", "--scheme", "algorithm1", "--n", "64",
                     "--d", "128", "--queries", "4", "--out", out_dir])
        assert code == 0
        assert "Built index" in capsys.readouterr().out
        code = main(["bench", "--index", out_dir])
        out = capsys.readouterr().out
        assert code == 0
        assert "loaded index" in out
        assert "algorithm1" in out

    def test_build_sharded_then_bench_index(self, tmp_path, capsys):
        out_dir = str(tmp_path / "idx4")
        code = main(["build", "--scheme", "algorithm1", "--shards", "4",
                     "--n", "64", "--d", "128", "--queries", "4",
                     "--out", out_dir])
        assert code == 0
        capsys.readouterr()
        code = main(["bench", "--index", out_dir])
        out = capsys.readouterr().out
        assert code == 0
        assert "sharded(algorithm1×4)" in out

    def test_bench_shards_builds_sharded_index(self, capsys):
        code = main(["bench", "--scheme", "algorithm1", "--shards", "2",
                     "--n", "64", "--d", "128", "--queries", "4"])
        out = capsys.readouterr().out
        assert code == 0
        assert "sharded(algorithm1×2)" in out

    def test_mutate_insert_delete_compact_save_load(self, tmp_path, capsys):
        out_dir = str(tmp_path / "mut")
        main(["build", "--scheme", "algorithm1", "--n", "64",
              "--d", "128", "--queries", "4", "--out", out_dir])
        capsys.readouterr()
        code = main(["mutate", "--index", out_dir, "--insert-random", "5",
                     "--delete", "0", "3", "--compact"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Mutated index" in out
        from repro.persistence import load_any, read_manifest

        loaded = load_any(out_dir)
        assert len(loaded) == 64 + 5 - 2
        assert loaded.generation == 1
        assert loaded.mutation.dirty_count == 0
        # extras (the workload recipe) survive the mutate rewrite.
        assert read_manifest(out_dir)["extras"]["workload"]["n"] == 64
        assert loaded.query([0, 1] * 64).answer_index is not None

    def test_mutate_sharded_snapshot_out_of_place(self, tmp_path, capsys):
        src_dir, dst_dir = str(tmp_path / "src"), str(tmp_path / "dst")
        main(["build", "--scheme", "algorithm1", "--shards", "2", "--n", "64",
              "--d", "128", "--queries", "4", "--out", src_dir])
        capsys.readouterr()
        code = main(["mutate", "--index", src_dir, "--insert-random", "3",
                     "--out", dst_dir])
        out = capsys.readouterr().out
        assert code == 0
        assert "Mutated index" in out
        from repro.persistence import load_any

        assert len(load_any(src_dir)) == 64  # source untouched
        assert len(load_any(dst_dir)) == 67

    def test_mutate_requires_an_operation(self, tmp_path):
        with pytest.raises(SystemExit, match="mutate needs"):
            main(["mutate", "--index", str(tmp_path)])

    def test_mutate_deletes_apply_before_inserts(self, tmp_path, capsys):
        # --delete ids refer to the on-disk numbering. With a tombstone
        # already in the snapshot, a large insert trips auto-compaction
        # and renumbers the rows — so inserting first would retarget the
        # user's --delete id onto a different row.
        import numpy as np

        from repro.persistence import load_any

        out_dir = str(tmp_path / "idx")
        main(["build", "--scheme", "algorithm1", "--n", "64",
              "--d", "128", "--queries", "4", "--out", out_dir])
        main(["mutate", "--index", out_dir, "--delete", "1"])  # saved dirty
        capsys.readouterr()
        snapshot = load_any(out_dir)
        target_row = snapshot.database.row(3).copy()     # what --delete 3 means
        innocent_row = snapshot.database.row(4).copy()   # renumbered victim
        # 20 inserts on n=64 exceed the 0.25 auto-compaction threshold.
        # (--mutate-seed differs from the build seed: seed 0 would re-insert
        # duplicates of the workload's own rows.)
        code = main(["mutate", "--index", out_dir, "--insert-random", "20",
                     "--delete", "3", "--mutate-seed", "777"])
        capsys.readouterr()
        assert code == 0
        mutated = load_any(out_dir)
        assert len(mutated) == 64 - 1 + 20 - 1
        live_rows = [mutated.database.row(int(i)) for i in mutated.live_ids()]
        assert not any(np.array_equal(r, target_row) for r in live_rows)
        assert any(np.array_equal(r, innocent_row) for r in live_rows)

    def test_bench_rejects_mutated_snapshot_clearly(self, tmp_path, capsys):
        out_dir = str(tmp_path / "idx")
        main(["build", "--scheme", "algorithm1", "--n", "64",
              "--d", "128", "--queries", "4", "--out", out_dir])
        main(["mutate", "--index", out_dir, "--insert-random", "5"])
        capsys.readouterr()
        with pytest.raises(SystemExit, match="has been mutated"):
            main(["bench", "--index", out_dir])

    def test_bench_rejects_index_plus_scheme(self, tmp_path):
        with pytest.raises(SystemExit, match="drop --scheme"):
            main(["bench", "--index", str(tmp_path), "--scheme", "algorithm1",
                  "--n", "64", "--d", "128", "--queries", "4"])

    def test_bench_requires_scheme_or_index(self):
        with pytest.raises(SystemExit, match="--scheme NAME"):
            main(["bench", "--n", "64", "--d", "128", "--queries", "4"])

    def test_tradeoff_bad_gamma_fails_loudly(self):
        with pytest.raises(ValueError, match="gamma"):
            main(["tradeoff", "--n", "64", "--d", "128", "--queries", "4",
                  "--gamma", "0.5", "--ks", "1", "2"])

    def test_lemma8(self, capsys):
        code = main(["lemma8", "--n", "64", "--d", "128", "--queries", "4",
                     "--rows", "32", "64"])
        out = capsys.readouterr().out
        assert code == 0
        assert "P[sandwich]" in out

    def test_ledger(self, capsys):
        code = main(["ledger", "--log2d", "1e6", "--ks", "1", "2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "t*" in out

    def test_demo(self, capsys):
        code = main(["demo"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Demo" in out

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["bogus"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])
