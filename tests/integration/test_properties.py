"""Hypothesis-driven end-to-end properties of the schemes.

Each property runs the full pipeline (pack → build → query) on small
random instances and checks invariants that must hold for *every* seed and
shape — not just the fixture databases.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.algorithm1 import SimpleKRoundScheme
from repro.core.lambda_ann import OneProbeNearNeighborScheme
from repro.core.params import Algorithm1Params, BaseParameters
from repro.hamming.points import PackedPoints
from repro.hamming.sampling import flip_random_bits, random_points

instance_strategy = st.tuples(
    st.integers(min_value=8, max_value=40),    # n
    st.integers(min_value=48, max_value=160),  # d
    st.integers(min_value=1, max_value=4),     # k
    st.integers(min_value=0, max_value=2**32), # seed
)


def _build(n, d, k, seed):
    rng = np.random.default_rng(seed)
    db = PackedPoints(random_points(rng, n, d), d)
    base = BaseParameters(n=n, d=d, gamma=4.0, c1=8.0)
    scheme = SimpleKRoundScheme(db, Algorithm1Params(base, k=k), seed=seed)
    return rng, db, scheme


class TestAlgorithm1Properties:
    @settings(max_examples=25, deadline=None)
    @given(instance_strategy)
    def test_budgets_always_respected(self, params):
        n, d, k, seed = params
        rng, db, scheme = _build(n, d, k, seed)
        q = flip_random_bits(rng, db.row(int(rng.integers(0, n))), int(rng.integers(0, d // 4 + 1)), d)
        res = scheme.query(q)
        assert res.rounds <= max(1, k)
        assert res.probes <= scheme.params.probe_budget

    @settings(max_examples=25, deadline=None)
    @given(instance_strategy)
    def test_answer_is_database_point(self, params):
        n, d, k, seed = params
        rng, db, scheme = _build(n, d, k, seed)
        q = flip_random_bits(rng, db.row(0), int(rng.integers(0, d // 8 + 1)), d)
        res = scheme.query(q)
        if res.answered:
            assert 0 <= res.answer_index < n
            assert (res.answer_packed == db.row(res.answer_index)).all()

    @settings(max_examples=15, deadline=None)
    @given(instance_strategy)
    def test_exact_member_query_is_exact(self, params):
        n, d, k, seed = params
        _, db, scheme = _build(n, d, k, seed)
        res = scheme.query(db.row(n // 2))
        assert res.answered
        assert res.distance_to(db.row(n // 2)) == 0

    @settings(max_examples=15, deadline=None)
    @given(instance_strategy)
    def test_rounds_nonempty_and_sequential(self, params):
        n, d, k, seed = params
        rng, db, scheme = _build(n, d, k, seed)
        q = random_points(rng, 1, d)[0]
        res = scheme.query(q)
        sizes = [r.size for r in res.accountant.rounds]
        assert all(s > 0 for s in sizes)
        assert sum(sizes) == res.probes


class TestLambdaANNProperties:
    @settings(max_examples=20, deadline=None)
    @given(
        st.integers(min_value=8, max_value=40),
        st.integers(min_value=64, max_value=160),
        st.floats(min_value=1.0, max_value=16.0),
        st.integers(min_value=0, max_value=2**32),
    )
    def test_always_single_probe(self, n, d, lam, seed):
        rng = np.random.default_rng(seed)
        db = PackedPoints(random_points(rng, n, d), d)
        base = BaseParameters(n=n, d=d, gamma=4.0, c1=8.0)
        scheme = OneProbeNearNeighborScheme(db, base, lam=lam, seed=seed)
        q = random_points(rng, 1, d)[0]
        res = scheme.query(q)
        assert res.probes == 1
        assert res.rounds == 1
        assert scheme.guarantee_radius() <= 4.0 * max(lam, 1.0) * 2.0 + 1e-9
