"""Property-based rebuild-equivalence harness for mutable indexes.

Hypothesis drives random interleavings of ``insert`` / ``delete`` /
``query`` / ``compact`` against a *shadow model* — an independent
reimplementation of the mutation-layer contract — and checks, at every
query, that the real index's answer is **bitwise-identical** (answer id,
answer bits, probes, rounds, probes-per-round, scheme label) to the
composed oracle:

    fresh registry build of the current generation's base rows under
    ``RngTree(seed).child("generation", g)``
        →  tombstone-filter the static answer
        →  merge with an exact memtable scan by (true distance, id)

That proves query answers are a pure function of ``(base rows, seed,
generation, tombstones, memtable)`` — never of the mutation history.  At
every compaction the check collapses to the headline invariant: the
index answers bitwise-identically to a from-scratch
``ANNIndex.from_spec`` on the surviving rows.  Each episode also checks
``query_batch`` against the sequential loop and a save/load round-trip.

The configurations sweep every registered scheme, plain and boosted,
plus an auto-compaction-threshold config; the sharded interleaving test
lives in ``tests/service/test_mutable_sharded.py``.  Across configs the
fast (unmarked) suite generates 200+ episodes, satisfying the CI floor.
"""

from __future__ import annotations

import tempfile
from pathlib import Path
from typing import Dict, List, Tuple

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.api import IndexSpec
from repro.core.index import ANNIndex
from repro.core.mutable import generation_seed
from repro.hamming.distance import hamming_distance
from repro.hamming.kernels import (
    KNOWN_KERNELS,
    available_kernels,
    unavailable_kernels,
    use_kernel,
)
from repro.hamming.points import PackedPoints
from repro.hamming.sampling import flip_random_bits, random_points
from repro.registry import available_schemes

N0, D = 16, 64
POOL_SIZE = 32

#: Per-scheme parameter tweaks so a compaction can rebuild at any
#: live count >= 2 (data-dependent-lsh's default 8 parts cannot).
SCHEME_PARAMS: Dict[str, Dict[str, object]] = {
    "data-dependent-lsh": {"parts": 2},
    "algorithm1": {"rounds": 2},
}


def make_pool(seed: int, base: PackedPoints) -> np.ndarray:
    """Random + planted-near-base packed points the episodes draw from."""
    gen = np.random.default_rng(seed)
    rows = [random_points(gen, POOL_SIZE // 2, D)]
    for _ in range(POOL_SIZE - POOL_SIZE // 2):
        anchor = base.row(int(gen.integers(0, len(base))))
        rows.append(
            flip_random_bits(gen, anchor, int(gen.integers(0, 8)), D)[None, :]
        )
    return np.vstack(rows)


class ShadowModel:
    """Independent bookkeeping of the documented mutation semantics."""

    def __init__(self, base_words: np.ndarray, threshold: float):
        self.base = [row.copy() for row in base_words]  # generation base rows
        self.generation = 0
        self.tombstones: set = set()
        self.memtable: List[Tuple[np.ndarray, bool]] = []  # (row, deleted)
        self.threshold = threshold

    @property
    def n_static(self) -> int:
        return len(self.base)

    @property
    def id_space(self) -> int:
        return self.n_static + len(self.memtable)

    def live_memtable(self) -> List[Tuple[int, np.ndarray]]:
        return [
            (i, row) for i, (row, dead) in enumerate(self.memtable) if not dead
        ]

    @property
    def live_count(self) -> int:
        return self.n_static - len(self.tombstones) + len(self.live_memtable())

    @property
    def dirty_count(self) -> int:
        return len(self.tombstones) + len(self.memtable)

    def live_ids(self) -> List[int]:
        static = [i for i in range(self.n_static) if i not in self.tombstones]
        return static + [self.n_static + i for i, _ in self.live_memtable()]

    def insert(self, rows: np.ndarray) -> List[int]:
        ids = []
        for row in rows:
            self.memtable.append((row.copy(), False))
            ids.append(self.id_space - 1)
        if self._maybe_compact():
            total = self.n_static
            return list(range(total - rows.shape[0], total))
        return ids

    def delete(self, ids) -> None:
        for gid in ids:
            if gid < self.n_static:
                self.tombstones.add(gid)
            else:
                row, _ = self.memtable[gid - self.n_static]
                self.memtable[gid - self.n_static] = (row, True)
        self._maybe_compact()

    def compact(self) -> int:
        if self.dirty_count == 0:  # mirrors ANNIndex.compact's no-op
            return self.generation
        survivors = [
            self.base[i] for i in range(self.n_static) if i not in self.tombstones
        ] + [row for _, row in self.live_memtable()]
        self.base = survivors
        self.tombstones = set()
        self.memtable = []
        self.generation += 1
        return self.generation

    def _maybe_compact(self) -> bool:
        if self.dirty_count == 0 or self.live_count < 2:
            return False
        if self.dirty_count > self.threshold * max(1, self.n_static):
            self.compact()
            return True
        return False


class OracleCache:
    """One fresh static build per generation (the expensive part)."""

    def __init__(self, spec: IndexSpec):
        self.spec = spec
        self._built: Dict[int, ANNIndex] = {}

    def static_index(self, model: ShadowModel) -> ANNIndex:
        g = model.generation
        if g not in self._built:
            spec_g = self.spec.replace(
                seed=generation_seed(self.spec.seed, g)
            )
            self._built[g] = ANNIndex.from_spec(
                PackedPoints(np.vstack(model.base), D), spec_g
            )
        return self._built[g]


def expected_result(q: np.ndarray, model: ShadowModel, oracle: OracleCache):
    """The composed oracle: fresh static build + the documented merge."""
    static = oracle.static_index(model).query_packed(q)
    mem_live = model.live_memtable()
    ppr = list(static.probes_per_round)
    if mem_live:
        if ppr:
            ppr[0] += len(mem_live)
        else:
            ppr = [len(mem_live)]
    candidates = []
    if static.answer_index is not None and static.answer_index not in model.tombstones:
        candidates.append(
            (hamming_distance(q, static.answer_packed), int(static.answer_index))
        )
    for pos, row in mem_live:
        candidates.append((hamming_distance(q, row), model.n_static + pos))
    answer = min(candidates) if candidates else None
    return answer, ppr, static.scheme


def check_query(index: ANNIndex, q: np.ndarray, model: ShadowModel, oracle: OracleCache):
    answer, ppr, scheme_label = expected_result(q, model, oracle)
    result = index.query_packed(q)
    assert result.scheme == scheme_label
    assert result.probes == sum(ppr)
    assert result.probes_per_round == ppr
    assert result.rounds == sum(1 for p in ppr if p > 0)
    if answer is None:
        assert result.answer_index is None
        assert result.answer_packed is None
    else:
        dist, gid = answer
        assert result.answer_index == gid
        assert hamming_distance(q, result.answer_packed) == dist
        assert index.is_live(gid)
    dirty = model.tombstones or model.live_memtable()
    if dirty:
        assert result.meta["mutable"]["generation"] == model.generation


def run_episode(data, spec: IndexSpec, threshold: float):
    gen = np.random.default_rng(spec.seed)
    base = PackedPoints(random_points(gen, N0, D), D)
    pool = make_pool(spec.seed + 1, base)
    index = ANNIndex.from_spec(base, spec, compact_threshold=threshold)
    model = ShadowModel(base.words, threshold)
    oracle = OracleCache(index.spec)

    n_ops = data.draw(st.integers(min_value=3, max_value=10), label="n_ops")
    for step in range(n_ops):
        choices = ["insert", "query", "query"]
        live = model.live_ids()
        if live:
            choices.append("delete")
        if model.dirty_count and model.live_count >= 2:
            choices.append("compact")
        op = data.draw(st.sampled_from(choices), label=f"op{step}")
        if op == "insert":
            k = data.draw(st.integers(1, 3), label=f"ins{step}")
            picks = data.draw(
                st.lists(
                    st.integers(0, POOL_SIZE - 1), min_size=k, max_size=k
                ),
                label=f"rows{step}",
            )
            got = index.insert(pool[picks])
            assert got == model.insert(pool[picks])
        elif op == "delete":
            k = data.draw(st.integers(1, min(3, len(live))), label=f"del{step}")
            ids = data.draw(
                st.lists(
                    st.sampled_from(live), min_size=k, max_size=k, unique=True
                ),
                label=f"ids{step}",
            )
            assert index.delete(ids) == len(ids)
            model.delete(ids)
        elif op == "compact":
            assert index.compact() == model.compact()
        else:
            qi = data.draw(st.integers(0, POOL_SIZE - 1), label=f"q{step}")
            check_query(index, pool[qi], model, oracle)
        assert len(index) == model.live_count
        assert index.generation == model.generation

    # Structural postconditions + batch/sequential equivalence.
    assert index.live_ids().tolist() == model.live_ids()
    queries = pool[data.draw(
        st.lists(st.integers(0, POOL_SIZE - 1), min_size=2, max_size=4),
        label="final_queries",
    )]
    batch = index.query_batch(queries)
    for qi in range(queries.shape[0]):
        check_query(index, queries[qi], model, oracle)
        sequential = index.query_packed(queries[qi])
        assert batch[qi].answer_index == sequential.answer_index
        assert batch[qi].probes == sequential.probes
        assert batch[qi].probes_per_round == sequential.probes_per_round

    # Save/load preserves the mutated state bitwise.
    with tempfile.TemporaryDirectory(prefix="repro-mutation-prop-") as tmp:
        snapshot = Path(tmp) / "snap"
        index.save(snapshot)
        loaded = ANNIndex.load(snapshot)
        assert loaded.generation == model.generation
        assert len(loaded) == model.live_count
        check_query(loaded, pool[0], model, oracle)

    # The headline invariant, in the flesh: compact and compare against a
    # from-scratch build on the surviving rows.
    if model.live_count >= 2:
        g = index.compact()
        model.compact()
        assert g == model.generation
        fresh = ANNIndex.from_spec(
            PackedPoints(np.vstack(model.base), D),
            index.spec.replace(seed=generation_seed(index.spec.seed, g)),
        )
        for qi in range(min(3, queries.shape[0])):
            a = index.query_packed(queries[qi])
            b = fresh.query_packed(queries[qi])
            assert a.answer_index == b.answer_index
            assert a.probes == b.probes
            assert a.rounds == b.rounds
            assert a.probes_per_round == b.probes_per_round
            assert a.meta == b.meta


EPISODE_SETTINGS = settings(
    max_examples=20,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@pytest.mark.parametrize("scheme", available_schemes())
class TestPlainSchemes:
    @EPISODE_SETTINGS
    @given(data=st.data())
    def test_interleavings_match_rebuild_oracle(self, scheme, data):
        spec = IndexSpec(
            scheme=scheme, params=SCHEME_PARAMS.get(scheme, {}), seed=101
        )
        run_episode(data, spec, threshold=float("inf"))


@pytest.mark.parametrize("scheme", ["algorithm1", "lsh"])
class TestBoostedSchemes:
    @EPISODE_SETTINGS
    @given(data=st.data())
    def test_interleavings_match_rebuild_oracle(self, scheme, data):
        spec = IndexSpec(
            scheme=scheme, params=SCHEME_PARAMS.get(scheme, {}), seed=202, boost=2
        )
        run_episode(data, spec, threshold=float("inf"))


class TestAutoCompaction:
    """Same harness with the amortized trigger armed: compactions fire
    inside insert/delete, and the shadow model must predict every one."""

    @EPISODE_SETTINGS
    @given(data=st.data())
    def test_amortized_trigger_preserves_the_oracle(self, data):
        spec = IndexSpec(scheme="algorithm1", params={"rounds": 2}, seed=303)
        run_episode(data, spec, threshold=0.3)


def _kernel_cases():
    cases = []
    for name in KNOWN_KERNELS:
        if name in available_kernels():
            cases.append(pytest.param(name))
        else:
            reason = unavailable_kernels().get(name, "not registered")
            cases.append(
                pytest.param(name, marks=pytest.mark.skip(reason=f"{name}: {reason}"))
            )
    return cases


@pytest.mark.parametrize("kernel", _kernel_cases())
class TestKernelBackends:
    """Full mutation episodes under each registered kernel backend.

    The oracle's expectations — probe/round accounting from the shadow
    model, answers from from-scratch rebuild indexes — are pure integers
    with no backend dependence, so an episode passing under every kernel
    *is* the bitwise cross-backend identity the seam promises (answers
    AND accounting), transitively through the oracle.  Compiled-backend
    cases self-skip with the unavailability reason when the dependency
    is absent.
    """

    @EPISODE_SETTINGS
    @given(data=st.data())
    def test_episodes_identical_under_kernel(self, kernel, data):
        with use_kernel(kernel):
            spec = IndexSpec(scheme="algorithm1", params={"rounds": 2}, seed=404)
            run_episode(data, spec, threshold=0.5)

    @EPISODE_SETTINGS
    @given(data=st.data())
    def test_boosted_episodes_identical_under_kernel(self, kernel, data):
        with use_kernel(kernel):
            spec = IndexSpec(
                scheme="lsh", params=SCHEME_PARAMS.get("lsh", {}), seed=505, boost=2
            )
            run_episode(data, spec, threshold=float("inf"))
