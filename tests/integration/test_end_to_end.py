"""Cross-module integration: full pipelines over registered workloads."""

import numpy as np
import pytest

from repro import ANNIndex, IndexSpec, build_scheme
from repro.analysis.tradeoff import evaluate_scheme, sweep_algorithm1
from repro.workloads.spec import WorkloadSpec, make_workload


@pytest.fixture(scope="module")
def planted():
    return make_workload(
        "planted", WorkloadSpec(n=200, d=512, num_queries=16, seed=3), max_flips=30
    )


class TestFullPipeline:
    @pytest.mark.parametrize("workload_name", ["uniform", "planted", "clustered"])
    def test_index_over_workloads(self, workload_name):
        wl = make_workload(workload_name, WorkloadSpec(n=100, d=256, num_queries=8, seed=1))
        index = ANNIndex.from_spec(
            wl.database,
            IndexSpec(scheme="algorithm1", params={"rounds": 2, "c1": 8.0}, seed=0),
        )
        summary = evaluate_scheme(index.scheme, wl, gamma=4.0)
        assert summary.answered_rate >= 0.75
        assert summary.max_rounds <= 2

    def test_tradeoff_monotonicity(self, planted):
        """The headline figure: probes drop monotonically (weakly) in k on
        average, and every k respects its round budget."""
        summaries = sweep_algorithm1(planted, gamma=4.0, ks=[1, 2, 4], c1=8.0)
        probes = [s.mean_probes for s in summaries]
        assert probes[0] >= probes[1] >= probes[2] * 0.9
        for s, k in zip(summaries, (1, 2, 4)):
            assert s.max_rounds <= k

    def test_all_schemes_agree_on_easy_instance(self, planted):
        """On a query whose NN is very close, all schemes find a point within γ."""
        db = planted.database
        rng = np.random.default_rng(0)
        from repro.hamming.sampling import flip_random_bits

        q = flip_random_bits(rng, db.row(0), 2, db.d)
        schemes = [
            build_scheme(db, IndexSpec(scheme=name, params=params, seed=0))
            for name, params in [
                ("algorithm1", {"rounds": 2, "c1": 8.0}),
                ("fully-adaptive", {"c1": 8.0}),
                ("linear-scan", {}),
            ]
        ]
        for scheme in schemes:
            res = scheme.query(q)
            assert res.answered
            assert res.distance_to(q) <= 4.0 * max(1, int(db.distances_from(q).min()))

    def test_boosting_integration(self, planted):
        index = ANNIndex.from_spec(
            planted.database,
            IndexSpec(scheme="algorithm1", params={"rounds": 2}, seed=1, boost=3),
        )
        summary = evaluate_scheme(index.scheme, planted, gamma=4.0)
        assert summary.success_rate >= 0.75

    def test_size_reports_polynomial_exponent(self, planted):
        """n^{O(1)}: the cell-count exponent stays bounded."""
        index = ANNIndex.from_spec(
            planted.database,
            IndexSpec(scheme="algorithm1", params={"rounds": 3, "c1": 8.0}, seed=0),
        )
        report = index.size_report()
        assert report.cells_log_n(len(planted.database)) < 64
