"""End-to-end validation of the `theory` parameter profile.

The theory profile sizes sketch rows by the Hoeffding bound with the
paper's union-bound structure (Definition 7's ``c₁ > 64/(1−e^{(1−α)/2})²``
shape).  It produces much wider sketches than the empirical profile; this
test confirms (a) the sizing formulas kick in, and (b) the resulting
scheme actually delivers the Lemma 8 guarantee with margin at small scale.
"""

import numpy as np
import pytest

from repro.analysis.sandwich import verify_lemma8
from repro.core.algorithm1 import SimpleKRoundScheme
from repro.core.params import Algorithm1Params, BaseParameters
from repro.hamming.points import PackedPoints
from repro.hamming.sampling import flip_random_bits, random_points
from repro.sketch.family import SketchFamily
from repro.utils.rng import RngTree


@pytest.fixture(scope="module")
def theory_setup():
    rng = np.random.default_rng(40)
    n, d = 60, 256
    db = PackedPoints(random_points(rng, n, d), d)
    base = BaseParameters(n=n, d=d, gamma=4.0, profile="theory")
    return rng, db, base


class TestTheoryProfile:
    def test_rows_exceed_hoeffding_knee(self, theory_setup):
        _, _, base = theory_setup
        # Empirically the knee at d=1024 sits near ~256 rows (E4); the
        # theory profile with union bound must exceed it.
        assert base.accurate_rows > 256

    def test_sandwich_holds_with_margin(self, theory_setup):
        rng, db, base = theory_setup
        fam = SketchFamily(
            db.d, base.alpha, base.levels, base.accurate_rows, rng_tree=RngTree(41)
        )
        queries = np.vstack([
            flip_random_bits(rng, db.row(int(rng.integers(0, len(db)))), int(rng.integers(0, 16)), db.d)
            for _ in range(6)
        ])
        report = verify_lemma8(db, fam, queries)
        assert report.simultaneous_rate >= 0.75

    def test_scheme_runs_and_succeeds(self, theory_setup):
        rng, db, base = theory_setup
        scheme = SimpleKRoundScheme(db, Algorithm1Params(base, k=2), seed=42)
        ok = 0
        for _ in range(8):
            q = flip_random_bits(rng, db.row(int(rng.integers(0, len(db)))), 8, db.d)
            ratio = scheme.query(q).ratio(db, q)
            ok += ratio is not None and ratio <= 4.0
        assert ok >= 6

    def test_coarse_rows_scale_inverse_s(self, theory_setup):
        _, _, base = theory_setup
        assert base.coarse_rows(4.0) < base.coarse_rows(1.5)
