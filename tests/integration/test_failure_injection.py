"""Failure injection and edge-shape robustness.

The schemes are *randomized with bounded error*: when Lemma 8's
assumptions fail (deliberately provoked here with starved sketches), the
contract is graceful degradation — a possibly-wrong or missing answer with
honest accounting — never an exception or a corrupted trace.
"""

import numpy as np
import pytest

from repro.core.algorithm1 import SimpleKRoundScheme
from repro.core.algorithm2 import LargeKScheme
from repro.core.params import Algorithm1Params, Algorithm2Params, BaseParameters
from repro.hamming.points import PackedPoints
from repro.hamming.sampling import flip_random_bits, random_points


def _db(n, d, seed=0):
    return PackedPoints(random_points(np.random.default_rng(seed), n, d), d)


class TestStarvedSketches:
    """c1 tiny → sandwich fails often; behaviour must stay well-formed."""

    def test_no_exceptions_and_honest_accounting(self):
        db = _db(80, 256, seed=1)
        base = BaseParameters(n=80, d=256, gamma=4.0, c1=0.6)  # ~4 rows
        scheme = SimpleKRoundScheme(db, Algorithm1Params(base, k=3), seed=2,
                                    check_invariants=True)
        rng = np.random.default_rng(3)
        for _ in range(10):
            q = flip_random_bits(rng, db.row(int(rng.integers(0, 80))), 20, 256)
            res = scheme.query(q)
            assert res.probes <= scheme.params.probe_budget
            assert res.rounds <= 3
            if res.answered:
                assert (res.answer_packed == db.row(res.answer_index)).all()

    def test_starved_success_below_wide_success(self):
        db = _db(120, 512, seed=4)
        rng = np.random.default_rng(5)
        queries = [
            flip_random_bits(rng, db.row(int(rng.integers(0, 120))), 30, 512)
            for _ in range(14)
        ]

        def success(c1):
            base = BaseParameters(n=120, d=512, gamma=4.0, c1=c1)
            scheme = SimpleKRoundScheme(db, Algorithm1Params(base, k=3), seed=6)
            ok = 0
            for q in queries:
                ratio = scheme.query(q).ratio(db, q)
                ok += ratio is not None and ratio <= 4.0
            return ok

        assert success(0.5) <= success(12.0)


class TestDegenerateShapes:
    def test_two_point_database(self):
        db = _db(2, 128, seed=7)
        base = BaseParameters(n=2, d=128, gamma=4.0, c1=8.0)
        scheme = SimpleKRoundScheme(db, Algorithm1Params(base, k=2), seed=0)
        res = scheme.query(db.row(1))
        assert res.answer_index == 1

    def test_dimension_not_multiple_of_64(self):
        db = _db(40, 100, seed=8)
        base = BaseParameters(n=40, d=100, gamma=4.0, c1=8.0)
        scheme = SimpleKRoundScheme(db, Algorithm1Params(base, k=2), seed=0)
        rng = np.random.default_rng(9)
        q = flip_random_bits(rng, db.row(3), 5, 100)
        res = scheme.query(q)
        assert res.answered

    def test_duplicate_database_points(self):
        rng = np.random.default_rng(10)
        row = random_points(rng, 1, 128)
        words = np.vstack([row] * 6 + [random_points(rng, 10, 128)])
        db = PackedPoints(words, 128)
        base = BaseParameters(n=16, d=128, gamma=4.0, c1=8.0)
        scheme = SimpleKRoundScheme(db, Algorithm1Params(base, k=2), seed=0)
        res = scheme.query(row[0])
        assert res.answered
        assert res.distance_to(row[0]) == 0

    def test_complement_query(self):
        """Query at maximal distance from a db point: still a valid answer."""
        db = _db(50, 128, seed=11)
        base = BaseParameters(n=50, d=128, gamma=4.0, c1=8.0)
        scheme = SimpleKRoundScheme(db, Algorithm1Params(base, k=3), seed=0)
        q = db.row(0) ^ np.uint64(0xFFFFFFFFFFFFFFFF)
        res = scheme.query(q)
        if res.answered:
            assert 0 <= res.answer_index < 50

    def test_algorithm2_small_levels_graceful(self):
        """When the completion cut covers all levels Algorithm 2 must fall
        straight through to a single completion round."""
        db = _db(60, 128, seed=12)
        base = BaseParameters(n=60, d=128, gamma=4.0, c1=8.0, c2=8.0)
        scheme = LargeKScheme(db, Algorithm2Params(base, k=16), seed=0)
        rng = np.random.default_rng(13)
        q = flip_random_bits(rng, db.row(5), 4, 128)
        res = scheme.query(q)
        assert res.meta.get("phases", 0) == 0 or res.meta["path"].startswith("degenerate")
        assert res.rounds <= 2


class TestAdversarialQueries:
    def test_shell_boundary_queries(self):
        """Queries planted exactly at level radii αⁱ — the threshold
        boundaries where the membership tests are least separated."""
        db = _db(100, 512, seed=14)
        base = BaseParameters(n=100, d=512, gamma=4.0, c1=10.0)
        scheme = SimpleKRoundScheme(db, Algorithm1Params(base, k=3), seed=1)
        rng = np.random.default_rng(15)
        ok = total = 0
        for i in range(1, 8):
            q = flip_random_bits(rng, db.row(i), 2**i, 512)
            res = scheme.query(q)
            total += 1
            ratio = res.ratio(db, q)
            ok += ratio is not None and ratio <= 4.0
        assert ok / total >= 0.7
