"""Unit semantics of the mutation layer (insert / delete / compact).

The property-based interleaving harness lives in
``tests/integration/test_mutation_properties.py``; these tests pin the
concrete contracts one at a time: id assignment, tombstone filtering,
memtable merge accounting, the amortized compaction trigger, and the
headline rebuild-equivalence invariant in its example form.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import IndexSpec
from repro.core.index import ANNIndex
from repro.core.mutable import (
    DEFAULT_COMPACT_THRESHOLD,
    Memtable,
    MutationState,
    generation_seed,
)
from repro.hamming.points import PackedPoints
from repro.hamming.sampling import random_points
from repro.registry import build_scheme
from repro.utils.rng import RngTree

N, D = 24, 64
SPEC = IndexSpec(scheme="algorithm1", params={"rounds": 2}, seed=9)


@pytest.fixture()
def db():
    gen = np.random.default_rng(42)
    return PackedPoints(random_points(gen, N, D), D)


@pytest.fixture()
def index(db):
    # Auto-compaction off: these tests control compaction explicitly.
    return ANNIndex.from_spec(db, SPEC, compact_threshold=float("inf"))


def fresh_points(count, seed=7):
    gen = np.random.default_rng(seed)
    return random_points(gen, count, D)


def assert_bitwise_equal(a, b):
    assert a.answer_index == b.answer_index
    assert a.probes == b.probes
    assert a.rounds == b.rounds
    assert a.probes_per_round == b.probes_per_round
    assert a.scheme == b.scheme
    if a.answer_packed is None:
        assert b.answer_packed is None
    else:
        assert np.array_equal(a.answer_packed, b.answer_packed)


class TestGenerationSeed:
    def test_generation_zero_is_the_root_seed(self):
        assert generation_seed(123, 0) == 123

    def test_later_generations_derive_the_rng_tree_child(self):
        for g in (1, 2, 5):
            expected = RngTree(123).child("generation", g).root_entropy
            assert generation_seed(123, g) == expected

    def test_distinct_across_generations(self):
        seeds = {generation_seed(123, g) for g in range(6)}
        assert len(seeds) == 6

    def test_requires_concrete_seed(self):
        with pytest.raises(ValueError, match="concrete root seed"):
            generation_seed(None, 1)


class TestInsert:
    def test_ids_are_appended_after_static_rows(self, index):
        ids = index.insert(fresh_points(3))
        assert ids == [N, N + 1, N + 2]
        assert len(index) == N + 3
        assert index.id_space == N + 3

    def test_inserted_point_is_exactly_searchable(self, index):
        point = fresh_points(1)
        [gid] = index.insert(point)
        result = index.query_packed(point[0])
        assert result.answer_index == gid
        assert np.array_equal(result.answer_packed, point[0])
        assert result.meta["mutable"]["source"] == "memtable"

    def test_accepts_bits_packed_and_packedpoints(self, index):
        bits = np.zeros((1, D), dtype=np.uint8)
        packed = fresh_points(1)
        pts = PackedPoints(fresh_points(1, seed=8), D)
        ids = index.insert(bits) + index.insert(packed) + index.insert(pts)
        assert ids == [N, N + 1, N + 2]

    def test_dimension_mismatch_rejected(self, index):
        with pytest.raises(ValueError, match="bit rows"):
            index.insert(np.zeros((1, D + 1), dtype=np.uint8))
        with pytest.raises(ValueError, match="packed rows"):
            index.insert(np.zeros((1, index.database.word_count + 1), dtype=np.uint64))

    def test_empty_insert_is_a_noop(self, index):
        assert index.insert(np.zeros((0, D), dtype=np.uint8)) == []
        assert len(index) == N

    def test_memtable_scan_charges_one_parallel_round(self, index, db):
        q = fresh_points(1, seed=11)[0]
        before = index.query_packed(q)
        index.insert(fresh_points(2))
        after = index.query_packed(q)
        # Two live memtable rows: +2 probes folded into round 1; round
        # count unchanged (the scan runs in parallel with round 1).
        assert after.probes == before.probes + 2
        assert after.rounds == before.rounds
        assert after.probes_per_round[0] == before.probes_per_round[0] + 2
        assert after.probes_per_round[1:] == before.probes_per_round[1:]


class TestDelete:
    def test_deleted_row_never_surfaces(self, index, db):
        q = fresh_points(1, seed=13)[0]
        victim = index.query_packed(q).answer_index
        index.delete([victim])
        assert index.query_packed(q).answer_index != victim
        assert not index.is_live(victim)
        assert len(index) == N - 1

    def test_querying_the_deleted_point_itself(self, index, db):
        # Query the deleted row's exact bits: the answer must be a
        # different (live) row or None, never the tombstoned id.
        victim = 5
        index.delete([victim])
        result = index.query_packed(db.row(victim))
        assert result.answer_index != victim

    def test_delete_memtable_entry_kills_in_place(self, index):
        ids = index.insert(fresh_points(3))
        index.delete([ids[1]])
        assert not index.is_live(ids[1])
        assert index.is_live(ids[0]) and index.is_live(ids[2])
        # Later memtable ids never shift.
        assert index.id_space == N + 3

    def test_delete_is_atomic_on_bad_ids(self, index):
        with pytest.raises(ValueError, match="out of range"):
            index.delete([0, N + 99])
        assert index.is_live(0)
        index.delete([0])
        with pytest.raises(ValueError, match="already deleted"):
            index.delete([1, 0])
        assert index.is_live(1)
        with pytest.raises(ValueError, match="duplicate"):
            index.delete([2, 2])
        assert index.is_live(2)

    def test_empty_delete_is_a_noop(self, index):
        assert index.delete([]) == 0
        assert len(index) == N

    def test_non_integer_ids_rejected_not_truncated(self, index):
        # int64-casting [2.7] would silently tombstone row 2.
        with pytest.raises(ValueError, match="must be integers"):
            index.delete([2.7])
        with pytest.raises(ValueError, match="must be integers"):
            index.delete(np.array([1.0, 2.0]))
        assert index.is_live(2) and len(index) == N

    def test_tie_break_prefers_smallest_global_id(self, index, db):
        # Insert an exact duplicate of a static row; querying those bits
        # ties on distance 0, and the static (smaller) id must win.
        dup = db.row(3).copy()
        index.insert(dup[None, :])
        result = index.query_packed(dup)
        if result.answer_index is not None and result.distance_to(dup) == 0:
            assert result.answer_index < N


class TestCompaction:
    def test_compact_is_bitwise_equal_to_fresh_build(self, index, db):
        queries = fresh_points(6, seed=17)
        extra = fresh_points(3, seed=18)
        index.insert(extra)
        index.delete([2, 7, N + 1])
        g = index.compact()
        assert g == 1
        survivor_rows = [db.row(i) for i in range(N) if i not in (2, 7)]
        survivor_rows += [extra[0], extra[2]]
        oracle = ANNIndex.from_spec(
            PackedPoints(np.vstack(survivor_rows), D),
            SPEC.replace(seed=generation_seed(SPEC.seed, g)),
        )
        for i in range(queries.shape[0]):
            assert_bitwise_equal(
                index.query_packed(queries[i]), oracle.query_packed(queries[i])
            )
        for a, b in zip(index.query_batch(queries), oracle.query_batch(queries)):
            assert_bitwise_equal(a, b)

    def test_compact_renumbers_ids(self, index):
        index.insert(fresh_points(2))
        index.delete([0, N])
        index.compact()
        assert list(index.live_ids()) == list(range(N))  # 24 - 1 + 1 live
        assert index.id_space == len(index)
        assert index.generation == 1

    def test_compact_on_clean_index_is_noop(self, index):
        scheme = index.scheme
        assert index.compact() == 0
        assert index.scheme is scheme

    def test_compact_empty_index_raises(self, db):
        index = ANNIndex.from_spec(
            db.take(range(2)),
            IndexSpec(scheme="linear-scan", seed=1),
            compact_threshold=float("inf"),
        )
        index.delete([0, 1])
        assert len(index) == 0
        assert index.query_packed(db.row(0)).answer_index is None
        with pytest.raises(ValueError, match="no live rows"):
            index.compact()

    def test_hand_built_scheme_cannot_compact(self, db):
        scheme = build_scheme(db, SPEC)
        index = ANNIndex(db, scheme)  # no spec
        index.delete([0])
        with pytest.raises(RuntimeError, match="no spec"):
            index.compact()
        # ...but the tombstone still filters results.
        assert index.query_packed(db.row(0)).answer_index != 0

    def test_auto_trigger_fires_at_threshold(self, db):
        index = ANNIndex.from_spec(db, SPEC, compact_threshold=0.25)
        # 6 dirty rows on 24 static: 6 > 0.25*24 is False at exactly 6,
        # true at 7.
        index.delete(list(range(6)))
        assert index.generation == 0
        index.delete([6])
        assert index.generation == 1
        assert index.mutation.dirty_count == 0
        assert len(index) == N - 7

    def test_auto_trigger_counts_memtable_entries(self, db):
        index = ANNIndex.from_spec(db, SPEC, compact_threshold=0.25)
        index.insert(fresh_points(6))
        assert index.generation == 0
        index.insert(fresh_points(1, seed=8))
        assert index.generation == 1
        assert len(index) == N + 7

    def test_auto_trigger_defers_below_two_live_rows(self):
        gen = np.random.default_rng(1)
        db = PackedPoints(random_points(gen, 2, D), D)
        index = ANNIndex.from_spec(
            db, IndexSpec(scheme="linear-scan", seed=1), compact_threshold=0.25
        )
        index.delete([0])
        assert index.generation == 0  # live=1: buffered, not compacted
        index.insert(random_points(gen, 2, D))
        # Rows are back: the next mutation's trigger can fire.
        assert index.generation == 1

    def test_infinite_threshold_never_auto_compacts(self, index):
        index.delete(list(range(20)))
        index.insert(fresh_points(10))
        assert index.generation == 0
        assert index.mutation.dirty_count == 30


class TestBatchConsistency:
    def test_query_batch_equals_sequential_loop_when_dirty(self, index):
        index.insert(fresh_points(4))
        index.delete([1, 3, N + 2])
        queries = fresh_points(8, seed=21)
        sequential = [index.query_packed(queries[i]) for i in range(8)]
        for batch in (index.query_batch(queries), index.query_batch(queries, prefetch=False)):
            for a, b in zip(batch, sequential):
                assert_bitwise_equal(a, b)
                assert a.meta["mutable"] == b.meta["mutable"]

    def test_last_batch_stats_reconcile_with_results(self, index):
        index.insert(fresh_points(3))
        index.delete([0])
        queries = fresh_points(5, seed=22)
        results = index.query_batch(queries)
        stats = index.last_batch_stats
        assert stats.total_probes == sum(r.probes for r in results)
        assert stats.total_rounds == sum(r.rounds for r in results)
        assert stats.batch_size == 5


class TestMemtableAndState:
    def test_memtable_live_entries_order(self):
        mem = Memtable(2)
        rows = [np.array([i, i], dtype=np.uint64) for i in range(4)]
        for row in rows:
            mem.append(row)
        mem.delete(1)
        positions, words = mem.live_entries()
        assert positions.tolist() == [0, 2, 3]
        assert words.shape == (3, 2)
        assert mem.live_count == 3 and len(mem) == 4

    def test_memtable_rejects_wrong_word_count(self):
        mem = Memtable(2)
        with pytest.raises(ValueError, match="words"):
            mem.append(np.array([1, 2, 3], dtype=np.uint64))

    def test_state_restore_round_trips(self):
        state = MutationState(4, 1)
        state.insert_rows(np.arange(3, dtype=np.uint64)[:, None])
        state.delete_ids([1, 5])
        payload = state.export_arrays()
        restored = MutationState(4, 1, generation=state.generation)
        restored.restore_arrays(
            payload["tombstones"], payload["memtable_words"], payload["memtable_deleted"]
        )
        assert restored.tombstone_count == 1
        assert restored.live_count == state.live_count
        assert restored.live_ids().tolist() == state.live_ids().tolist()

    def test_state_restore_validates_shapes(self):
        state = MutationState(4, 1)
        with pytest.raises(ValueError, match="tombstone"):
            state.restore_arrays(
                np.zeros(3, dtype=np.uint8),
                np.empty((0, 1), dtype=np.uint64),
                np.zeros(0, dtype=np.uint8),
            )
        with pytest.raises(ValueError, match="memtable words"):
            state.restore_arrays(
                np.zeros(4, dtype=np.uint8),
                np.empty((1, 2), dtype=np.uint64),
                np.zeros(1, dtype=np.uint8),
            )
        with pytest.raises(ValueError, match="deletion flags"):
            state.restore_arrays(
                np.zeros(4, dtype=np.uint8),
                np.empty((2, 1), dtype=np.uint64),
                np.zeros(1, dtype=np.uint8),
            )

    def test_threshold_validation(self):
        with pytest.raises(ValueError, match="compact_threshold"):
            MutationState(4, 1, compact_threshold=0.0)
        assert MutationState(4, 1).compact_threshold == DEFAULT_COMPACT_THRESHOLD
