"""The δ(β,α) machinery: the paper-formula identity and threshold shapes."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.delta import (
    bernoulli_rate,
    collision_rate,
    delta_gap,
    level_radius,
    midpoint_threshold,
    sandwich_margin_rows,
)


class TestCollisionRate:
    def test_zero_distance(self):
        assert collision_rate(0.25, 0) == 0.0

    def test_limit_half(self):
        assert collision_rate(0.25, 10_000) == pytest.approx(0.5, abs=1e-6)

    def test_monotone_in_distance(self):
        rates = [collision_rate(0.1, D) for D in range(0, 50)]
        assert all(b >= a for a, b in zip(rates, rates[1:]))

    def test_rejects_bad_p(self):
        with pytest.raises(ValueError):
            collision_rate(0.6, 1)

    def test_rejects_negative_distance(self):
        with pytest.raises(ValueError):
            collision_rate(0.1, -1)


class TestDeltaIdentity:
    @given(
        st.floats(min_value=1.0, max_value=10_000.0, allow_nan=False),
        st.floats(min_value=1.01, max_value=2.0, allow_nan=False),
    )
    def test_paper_delta_equals_rate_gap(self, beta, alpha):
        """δ(β,α) == μ(1/(4β), αβ) − μ(1/(4β), β) — the identity that
        justifies reading the paper's δ as a separation gap (DESIGN.md)."""
        p = 1.0 / (4.0 * beta)
        gap = collision_rate(p, alpha * beta) - collision_rate(p, beta)
        assert delta_gap(beta, alpha) == pytest.approx(gap, rel=1e-9, abs=1e-12)

    def test_positive(self):
        assert delta_gap(4.0, 1.5) > 0

    def test_grows_with_alpha(self):
        assert delta_gap(4.0, 1.9) > delta_gap(4.0, 1.1)

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            delta_gap(0.5, 1.5)
        with pytest.raises(ValueError):
            delta_gap(2.0, 1.0)

    def test_converges_for_large_beta(self):
        """δ(β, α) → ½e^{-1/2}(1 − e^{-(α−1)/2}) as β → ∞."""
        alpha = 2.0
        limit = 0.5 * math.exp(-0.5) * (1.0 - math.exp(-(alpha - 1.0) / 2.0))
        assert delta_gap(1e6, alpha) == pytest.approx(limit, rel=1e-4)


class TestThresholds:
    def test_midpoint_between_rates(self):
        alpha, i = 2.0, 3
        p = bernoulli_rate(alpha, i)
        near = collision_rate(p, level_radius(alpha, i))
        far = collision_rate(p, level_radius(alpha, i + 1))
        theta = midpoint_threshold(alpha, i)
        assert near < theta < far

    def test_bernoulli_rate_level_zero(self):
        assert bernoulli_rate(2.0, 0) == 0.25

    def test_level_radius(self):
        assert level_radius(1.5, 2) == pytest.approx(2.25)
        with pytest.raises(ValueError):
            level_radius(1.5, -1)


class TestMarginRows:
    def test_smaller_failure_needs_more_rows(self):
        assert sandwich_margin_rows(2.0, 0, 0.001) > sandwich_margin_rows(2.0, 0, 0.1)

    def test_rejects_bad_probability(self):
        with pytest.raises(ValueError):
            sandwich_margin_rows(2.0, 0, 0.0)

    def test_hoeffding_form(self):
        delta = delta_gap(1.0, 2.0)
        expected = math.ceil(2.0 * math.log(2.0 / 0.01) / delta**2)
        assert sandwich_margin_rows(2.0, 0, 0.01) == expected
