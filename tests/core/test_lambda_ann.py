"""The 1-probe λ-ANNS scheme (Theorem 11)."""

import numpy as np
import pytest

from repro.core.lambda_ann import OneProbeNearNeighborScheme
from repro.core.params import BaseParameters
from repro.hamming.sampling import flip_random_bits, random_points


def _scheme(db, lam, c1=10.0, seed=0):
    base = BaseParameters(n=len(db), d=db.d, gamma=4.0, c1=c1)
    return OneProbeNearNeighborScheme(db, base, lam=lam, seed=seed)


class TestOneProbe:
    def test_exactly_one_probe_one_round(self, medium_db, medium_queries):
        scheme = _scheme(medium_db, lam=16.0)
        for qi in range(8):
            res = scheme.query(medium_queries[qi])
            assert res.probes == 1
            assert res.rounds == 1

    def test_level_choice(self, medium_db):
        scheme = _scheme(medium_db, lam=16.0)
        # i = ceil(log_2 16) = 4 for alpha = 2.
        assert scheme.level == 4
        assert scheme.guarantee_radius() == pytest.approx(32.0)

    def test_lambda_below_one_uses_level_zero(self, medium_db):
        assert _scheme(medium_db, lam=0.5).level == 0

    def test_rejects_nonpositive_lambda(self, medium_db):
        base = BaseParameters(n=len(medium_db), d=medium_db.d)
        with pytest.raises(ValueError):
            OneProbeNearNeighborScheme(medium_db, base, lam=0.0)


class TestDecisionQuality:
    def test_planted_near_mostly_yes(self, medium_db):
        rng = np.random.default_rng(3)
        scheme = _scheme(medium_db, lam=16.0)
        yes = 0
        for _ in range(20):
            q = flip_random_bits(rng, medium_db.row(int(rng.integers(0, len(medium_db)))), 8, medium_db.d)
            res = scheme.query(q)
            if res.answered:
                yes += 1
                assert res.distance_to(q) <= 4.0 * 16.0
        assert yes >= 15

    def test_far_mostly_no(self, medium_db):
        rng = np.random.default_rng(4)
        scheme = _scheme(medium_db, lam=4.0)
        correct = 0
        for _ in range(20):
            q = random_points(rng, 1, medium_db.d)[0]  # ~d/2 from everything
            res = scheme.query(q)
            if OneProbeNearNeighborScheme.decision_correct(medium_db, q, 4.0, 4.0, res):
                correct += 1
        assert correct >= 15

    def test_promise_gap_accepts_either(self, medium_db):
        """Inputs with nearest distance in (λ, γλ] are unconstrained."""
        rng = np.random.default_rng(5)
        scheme = _scheme(medium_db, lam=8.0)
        q = flip_random_bits(rng, medium_db.row(0), 20, medium_db.d)  # 8 < 20 ≤ 32
        res = scheme.query(q)
        dmin = int(medium_db.distances_from(q).min())
        if 8.0 < dmin <= 32.0 and not res.answered:
            assert OneProbeNearNeighborScheme.decision_correct(medium_db, q, 8.0, 4.0, res)


class TestSizing:
    def test_single_level_table(self, medium_db):
        scheme = _scheme(medium_db, lam=16.0)
        report = scheme.size_report()
        assert len(report.table_names) == 1
        assert report.word_bits == 1 + medium_db.d

    def test_nonadaptive_k(self, medium_db):
        assert _scheme(medium_db, lam=4.0).k == 1
