"""Cross-process seed determinism: same spec + seed ⇒ same index, bitwise.

Every scheme derives its randomness from the spec's seed through
:class:`~repro.utils.rng.RngTree`, whose path hashing is a hand-rolled
FNV-1a precisely because Python's ``hash()`` is salted per process.
These tests guard that property (and the PR-3 draw+rewind fix in
``RngTree(Generator)``) by building the same spec in *separate
subprocesses* — fresh hash salts, fresh interpreter state — and
comparing content digests of the database, the exported scheme arrays,
and the first query answers.
"""

from __future__ import annotations

import hashlib
import json
import subprocess
import sys
from pathlib import Path

import pytest

SRC = Path(__file__).resolve().parents[2] / "src"

#: The digest worker: builds a spec'd index (with a compaction, so the
#: generation-seed derivation is covered too) and prints content hashes.
WORKER = r"""
import hashlib, json, sys
import numpy as np
from repro.api import IndexSpec
from repro.core.index import ANNIndex
from repro.hamming.points import PackedPoints
from repro.hamming.sampling import random_points

scheme = sys.argv[1]
gen = np.random.default_rng(2024)
db = PackedPoints(random_points(gen, 48, 128), 128)
spec = IndexSpec(scheme=scheme, seed=12345)
index = ANNIndex.from_spec(db, spec, compact_threshold=float("inf"))
index.delete([1, 3])
index.insert(random_points(gen, 2, 128))
index.compact()
index.prepare()

digest = hashlib.sha256()
digest.update(index.database.words.tobytes())
arrays = index.scheme.export_arrays()
for key in sorted(arrays):
    digest.update(key.encode())
    digest.update(np.ascontiguousarray(arrays[key]).tobytes())
queries = random_points(np.random.default_rng(99), 8, 128)
answers = [
    (r.answer_index, r.probes, r.rounds) for r in index.query_batch(queries)
]
print(json.dumps({"digest": digest.hexdigest(), "answers": answers,
                  "generation": index.generation}))
"""


def run_worker(scheme: str) -> dict:
    result = subprocess.run(
        [sys.executable, "-c", WORKER, scheme],
        capture_output=True,
        text=True,
        timeout=120,
        env={"PYTHONPATH": str(SRC), "PYTHONHASHSEED": "random", "PATH": "/usr/bin:/bin"},
    )
    assert result.returncode == 0, result.stderr
    return json.loads(result.stdout)


@pytest.mark.slow
@pytest.mark.parametrize("scheme", ["algorithm1", "lsh"])
def test_two_subprocesses_build_bitwise_identical_indexes(scheme):
    first = run_worker(scheme)
    second = run_worker(scheme)
    assert first == second
    assert first["generation"] == 1  # the compaction actually happened


@pytest.mark.slow
def test_subprocess_matches_in_process_build():
    import numpy as np

    from repro.api import IndexSpec
    from repro.core.index import ANNIndex
    from repro.hamming.points import PackedPoints
    from repro.hamming.sampling import random_points

    remote = run_worker("algorithm1")
    gen = np.random.default_rng(2024)
    db = PackedPoints(random_points(gen, 48, 128), 128)
    index = ANNIndex.from_spec(
        db, IndexSpec(scheme="algorithm1", seed=12345), compact_threshold=float("inf")
    )
    index.delete([1, 3])
    index.insert(random_points(gen, 2, 128))
    index.compact()
    index.prepare()
    digest = hashlib.sha256()
    digest.update(index.database.words.tobytes())
    arrays = index.scheme.export_arrays()
    for key in sorted(arrays):
        digest.update(key.encode())
        digest.update(np.ascontiguousarray(arrays[key]).tobytes())
    assert digest.hexdigest() == remote["digest"]
    queries = random_points(np.random.default_rng(99), 8, 128)
    answers = [
        [r.answer_index, r.probes, r.rounds] for r in index.query_batch(queries)
    ]
    assert answers == remote["answers"]
