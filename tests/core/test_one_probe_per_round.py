"""The one-probe-per-round mode of Algorithm 2 (remark after Theorem 3)
and the SerializedProbeSession it is built on."""

import numpy as np
import pytest

from repro.cellprobe.accounting import ProbeAccountant
from repro.cellprobe.session import ProbeRequest, SerializedProbeSession
from repro.cellprobe.table import DictTable
from repro.cellprobe.words import EMPTY, IntWord
from repro.core.algorithm2 import LargeKScheme
from repro.core.params import Algorithm2Params, BaseParameters


class TestSerializedSession:
    def test_one_round_per_probe(self):
        t = DictTable("T", 10, 8, default=EMPTY)
        for i in range(4):
            t.store(i, IntWord(i, 10))
        acc = ProbeAccountant()
        session = SerializedProbeSession(acc)
        contents = session.parallel_read([ProbeRequest(t, i) for i in range(4)])
        assert [c.value for c in contents] == [0, 1, 2, 3]
        assert acc.total_rounds == 4
        assert acc.probes_per_round == [1, 1, 1, 1]

    def test_empty_batch(self):
        session = SerializedProbeSession(ProbeAccountant())
        assert session.parallel_read([]) == []


class TestOneProbePerRoundScheme:
    @pytest.fixture(scope="class")
    def db_and_queries(self):
        from repro.hamming.points import PackedPoints
        from repro.hamming.sampling import flip_random_bits, random_points

        rng = np.random.default_rng(31)
        db = PackedPoints(random_points(rng, 150, 1024), 1024)
        queries = np.vstack([
            flip_random_bits(rng, db.row(int(rng.integers(0, 150))), 50, 1024)
            for _ in range(10)
        ])
        return db, queries

    def _schemes(self, db):
        base = BaseParameters(n=len(db), d=db.d, gamma=2.0, c1=10.0, c2=10.0)
        params = Algorithm2Params(base, k=17)
        parallel = LargeKScheme(db, params, seed=1)
        serialized = LargeKScheme(db, params, seed=1, one_probe_per_round=True)
        return parallel, serialized

    def test_rounds_equal_probes(self, db_and_queries):
        db, queries = db_and_queries
        _, serialized = self._schemes(db)
        for qi in range(4):
            res = serialized.query(queries[qi])
            assert res.rounds == res.probes
            assert all(s == 1 for s in res.probes_per_round)

    def test_same_answers_as_parallel(self, db_and_queries):
        """Serialization only adds unused adaptivity: identical results."""
        db, queries = db_and_queries
        parallel, serialized = self._schemes(db)
        for qi in range(6):
            a = parallel.query(queries[qi])
            b = serialized.query(queries[qi])
            assert a.answer_index == b.answer_index
            assert a.probes == b.probes  # same probes, just spread out

    def test_round_budget_flag_uses_probe_budget(self, db_and_queries):
        db, queries = db_and_queries
        _, serialized = self._schemes(db)
        res = serialized.query(queries[0])
        assert res.meta["round_budget_ok"]

    def test_success_preserved(self, db_and_queries):
        db, queries = db_and_queries
        _, serialized = self._schemes(db)
        ok = 0
        for qi in range(queries.shape[0]):
            ratio = serialized.query(queries[qi]).ratio(db, queries[qi])
            ok += ratio is not None and ratio <= 2.0
        assert ok / queries.shape[0] >= 0.75
