"""QueryResult and ratio conventions."""

import numpy as np
import pytest

from repro.cellprobe.accounting import ProbeAccountant
from repro.core.result import QueryResult, achieved_ratio
from repro.hamming.points import PackedPoints
from repro.hamming.sampling import flip_random_bits, random_points


@pytest.fixture
def db():
    rng = np.random.default_rng(0)
    return PackedPoints(random_points(rng, 20, 128), 128)


def _result(answer_idx, db):
    acc = ProbeAccountant()
    r = acc.begin_round()
    acc.charge(r, "T", 0)
    packed = db.row(answer_idx).copy() if answer_idx is not None else None
    return QueryResult(answer_idx, packed, acc, scheme="test")


class TestQueryResult:
    def test_accounting_shortcuts(self, db):
        res = _result(0, db)
        assert res.probes == 1
        assert res.rounds == 1
        assert res.probes_per_round == [1]

    def test_answered_flag(self, db):
        assert _result(0, db).answered
        assert not _result(None, db).answered

    def test_distance_none_when_unanswered(self, db):
        assert _result(None, db).distance_to(db.row(0)) is None

    def test_ratio_none_when_unanswered(self, db):
        assert _result(None, db).ratio(db, db.row(0)) is None

    def test_as_dict(self, db):
        res = _result(2, db)
        res.meta["path"] = "main"
        flat = res.as_dict()
        assert flat["scheme"] == "test"
        assert flat["meta_path"] == "main"


class TestAchievedRatio:
    def test_exact_hit_ratio_one(self, db):
        assert achieved_ratio(db, db.row(3), db.row(3)) == 1.0

    def test_miss_on_exact_optimum_is_inf(self, db):
        rng = np.random.default_rng(1)
        wrong = flip_random_bits(rng, db.row(3), 5, db.d)
        # Query IS db point 3 (optimum 0) but answer is 5 away.
        assert achieved_ratio(db, db.row(3), wrong) == float("inf")

    def test_ratio_definition(self, db):
        rng = np.random.default_rng(2)
        q = flip_random_bits(rng, db.row(4), 10, db.d)
        dists = db.distances_from(q)
        opt = int(dists.min())
        far_idx = int(dists.argmax())
        expected = int(dists[far_idx]) / opt
        assert achieved_ratio(db, q, db.row(far_idx)) == pytest.approx(expected)
