"""The ANNIndex facade."""

import numpy as np
import pytest

from repro.core.index import ANNIndex
from repro.hamming.points import PackedPoints


class TestBuild:
    def test_from_bits(self):
        bits = np.random.default_rng(0).integers(0, 2, size=(64, 128)).astype(np.uint8)
        index = ANNIndex.build(bits, gamma=4.0, rounds=2, seed=0)
        res = index.query(bits[5])
        assert res.answered

    def test_from_packed_points(self, small_db):
        index = ANNIndex.build(small_db, rounds=2, seed=0)
        assert index.rounds == 2

    def test_rejects_raw_uint64(self):
        with pytest.raises(TypeError):
            ANNIndex.build(np.zeros((4, 2), dtype=np.uint64))

    def test_auto_selects_algorithm1_for_small_k(self, small_db):
        index = ANNIndex.build(small_db, rounds=2, algorithm="auto", seed=0)
        assert index.scheme.scheme_name == "algorithm1"

    def test_auto_selects_algorithm2_for_large_k(self, small_db):
        index = ANNIndex.build(small_db, rounds=20, algorithm="auto", seed=0)
        assert index.scheme.scheme_name == "algorithm2"

    def test_unknown_algorithm_rejected(self, small_db):
        with pytest.raises(ValueError):
            ANNIndex.build(small_db, algorithm="bogus")

    def test_boost_wraps(self, small_db):
        index = ANNIndex.build(small_db, rounds=2, boost=3, seed=0)
        assert index.scheme.scheme_name.startswith("boosted(")

    def test_boost_rejects_zero(self, small_db):
        with pytest.raises(ValueError):
            ANNIndex.build(small_db, rounds=2, boost=0)


class TestQuery:
    def test_query_accepts_bit_vector(self, small_db):
        index = ANNIndex.build(small_db, rounds=2, seed=0)
        bits = small_db.to_bits()[3]
        res = index.query(bits)
        assert res.answer_index == 3

    def test_query_packed(self, small_db, small_queries):
        index = ANNIndex.build(small_db, rounds=2, seed=0)
        res = index.query_packed(small_queries[0])
        assert res.probes >= 1

    def test_size_report_accessible(self, small_db):
        index = ANNIndex.build(small_db, rounds=2, seed=0)
        assert index.size_report().table_cells > 0

    def test_reproducible_with_seed(self, small_db, small_queries):
        a = ANNIndex.build(small_db, rounds=3, seed=9).query_packed(small_queries[2])
        b = ANNIndex.build(small_db, rounds=3, seed=9).query_packed(small_queries[2])
        assert a.answer_index == b.answer_index
