"""The ANNIndex facade."""

import numpy as np
import pytest

from repro.api import IndexSpec
from repro.core.index import ANNIndex

ALG1_K2 = IndexSpec(scheme="algorithm1", params={"rounds": 2}, seed=0)


class TestFromSpec:
    def test_from_bits(self):
        bits = np.random.default_rng(0).integers(0, 2, size=(64, 128)).astype(np.uint8)
        index = ANNIndex.from_spec(bits, ALG1_K2)
        res = index.query(bits[5])
        assert res.answered

    def test_from_packed_points(self, small_db):
        index = ANNIndex.from_spec(small_db, ALG1_K2)
        assert index.rounds == 2

    def test_spec_rides_along(self, small_db):
        index = ANNIndex.from_spec(small_db, ALG1_K2)
        assert index.spec == ALG1_K2
        assert IndexSpec.from_dict(index.spec.to_dict()) == ALG1_K2

    def test_rejects_raw_uint64(self):
        with pytest.raises(TypeError):
            ANNIndex.from_spec(np.zeros((4, 2), dtype=np.uint64), ALG1_K2)

    def test_boost_wraps(self, small_db):
        index = ANNIndex.from_spec(small_db, ALG1_K2.replace(boost=3))
        assert index.scheme.scheme_name.startswith("boosted(")

    def test_preset_builds(self, small_db):
        index = ANNIndex.from_spec(small_db, IndexSpec.preset("fast", seed=0))
        assert index.rounds == 1


@pytest.mark.filterwarnings("ignore::DeprecationWarning")
class TestLegacyBuild:
    """The deprecated kwarg shim (equivalence with the spec path is
    covered in tests/core/test_build_shim.py)."""

    def test_auto_selects_algorithm1_for_small_k(self, small_db):
        index = ANNIndex.build(small_db, rounds=2, algorithm="auto", seed=0)
        assert index.scheme.scheme_name == "algorithm1"

    def test_auto_selects_algorithm2_for_large_k(self, small_db):
        index = ANNIndex.build(small_db, rounds=20, algorithm="auto", seed=0)
        assert index.scheme.scheme_name == "algorithm2"

    def test_unknown_algorithm_rejected(self, small_db):
        with pytest.raises(ValueError):
            ANNIndex.build(small_db, algorithm="bogus")

    def test_boost_rejects_zero(self, small_db):
        with pytest.raises(ValueError):
            ANNIndex.build(small_db, rounds=2, boost=0)


class TestQuery:
    def test_query_accepts_bit_vector(self, small_db):
        index = ANNIndex.from_spec(small_db, ALG1_K2)
        bits = small_db.to_bits()[3]
        res = index.query(bits)
        assert res.answer_index == 3

    def test_query_packed(self, small_db, small_queries):
        index = ANNIndex.from_spec(small_db, ALG1_K2)
        res = index.query_packed(small_queries[0])
        assert res.probes >= 1

    def test_size_report_accessible(self, small_db):
        index = ANNIndex.from_spec(small_db, ALG1_K2)
        assert index.size_report().table_cells > 0

    def test_reproducible_with_seed(self, small_db, small_queries):
        spec = IndexSpec(scheme="algorithm1", params={"rounds": 3}, seed=9)
        a = ANNIndex.from_spec(small_db, spec).query_packed(small_queries[2])
        b = ANNIndex.from_spec(small_db, spec).query_packed(small_queries[2])
        assert a.answer_index == b.answer_index
