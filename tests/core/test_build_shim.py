"""The deprecated ``ANNIndex.build`` shim: every legacy kwarg combination
must emit ``DeprecationWarning`` and produce a scheme identical (same
answers, same accounting, under the same seed) to the equivalent
``IndexSpec`` path."""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro.api import IndexSpec
from repro.core.index import ANNIndex
from repro.hamming.points import PackedPoints
from repro.hamming.sampling import flip_random_bits, random_points

SEED = 7
GEOMETRY_DEFAULTS = {"gamma": 4.0, "c1": 6.0, "c2": 6.0, "profile": "empirical"}


@pytest.fixture(scope="module")
def workload():
    gen = np.random.default_rng(31)
    n, d = 90, 128
    db = PackedPoints(random_points(gen, n, d), d)
    queries = np.vstack(
        [
            flip_random_bits(
                gen, db.row(int(gen.integers(0, n))), int(gen.integers(0, 10)), d
            )
            for _ in range(20)
        ]
    )
    return db, queries


def _alg1_spec(*, rounds=2, boost=1, **geometry):
    params = {**GEOMETRY_DEFAULTS, **geometry, "rounds": rounds}
    return IndexSpec(scheme="algorithm1", params=params, seed=SEED, boost=boost)


def _alg2_spec(*, rounds, c=3.0, s=None, boost=1, **geometry):
    params = {**GEOMETRY_DEFAULTS, **geometry, "rounds": rounds, "c": c, "s": s}
    return IndexSpec(scheme="algorithm2", params=params, seed=SEED, boost=boost)


#: (legacy kwargs, the manually written equivalent spec)
COMBOS = [
    pytest.param(dict(), _alg1_spec(), id="all-defaults"),
    pytest.param(dict(rounds=3), _alg1_spec(rounds=3), id="alg1-k3"),
    pytest.param(
        dict(algorithm="algorithm1", rounds=1, c1=8.0),
        _alg1_spec(rounds=1, c1=8.0),
        id="alg1-k1-c1",
    ),
    pytest.param(
        dict(gamma=2.5, rounds=2, c2=9.0, profile="empirical"),
        _alg1_spec(gamma=2.5, c2=9.0),
        id="alg1-gamma-c2",
    ),
    pytest.param(
        dict(algorithm="algorithm2", rounds=8, algorithm2_s=2),
        _alg2_spec(rounds=8, s=2),
        id="alg2-k8-s2",
    ),
    pytest.param(
        dict(algorithm="algorithm2", rounds=16, algorithm2_c=4.0),
        _alg2_spec(rounds=16, c=4.0),
        id="alg2-k16-c4",
    ),
    pytest.param(dict(rounds=3, boost=3), _alg1_spec(rounds=3, boost=3), id="boosted"),
    # "auto" resolves to algorithm1 when Algorithm 2's s >= 1 constraint
    # fails at the requested k, and to algorithm2 when it holds.
    pytest.param(dict(algorithm="auto", rounds=2), _alg1_spec(rounds=2), id="auto-alg1"),
    pytest.param(
        dict(algorithm="auto", rounds=20), _alg2_spec(rounds=20), id="auto-alg2"
    ),
]


def assert_same_results(a, b, queries):
    for q in queries:
        ra, rb = a.query_packed(q), b.query_packed(q)
        assert ra.answer_index == rb.answer_index
        assert ra.probes == rb.probes
        assert ra.rounds == rb.rounds
        assert ra.probes_per_round == rb.probes_per_round
        assert ra.scheme == rb.scheme
        if ra.answer_packed is None:
            assert rb.answer_packed is None
        else:
            assert np.array_equal(ra.answer_packed, rb.answer_packed)


@pytest.mark.parametrize("legacy_kwargs, spec", COMBOS)
def test_legacy_build_matches_spec_path(workload, legacy_kwargs, spec):
    db, queries = workload
    with pytest.warns(DeprecationWarning, match="from_spec"):
        legacy = ANNIndex.build(db, seed=SEED, **legacy_kwargs)
    modern = ANNIndex.from_spec(db, spec)
    assert type(legacy.scheme) is type(modern.scheme)
    assert_same_results(legacy, modern, queries)


@pytest.mark.parametrize("legacy_kwargs, spec", COMBOS)
def test_shim_records_equivalent_spec(workload, legacy_kwargs, spec):
    """The shim's internally built spec round-trips to the manual one."""
    db, _ = workload
    with pytest.warns(DeprecationWarning):
        legacy = ANNIndex.build(db, seed=SEED, **legacy_kwargs)
    assert legacy.spec == spec


def test_from_spec_does_not_warn(workload):
    db, _ = workload
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        ANNIndex.from_spec(db, IndexSpec(scheme="linear-scan"))


def test_shim_rejects_unknown_algorithm(workload):
    db, _ = workload
    with pytest.warns(DeprecationWarning):
        with pytest.raises(ValueError, match="unknown algorithm"):
            ANNIndex.build(db, algorithm="bogus")


def test_shim_rejects_bad_boost(workload):
    db, _ = workload
    with pytest.warns(DeprecationWarning):
        with pytest.raises(ValueError, match="boost"):
            ANNIndex.build(db, rounds=2, boost=0)
