"""Algorithm 2: phases, cases, budgets, correctness."""

import numpy as np
import pytest

from repro.core.algorithm2 import LargeKScheme
from repro.core.params import Algorithm2Params, BaseParameters
from repro.hamming.points import PackedPoints
from repro.hamming.sampling import flip_random_bits, random_points


def _scheme(db, k=16, gamma=4.0, c1=8.0, c2=8.0, seed=0, **kw):
    base = BaseParameters(n=len(db), d=db.d, gamma=gamma, c1=c1, c2=c2)
    return LargeKScheme(db, Algorithm2Params(base, k=k, **kw), seed=seed)


@pytest.fixture(scope="module")
def deep_db():
    """γ=2 gives α=√2 and ~24 levels at d=4096 so shrinking phases run."""
    rng = np.random.default_rng(21)
    return PackedPoints(random_points(rng, 200, 4096), 4096)


def _deep_scheme(db, k=17, seed=0):
    base = BaseParameters(n=len(db), d=db.d, gamma=2.0, c1=10.0, c2=10.0)
    return LargeKScheme(db, Algorithm2Params(base, k=k), seed=seed)


def _deep_queries(db, count=10, seed=3):
    rng = np.random.default_rng(seed)
    out = []
    for _ in range(count):
        base = db.row(int(rng.integers(0, len(db))))
        out.append(flip_random_bits(rng, base, int(rng.integers(0, 200)), db.d))
    return np.vstack(out)


class TestBudgets:
    def test_round_budget_flagged_ok(self, medium_db, medium_queries):
        scheme = _scheme(medium_db, k=16)
        for qi in range(8):
            res = scheme.query(medium_queries[qi])
            assert res.meta["round_budget_ok"]
            assert res.meta["probe_budget_ok"]
            assert res.rounds <= scheme.params.round_budget

    def test_phases_within_budget(self, deep_db):
        scheme = _deep_scheme(deep_db)
        for q in _deep_queries(deep_db, 6):
            res = scheme.query(q)
            assert res.meta.get("phases", 0) <= scheme.params.phase_budget
            assert not res.meta.get("budget_violated", False)


class TestPhases:
    def test_shrinking_phases_execute(self, deep_db):
        """At γ=2 the level count exceeds the completion cut, so at least
        one shrinking phase must run."""
        scheme = _deep_scheme(deep_db)
        ran = 0
        for q in _deep_queries(deep_db, 6):
            res = scheme.query(q)
            if res.meta.get("path", "").startswith("degenerate"):
                continue
            ran += res.meta["phases"]
        assert ran > 0

    def test_cases_recorded(self, deep_db):
        scheme = _deep_scheme(deep_db)
        for q in _deep_queries(deep_db, 4):
            res = scheme.query(q)
            if res.meta.get("path") == "main":
                total = res.meta["case1"] + res.meta["case2"] + res.meta["case3"]
                assert total == res.meta["phases"]

    def test_immediate_completion_when_cut_covers_levels(self, medium_db, medium_queries):
        """γ=4 at d=512 gives 9 levels < cut, so phases = 0 and the whole
        query is one completion round (plus degenerate probes)."""
        scheme = _scheme(medium_db, k=16)
        res = scheme.query(medium_queries[0])
        if res.meta.get("path") == "main":
            assert res.meta["phases"] == 0
            assert res.rounds == 1


class TestCorrectness:
    def test_success_probability_floor(self, deep_db):
        scheme = _deep_scheme(deep_db)
        queries = _deep_queries(deep_db, 16, seed=9)
        ok = 0
        for q in queries:
            res = scheme.query(q)
            ratio = res.ratio(deep_db, q)
            if ratio is not None and ratio <= 2.0:
                ok += 1
        assert ok / len(queries) >= 0.75

    def test_exact_member_degenerate(self, deep_db):
        scheme = _deep_scheme(deep_db)
        res = scheme.query(deep_db.row(3))
        assert res.meta["path"] == "degenerate-exact"
        assert res.answer_index == 3


class TestValidation:
    def test_rejects_mismatched_db(self, medium_db):
        base = BaseParameters(n=len(medium_db) + 1, d=medium_db.d)
        with pytest.raises(ValueError):
            LargeKScheme(medium_db, Algorithm2Params(base, k=16))

    def test_size_report_includes_aux(self, medium_db):
        scheme = _scheme(medium_db, k=16)
        report = scheme.size_report()
        names = dict(report.table_names)
        assert "aux-levels" in names
        assert names["aux-levels"] > 0

    def test_s_override_used(self, medium_db):
        scheme = _scheme(medium_db, k=8, s_override=2)
        assert scheme.params.s == 2


class TestDeterminism:
    def test_same_seed_reproducible(self, deep_db):
        q = _deep_queries(deep_db, 1, seed=4)[0]
        a = _deep_scheme(deep_db, seed=5).query(q)
        b = _deep_scheme(deep_db, seed=5).query(q)
        assert a.answer_index == b.answer_index
        assert a.probes == b.probes
        assert a.meta.get("phases") == b.meta.get("phases")
