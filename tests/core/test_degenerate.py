"""Degenerate-case handler and membership structures."""

import numpy as np
import pytest

from repro.cellprobe.session import ProbeRequest
from repro.core.degenerate import DegenerateCaseHandler
from repro.hamming.points import PackedPoints
from repro.hamming.sampling import flip_random_bits, random_points
from repro.structures.perfect_hash import MembershipStructure


@pytest.fixture
def db():
    rng = np.random.default_rng(0)
    return PackedPoints(random_points(rng, 30, 128), 128)


class TestMembershipStructure:
    def test_exact_hit(self, db):
        ms = MembershipStructure(db, radius=0, name="m")
        assert ms.lookup_ground_truth(db.row(7)) == 7

    def test_exact_miss(self, db):
        rng = np.random.default_rng(1)
        q = flip_random_bits(rng, db.row(0), 1, db.d)
        ms = MembershipStructure(db, radius=0, name="m")
        assert ms.lookup_ground_truth(q) is None

    def test_radius_one_hit(self, db):
        rng = np.random.default_rng(2)
        q = flip_random_bits(rng, db.row(3), 1, db.d)
        ms = MembershipStructure(db, radius=1, name="m")
        idx = ms.lookup_ground_truth(q)
        assert idx is not None
        assert db.distances_from(q)[idx] <= 1

    def test_exact_preferred_over_near(self, db):
        ms = MembershipStructure(db, radius=1, name="m")
        assert ms.lookup_ground_truth(db.row(9)) == 9

    def test_rejects_bad_radius(self, db):
        with pytest.raises(ValueError):
            MembershipStructure(db, radius=2, name="m")

    def test_neighborhood_size_accounting(self, db):
        ms0 = MembershipStructure(db, radius=0, name="a")
        ms1 = MembershipStructure(db, radius=1, name="b")
        # Quadratic perfect hashing over n vs (d+1)n points.
        assert ms1.table.logical_cells == ((db.d + 1) ** 2) * ms0.table.logical_cells


class TestHandler:
    def test_requests_are_two(self, db):
        handler = DegenerateCaseHandler(db)
        reqs = handler.requests_for(db.row(0))
        assert len(reqs) == 2
        assert all(isinstance(r, ProbeRequest) for r in reqs)

    def test_interpret_exact(self, db):
        handler = DegenerateCaseHandler(db)
        contents = [r.table.read(r.address) for r in handler.requests_for(db.row(4))]
        hit = handler.interpret(contents)
        assert hit is not None
        idx, packed, which = hit
        assert which == "exact"
        assert idx == 4

    def test_interpret_miss(self, db):
        rng = np.random.default_rng(3)
        q = flip_random_bits(rng, db.row(0), 50, db.d)
        handler = DegenerateCaseHandler(db)
        contents = [r.table.read(r.address) for r in handler.requests_for(q)]
        if int(db.distances_from(q).min()) > 1:
            assert handler.interpret(contents) is None

    def test_logical_cells_positive(self, db):
        assert DegenerateCaseHandler(db).logical_cells() > 0
