"""Invariant instrumentation: the C_l = ∅ ∧ C_u ≠ ∅ loop invariant."""

import numpy as np
import pytest

from repro.core.algorithm1 import SimpleKRoundScheme
from repro.core.algorithm2 import LargeKScheme
from repro.core.invariants import InvariantChecker, InvariantTrace
from repro.core.params import Algorithm1Params, Algorithm2Params, BaseParameters


def _alg1(db, k=3, c1=10.0, seed=0):
    base = BaseParameters(n=len(db), d=db.d, gamma=4.0, c1=c1)
    return SimpleKRoundScheme(db, Algorithm1Params(base, k=k), seed=seed,
                              check_invariants=True)


class TestInvariantTrace:
    def test_empty_trace_ok(self):
        trace = InvariantTrace()
        assert trace.ok
        assert trace.checked == 0

    def test_violation_counting(self):
        trace = InvariantTrace()
        trace.steps.append((0, 5, True, True))
        trace.steps.append((1, 4, False, True))
        assert trace.checked == 2
        assert trace.violations == 1
        assert not trace.ok

    def test_as_dict(self):
        trace = InvariantTrace()
        trace.steps.append((0, 3, True, True))
        assert trace.as_dict() == {"checked": 1, "violations": 0}


class TestAlgorithm1Instrumentation:
    def test_metadata_present_when_enabled(self, medium_db, medium_queries):
        scheme = _alg1(medium_db)
        res = scheme.query(medium_queries[0])
        if res.meta.get("path") == "main":
            assert "invariants" in res.meta
            assert res.meta["invariants"]["checked"] >= 1

    def test_metadata_absent_when_disabled(self, medium_db, medium_queries):
        base = BaseParameters(n=len(medium_db), d=medium_db.d, gamma=4.0, c1=10.0)
        scheme = SimpleKRoundScheme(medium_db, Algorithm1Params(base, k=3), seed=0)
        res = scheme.query(medium_queries[0])
        assert "invariants" not in res.meta

    def test_violation_rate_bounded(self, medium_db, medium_queries):
        """Violations happen only when Lemma 8's assumptions fail, i.e. on
        at most ~1/4 of (query, randomness) pairs with wide sketches."""
        scheme = _alg1(medium_db, c1=12.0)
        violating = total = 0
        for qi in range(12):
            res = scheme.query(medium_queries[qi])
            inv = res.meta.get("invariants")
            if inv is None:
                continue  # degenerate path: no main search ran
            total += 1
            violating += inv["violations"] > 0
        if total:
            assert violating / total <= 0.34

    def test_checker_charges_no_probes(self, medium_db, medium_queries):
        base = BaseParameters(n=len(medium_db), d=medium_db.d, gamma=4.0, c1=10.0)
        plain = SimpleKRoundScheme(medium_db, Algorithm1Params(base, k=3), seed=0)
        checked = _alg1(medium_db, c1=10.0, seed=0)
        for qi in range(6):
            a = plain.query(medium_queries[qi])
            b = checked.query(medium_queries[qi])
            assert a.probes == b.probes
            assert a.rounds == b.rounds
            assert a.answer_index == b.answer_index


class TestAlgorithm2Instrumentation:
    def test_metadata_present(self, medium_db, medium_queries):
        base = BaseParameters(n=len(medium_db), d=medium_db.d, gamma=4.0, c1=10.0, c2=10.0)
        scheme = LargeKScheme(medium_db, Algorithm2Params(base, k=16), seed=0,
                              check_invariants=True)
        res = scheme.query(medium_queries[0])
        if res.meta.get("path") == "main":
            assert res.meta["invariants"]["checked"] >= 1


class TestCheckerUnit:
    def test_record_none_trace_noop(self, medium_db):
        from repro.sketch.approx_balls import ApproxBallEvaluator
        from repro.sketch.family import SketchFamily
        from repro.sketch.levels import LevelSketches
        from repro.utils.rng import RngTree

        fam = SketchFamily(medium_db.d, 2.0, 9, 64, rng_tree=RngTree(0))
        checker = InvariantChecker(ApproxBallEvaluator(LevelSketches(medium_db, fam)), fam)
        checker.record(None, medium_db.row(0), 0, 9)  # must not raise

    def test_record_top_level_nonempty(self, medium_db):
        """C_L contains the whole database (threshold at diameter scale),
        so upper_ok holds at the initial (0, L) thresholds for db points."""
        from repro.sketch.approx_balls import ApproxBallEvaluator
        from repro.sketch.family import SketchFamily
        from repro.sketch.levels import LevelSketches
        from repro.utils.rng import RngTree

        fam = SketchFamily(medium_db.d, 2.0, 9, 96, rng_tree=RngTree(0))
        checker = InvariantChecker(ApproxBallEvaluator(LevelSketches(medium_db, fam)), fam)
        trace = checker.start()
        checker.record(trace, medium_db.row(3), 0, 9)
        _, _, _, upper_ok = trace.steps[0]
        assert upper_ok
