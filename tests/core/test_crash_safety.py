"""Crash safety of snapshot saves: killed mid-save is never silent damage.

``save_index`` commits a snapshot by writing the manifest *last*, via
temp + fsync + ``os.replace`` — so a process SIGKILLed at **any** point
of a save leaves a directory that either

* fails to load with a typed :class:`IndexPersistenceError` (the save
  never committed, or committed payloads were replaced mid-overwrite
  and no longer match a manifest), or
* loads **bitwise-identically** to a completed save (the kill landed
  after the commit point — or, when saving over an existing snapshot,
  before anything of the old state was disturbed).

The tests run real ``save`` calls in subprocesses and SIGKILL them at
seeded delays spanning the whole save duration; every outcome must fall
in one of those buckets — a load that succeeds but answers differently
from both the old and the new state is the bug this suite exists to
catch.
"""

from __future__ import annotations

import signal
import subprocess
import sys
import time
from pathlib import Path

import numpy as np
import pytest

from repro.api import IndexSpec
from repro.core.index import ANNIndex
from repro.hamming.points import PackedPoints
from repro.hamming.sampling import random_points
from repro.persistence import IndexPersistenceError, load_index

# The subprocess rebuilds this exact index (same seeds → bitwise the
# same) and saves it; the parent keeps its own copy as the reference.
N, D, DB_SEED, SPEC_SEED = 96, 128, 41, 17


def _reference_index(mutated: bool = False) -> ANNIndex:
    db = PackedPoints(random_points(np.random.default_rng(DB_SEED), N, D), D)
    index = ANNIndex.from_spec(
        db, IndexSpec(scheme="algorithm1", params={"rounds": 2}, seed=SPEC_SEED)
    )
    if mutated:
        rng = np.random.default_rng(SPEC_SEED + 1)
        index.insert(rng.integers(0, 2, size=(3, D), dtype=np.uint8))
        index.delete([0])
    return index


_SAVE_SCRIPT = """
import sys
import numpy as np
from repro.api import IndexSpec
from repro.core.index import ANNIndex
from repro.hamming.points import PackedPoints
from repro.hamming.sampling import random_points

target, mutated = sys.argv[1], sys.argv[2] == "1"
fmt = int(sys.argv[3])
db = PackedPoints(random_points(np.random.default_rng({db_seed}), {n}, {d}), {d})
index = ANNIndex.from_spec(
    db, IndexSpec(scheme="algorithm1", params={{"rounds": 2}}, seed={spec_seed})
)
if mutated:
    rng = np.random.default_rng({spec_seed} + 1)
    index.insert(rng.integers(0, 2, size=(3, {d}), dtype=np.uint8))
    index.delete([0])
print("READY", flush=True)
sys.stdin.readline()  # parent says go; the kill timer starts now
index.save(target, format_version=fmt if fmt else None)
print("SAVED", flush=True)
""".format(n=N, d=D, db_seed=DB_SEED, spec_seed=SPEC_SEED)


def _save_in_subprocess(
    target: Path, mutated: bool, kill_after: float, format_version: int = 0
) -> bool:
    """Run a save in a subprocess, SIGKILL it ``kill_after`` seconds in.

    Returns whether the save reported completion before the kill.  The
    index build happens before the timer starts, so the kill window
    spans the save itself.
    """
    import os

    env = dict(os.environ)
    src = str(Path(__file__).resolve().parents[2] / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [
            sys.executable,
            "-c",
            _SAVE_SCRIPT,
            str(target),
            "1" if mutated else "0",
            str(format_version),
        ],
        stdin=subprocess.PIPE,
        stdout=subprocess.PIPE,
        env=env,
    )
    try:
        assert proc.stdout.readline().strip() == b"READY"
        proc.stdin.write(b"go\n")
        proc.stdin.flush()
        time.sleep(kill_after)
        proc.send_signal(signal.SIGKILL)
        out = proc.stdout.read()
        proc.wait()
        return b"SAVED" in out
    finally:
        proc.stdin.close()
        proc.stdout.close()
        if proc.poll() is None:
            proc.kill()
            proc.wait()


def _queries():
    return random_points(np.random.default_rng(7), 6, D)


def _answers(index: ANNIndex):
    return [
        (r.answer_index, r.probes, r.rounds, tuple(r.probes_per_round))
        for r in index.query_batch(_queries())
    ]


def _time_one_save(tmp_path) -> float:
    start = time.monotonic()
    _reference_index().save(tmp_path / "timing")
    return time.monotonic() - start


@pytest.mark.parametrize("fraction", [0.0, 0.25, 0.5, 0.75, 1.0, 1.5])
def test_fresh_save_killed_midway_errors_or_loads_complete(tmp_path, fraction):
    """A fresh-directory save killed anywhere: load either raises
    IndexPersistenceError or answers identically to a finished save."""
    duration = _time_one_save(tmp_path)
    target = tmp_path / "crash"
    completed = _save_in_subprocess(target, False, kill_after=fraction * duration)
    try:
        loaded = load_index(target)
    except IndexPersistenceError:
        assert not completed, "a completed save must stay loadable"
        return
    assert _answers(loaded) == _answers(_reference_index())


@pytest.mark.parametrize("fraction", [0.0, 0.3, 0.6, 0.9, 1.2])
def test_overwrite_killed_midway_is_old_new_or_error(tmp_path, fraction):
    """Saving a *mutated* index over an existing snapshot, killed
    anywhere: the directory loads as the old state, the new state, or a
    typed error — never a silent mixture of the two."""
    duration = _time_one_save(tmp_path)
    target = tmp_path / "overwrite"
    _reference_index().save(target)  # the committed old state
    old = _answers(load_index(target))
    new = _answers(_reference_index(mutated=True))
    assert old != new, "mutation must be observable for this test to bite"
    _save_in_subprocess(target, True, kill_after=fraction * duration)
    try:
        loaded = load_index(target)
    except IndexPersistenceError:
        return  # torn overwrite detected loudly: acceptable
    assert _answers(loaded) in (old, new)


@pytest.mark.parametrize("fraction", [0.0, 0.3, 0.6, 0.9, 1.2])
def test_v3_overwrite_killed_midway_is_old_new_or_error(tmp_path, fraction):
    """The in-place checkpoint path replicas use (format v3, mmap'able):
    killed anywhere, the directory loads as old, new, or a typed error —
    the previous checkpoint is never destroyed by the interrupted one."""
    duration = _time_one_save(tmp_path)
    target = tmp_path / "overwrite3"
    _reference_index().save(target, format_version=3)
    old = _answers(load_index(target))
    new = _answers(_reference_index(mutated=True))
    assert old != new
    _save_in_subprocess(target, True, kill_after=fraction * duration, format_version=3)
    try:
        loaded = load_index(target)
    except IndexPersistenceError:
        return  # torn overwrite detected loudly: acceptable
    assert _answers(loaded) in (old, new)


def test_overwrite_leaves_old_snapshot_untouched_until_commit(tmp_path):
    """Deterministic pin of the commit rule: a new save's data files land
    under fresh epoch names, so anything a crashed save leaves there —
    even garbage — cannot disturb the committed snapshot."""
    target = tmp_path / "epoch"
    _reference_index().save(target)
    old = _answers(load_index(target))
    # what a save killed after its data writes but before the manifest
    # commit could leave behind: epoch-1 files next to the old manifest
    (target / "database-00000001.npz").write_bytes(b"not an archive")
    (target / "arrays-00000001.npz").write_bytes(b"not an archive")
    assert _answers(load_index(target)) == old


def test_second_save_prunes_the_previous_epoch(tmp_path):
    """After a committed overwrite the stale epoch's files are gone and
    the directory loads as the new state."""
    target = tmp_path / "prune"
    _reference_index().save(target)
    _reference_index(mutated=True).save(target)
    names = {p.name for p in target.iterdir()}
    assert names == {
        "manifest.json",
        "database-00000001.npz",
        "arrays-00000001.npz",
    }
    assert _answers(load_index(target)) == _answers(_reference_index(mutated=True))


def test_truncated_manifest_is_a_typed_error(tmp_path):
    """Byte-level pin of the commit rule: a manifest cut mid-JSON (what
    a non-atomic writer could leave) reads as IndexPersistenceError."""
    target = tmp_path / "torn"
    _reference_index().save(target)
    manifest = target / "manifest.json"
    manifest.write_bytes(manifest.read_bytes()[:-20])
    with pytest.raises(IndexPersistenceError, match="unreadable manifest"):
        load_index(target)


def test_no_temp_manifest_left_behind_after_save(tmp_path):
    """The atomic write cleans up after itself on the happy path."""
    target = tmp_path / "clean"
    _reference_index().save(target)
    assert not list(target.glob("*.tmp"))
