"""Save/load round-trips through :mod:`repro.persistence`.

The acceptance bar: for every scheme in ``available_schemes()`` (plain
and boosted), an index loaded from a snapshot answers ``query`` and
``query_batch`` bitwise-identically to the index that was saved — same
answers, same probe/round accounting — and malformed snapshots (unknown
format version, tampered payloads, foreign directories) fail loudly.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.api import IndexSpec
from repro.core.index import ANNIndex
from repro.hamming.points import PackedPoints
from repro.hamming.sampling import flip_random_bits, random_points
from repro.persistence import (
    FORMAT_VERSION,
    MAX_FORMAT_VERSION,
    IndexPersistenceError,
    load_any,
    load_index,
    read_manifest,
    save_index,
)
from repro.registry import available_schemes, build_scheme


@pytest.fixture(scope="module")
def workload():
    gen = np.random.default_rng(1234)
    n, d = 96, 128
    db = PackedPoints(random_points(gen, n, d), d)
    queries = np.vstack(
        [
            flip_random_bits(
                gen, db.row(int(gen.integers(0, n))), int(gen.integers(0, 12)), d
            )
            for _ in range(12)
        ]
        + [random_points(gen, 4, d)]
    )
    return db, queries


def assert_results_equal(saved, loaded):
    assert len(saved) == len(loaded)
    for s, l in zip(saved, loaded):
        assert s.answer_index == l.answer_index
        assert s.probes == l.probes
        assert s.rounds == l.rounds
        assert s.probes_per_round == l.probes_per_round
        assert s.scheme == l.scheme
        if s.answer_packed is None:
            assert l.answer_packed is None
        else:
            assert np.array_equal(s.answer_packed, l.answer_packed)


def _snapshot_arrays(snapshot_dir):
    with np.load(snapshot_dir / "arrays.npz") as payload:
        return {key: payload[key] for key in payload.files}


def _tamper_array(snapshot_dir, key):
    arrays = _snapshot_arrays(snapshot_dir)
    arrays[key] = np.roll(arrays[key], 1)
    np.savez_compressed(snapshot_dir / "arrays.npz", **arrays)


ROUND_TRIP_CASES = [
    pytest.param(name, boost, id=f"{name}-boost{boost}")
    for name in available_schemes()
    for boost in (1, 2)
]


class TestRoundTrip:
    @pytest.mark.parametrize("scheme,boost", ROUND_TRIP_CASES)
    def test_bitwise_identical_answers_after_reload(
        self, scheme, boost, workload, tmp_path
    ):
        db, queries = workload
        spec = IndexSpec(scheme=scheme, seed=17, boost=boost)
        index = ANNIndex.from_spec(db, spec)
        index.save(tmp_path / "idx")
        loaded = ANNIndex.load(tmp_path / "idx")
        assert loaded.spec == index.spec
        assert_results_equal(index.query_batch(queries), loaded.query_batch(queries))
        for qi in range(4):
            assert_results_equal(
                [index.query_packed(queries[qi])],
                [loaded.query_packed(queries[qi])],
            )

    @pytest.mark.parametrize("scheme,boost", ROUND_TRIP_CASES)
    def test_warm_snapshot_round_trips(self, scheme, boost, workload, tmp_path):
        db, queries = workload
        spec = IndexSpec(scheme=scheme, seed=23, boost=boost)
        index = ANNIndex.from_spec(db, spec).prepare()
        index.save(tmp_path / "warm")
        loaded = ANNIndex.load(tmp_path / "warm")
        assert_results_equal(index.query_batch(queries), loaded.query_batch(queries))

    def test_seed_none_is_pinned_and_round_trips(self, workload, tmp_path):
        db, queries = workload
        index = ANNIndex.from_spec(
            db, IndexSpec(scheme="algorithm1", params={"rounds": 2}, seed=None)
        )
        # from_spec pins fresh entropy so the coins are recorded.
        assert index.spec.seed is not None
        index.save(tmp_path / "pinned")
        loaded = ANNIndex.load(tmp_path / "pinned")
        assert loaded.spec.seed == index.spec.seed
        assert_results_equal(index.query_batch(queries), loaded.query_batch(queries))

    def test_load_any_returns_single_index(self, workload, tmp_path):
        db, _ = workload
        index = ANNIndex.from_spec(db, IndexSpec(scheme="linear-scan", seed=1))
        index.save(tmp_path / "lin")
        assert isinstance(load_any(tmp_path / "lin"), ANNIndex)


class TestManifest:
    def test_manifest_records_spec_seed_and_geometry(self, workload, tmp_path):
        db, _ = workload
        spec = IndexSpec(scheme="algorithm1", params={"rounds": 3}, seed=5, boost=2)
        ANNIndex.from_spec(db, spec).save(tmp_path / "idx", extras={"note": "hi"})
        manifest = read_manifest(tmp_path / "idx")
        assert manifest["format_version"] == FORMAT_VERSION
        assert manifest["seed"] == 5
        assert manifest["n"] == len(db) and manifest["d"] == db.d
        assert manifest["extras"] == {"note": "hi"}
        assert IndexSpec.from_dict(manifest["spec"]) == spec

    def test_unknown_format_version_fails_clearly(self, workload, tmp_path):
        db, _ = workload
        ANNIndex.from_spec(db, IndexSpec(scheme="algorithm1", seed=5)).save(
            tmp_path / "idx"
        )
        manifest_path = tmp_path / "idx" / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["format_version"] = MAX_FORMAT_VERSION + 1
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(IndexPersistenceError, match="unsupported index format version"):
            ANNIndex.load(tmp_path / "idx")

    def test_non_snapshot_directory_fails_clearly(self, tmp_path):
        with pytest.raises(IndexPersistenceError, match="not an index snapshot"):
            load_index(tmp_path)

    def test_foreign_format_name_fails_clearly(self, tmp_path):
        (tmp_path / "manifest.json").write_text(json.dumps({"format": "other"}))
        with pytest.raises(IndexPersistenceError, match="format"):
            read_manifest(tmp_path)

    def test_tampered_eager_payload_fails_loudly(self, workload, tmp_path):
        # LSH rebuilds its hashes eagerly from the seed and verifies them
        # against the snapshot; a payload from different randomness must
        # be rejected, not silently served.
        db, _ = workload
        ANNIndex.from_spec(db, IndexSpec(scheme="lsh", seed=3)).save(tmp_path / "idx")
        key = sorted(
            k
            for k in _snapshot_arrays(tmp_path / "idx")
            if k.startswith("positions/")
        )[0]
        _tamper_array(tmp_path / "idx", key)
        with pytest.raises(IndexPersistenceError, match="payload rejected"):
            ANNIndex.load(tmp_path / "idx")

    def test_tampered_sketch_mask_fails_loudly(self, workload, tmp_path):
        # The masks are the sketch schemes' randomness; a payload from
        # different coins must be rejected against the seed-rebuilt masks.
        db, _ = workload
        ANNIndex.from_spec(db, IndexSpec(scheme="algorithm1", seed=3)).save(
            tmp_path / "idx"
        )
        _tamper_array(tmp_path / "idx", "family/accurate/0")
        with pytest.raises(IndexPersistenceError, match="payload rejected"):
            ANNIndex.load(tmp_path / "idx")

    def test_tampered_database_sketch_cache_fails_loudly(self, workload, tmp_path):
        # Warm caches are installed (that transfers the preprocessing),
        # but only after a spot-check against the seed-verified family.
        db, _ = workload
        index = ANNIndex.from_spec(db, IndexSpec(scheme="algorithm1", seed=3))
        index.prepare()
        index.save(tmp_path / "warm")
        key = sorted(
            k
            for k in _snapshot_arrays(tmp_path / "warm")
            if k.startswith("levels/accurate_db/")
        )[0]
        _tamper_array(tmp_path / "warm", key)
        with pytest.raises(IndexPersistenceError, match="payload rejected"):
            ANNIndex.load(tmp_path / "warm")

    def test_payload_naming_missing_part_fails_loudly(self, workload, tmp_path):
        db, _ = workload
        ANNIndex.from_spec(db, IndexSpec(scheme="data-dependent-lsh", seed=3)).save(
            tmp_path / "idx"
        )
        arrays = _snapshot_arrays(tmp_path / "idx")
        key = sorted(k for k in arrays if k.startswith("part0/"))[0]
        arrays["part99" + key[len("part0"):]] = arrays.pop(key)
        np.savez_compressed(tmp_path / "idx" / "arrays.npz", **arrays)
        with pytest.raises(IndexPersistenceError, match="payload rejected"):
            ANNIndex.load(tmp_path / "idx")

    def test_hand_built_scheme_cannot_save(self, workload, tmp_path):
        db, _ = workload
        scheme = build_scheme(db, IndexSpec(scheme="algorithm1", seed=1))
        index = ANNIndex(db, scheme)  # no spec rides along
        with pytest.raises(IndexPersistenceError, match="no spec"):
            save_index(index, tmp_path / "idx")


def _make_snapshot(workload, tmp_path, name="idx"):
    db, _ = workload
    index = ANNIndex.from_spec(
        db, IndexSpec(scheme="algorithm1", params={"rounds": 2}, seed=7)
    )
    return index, tmp_path / name, index.save(tmp_path / name)


def _rewrite_database_npz(snapshot_dir, drop=(), mutate=None):
    # Resolve the archive name through the manifest: overwrites save
    # under epoch-suffixed names, so "database.npz" only holds for a
    # directory's first save.
    manifest = json.loads((snapshot_dir / "manifest.json").read_text())
    target = snapshot_dir / manifest.get("database_file", "database.npz")
    with np.load(target) as payload:
        arrays = {key: payload[key] for key in payload.files}
    for key in drop:
        arrays.pop(key)
    if mutate:
        mutate(arrays)
    np.savez_compressed(target, **arrays)


class TestDatabaseTamper:
    """database.npz corruption must fail loudly, never answer quietly."""

    def test_truncated_database_file(self, workload, tmp_path):
        _, path, _ = _make_snapshot(workload, tmp_path)
        blob = (path / "database.npz").read_bytes()
        (path / "database.npz").write_bytes(blob[: len(blob) // 2])
        with pytest.raises(IndexPersistenceError, match="unreadable database.npz"):
            ANNIndex.load(path)

    def test_garbage_database_file(self, workload, tmp_path):
        _, path, _ = _make_snapshot(workload, tmp_path)
        (path / "database.npz").write_bytes(b"not a zip archive at all")
        with pytest.raises(IndexPersistenceError, match="unreadable database.npz"):
            ANNIndex.load(path)

    def test_missing_words_key(self, workload, tmp_path):
        _, path, _ = _make_snapshot(workload, tmp_path)
        _rewrite_database_npz(path, drop=("words",))
        with pytest.raises(IndexPersistenceError, match="missing words/d"):
            ANNIndex.load(path)

    def test_dropped_rows_fail_the_geometry_check(self, workload, tmp_path):
        _, path, _ = _make_snapshot(workload, tmp_path)

        def chop(arrays):
            arrays["words"] = arrays["words"][:-3]
            arrays["tombstones"] = arrays["tombstones"][:-3]

        _rewrite_database_npz(path, mutate=chop)
        with pytest.raises(IndexPersistenceError, match="does\nnot match|not match"):
            ANNIndex.load(path)

    def test_missing_mutation_payload_rejected_for_v2(self, workload, tmp_path):
        _, path, _ = _make_snapshot(workload, tmp_path)
        _rewrite_database_npz(path, drop=("memtable_words",))
        with pytest.raises(IndexPersistenceError, match="mutation payload"):
            ANNIndex.load(path)

    def test_tampered_tombstones_fail_live_n_check(self, workload, tmp_path):
        index, path, _ = _make_snapshot(workload, tmp_path)
        index.delete([0, 1])
        index.save(path)

        def clear(arrays):
            arrays["tombstones"] = np.zeros_like(arrays["tombstones"])

        _rewrite_database_npz(path, mutate=clear)
        with pytest.raises(IndexPersistenceError, match="inconsistent"):
            ANNIndex.load(path)

    def test_tampered_memtable_shape_rejected(self, workload, tmp_path):
        index, path, _ = _make_snapshot(workload, tmp_path)
        index.insert(np.zeros((2, index.d), dtype=np.uint8))
        index.save(path)

        def chop(arrays):
            arrays["memtable_words"] = arrays["memtable_words"][:, :-1]

        _rewrite_database_npz(path, mutate=chop)
        with pytest.raises(IndexPersistenceError, match="mutation state rejected"):
            ANNIndex.load(path)

    def test_truncated_arrays_file(self, workload, tmp_path):
        _, path, _ = _make_snapshot(workload, tmp_path)
        blob = (path / "arrays.npz").read_bytes()
        (path / "arrays.npz").write_bytes(blob[: len(blob) // 2])
        with pytest.raises(IndexPersistenceError, match="unreadable arrays.npz"):
            ANNIndex.load(path)


class TestManifestTamper:
    def test_truncated_manifest(self, workload, tmp_path):
        _, path, _ = _make_snapshot(workload, tmp_path)
        text = (path / "manifest.json").read_text()
        (path / "manifest.json").write_text(text[: len(text) // 2])
        with pytest.raises(IndexPersistenceError, match="unreadable manifest"):
            ANNIndex.load(path)

    def test_empty_manifest(self, workload, tmp_path):
        _, path, _ = _make_snapshot(workload, tmp_path)
        (path / "manifest.json").write_text("")
        with pytest.raises(IndexPersistenceError, match="unreadable manifest"):
            ANNIndex.load(path)


class TestMutationRoundTrip:
    """Format v2: live mutation state survives save/load bitwise."""

    def test_dirty_index_round_trips_bitwise(self, workload, tmp_path):
        db, queries = workload
        index = ANNIndex.from_spec(
            db, IndexSpec(scheme="algorithm1", params={"rounds": 2}, seed=19)
        )
        inserted = index.insert(queries[:3])
        index.delete([2, 5, inserted[1]])
        index.save(tmp_path / "dirty")
        loaded = ANNIndex.load(tmp_path / "dirty")
        assert loaded.generation == index.generation
        assert len(loaded) == len(index)
        assert loaded.live_ids().tolist() == index.live_ids().tolist()
        assert loaded.mutation.compact_threshold == index.mutation.compact_threshold
        assert_results_equal(index.query_batch(queries), loaded.query_batch(queries))

    def test_compacted_index_round_trips_with_generation_seed(
        self, workload, tmp_path
    ):
        db, queries = workload
        index = ANNIndex.from_spec(
            db, IndexSpec(scheme="algorithm1", params={"rounds": 2}, seed=19)
        )
        index.delete([0, 1, 2])
        index.insert(queries[:2])
        assert index.compact() == 1
        index.delete([3])
        assert index.compact() == 2
        index.save(tmp_path / "gen2")
        loaded = ANNIndex.load(tmp_path / "gen2")
        assert loaded.generation == 2
        assert loaded.spec == index.spec  # root spec, not the derived one
        assert_results_equal(index.query_batch(queries), loaded.query_batch(queries))

    def test_v1_snapshot_loads_under_v2_code(self, workload, tmp_path):
        # Fixture: demote a fresh snapshot to the v1 on-disk shape (no
        # mutation payload, no generation/live_n manifest fields).
        db, queries = workload
        index, path, _ = _make_snapshot(workload, tmp_path, name="v1")
        _rewrite_database_npz(
            path, drop=("tombstones", "memtable_words", "memtable_deleted")
        )
        manifest = json.loads((path / "manifest.json").read_text())
        manifest["format_version"] = 1
        for key in ("generation", "live_n", "compact_threshold"):
            del manifest[key]
        (path / "manifest.json").write_text(json.dumps(manifest))
        loaded = ANNIndex.load(path)
        assert loaded.generation == 0
        assert loaded.mutation.dirty_count == 0
        assert len(loaded) == len(db)
        assert_results_equal(index.query_batch(queries), loaded.query_batch(queries))
        # And the loaded index is fully mutable going forward.
        loaded.insert(queries[:1])
        loaded.delete([0])
        assert loaded.compact() == 1
