"""Parallel-repetition boosting."""

import pytest

from repro.core.algorithm1 import SimpleKRoundScheme
from repro.core.boosting import BoostedScheme
from repro.core.params import Algorithm1Params, BaseParameters


def _factory(db, k=2, c1=6.0):
    base = BaseParameters(n=len(db), d=db.d, gamma=4.0, c1=c1)
    params = Algorithm1Params(base, k=k)
    return lambda seed: SimpleKRoundScheme(db, params, seed=seed)


class TestBoosting:
    def test_rounds_unchanged_probes_scale(self, small_db, small_queries):
        single = _factory(small_db)(0)
        boosted = BoostedScheme(_factory(small_db), seeds=[0, 1, 2])
        rs = single.query(small_queries[0])
        rb = boosted.query(small_queries[0])
        assert rb.rounds <= max(rs.rounds, boosted.copies[1].query(small_queries[0]).rounds,
                                boosted.copies[2].query(small_queries[0]).rounds)
        assert rb.probes >= rs.probes  # at least as many probes as one copy

    def test_best_answer_wins(self, small_db, small_queries):
        boosted = BoostedScheme(_factory(small_db), seeds=[0, 1, 2])
        x = small_queries[1]
        rb = boosted.query(x)
        if rb.answered:
            best = min(
                c.query(x).distance_to(x)
                for c in boosted.copies
                if c.query(x).answered
            )
            assert rb.distance_to(x) == best

    def test_success_not_worse_than_single(self, medium_db, medium_queries):
        single = _factory(medium_db)(0)
        boosted = BoostedScheme(_factory(medium_db), seeds=[0, 1, 2])
        def successes(scheme):
            count = 0
            for qi in range(10):
                res = scheme.query(medium_queries[qi])
                ratio = res.ratio(medium_db, medium_queries[qi])
                if ratio is not None and ratio <= 4.0:
                    count += 1
            return count
        assert successes(boosted) >= successes(single)

    def test_metadata(self, small_db, small_queries):
        boosted = BoostedScheme(_factory(small_db), seeds=[0, 1])
        res = boosted.query(small_queries[0])
        assert res.meta["copies"] == 2
        assert res.scheme.startswith("boosted(")

    def test_rejects_empty_seeds(self, small_db):
        with pytest.raises(ValueError):
            BoostedScheme(_factory(small_db), seeds=[])

    def test_size_report_sums_copies(self, small_db):
        boosted = BoostedScheme(_factory(small_db), seeds=[0, 1])
        single = _factory(small_db)(0)
        assert boosted.size_report().table_cells == 2 * single.size_report().table_cells


class TestBoostingMatchesIndependentCopies:
    """The boosted wrapper's shared-round accounting must equal running
    the copies independently and folding their accountants positionally
    via merge_parallel — including when the copies serialize rounds."""

    def _alg2_factory(self, db, one_probe_per_round):
        from repro.core.algorithm2 import LargeKScheme
        from repro.core.params import Algorithm2Params

        base = BaseParameters(n=len(db), d=db.d, gamma=4.0, c1=8.0, c2=8.0)
        params = Algorithm2Params(base, k=8, s_override=2)
        return lambda seed: LargeKScheme(
            db, params, seed=seed, one_probe_per_round=one_probe_per_round
        )

    @pytest.mark.parametrize("one_probe_per_round", [False, True])
    def test_merged_accounting_matches_merge_parallel(
        self, medium_db, medium_queries, one_probe_per_round
    ):
        from repro.cellprobe.accounting import ProbeAccountant

        factory = self._alg2_factory(medium_db, one_probe_per_round)
        boosted = BoostedScheme(factory, seeds=[0, 1, 2])
        reference = BoostedScheme(factory, seeds=[0, 1, 2])
        for x in medium_queries[:6]:
            copy_results = [c.query(x) for c in reference.copies]
            merged = ProbeAccountant()
            for r in copy_results:
                merged.merge_parallel(r.accountant)
            res = boosted.query(x)
            assert res.probes_per_round == merged.probes_per_round
            assert res.probes == merged.total_probes
            assert res.rounds == merged.total_rounds

    def test_serialized_copies_keep_singleton_rounds(self, medium_db, medium_queries):
        boosted = BoostedScheme(self._alg2_factory(medium_db, True), seeds=[0, 1])
        res = boosted.query(medium_queries[0])
        # Every merged round folds at most one probe per still-running copy.
        assert all(size <= 2 for size in res.probes_per_round)

    def test_winner_meta_keeps_copy_budget_flags(self, medium_db, medium_queries):
        boosted = BoostedScheme(self._alg2_factory(medium_db, False), seeds=[0, 1])
        res = boosted.query(medium_queries[0])
        assert "winner_meta" in res.meta
        assert "probe_budget_ok" in res.meta["winner_meta"]
        assert "round_budget_ok" in res.meta["winner_meta"]


class TestBoostingPlanlessCopies:
    """Boosting must still work over schemes without query plans
    via independent per-copy queries + merge_parallel."""

    def test_boosted_planless(self, small_db, small_queries, planless_scheme_cls):
        boosted = BoostedScheme(lambda s: planless_scheme_cls(small_db), seeds=[0, 1])
        assert not boosted.supports_plans()
        res = boosted.query(small_queries[0])
        single = planless_scheme_cls(small_db).query(small_queries[0])
        assert res.answer_index == single.answer_index
        assert res.probes == 2 * single.probes  # two copies, probes add
        assert res.rounds == single.rounds      # rounds shared
        assert res.meta["copies"] == 2

    def test_boosted_linear_scan_uses_plans(self, small_db, small_queries):
        """Baselines are plan-capable: boosting shares their rounds."""
        from repro.baselines.linear_scan import LinearScanScheme

        boosted = BoostedScheme(lambda s: LinearScanScheme(small_db), seeds=[0, 1])
        assert boosted.supports_plans()
        res = boosted.query(small_queries[0])
        single = LinearScanScheme(small_db).query(small_queries[0])
        assert res.answer_index == single.answer_index
        assert res.probes == 2 * single.probes  # two copies, probes add
        assert res.rounds == single.rounds      # rounds shared

    def test_engine_falls_back_for_boosted_planless(
        self, small_db, small_queries, planless_scheme_cls
    ):
        from repro.service import BatchQueryEngine

        boosted = BoostedScheme(lambda s: planless_scheme_cls(small_db), seeds=[0, 1])
        results = BatchQueryEngine(boosted).run(small_queries[:4])
        loop = [boosted.query(q) for q in small_queries[:4]]
        for r, l in zip(results, loop):
            assert r.answer_index == l.answer_index
            assert r.probes == l.probes
