"""Parallel-repetition boosting."""

import pytest

from repro.core.algorithm1 import SimpleKRoundScheme
from repro.core.boosting import BoostedScheme
from repro.core.params import Algorithm1Params, BaseParameters


def _factory(db, k=2, c1=6.0):
    base = BaseParameters(n=len(db), d=db.d, gamma=4.0, c1=c1)
    params = Algorithm1Params(base, k=k)
    return lambda seed: SimpleKRoundScheme(db, params, seed=seed)


class TestBoosting:
    def test_rounds_unchanged_probes_scale(self, small_db, small_queries):
        single = _factory(small_db)(0)
        boosted = BoostedScheme(_factory(small_db), seeds=[0, 1, 2])
        rs = single.query(small_queries[0])
        rb = boosted.query(small_queries[0])
        assert rb.rounds <= max(rs.rounds, boosted.copies[1].query(small_queries[0]).rounds,
                                boosted.copies[2].query(small_queries[0]).rounds)
        assert rb.probes >= rs.probes  # at least as many probes as one copy

    def test_best_answer_wins(self, small_db, small_queries):
        boosted = BoostedScheme(_factory(small_db), seeds=[0, 1, 2])
        x = small_queries[1]
        rb = boosted.query(x)
        if rb.answered:
            best = min(
                c.query(x).distance_to(x)
                for c in boosted.copies
                if c.query(x).answered
            )
            assert rb.distance_to(x) == best

    def test_success_not_worse_than_single(self, medium_db, medium_queries):
        single = _factory(medium_db)(0)
        boosted = BoostedScheme(_factory(medium_db), seeds=[0, 1, 2])
        def successes(scheme):
            count = 0
            for qi in range(10):
                res = scheme.query(medium_queries[qi])
                ratio = res.ratio(medium_db, medium_queries[qi])
                if ratio is not None and ratio <= 4.0:
                    count += 1
            return count
        assert successes(boosted) >= successes(single)

    def test_metadata(self, small_db, small_queries):
        boosted = BoostedScheme(_factory(small_db), seeds=[0, 1])
        res = boosted.query(small_queries[0])
        assert res.meta["copies"] == 2
        assert res.scheme.startswith("boosted(")

    def test_rejects_empty_seeds(self, small_db):
        with pytest.raises(ValueError):
            BoostedScheme(_factory(small_db), seeds=[])

    def test_size_report_sums_copies(self, small_db):
        boosted = BoostedScheme(_factory(small_db), seeds=[0, 1])
        single = _factory(small_db)(0)
        assert boosted.size_report().table_cells == 2 * single.size_report().table_cells
