"""Parameter derivation: τ, s, budgets, validation."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.params import (
    Algorithm1Params,
    Algorithm2Params,
    BaseParameters,
    worst_case_shrinking_rounds,
)


def _base(n=256, d=1024, gamma=4.0, **kw):
    return BaseParameters(n=n, d=d, gamma=gamma, **kw)


class TestBaseParameters:
    def test_alpha_is_sqrt_gamma(self):
        assert _base(gamma=2.25).alpha == pytest.approx(1.5)

    def test_gamma_capped_at_four(self):
        assert _base(gamma=9.0).alpha == pytest.approx(2.0)
        assert _base(gamma=9.0).effective_gamma == 4.0

    def test_levels_cover_dimension(self):
        base = _base()
        assert base.alpha**base.levels >= base.d

    def test_rejects_bad_gamma(self):
        with pytest.raises(ValueError):
            _base(gamma=1.0)

    def test_rejects_tiny_n(self):
        with pytest.raises(ValueError):
            BaseParameters(n=1, d=64)

    def test_rejects_bad_profile(self):
        with pytest.raises(ValueError):
            BaseParameters(n=10, d=64, profile="bogus")

    def test_empirical_rows_scale_with_c1(self):
        a = BaseParameters(n=1024, d=64, c1=4.0).accurate_rows
        b = BaseParameters(n=1024, d=64, c1=8.0).accurate_rows
        assert b == 2 * a

    def test_theory_rows_exceed_empirical(self):
        emp = BaseParameters(n=1024, d=64).accurate_rows
        theory = BaseParameters(n=1024, d=64, profile="theory").accurate_rows
        assert theory > emp

    def test_coarse_rows_shrink_with_s(self):
        base = _base()
        assert base.coarse_rows(4.0) < base.coarse_rows(1.0)

    def test_coarse_rows_rejects_bad_s(self):
        with pytest.raises(ValueError):
            _base().coarse_rows(0.0)


class TestWorstCaseShrinkingRounds:
    def test_gap_below_tau_needs_none(self):
        assert worst_case_shrinking_rounds(2, 3) == 0

    def test_binary_search_log(self):
        rounds = worst_case_shrinking_rounds(64, 2)
        assert rounds <= 8  # ~log2(64) plus slack

    def test_large_tau_one_round(self):
        assert worst_case_shrinking_rounds(100, 101) == 0
        assert worst_case_shrinking_rounds(100, 60) == 1

    def test_rejects_tau_one(self):
        with pytest.raises(ValueError):
            worst_case_shrinking_rounds(10, 1)

    @given(st.integers(min_value=1, max_value=5000), st.integers(min_value=2, max_value=64))
    def test_terminates_and_bounds(self, levels, tau):
        rounds = worst_case_shrinking_rounds(levels, tau)
        assert 0 <= rounds <= levels + 1


class TestAlgorithm1Params:
    def test_k1_tau_covers_all_levels(self):
        p = Algorithm1Params(_base(), k=1)
        assert p.tau > p.base.levels
        assert p.shrinking_round_budget == 0

    def test_paper_inequality_holds(self):
        for k in (1, 2, 3, 4, 6):
            p = Algorithm1Params(_base(d=4096), k=k)
            assert p.tau * (p.tau / 2.0) ** (k - 1) >= p.base.levels + 1

    def test_shrink_budget_within_k(self):
        for k in (1, 2, 3, 4, 6, 8):
            p = Algorithm1Params(_base(d=4096), k=k)
            assert p.shrinking_round_budget <= k - 1 or k == 1

    def test_tau_decreases_with_k(self):
        taus = [Algorithm1Params(_base(d=4096), k=k).tau for k in (1, 2, 3, 4)]
        assert all(b <= a for a, b in zip(taus, taus[1:]))

    def test_tau_override(self):
        p = Algorithm1Params(_base(), k=10, tau_override=2)
        assert p.tau == 2

    def test_rejects_k_zero(self):
        with pytest.raises(ValueError):
            Algorithm1Params(_base(), k=0)

    def test_rejects_tau_one(self):
        with pytest.raises(ValueError):
            Algorithm1Params(_base(), k=2, tau_override=1)

    def test_probe_budget_matches_claim_scale(self):
        """Probe budget tracks the k(log d)^{1/k} envelope within a
        constant factor."""
        for k in (1, 2, 3, 4):
            p = Algorithm1Params(_base(d=4096), k=k)
            envelope = p.theoretical_probe_curve()
            assert p.probe_budget <= 14 * envelope + 8

    def test_round_budget_at_least_one(self):
        assert Algorithm1Params(_base(), k=1).round_budget == 1


class TestAlgorithm2Params:
    def test_s_formula(self):
        p = Algorithm2Params(_base(), k=16, c=3.0)
        assert p.s_real == pytest.approx((0.25 - 1.0 / 6.0) * 16 - 0.25)
        assert p.s == math.floor(p.s_real)

    def test_rejects_small_k_without_override(self):
        with pytest.raises(ValueError):
            Algorithm2Params(_base(), k=8, c=3.0)

    def test_s_override_allows_small_k(self):
        p = Algorithm2Params(_base(), k=8, c=3.0, s_override=1)
        assert p.s == 1

    def test_rejects_c_le_2(self):
        with pytest.raises(ValueError):
            Algorithm2Params(_base(), k=16, c=2.0)

    def test_theory_strict_bound(self):
        with pytest.raises(ValueError):
            Algorithm2Params(_base(), k=30, c=3.0, theory_strict=True)
        Algorithm2Params(_base(), k=46, c=3.0, theory_strict=True)

    def test_phase_budgets(self):
        p = Algorithm2Params(_base(), k=17, c=3.0)
        assert p.phase_budget == 8
        assert p.size_shrink_budget == 2 * p.s
        assert p.gap_shrink_budget == p.phase_budget - p.size_shrink_budget

    def test_completion_cut(self):
        p = Algorithm2Params(_base(), k=17, c=3.0)
        assert p.completion_cut == max(3 * p.tau, 17)

    def test_tau_at_least_three(self):
        for k in (16, 20, 32):
            assert Algorithm2Params(_base(d=2048), k=k).tau >= 3

    def test_probe_budget_positive(self):
        p = Algorithm2Params(_base(), k=16)
        assert p.probe_budget > 0
        assert p.round_budget == 2 * p.phase_budget + 1

    def test_envelope_curve(self):
        p = Algorithm2Params(_base(d=4096), k=16, c=3.0)
        expected = 16 + (math.log2(4096) / 16) ** (3.0 / 16)
        assert p.theoretical_probe_curve() == pytest.approx(expected)
