"""Algorithm 1: correctness, budgets, invariants, adaptivity structure."""

import numpy as np
import pytest

from repro.core.algorithm1 import SimpleKRoundScheme, interpolated_levels
from repro.core.params import Algorithm1Params, BaseParameters
from repro.core.result import QueryResult
from repro.hamming.sampling import flip_random_bits, random_points


def _scheme(db, k=3, gamma=4.0, c1=8.0, seed=0):
    base = BaseParameters(n=len(db), d=db.d, gamma=gamma, c1=c1)
    return SimpleKRoundScheme(db, Algorithm1Params(base, k=k), seed=seed)


class TestInterpolatedLevels:
    def test_strictly_increasing_when_gap_ge_tau(self):
        levels = interpolated_levels(0, 20, 5)
        assert levels == sorted(set(levels))
        assert len(levels) == 4

    def test_within_bounds(self):
        levels = interpolated_levels(3, 30, 4)
        assert all(3 < v < 30 for v in levels)


class TestBudgets:
    @pytest.mark.parametrize("k", [1, 2, 3, 5])
    def test_round_and_probe_budgets_respected(self, small_db, small_queries, k):
        scheme = _scheme(small_db, k=k)
        params = scheme.params
        for qi in range(small_queries.shape[0]):
            res = scheme.query(small_queries[qi])
            assert res.rounds <= max(1, k)
            assert res.probes <= params.probe_budget

    def test_k1_is_single_round(self, small_db, small_queries):
        scheme = _scheme(small_db, k=1)
        for qi in range(6):
            res = scheme.query(small_queries[qi])
            assert res.rounds == 1

    def test_probes_shrink_as_k_grows(self, medium_db, medium_queries):
        """More rounds, fewer total probes — the headline tradeoff."""
        mean = {}
        for k in (1, 3):
            scheme = _scheme(medium_db, k=k)
            probes = [scheme.query(medium_queries[i]).probes for i in range(10)]
            mean[k] = sum(probes) / len(probes)
        assert mean[3] < mean[1]


class TestCorrectness:
    def test_success_probability_floor(self, medium_db, medium_queries):
        """γ-approximation holds for ≥ 3/4 of queries (paper: prob ≥ 2/3)."""
        scheme = _scheme(medium_db, k=3)
        ok = 0
        m = medium_queries.shape[0]
        for qi in range(m):
            res = scheme.query(medium_queries[qi])
            ratio = res.ratio(medium_db, medium_queries[qi])
            if ratio is not None and ratio <= 4.0:
                ok += 1
        assert ok / m >= 0.75

    def test_exact_member_answered_exactly(self, small_db):
        scheme = _scheme(small_db)
        res = scheme.query(small_db.row(13))
        assert res.meta["path"] == "degenerate-exact"
        assert res.answer_index == 13
        assert res.rounds == 1

    def test_distance_one_degenerate(self, small_db):
        rng = np.random.default_rng(5)
        q = flip_random_bits(rng, small_db.row(4), 1, small_db.d)
        scheme = _scheme(small_db)
        res = scheme.query(q)
        if res.meta["path"].startswith("degenerate"):
            assert res.distance_to(q) <= 1

    def test_answer_point_matches_database(self, medium_db, medium_queries):
        scheme = _scheme(medium_db)
        res = scheme.query(medium_queries[0])
        if res.answered:
            assert (res.answer_packed == medium_db.row(res.answer_index)).all()


class TestDeterminism:
    def test_same_seed_same_answer(self, small_db, small_queries):
        a = _scheme(small_db, seed=7)
        b = _scheme(small_db, seed=7)
        for qi in range(5):
            ra = a.query(small_queries[qi])
            rb = b.query(small_queries[qi])
            assert ra.answer_index == rb.answer_index
            assert ra.probes == rb.probes

    def test_different_seed_may_differ_but_valid(self, small_db, small_queries):
        a = _scheme(small_db, seed=1)
        res = a.query(small_queries[0])
        assert isinstance(res, QueryResult)


class TestStructure:
    def test_no_duplicate_addresses_within_rounds(self, medium_db, medium_queries):
        scheme = _scheme(medium_db, k=2)
        for qi in range(5):
            res = scheme.query(medium_queries[qi])
            for record in res.accountant.rounds:
                keys = [(t, a) for t, a in record.probes]
                assert len(keys) == len(set(keys))

    def test_first_round_contains_degenerate_probes(self, medium_db, medium_queries):
        scheme = _scheme(medium_db, k=2)
        res = scheme.query(medium_queries[0])
        first_tables = [t for t, _ in res.accountant.rounds[0].probes]
        assert "B0-membership" in first_tables
        assert "B1-membership" in first_tables

    def test_validation_rejects_mismatched_db(self, small_db):
        base = BaseParameters(n=len(small_db) + 1, d=small_db.d)
        with pytest.raises(ValueError):
            SimpleKRoundScheme(small_db, Algorithm1Params(base, k=2))

    def test_size_report_polynomial(self, small_db):
        scheme = _scheme(small_db)
        report = scheme.size_report()
        assert report.table_cells > 0
        assert report.word_bits == 1 + small_db.d
        # n^O(1): exponent is finite and reported.
        assert np.isfinite(report.cells_log_n(len(small_db)))

    def test_tau_2_binary_search_one_probe_rounds(self, small_db, small_queries):
        base = BaseParameters(n=len(small_db), d=small_db.d, gamma=4.0, c1=8.0)
        params = Algorithm1Params(base, k=10, tau_override=2)
        scheme = SimpleKRoundScheme(small_db, params, seed=0)
        res = scheme.query(small_queries[0])
        # Every shrinking round probes exactly tau-1 = 1 main cell.
        for record in res.accountant.rounds[1:-1]:
            assert record.size == 1
