"""Run the doctest examples embedded in public docstrings."""

import doctest

import pytest

import repro.core.algorithm1
import repro.hamming.packing
import repro.hamming.points
import repro.service.engine
import repro.sketch.parity
import repro.utils.rng

MODULES = [
    repro.hamming.packing,
    repro.hamming.points,
    repro.sketch.parity,
    repro.utils.rng,
    repro.core.algorithm1,
    repro.service.engine,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{results.failed} doctest failures in {module.__name__}"
    assert results.attempted > 0, f"no doctests collected from {module.__name__}"
