"""Word types and bit accounting."""

import numpy as np
import pytest

from repro.cellprobe.words import EMPTY, EmptyWord, IntWord, PointWord, word_bits


class TestEmpty:
    def test_singleton_equality(self):
        assert EMPTY == EmptyWord()

    def test_bits(self):
        assert word_bits(EMPTY) == 1

    def test_repr(self):
        assert repr(EMPTY) == "EMPTY"


class TestPointWord:
    def test_roundtrip(self):
        packed = np.array([5, 9], dtype=np.uint64)
        w = PointWord.from_packed(3, packed, 100)
        assert w.index == 3
        assert (w.packed_array() == packed).all()

    def test_hashable(self):
        w1 = PointWord.from_packed(1, np.array([2], dtype=np.uint64), 10)
        w2 = PointWord.from_packed(1, np.array([2], dtype=np.uint64), 10)
        assert hash(w1) == hash(w2)
        assert w1 == w2

    def test_bits_are_d_plus_tag(self):
        w = PointWord.from_packed(0, np.array([0], dtype=np.uint64), 33)
        assert word_bits(w) == 34


class TestIntWord:
    def test_value_range_enforced(self):
        IntWord(0, 5)
        IntWord(5, 5)
        with pytest.raises(ValueError):
            IntWord(6, 5)
        with pytest.raises(ValueError):
            IntWord(-1, 5)

    def test_bits(self):
        assert word_bits(IntWord(3, 7)) == 1 + 3
        assert word_bits(IntWord(0, 1)) == 1 + 1


class TestWordBits:
    def test_rejects_non_word(self):
        with pytest.raises(TypeError):
            word_bits("not a word")
