"""Lazy and dict tables: determinism, caching, word validation."""

import pytest

from repro.cellprobe.table import DictTable, LazyTable
from repro.cellprobe.words import EMPTY, IntWord


class TestLazyTable:
    def _make(self, calls):
        def content(addr):
            calls.append(addr)
            return IntWord(addr % 5, 5)

        return LazyTable("T", logical_cells=100, word_size_bits=8, content_fn=content)

    def test_content_memoized(self):
        calls = []
        table = self._make(calls)
        a = table.read(3)
        b = table.read(3)
        assert a == b
        assert calls == [3]

    def test_cached_cells_counts(self):
        calls = []
        table = self._make(calls)
        table.read(1)
        table.read(2)
        table.read(1)
        assert table.cached_cells() == 2

    def test_determinism_across_instances(self):
        t1 = self._make([])
        t2 = self._make([])
        assert t1.read(4) == t2.read(4)

    def test_clear_cache_recomputes_consistently(self):
        calls = []
        table = self._make(calls)
        first = table.read(2)
        table.clear_cache()
        second = table.read(2)
        assert first == second
        assert len(calls) == 2

    def test_word_size_validated(self):
        table = LazyTable(
            "T", logical_cells=4, word_size_bits=2,
            content_fn=lambda a: IntWord(100, 1000),
        )
        with pytest.raises(ValueError):
            table.read(0)

    def test_word_validation_can_be_disabled(self):
        table = LazyTable(
            "T", logical_cells=4, word_size_bits=2,
            content_fn=lambda a: IntWord(100, 1000), validate_words=False,
        )
        assert table.read(0).value == 100

    def test_size_bits(self):
        table = self._make([])
        assert table.size_bits() == 100 * 8


class TestDictTable:
    def test_store_and_read(self):
        table = DictTable("D", logical_cells=10, word_size_bits=4)
        table.store("a", IntWord(1, 3))
        assert table.read("a").value == 1

    def test_default_for_missing(self):
        table = DictTable("D", 10, 4, default=EMPTY)
        assert table.read("missing") == EMPTY

    def test_stored_cells(self):
        table = DictTable("D", 10, 4)
        table.store(1, EMPTY)
        table.store(2, EMPTY)
        assert table.stored_cells() == 2
