"""ProbeSession: round semantics and duplicate detection."""

from repro.cellprobe.accounting import ProbeAccountant
from repro.cellprobe.session import ProbeRequest, ProbeSession
from repro.cellprobe.table import DictTable
from repro.cellprobe.words import EMPTY, IntWord


def _table():
    t = DictTable("T", 10, 8, default=EMPTY)
    for i in range(5):
        t.store(i, IntWord(i, 10))
    return t


class TestParallelRead:
    def test_contents_in_request_order(self):
        t = _table()
        session = ProbeSession(ProbeAccountant())
        out = session.parallel_read([ProbeRequest(t, 2), ProbeRequest(t, 0)])
        assert out[0].value == 2
        assert out[1].value == 0

    def test_one_round_per_call(self):
        t = _table()
        acc = ProbeAccountant()
        session = ProbeSession(acc)
        session.parallel_read([ProbeRequest(t, 1), ProbeRequest(t, 2)])
        session.parallel_read([ProbeRequest(t, 3)])
        assert acc.total_rounds == 2
        assert acc.probes_per_round == [2, 1]

    def test_empty_request_opens_no_round(self):
        acc = ProbeAccountant()
        session = ProbeSession(acc)
        assert session.parallel_read([]) == []
        assert acc.total_rounds == 0

    def test_duplicates_flagged(self):
        t = _table()
        session = ProbeSession(ProbeAccountant())
        session.parallel_read([ProbeRequest(t, 1), ProbeRequest(t, 1)])
        assert session.last_round_had_duplicates

    def test_no_duplicates_not_flagged(self):
        t = _table()
        session = ProbeSession(ProbeAccountant())
        session.parallel_read([ProbeRequest(t, 1), ProbeRequest(t, 2)])
        assert not session.last_round_had_duplicates

    def test_read_one(self):
        t = _table()
        acc = ProbeAccountant()
        session = ProbeSession(acc)
        out = session.read_one(t, 4)
        assert out.value == 4
        assert acc.total_probes == 1
        assert acc.total_rounds == 1

    def test_missing_address_returns_default(self):
        t = _table()
        session = ProbeSession(ProbeAccountant())
        assert session.read_one(t, 99) == EMPTY
