"""SchemeSizeReport accounting and CellProbingScheme conveniences."""

import numpy as np
import pytest

from repro.cellprobe.scheme import SchemeSizeReport
from repro.core.algorithm1 import SimpleKRoundScheme
from repro.core.params import Algorithm1Params, BaseParameters


class TestSizeReport:
    def test_total_bits(self):
        report = SchemeSizeReport(table_cells=100, word_bits=8)
        assert report.total_bits == 800

    def test_cells_log_n_small(self):
        report = SchemeSizeReport(table_cells=10_000, word_bits=8)
        assert report.cells_log_n(100) == pytest.approx(2.0, rel=1e-6)

    def test_cells_log_n_bigint(self):
        """Astronomically large exact cell counts must not overflow."""
        report = SchemeSizeReport(table_cells=1 << 500, word_bits=8)
        assert report.cells_log_n(2) == pytest.approx(500.0, rel=1e-9)

    def test_cells_log_n_degenerate_n(self):
        report = SchemeSizeReport(table_cells=100, word_bits=8)
        assert np.isnan(report.cells_log_n(1))


class TestQueryMany:
    def test_batch_matches_singles(self, small_db, small_queries):
        base = BaseParameters(n=len(small_db), d=small_db.d, gamma=4.0, c1=8.0)
        scheme = SimpleKRoundScheme(small_db, Algorithm1Params(base, k=2), seed=0)
        batch = scheme.query_many(small_queries[:4])
        singles = [scheme.query(small_queries[i]) for i in range(4)]
        assert [r.answer_index for r in batch] == [r.answer_index for r in singles]

    def test_single_row_input(self, small_db, small_queries):
        base = BaseParameters(n=len(small_db), d=small_db.d, gamma=4.0, c1=8.0)
        scheme = SimpleKRoundScheme(small_db, Algorithm1Params(base, k=2), seed=0)
        out = scheme.query_many(small_queries[0])
        assert len(out) == 1

    def test_rounds_property(self, small_db):
        base = BaseParameters(n=len(small_db), d=small_db.d, gamma=4.0, c1=8.0)
        scheme = SimpleKRoundScheme(small_db, Algorithm1Params(base, k=2), seed=0)
        assert scheme.rounds == 2
