"""Probe/round accounting and budgets."""

import pytest

from repro.cellprobe.accounting import ProbeAccountant, ProbeBudgetExceeded


class TestRecording:
    def test_counts(self):
        acc = ProbeAccountant()
        r1 = acc.begin_round()
        acc.charge(r1, "T0", 1)
        acc.charge(r1, "T0", 2)
        r2 = acc.begin_round()
        acc.charge(r2, "T1", 3)
        assert acc.total_probes == 3
        assert acc.total_rounds == 2
        assert acc.probes_per_round == [2, 1]

    def test_empty_round_not_counted_as_round(self):
        acc = ProbeAccountant()
        acc.begin_round()
        assert acc.total_rounds == 0
        assert acc.total_probes == 0

    def test_as_dict(self):
        acc = ProbeAccountant()
        r = acc.begin_round()
        acc.charge(r, "T", "a")
        summary = acc.as_dict()
        assert summary["total_probes"] == 1
        assert summary["total_rounds"] == 1


class TestBudgets:
    def test_round_budget_enforced(self):
        acc = ProbeAccountant(max_rounds=1)
        acc.begin_round()
        with pytest.raises(ProbeBudgetExceeded):
            acc.begin_round()

    def test_probe_budget_enforced(self):
        acc = ProbeAccountant(max_probes=2)
        r = acc.begin_round()
        acc.charge(r, "T", 1)
        acc.charge(r, "T", 2)
        with pytest.raises(ProbeBudgetExceeded):
            acc.charge(r, "T", 3)

    def test_budget_boundary_allowed(self):
        acc = ProbeAccountant(max_rounds=2, max_probes=2)
        r1 = acc.begin_round()
        acc.charge(r1, "T", 1)
        r2 = acc.begin_round()
        acc.charge(r2, "T", 2)
        assert acc.total_probes == 2


class TestMergeParallel:
    def test_rounds_align(self):
        a = ProbeAccountant()
        b = ProbeAccountant()
        ra = a.begin_round()
        a.charge(ra, "T", 1)
        rb1 = b.begin_round()
        b.charge(rb1, "T", 2)
        rb2 = b.begin_round()
        b.charge(rb2, "T", 3)
        a.merge_parallel(b)
        assert a.probes_per_round == [2, 1]
        assert a.total_rounds == 2  # parallel copies add probes, not rounds

    def test_merge_into_empty(self):
        a = ProbeAccountant()
        b = ProbeAccountant()
        r = b.begin_round()
        b.charge(r, "T", 1)
        a.merge_parallel(b)
        assert a.total_probes == 1
        assert a.total_rounds == 1
