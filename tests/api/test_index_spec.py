"""IndexSpec: validation, immutability, presets, round-tripping."""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.api import PRESETS, IndexSpec


class TestValidation:
    def test_minimal_spec(self):
        spec = IndexSpec(scheme="algorithm1")
        assert spec.scheme == "algorithm1"
        assert dict(spec.params) == {}
        assert spec.seed is None
        assert spec.boost == 1

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ValueError, match="unknown scheme"):
            IndexSpec(scheme="bogus")

    def test_empty_scheme_rejected(self):
        with pytest.raises(ValueError):
            IndexSpec(scheme="")

    def test_unknown_param_rejected_with_accepted_list(self):
        with pytest.raises(ValueError, match="accepts no parameter"):
            IndexSpec(scheme="algorithm1", params={"bogus_knob": 1})

    def test_param_of_other_scheme_rejected(self):
        # "rounds" belongs to the algorithms, not to linear-scan.
        with pytest.raises(ValueError, match="accepts no parameter"):
            IndexSpec(scheme="linear-scan", params={"rounds": 2})

    def test_boost_must_be_positive(self):
        with pytest.raises(ValueError, match="boost"):
            IndexSpec(scheme="algorithm1", boost=0)

    def test_resolved_params_merge_defaults(self):
        spec = IndexSpec(scheme="algorithm1", params={"rounds": 5})
        resolved = spec.resolved_params()
        assert resolved["rounds"] == 5
        assert resolved["gamma"] == 4.0  # registered default


class TestImmutability:
    def test_fields_frozen(self):
        spec = IndexSpec(scheme="algorithm1")
        with pytest.raises(dataclasses.FrozenInstanceError):
            spec.scheme = "algorithm2"

    def test_params_mapping_frozen(self):
        spec = IndexSpec(scheme="algorithm1", params={"rounds": 3})
        with pytest.raises(TypeError):
            spec.params["rounds"] = 4

    def test_caller_dict_not_aliased(self):
        params = {"rounds": 3}
        spec = IndexSpec(scheme="algorithm1", params=params)
        params["rounds"] = 9
        assert spec.params["rounds"] == 3

    def test_hashable_and_equality(self):
        a = IndexSpec(scheme="algorithm1", params={"rounds": 3}, seed=7)
        b = IndexSpec(scheme="algorithm1", params={"rounds": 3}, seed=7)
        c = IndexSpec(scheme="algorithm1", params={"rounds": 4}, seed=7)
        assert a == b and hash(a) == hash(b)
        assert a != c

    def test_replace_revalidates(self):
        spec = IndexSpec(scheme="algorithm1", params={"rounds": 3})
        assert spec.replace(seed=9).seed == 9
        with pytest.raises(ValueError):
            # carried-over {"rounds": 3} is not a linear-scan parameter
            spec.replace(scheme="linear-scan")


class TestRoundTrip:
    def test_to_dict_from_dict_identity(self):
        spec = IndexSpec(
            scheme="algorithm2", params={"rounds": 8, "s": 2}, seed=11, boost=2
        )
        assert IndexSpec.from_dict(spec.to_dict()) == spec

    def test_to_dict_is_json_serializable(self):
        spec = IndexSpec(scheme="lsh", params={"mode": "adaptive"}, seed=3)
        assert IndexSpec.from_dict(json.loads(json.dumps(spec.to_dict()))) == spec

    def test_pickle_and_deepcopy(self):
        import copy
        import pickle

        spec = IndexSpec(scheme="algorithm1", params={"rounds": 3}, seed=7, boost=2)
        assert pickle.loads(pickle.dumps(spec)) == spec
        assert copy.deepcopy(spec) == spec

    def test_params_none_means_empty(self):
        spec = IndexSpec(scheme="algorithm1", params=None)
        assert dict(spec.params) == {}

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown IndexSpec field"):
            IndexSpec.from_dict({"scheme": "algorithm1", "typo": 1})

    def test_from_dict_defaults(self):
        spec = IndexSpec.from_dict({"scheme": "linear-scan"})
        assert spec.seed is None and spec.boost == 1 and dict(spec.params) == {}


class TestPresets:
    @pytest.mark.parametrize("name", sorted(PRESETS))
    def test_every_preset_is_valid(self, name):
        spec = IndexSpec.preset(name, seed=1)
        assert spec.seed == 1
        assert spec.scheme in ("algorithm1", "algorithm2")

    def test_paper_preset_shape(self):
        spec = IndexSpec.preset("paper")
        assert spec.params["rounds"] == 3 and spec.boost == 1

    def test_high_recall_preset_boosts(self):
        assert IndexSpec.preset("high-recall").boost > 1

    def test_preset_overrides(self):
        spec = IndexSpec.preset("fast", rounds=2, boost=4)
        assert spec.params["rounds"] == 2 and spec.boost == 4

    def test_unknown_preset(self):
        with pytest.raises(ValueError, match="unknown preset"):
            IndexSpec.preset("bogus")
