"""The scheme registry: every scheme buildable by name, and for every
registered scheme ``query_batch`` is bitwise-identical to a sequential
``query`` loop on a planted workload (the acceptance criterion of the
unified construction surface)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import registry
from repro.api import IndexSpec
from repro.core.index import ANNIndex
from repro.hamming.points import PackedPoints
from repro.hamming.sampling import flip_random_bits, random_points


@pytest.fixture(scope="module")
def planted_64():
    """n=96, d=128 planted workload with 64 queries."""
    gen = np.random.default_rng(2016)
    n, d = 96, 128
    db = PackedPoints(random_points(gen, n, d), d)
    queries = np.vstack(
        [
            flip_random_bits(
                gen, db.row(int(gen.integers(0, n))), int(gen.integers(0, 12)), d
            )
            for _ in range(64)
        ]
    )
    return db, queries


def assert_results_identical(seq, bat):
    assert len(seq) == len(bat)
    for s, b in zip(seq, bat):
        assert s.answer_index == b.answer_index
        assert s.probes == b.probes
        assert s.rounds == b.rounds
        assert s.probes_per_round == b.probes_per_round
        assert s.scheme == b.scheme
        if s.answer_packed is None:
            assert b.answer_packed is None
        else:
            assert np.array_equal(s.answer_packed, b.answer_packed)


class TestRegistryContents:
    def test_at_least_six_schemes(self):
        assert len(registry.available_schemes()) >= 6

    def test_core_and_all_baselines_registered(self):
        names = set(registry.available_schemes())
        assert {
            "algorithm1",
            "algorithm2",
            "lsh",
            "data-dependent-lsh",
            "linear-scan",
            "fully-adaptive",
        } <= names

    def test_unknown_scheme_error_lists_known(self):
        with pytest.raises(ValueError, match="available:"):
            registry.get_scheme("bogus")

    def test_defaults_are_copies(self):
        a = registry.scheme_defaults("algorithm1")
        a["rounds"] = 99
        assert registry.scheme_defaults("algorithm1")["rounds"] != 99

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            registry.register_scheme("algorithm1")(lambda db, spec, rng: None)

    def test_registry_rows_cover_every_scheme(self):
        rows = registry.registry_rows()
        assert [r["scheme"] for r in rows] == registry.available_schemes()
        assert all(r["description"] for r in rows)


class TestBuildScheme:
    def test_build_by_name(self, planted_64):
        db, _ = planted_64
        scheme = registry.build_scheme(db, IndexSpec(scheme="linear-scan", seed=7))
        assert scheme.scheme_name == "linear-scan"

    def test_seed_reproducibility(self, planted_64):
        db, queries = planted_64
        spec = IndexSpec(scheme="algorithm1", params={"rounds": 3}, seed=21)
        a = registry.build_scheme(db, spec)
        b = registry.build_scheme(db, spec)
        for q in queries[:8]:
            assert a.query(q).answer_index == b.query(q).answer_index

    def test_boost_wraps_in_boosted_scheme(self, planted_64):
        db, _ = planted_64
        scheme = registry.build_scheme(
            db, IndexSpec(scheme="algorithm1", params={"rounds": 2}, seed=7, boost=3)
        )
        assert scheme.scheme_name.startswith("boosted(")
        assert len(scheme.copies) == 3


class TestEverySchemeBatchesIdentically:
    """The headline acceptance loop: for every registered scheme,
    ``ANNIndex.from_spec(db, IndexSpec(scheme=name, seed=7))`` builds and
    ``query_batch`` on the 64-query planted workload returns results
    bitwise-identical to a sequential ``query`` loop."""

    @pytest.fixture(
        scope="class",
        params=sorted(registry.available_schemes()),
    )
    def scheme_name(self, request):
        return request.param

    def test_default_spec_batches_identically(self, planted_64, scheme_name):
        db, queries = planted_64
        index = ANNIndex.from_spec(db, IndexSpec(scheme=scheme_name, seed=7))
        seq = [index.query_packed(q) for q in queries]
        bat = index.query_batch(queries)
        assert_results_identical(seq, bat)

    def test_boosted_spec_batches_identically(self, planted_64, scheme_name):
        db, queries = planted_64
        index = ANNIndex.from_spec(
            db, IndexSpec(scheme=scheme_name, seed=7, boost=2)
        )
        seq = [index.query_packed(q) for q in queries[:16]]
        bat = index.query_batch(queries[:16])
        assert_results_identical(seq, bat)
