"""Tests for the deterministic RNG tree."""

import numpy as np

from repro.utils.rng import RngTree, _spawn_seeds, as_generator, spawn_generators


class TestRngTree:
    def test_same_path_same_stream(self):
        tree = RngTree(42)
        a = tree.generator("x", 1).integers(0, 2**32, 8)
        b = tree.generator("x", 1).integers(0, 2**32, 8)
        assert (a == b).all()

    def test_different_paths_differ(self):
        tree = RngTree(42)
        a = tree.generator("x", 1).integers(0, 2**32, 8)
        b = tree.generator("x", 2).integers(0, 2**32, 8)
        assert not (a == b).all()

    def test_same_seed_reproducible_across_instances(self):
        a = RngTree(7).generator("s").integers(0, 2**32, 8)
        b = RngTree(7).generator("s").integers(0, 2**32, 8)
        assert (a == b).all()

    def test_different_seeds_differ(self):
        a = RngTree(7).generator("s").integers(0, 2**32, 8)
        b = RngTree(8).generator("s").integers(0, 2**32, 8)
        assert not (a == b).all()

    def test_child_tree_independent_of_sibling(self):
        tree = RngTree(3)
        a = tree.child("left").generator("g").integers(0, 2**32, 8)
        b = tree.child("right").generator("g").integers(0, 2**32, 8)
        assert not (a == b).all()

    def test_child_tree_deterministic(self):
        a = RngTree(3).child("left").generator("g").integers(0, 2**32, 8)
        b = RngTree(3).child("left").generator("g").integers(0, 2**32, 8)
        assert (a == b).all()

    def test_from_generator(self):
        tree = RngTree(np.random.default_rng(0))
        assert isinstance(tree.root_entropy, int)

    def test_from_generator_does_not_mutate_caller(self):
        # Regression: seeding a tree from a Generator used to draw from it,
        # silently advancing the caller's stream.
        g = np.random.default_rng(123)
        expected = np.random.default_rng(123).integers(0, 2**32, 8)
        RngTree(g)
        assert (g.integers(0, 2**32, 8) == expected).all()

    def test_from_generator_entropy_matches_plain_draw(self):
        # The derived entropy is still the value a plain draw would give,
        # so existing seed derivations are unchanged.
        tree = RngTree(np.random.default_rng(11))
        expected = int(np.random.default_rng(11).integers(0, 2**63 - 1))
        assert tree.root_entropy == expected

    def test_numeric_path_components(self):
        tree = RngTree(5)
        a = tree.generator(0, 1).integers(0, 2**32, 4)
        b = tree.generator("0", "1").integers(0, 2**32, 4)
        assert (a == b).all()  # paths stringify


class TestHelpers:
    def test_as_generator_from_int(self):
        g = as_generator(5)
        assert isinstance(g, np.random.Generator)

    def test_as_generator_passthrough(self):
        g = np.random.default_rng(1)
        assert as_generator(g) is g

    def test_spawn_generators_count_and_independence(self):
        gens = spawn_generators(9, 3)
        assert len(gens) == 3
        vals = [g.integers(0, 2**32, 4) for g in gens]
        assert not (vals[0] == vals[1]).all()

    def test_spawn_generators_deterministic(self):
        a = [g.integers(0, 2**32, 4) for g in spawn_generators(9, 3)]
        b = [g.integers(0, 2**32, 4) for g in spawn_generators(9, 3)]
        for x, y in zip(a, b):
            assert (x == y).all()

    def test_spawn_seeds_without_seed_seq_attribute(self):
        # Regression: spawn_generators assumed bit_generator.seed_seq
        # exists; generator-likes without one must fall back gracefully.
        class _BareBitGen:
            pass  # no seed_seq

        class _GeneratorLike:
            bit_generator = _BareBitGen()

            def __init__(self):
                self._inner = np.random.default_rng(77)

            def integers(self, *args, **kwargs):
                return self._inner.integers(*args, **kwargs)

        seeds = _spawn_seeds(_GeneratorLike(), 4)
        assert len(seeds) == 4
        # The fallback is deterministic for a deterministic root.
        again = _spawn_seeds(_GeneratorLike(), 4)
        a = [np.random.default_rng(s).integers(0, 2**32, 4) for s in seeds]
        b = [np.random.default_rng(s).integers(0, 2**32, 4) for s in again]
        for x, y in zip(a, b):
            assert (x == y).all()
        assert not (a[0] == a[1]).all()
