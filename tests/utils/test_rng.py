"""Tests for the deterministic RNG tree."""

import numpy as np

from repro.utils.rng import RngTree, as_generator, spawn_generators


class TestRngTree:
    def test_same_path_same_stream(self):
        tree = RngTree(42)
        a = tree.generator("x", 1).integers(0, 2**32, 8)
        b = tree.generator("x", 1).integers(0, 2**32, 8)
        assert (a == b).all()

    def test_different_paths_differ(self):
        tree = RngTree(42)
        a = tree.generator("x", 1).integers(0, 2**32, 8)
        b = tree.generator("x", 2).integers(0, 2**32, 8)
        assert not (a == b).all()

    def test_same_seed_reproducible_across_instances(self):
        a = RngTree(7).generator("s").integers(0, 2**32, 8)
        b = RngTree(7).generator("s").integers(0, 2**32, 8)
        assert (a == b).all()

    def test_different_seeds_differ(self):
        a = RngTree(7).generator("s").integers(0, 2**32, 8)
        b = RngTree(8).generator("s").integers(0, 2**32, 8)
        assert not (a == b).all()

    def test_child_tree_independent_of_sibling(self):
        tree = RngTree(3)
        a = tree.child("left").generator("g").integers(0, 2**32, 8)
        b = tree.child("right").generator("g").integers(0, 2**32, 8)
        assert not (a == b).all()

    def test_child_tree_deterministic(self):
        a = RngTree(3).child("left").generator("g").integers(0, 2**32, 8)
        b = RngTree(3).child("left").generator("g").integers(0, 2**32, 8)
        assert (a == b).all()

    def test_from_generator(self):
        tree = RngTree(np.random.default_rng(0))
        assert isinstance(tree.root_entropy, int)

    def test_numeric_path_components(self):
        tree = RngTree(5)
        a = tree.generator(0, 1).integers(0, 2**32, 4)
        b = tree.generator("0", "1").integers(0, 2**32, 4)
        assert (a == b).all()  # paths stringify


class TestHelpers:
    def test_as_generator_from_int(self):
        g = as_generator(5)
        assert isinstance(g, np.random.Generator)

    def test_as_generator_passthrough(self):
        g = np.random.default_rng(1)
        assert as_generator(g) is g

    def test_spawn_generators_count_and_independence(self):
        gens = spawn_generators(9, 3)
        assert len(gens) == 3
        vals = [g.integers(0, 2**32, 4) for g in gens]
        assert not (vals[0] == vals[1]).all()
