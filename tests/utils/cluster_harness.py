"""Chaos/equivalence machinery for the distributed serving tests.

Builds on :class:`repro.service.harness.ClusterHarness` (the subprocess
spawner) and adds what only tests need: the **single-process oracle**
(a :class:`~repro.service.sharded.ShardedANNIndex` loaded from the same
snapshot the shard servers serve) and a deterministic, seeded **chaos
schedule** that interleaves queries, inserts, and deletes with a
replica kill + restart at seeded points — asserting after every step
that the cluster's answers are *bitwise identical* (answer ids, probe
and round accounting, scheme label, distance, merged metadata) to the
oracle applying the same write history.

``run_chaos`` is the single entry point the hypothesis property test
drives; ``assert_query_equivalent`` is reused by the gating smoke test.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.service.harness import ClusterHarness
from repro.service.server import _jsonable, _query_distance, _result_response
from repro.service.sharded import ShardedANNIndex
from repro.hamming.packing import pack_bits

__all__ = [
    "assert_query_equivalent",
    "build_sharded_snapshot",
    "oracle_wire_result",
    "remote_wire_result",
    "run_chaos",
]


def build_sharded_snapshot(path, n=80, d=256, shards=2, seed=11, workload_seed=3):
    """Build a small planted-workload sharded index, snapshot it, and
    return ``(snapshot_path, queries_as_bit_lists)``."""
    from repro.api import IndexSpec
    from repro.hamming.packing import unpack_bits
    from repro.workloads.spec import WorkloadSpec, make_workload

    wl = make_workload(
        "planted",
        WorkloadSpec(n=n, d=d, num_queries=8, seed=workload_seed),
        max_flips=max(1, d // 32),
    )
    spec = IndexSpec(scheme="algorithm1", params={"rounds": 2}, seed=seed)
    index = ShardedANNIndex.build(wl.database, spec, shards=shards)
    snapshot = index.save(path)
    queries = [
        [int(b) for b in unpack_bits(row[None, :], d)[0]] for row in wl.queries
    ]
    return snapshot, queries


def oracle_wire_result(oracle: ShardedANNIndex, bits) -> dict:
    """Exactly the wire response a single-process ``repro serve`` of the
    oracle would produce for this query (same helpers, same shapes)."""
    arr = np.asarray(bits, dtype=np.uint8)
    row = pack_bits(arr, oracle.d)
    result = oracle.query(row)
    return _result_response(result, distance=_query_distance(row, result))


def remote_wire_result(remote) -> dict:
    """A :class:`~repro.service.client.RemoteResult` as the same dict
    shape, for field-by-field comparison against the oracle."""
    return {
        "ok": True,
        "answered": remote.answered,
        "answer_index": remote.answer_index,
        "probes": remote.probes,
        "rounds": remote.rounds,
        "probes_per_round": list(remote.probes_per_round),
        "scheme": remote.scheme,
        "distance": remote.distance,
        "meta": remote.meta,
    }


def assert_query_equivalent(client, oracle: ShardedANNIndex, bits) -> None:
    """One query through the cluster and the oracle must match bitwise —
    answers *and* accounting *and* merged metadata."""
    expected = _jsonable(oracle_wire_result(oracle, bits))
    actual = remote_wire_result(client.query(bits))
    assert actual == expected, (
        f"cluster diverged from the single-process oracle:\n"
        f"  cluster: {actual}\n  oracle:  {expected}"
    )


def _live_ids(oracle: ShardedANNIndex) -> List[int]:
    return [g for g in range(oracle.id_space) if oracle.is_live(g)]


def run_chaos(
    snapshot,
    seed: int,
    steps: int = 12,
    replicas: int = 2,
    health_interval: float = 0.2,
    router_timeout: float = 2.0,
) -> dict:
    """One seeded chaos episode; returns counters for reporting.

    The schedule interleaves queries (compared bitwise after every
    completed one), inserts, and deletes; at a seeded step one seeded
    replica is SIGKILLed, at a later seeded step it is restarted and
    caught up.  The episode ends by killing the *sibling* replica of the
    restarted one, so the final queries are answered by the caught-up
    replica alone — pinning that catch-up replay reproduces the exact
    state, not just approximately.
    """
    rng = np.random.default_rng(seed)
    oracle = ShardedANNIndex.load(snapshot)
    d = oracle.d
    shards = oracle.num_shards
    kill_at = int(rng.integers(0, steps))
    restart_at = int(rng.integers(kill_at + 1, steps + 1))
    target: Tuple[int, int] = (
        int(rng.integers(0, shards)),
        int(rng.integers(0, replicas)),
    )
    counts = {"queries": 0, "inserts": 0, "deletes": 0, "recovery_s": None}

    def random_query():
        if rng.random() < 0.5:  # planted near a live row: nontrivial answers
            live = _live_ids(oracle)
            gid = int(live[int(rng.integers(0, len(live)))] if live else 0)
            si, local = oracle._locate(gid)
            words = oracle.shards[si].database.words
            # memtable rows are not in .database; fall back to random bits
            if local < words.shape[0]:
                from repro.hamming.packing import unpack_bits

                bits = unpack_bits(words[local][None, :], d)[0].astype(np.uint8)
                flips = rng.integers(0, d, size=int(rng.integers(0, d // 16)))
                bits = bits.copy()
                bits[flips] ^= 1
                return [int(b) for b in bits]
        return [int(b) for b in rng.integers(0, 2, size=d, dtype=np.uint8)]

    with ClusterHarness(
        snapshot,
        replicas=replicas,
        health_interval=health_interval,
        router_timeout=router_timeout,
    ) as cluster:
        with cluster.connect() as client:
            for step in range(steps):
                if step == kill_at:
                    cluster.kill_replica(*target)
                if step == restart_at:
                    cluster.restart_replica(*target)
                    counts["recovery_s"] = cluster.wait_replica_alive(*target)
                roll = rng.random()
                if roll < 0.55:
                    assert_query_equivalent(client, oracle, random_query())
                    counts["queries"] += 1
                elif roll < 0.8:
                    pts = rng.integers(
                        0, 2, size=(int(rng.integers(1, 4)), d), dtype=np.uint8
                    )
                    remote_ids = client.insert(pts.tolist())
                    local_ids = oracle.insert(pts)
                    assert remote_ids == local_ids, (remote_ids, local_ids)
                    counts["inserts"] += 1
                else:
                    live = _live_ids(oracle)
                    if len(live) <= 2:
                        continue
                    k = int(rng.integers(1, min(3, len(live) - 1) + 1))
                    picked = [
                        int(i) for i in rng.choice(live, size=k, replace=False)
                    ]
                    deleted = client.delete(picked)
                    assert deleted == oracle.delete(picked) == k
                    counts["deletes"] += 1
            if restart_at >= steps:
                cluster.restart_replica(*target)
                counts["recovery_s"] = cluster.wait_replica_alive(*target)
            # The caught-up replica must now answer *alone*, identically.
            if replicas > 1:
                si, ri = target
                for sibling in range(replicas):
                    if sibling != ri:
                        cluster.kill_replica(si, sibling)
                for _ in range(3):
                    assert_query_equivalent(client, oracle, random_query())
                    counts["queries"] += 1
    return counts
