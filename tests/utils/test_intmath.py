"""Unit and property tests for repro.utils.intmath."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils.intmath import (
    ceil_div,
    ceil_log,
    ceil_pow2,
    ilog2_ceil,
    ilog2_floor,
    num_levels,
)


class TestCeilDiv:
    def test_exact(self):
        assert ceil_div(12, 4) == 3

    def test_round_up(self):
        assert ceil_div(13, 4) == 4

    def test_one(self):
        assert ceil_div(1, 64) == 1

    def test_zero_numerator(self):
        assert ceil_div(0, 5) == 0

    def test_rejects_nonpositive_divisor(self):
        with pytest.raises(ValueError):
            ceil_div(3, 0)

    @given(st.integers(min_value=0, max_value=10**9), st.integers(min_value=1, max_value=10**6))
    def test_matches_math(self, a, b):
        assert ceil_div(a, b) == math.ceil(a / b)


class TestIlog2:
    def test_floor_powers(self):
        for e in range(0, 60):
            assert ilog2_floor(1 << e) == e

    def test_ceil_powers(self):
        for e in range(0, 60):
            assert ilog2_ceil(1 << e) == e

    def test_floor_between(self):
        assert ilog2_floor(5) == 2

    def test_ceil_between(self):
        assert ilog2_ceil(5) == 3

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            ilog2_floor(0)
        with pytest.raises(ValueError):
            ilog2_ceil(-1)

    @given(st.integers(min_value=1, max_value=2**62))
    def test_floor_ceil_consistent(self, x):
        f, c = ilog2_floor(x), ilog2_ceil(x)
        assert 2**f <= x <= 2**c
        assert c - f in (0, 1)


class TestCeilPow2:
    def test_exact_power(self):
        assert ceil_pow2(64) == 64

    def test_round_up(self):
        assert ceil_pow2(65) == 128

    def test_one(self):
        assert ceil_pow2(1) == 1

    def test_zero_clamps(self):
        assert ceil_pow2(0) == 1


class TestCeilLog:
    def test_exact_integer_power(self):
        # The float-naive computation can be off by one here.
        assert ceil_log(8.0, 2.0) == 3
        assert ceil_log(2**40, 2.0) == 40

    def test_round_up(self):
        assert ceil_log(9.0, 2.0) == 4

    def test_one(self):
        assert ceil_log(1.0, 2.0) == 0

    def test_fractional_base(self):
        # log_{sqrt(2)}(256) = 16 exactly.
        assert ceil_log(256.0, math.sqrt(2.0)) == 16

    def test_rejects_bad_base(self):
        with pytest.raises(ValueError):
            ceil_log(4.0, 1.0)

    def test_rejects_small_x(self):
        with pytest.raises(ValueError):
            ceil_log(0.5, 2.0)

    @given(
        st.integers(min_value=1, max_value=10**9),
        st.floats(min_value=1.1, max_value=16.0, allow_nan=False),
    )
    def test_definition(self, x, base):
        c = ceil_log(float(x), base)
        assert base**c >= x * (1 - 1e-12)
        if c > 0:
            assert base ** (c - 1) < x * (1 + 1e-9)


class TestNumLevels:
    def test_alpha_two(self):
        assert num_levels(256, 2.0) == 8

    def test_alpha_sqrt2(self):
        assert num_levels(256, math.sqrt(2.0)) == 16

    def test_rejects_tiny_dimension(self):
        with pytest.raises(ValueError):
            num_levels(1, 2.0)

    def test_top_level_covers_diameter(self):
        for d in (16, 100, 4096):
            for alpha in (1.3, math.sqrt(2), 2.0):
                L = num_levels(d, alpha)
                assert alpha**L >= d
