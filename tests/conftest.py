"""Shared fixtures: small, fast databases and query batches."""

from __future__ import annotations

import sys
from pathlib import Path

import numpy as np
import pytest

# tests/ has no package __init__; make the shared test utilities under
# tests/utils importable (``import cluster_harness``) from any test.
sys.path.insert(0, str(Path(__file__).resolve().parent / "utils"))

from repro.core.params import BaseParameters
from repro.hamming.points import PackedPoints
from repro.hamming.sampling import flip_random_bits, random_points


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def small_db():
    """n=120, d=128 uniform database (session-scoped: read-only)."""
    gen = np.random.default_rng(7)
    return PackedPoints(random_points(gen, 120, 128), 128)


@pytest.fixture(scope="session")
def medium_db():
    """n=300, d=512 uniform database (session-scoped: read-only)."""
    gen = np.random.default_rng(11)
    return PackedPoints(random_points(gen, 300, 512), 512)


@pytest.fixture(scope="session")
def small_base(small_db):
    return BaseParameters(n=len(small_db), d=small_db.d, gamma=4.0, c1=8.0, c2=8.0)


@pytest.fixture(scope="session")
def medium_base(medium_db):
    return BaseParameters(n=len(medium_db), d=medium_db.d, gamma=4.0, c1=8.0, c2=8.0)


def planted_queries(db: PackedPoints, count: int, max_flips: int, seed: int = 99):
    """Queries near database points (helper, not a fixture)."""
    gen = np.random.default_rng(seed)
    rows = []
    for _ in range(count):
        base = db.row(int(gen.integers(0, len(db))))
        rows.append(flip_random_bits(gen, base, int(gen.integers(0, max_flips + 1)), db.d))
    return np.vstack(rows)


@pytest.fixture(scope="session")
def small_queries(small_db):
    return planted_queries(small_db, 24, max_flips=12)


@pytest.fixture(scope="session")
def planless_scheme_cls():
    """A scheme that only implements ``query`` (no plan): drivers must
    fall back to their sequential paths.  Every built-in scheme is
    plan-capable now, so the fallback paths get their own test double."""
    from repro.baselines.linear_scan import LinearScanScheme
    from repro.cellprobe.scheme import CellProbingScheme

    class PlanlessScheme(CellProbingScheme):
        scheme_name = "planless"
        k = 1

        def __init__(self, db):
            self._inner = LinearScanScheme(db)

        def query(self, x):
            return self._inner.query(x)

        def size_report(self):
            return self._inner.size_report()

    return PlanlessScheme


@pytest.fixture(scope="session")
def medium_queries(medium_db):
    return planted_queries(medium_db, 24, max_flips=40)
