"""mmap/heap equivalence: the out-of-core contract, per scheme family.

``load_mode="mmap"`` must be *invisible* to every consumer: for every
registered scheme (plain and boosted), for sharded indexes (with and
without a memory budget forcing evictions mid-serving), after
mutate→compact, after a save/load round-trip of an mmap'd index, and
through the async serving layer, the answers AND the probe/round
accounting must equal the heap load bit for bit.  The satellite format
rules ride along: v2 + mmap is a clear error naming format v3, and
``save`` keeps writing v2 unless v3 is requested.
"""

from __future__ import annotations

import asyncio
import json

import numpy as np
import pytest

from repro.api import IndexSpec
from repro.core.index import ANNIndex
from repro.hamming.points import PackedPoints
from repro.hamming.sampling import flip_random_bits, random_points
from repro.persistence import (
    FORMAT_VERSION,
    MMAP_FORMAT_VERSION,
    IndexPersistenceError,
    load_any,
)
from repro.registry import available_schemes
from repro.service import AsyncANNService, ShardedANNIndex

N, D = 96, 128
SHARDS = 3


@pytest.fixture(scope="module")
def workload():
    gen = np.random.default_rng(20160613)
    db = PackedPoints(random_points(gen, N, D), D)
    queries = np.vstack(
        [
            flip_random_bits(
                gen, db.row(int(gen.integers(0, N))), int(gen.integers(0, 12)), D
            )
            for _ in range(12)
        ]
        + [random_points(gen, 4, D)]
    )
    return db, queries


def assert_results_equal(reference, candidate):
    assert len(reference) == len(candidate)
    for r, c in zip(reference, candidate):
        assert r.answer_index == c.answer_index
        assert r.probes == c.probes
        assert r.rounds == c.rounds
        assert r.probes_per_round == c.probes_per_round
        assert r.scheme == c.scheme
        if r.answer_packed is None:
            assert c.answer_packed is None
        else:
            assert np.array_equal(r.answer_packed, c.answer_packed)


def assert_batch_stats_equal(a, b):
    assert a is not None and b is not None
    assert (a.batch_size, a.total_probes, a.total_rounds) == (
        b.batch_size,
        b.total_probes,
        b.total_rounds,
    )


SCHEME_CASES = [
    pytest.param(name, boost, id=f"{name}-boost{boost}")
    for name in available_schemes()
    for boost in (1, 2)
]


class TestEverySchemeFamily:
    @pytest.mark.parametrize("scheme,boost", SCHEME_CASES)
    def test_mmap_answers_bitwise_equal_to_heap(
        self, scheme, boost, workload, tmp_path
    ):
        db, queries = workload
        index = ANNIndex.from_spec(
            db, IndexSpec(scheme=scheme, seed=31, boost=boost)
        ).prepare()
        index.save(tmp_path / "idx", format_version=MMAP_FORMAT_VERSION)
        heap = ANNIndex.load(tmp_path / "idx")
        mmap = ANNIndex.load(tmp_path / "idx", load_mode="mmap")
        assert heap.load_mode == "heap" and mmap.load_mode == "mmap"
        assert isinstance(mmap.database.words, np.memmap)
        assert_results_equal(index.query_batch(queries), heap.query_batch(queries))
        assert_results_equal(heap.query_batch(queries), mmap.query_batch(queries))
        assert_batch_stats_equal(heap.last_batch_stats, mmap.last_batch_stats)
        for qi in range(3):
            assert_results_equal(
                [heap.query_packed(queries[qi])], [mmap.query_packed(queries[qi])]
            )


@pytest.fixture(scope="module")
def sharded_snapshot(workload, tmp_path_factory):
    db, _ = workload
    index = ShardedANNIndex.build(
        db,
        IndexSpec(scheme="algorithm1", params={"rounds": 2}, seed=7),
        shards=SHARDS,
    )
    path = tmp_path_factory.mktemp("oocs") / "sharded-v3"
    index.save(path, format_version=MMAP_FORMAT_VERSION)
    return index, path


def _one_shard_nbytes(path):
    # Snapshot-derived size (all payloads), as the lazy loader accounts it —
    # the eager heap load only tracks the packed words.
    return ShardedANNIndex.load(path, load_mode="mmap")._handles[0].meta.nbytes


class TestSharded:
    def test_lazy_mmap_equals_eager_heap(self, workload, sharded_snapshot):
        _, queries = workload
        built, path = sharded_snapshot
        heap = ShardedANNIndex.load(path)
        mmap = ShardedANNIndex.load(path, load_mode="mmap")
        assert mmap.residency_stats().attached == 0  # truly lazy
        assert_results_equal(built.query_batch(queries), heap.query_batch(queries))
        assert_results_equal(heap.query_batch(queries), mmap.query_batch(queries))
        assert_batch_stats_equal(heap.last_batch_stats, mmap.last_batch_stats)
        assert mmap.residency_stats().attached == SHARDS

    def test_forced_evictions_do_not_change_answers(self, workload, sharded_snapshot):
        _, queries = workload
        _, path = sharded_snapshot
        heap = ShardedANNIndex.load(path)
        one_shard = _one_shard_nbytes(path)
        tight = ShardedANNIndex.load(
            path, load_mode="mmap", memory_budget=one_shard + 1
        )
        expected = heap.query_batch(queries)
        for _ in range(2):  # every sweep cycles shards through the budget
            assert_results_equal(expected, tight.query_batch(queries))
        stats = tight.residency_stats()
        assert stats.evictions > 0
        assert stats.misses > SHARDS  # reattach after eviction = more misses
        assert stats.resident_bytes <= tight.memory_budget

    def test_pinned_shard_stays_resident_through_the_sweep(
        self, workload, sharded_snapshot
    ):
        _, queries = workload
        _, path = sharded_snapshot
        heap = ShardedANNIndex.load(path)
        one_shard = _one_shard_nbytes(path)
        pinned = ShardedANNIndex.load(
            path, load_mode="mmap", memory_budget=one_shard + 1, pin=(0,)
        )
        assert_results_equal(heap.query_batch(queries), pinned.query_batch(queries))
        per_shard = pinned.residency_stats().per_shard
        assert per_shard[0]["attached"] and per_shard[0]["pinned"]


class TestMutation:
    def test_mutate_then_compact_stays_bitwise_equal(self, workload, tmp_path):
        db, queries = workload
        gen = np.random.default_rng(5)
        fresh = random_points(gen, 8, D)
        index = ShardedANNIndex.build(
            db,
            IndexSpec(scheme="algorithm1", params={"rounds": 2}, seed=13),
            shards=SHARDS,
        )
        index.save(tmp_path / "mut", format_version=MMAP_FORMAT_VERSION)
        heap = ShardedANNIndex.load(tmp_path / "mut")
        mmap = ShardedANNIndex.load(tmp_path / "mut", load_mode="mmap")
        # Apply the identical mutation schedule to both loads.
        assert heap.insert(fresh) == mmap.insert(fresh)
        assert heap.delete([0, 5, 40]) == mmap.delete([0, 5, 40])
        assert_results_equal(heap.query_batch(queries), mmap.query_batch(queries))
        assert heap.compact() == mmap.compact()
        assert_results_equal(heap.query_batch(queries), mmap.query_batch(queries))
        # Writes promoted the touched mmap shards to heap copies.
        assert mmap.residency_stats().promotions >= 1

    def test_single_index_mutates_identically_under_mmap(self, workload, tmp_path):
        db, queries = workload
        gen = np.random.default_rng(6)
        fresh = random_points(gen, 6, D)
        ANNIndex.from_spec(
            db, IndexSpec(scheme="algorithm1", params={"rounds": 2}, seed=19)
        ).save(tmp_path / "single", format_version=MMAP_FORMAT_VERSION)
        heap = ANNIndex.load(tmp_path / "single")
        mmap = ANNIndex.load(tmp_path / "single", load_mode="mmap")
        for idx in (heap, mmap):
            idx.insert(fresh)
            idx.delete([1, 2])
        assert_results_equal(heap.query_batch(queries), mmap.query_batch(queries))
        assert heap.compact() == mmap.compact()
        assert_results_equal(heap.query_batch(queries), mmap.query_batch(queries))


class TestRoundTripOfMmapIndex:
    @pytest.mark.parametrize("resave_version", [None, MMAP_FORMAT_VERSION])
    def test_mmap_loaded_index_resaves_and_reloads(
        self, resave_version, workload, tmp_path
    ):
        db, queries = workload
        ANNIndex.from_spec(
            db, IndexSpec(scheme="algorithm1", params={"rounds": 2}, seed=29)
        ).prepare().save(tmp_path / "orig", format_version=MMAP_FORMAT_VERSION)
        mmap = ANNIndex.load(tmp_path / "orig", load_mode="mmap")
        expected = mmap.query_batch(queries)
        mmap.save(tmp_path / "resaved", format_version=resave_version)
        reloaded = ANNIndex.load(tmp_path / "resaved")
        assert_results_equal(expected, reloaded.query_batch(queries))
        manifest = json.loads((tmp_path / "resaved" / "manifest.json").read_text())
        assert manifest["format_version"] == (resave_version or FORMAT_VERSION)

    def test_mmap_index_resaves_over_its_own_snapshot(self, workload, tmp_path):
        db, queries = workload
        ANNIndex.from_spec(
            db, IndexSpec(scheme="algorithm1", params={"rounds": 2}, seed=37)
        ).save(tmp_path / "self", format_version=MMAP_FORMAT_VERSION)
        mmap = ANNIndex.load(tmp_path / "self", load_mode="mmap")
        expected = mmap.query_batch(queries)
        mmap.save(tmp_path / "self", format_version=MMAP_FORMAT_VERSION)
        reloaded = ANNIndex.load(tmp_path / "self", load_mode="mmap")
        assert_results_equal(expected, reloaded.query_batch(queries))


class TestServingLayer:
    def test_served_answers_equal_heap_serving(self, workload, sharded_snapshot):
        _, queries = workload
        _, path = sharded_snapshot
        heap = ShardedANNIndex.load(path)
        one_shard = _one_shard_nbytes(path)
        mmap = ShardedANNIndex.load(
            path, load_mode="mmap", memory_budget=one_shard + 1
        )

        async def serve_all(index):
            async with AsyncANNService(
                index, max_batch=8, max_wait_ms=0.5
            ) as service:
                return await asyncio.gather(*(service.query(q) for q in queries))

        heap_results = asyncio.run(serve_all(heap))
        mmap_results = asyncio.run(serve_all(mmap))
        assert_results_equal(heap_results, mmap_results)
        assert mmap.residency_stats().evictions > 0


class TestFormatRules:
    def test_default_save_is_still_v2(self, workload, tmp_path):
        db, _ = workload
        ANNIndex.from_spec(db, IndexSpec(scheme="algorithm1", seed=3)).save(
            tmp_path / "idx"
        )
        manifest = json.loads((tmp_path / "idx" / "manifest.json").read_text())
        assert manifest["format_version"] == FORMAT_VERSION == 2
        assert (tmp_path / "idx" / "database.npz").is_file()
        assert (tmp_path / "idx" / "arrays.npz").is_file()
        assert not (tmp_path / "idx" / "database").exists()

    def test_v3_save_writes_payload_tree_not_npz(self, workload, tmp_path):
        db, _ = workload
        ANNIndex.from_spec(db, IndexSpec(scheme="algorithm1", seed=3)).save(
            tmp_path / "idx", format_version=MMAP_FORMAT_VERSION
        )
        manifest = json.loads((tmp_path / "idx" / "manifest.json").read_text())
        assert manifest["format_version"] == MMAP_FORMAT_VERSION
        assert (tmp_path / "idx" / "database" / "words.npy").is_file()
        assert not (tmp_path / "idx" / "database.npz").exists()
        # The payload index covers every file with exact byte sizes.
        words = np.load(tmp_path / "idx" / "database" / "words.npy")
        assert manifest["payloads"]["database/words.npy"]["nbytes"] == words.nbytes

    def test_v2_snapshot_with_mmap_raises_clear_error(self, workload, tmp_path):
        db, _ = workload
        ANNIndex.from_spec(db, IndexSpec(scheme="algorithm1", seed=3)).save(
            tmp_path / "v2"
        )
        with pytest.raises(IndexPersistenceError, match="format v3"):
            ANNIndex.load(tmp_path / "v2", load_mode="mmap")

    def test_v2_sharded_snapshot_rejects_lazy_loading(self, workload, tmp_path):
        db, _ = workload
        ShardedANNIndex.build(
            db, IndexSpec(scheme="algorithm1", seed=3), shards=SHARDS
        ).save(tmp_path / "v2s")
        with pytest.raises(IndexPersistenceError, match="format\\s+v3"):
            ShardedANNIndex.load(tmp_path / "v2s", load_mode="mmap")
        with pytest.raises(IndexPersistenceError, match="format\\s+v3"):
            ShardedANNIndex.load(tmp_path / "v2s", memory_budget=10**6)

    def test_memory_budget_on_single_index_snapshot_is_an_error(
        self, workload, tmp_path
    ):
        db, _ = workload
        ANNIndex.from_spec(db, IndexSpec(scheme="algorithm1", seed=3)).save(
            tmp_path / "one", format_version=MMAP_FORMAT_VERSION
        )
        with pytest.raises(IndexPersistenceError, match="sharded"):
            load_any(tmp_path / "one", memory_budget=10**6)

    def test_unknown_load_mode_is_an_error(self, workload, tmp_path):
        db, _ = workload
        ANNIndex.from_spec(db, IndexSpec(scheme="algorithm1", seed=3)).save(
            tmp_path / "one"
        )
        with pytest.raises(IndexPersistenceError, match="load_mode"):
            ANNIndex.load(tmp_path / "one", load_mode="lazy")

    def test_tampered_v3_payload_fails_loudly(self, workload, tmp_path):
        db, _ = workload
        ANNIndex.from_spec(db, IndexSpec(scheme="algorithm1", seed=3)).save(
            tmp_path / "t", format_version=MMAP_FORMAT_VERSION
        )
        words_path = tmp_path / "t" / "database" / "words.npy"
        words = np.load(words_path)
        np.save(words_path, words[:-1])  # truncate a row
        with pytest.raises(IndexPersistenceError, match="manifest records"):
            ANNIndex.load(tmp_path / "t", load_mode="mmap")
