"""Unit suite for :class:`repro.storage.residency.ResidencyManager`.

These tests drive the eviction policy with stub indexes through the
injected loader — no snapshots, no schemes — so the LRU order, the
budget arithmetic, the pinned/dirty exemptions, and the
write-promotes-to-heap rule are each pinned down in isolation.  The
integration-level guarantee (evicted-and-reattached shards answer
bitwise-identically) lives in ``tests/storage/test_mmap_equivalence.py``.
"""

from pathlib import Path

import pytest

from repro.storage.residency import ResidencyManager, ShardHandle, ShardMeta


class StubIndex:
    """Just enough of an ANNIndex for the manager's accessors."""

    def __init__(self, shard_id, load_mode):
        self.shard_id = shard_id
        self.load_mode = load_mode
        self.live_count = 10
        self.id_space = 10
        self.generation = 0


def make_manager(
    shards=4,
    nbytes=100,
    budget=None,
    load_mode="mmap",
    with_paths=True,
):
    loads = []

    def loader(handle):
        loads.append((handle.shard_id, handle.load_mode))
        return StubIndex(handle.shard_id, handle.load_mode)

    handles = [
        ShardHandle(
            shard_id=i,
            meta=ShardMeta(
                n=10,
                d=64,
                live_n=10,
                generation=0,
                id_space=10,
                scheme_name="stub",
                nbytes=nbytes,
            ),
            path=Path(f"/fake/shard-{i:04d}") if with_paths else None,
            load_mode=load_mode,
        )
        for i in range(shards)
    ]
    return ResidencyManager(handles, loader, memory_budget=budget), loads


class TestAttach:
    def test_first_attach_is_a_miss_second_a_hit(self):
        mgr, loads = make_manager()
        first = mgr.attach(0)
        again = mgr.attach(0)
        assert first is again
        assert loads == [(0, "mmap")]
        assert (mgr.misses, mgr.hits) == (1, 1)

    def test_attach_without_index_or_path_fails_clearly(self):
        mgr, _ = make_manager(with_paths=False)
        with pytest.raises(RuntimeError, match="no snapshot to reload from"):
            mgr.attach(0)

    def test_resident_bytes_track_attached_handles(self):
        mgr, _ = make_manager(shards=3, nbytes=50)
        assert mgr.resident_bytes == 0
        mgr.attach(0)
        mgr.attach(2)
        assert mgr.resident_bytes == 100
        assert mgr.stats().attached == 2


class TestEvictionOrder:
    def test_lru_shard_is_evicted_first(self):
        # Budget fits two shards; touching 0 last should evict 1.
        mgr, _ = make_manager(shards=3, nbytes=100, budget=200)
        mgr.attach(0)
        mgr.attach(1)
        mgr.attach(0)  # refresh 0's clock: LRU order is by use, not attach
        mgr.attach(2)
        assert not mgr.handle(1).attached
        assert mgr.handle(0).attached and mgr.handle(2).attached
        assert mgr.evictions == 1
        assert mgr.resident_bytes == 200

    def test_eviction_cascades_until_under_budget(self):
        mgr, _ = make_manager(shards=4, nbytes=100, budget=100)
        for i in range(4):
            mgr.attach(i)
        # Only the most recent attach survives a one-shard budget.
        assert [h.attached for h in mgr.handles] == [False, False, False, True]
        assert mgr.evictions == 3

    def test_just_attached_shard_is_never_its_own_victim(self):
        # Budget below a single shard: attach must still succeed.
        mgr, _ = make_manager(shards=2, nbytes=100, budget=50)
        index = mgr.attach(0)
        assert index is not None
        assert mgr.handle(0).attached
        assert mgr.evictions == 0
        mgr.attach(1)  # now 0 is evictable and over-budget
        assert not mgr.handle(0).attached
        assert mgr.handle(1).attached

    def test_reattach_after_eviction_reloads(self):
        mgr, loads = make_manager(shards=2, nbytes=100, budget=100)
        mgr.attach(0)
        mgr.attach(1)
        mgr.attach(0)
        assert [sid for sid, _ in loads] == [0, 1, 0]
        assert (mgr.misses, mgr.evictions) == (3, 2)


class TestExemptions:
    def test_pinned_shards_are_not_evicted(self):
        mgr, _ = make_manager(shards=3, nbytes=100, budget=200)
        mgr.pin(0)
        mgr.attach(0)
        mgr.attach(1)
        mgr.attach(2)
        assert mgr.handle(0).attached  # LRU but pinned
        assert not mgr.handle(1).attached
        assert mgr.handle(2).attached

    def test_unpin_restores_evictability(self):
        mgr, _ = make_manager(shards=2, nbytes=100, budget=100)
        mgr.pin(0)
        mgr.attach(0)
        mgr.unpin(0)
        mgr.attach(1)
        assert not mgr.handle(0).attached

    def test_dirty_shards_are_not_evicted(self):
        mgr, _ = make_manager(shards=3, nbytes=100, budget=200, load_mode="heap")
        mgr.attach(0, for_write=True)  # dirty: state exists nowhere else
        mgr.attach(1)
        mgr.attach(2)
        assert mgr.handle(0).attached
        assert not mgr.handle(1).attached

    def test_manual_evict_refuses_pinned_dirty_and_detached(self):
        mgr, _ = make_manager(shards=3, load_mode="heap")
        mgr.pin(0)
        mgr.attach(0)
        mgr.attach(1, for_write=True)
        assert not mgr.evict(0)  # pinned
        assert not mgr.evict(1)  # dirty
        assert not mgr.evict(2)  # not attached
        mgr.unpin(0)
        assert mgr.evict(0)
        assert mgr.evictions == 1


class TestWritePromotion:
    def test_first_write_promotes_mmap_to_heap(self):
        mgr, loads = make_manager(load_mode="mmap")
        mgr.attach(0)
        index = mgr.attach(0, for_write=True)
        assert index.load_mode == "heap"
        assert loads == [(0, "mmap"), (0, "heap")]
        assert mgr.promotions == 1
        handle = mgr.handle(0)
        assert handle.dirty and handle.heap_promoted
        assert handle.load_mode == "heap"

    def test_second_write_does_not_promote_again(self):
        mgr, loads = make_manager(load_mode="mmap")
        mgr.attach(0, for_write=True)
        mgr.attach(0, for_write=True)
        assert mgr.promotions == 1
        assert len(loads) == 2  # initial mmap load + one heap promotion

    def test_heap_shard_write_skips_promotion(self):
        mgr, loads = make_manager(load_mode="heap")
        mgr.attach(0, for_write=True)
        assert mgr.promotions == 0
        assert loads == [(0, "heap")]
        assert mgr.handle(0).dirty


class TestStats:
    def test_stats_snapshot_shape(self):
        mgr, _ = make_manager(shards=2, nbytes=70, budget=500)
        mgr.attach(1)
        stats = mgr.stats()
        assert (stats.shards, stats.attached) == (2, 1)
        assert stats.resident_bytes == 70
        assert stats.memory_budget == 500
        payload = stats.to_dict()
        assert payload["per_shard"][1]["attached"] is True
        assert payload["per_shard"][0]["attached"] is False
        assert payload["per_shard"][1]["nbytes"] == 70

    def test_budget_must_be_positive(self):
        with pytest.raises(ValueError, match="memory_budget"):
            make_manager(budget=0)
