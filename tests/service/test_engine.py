"""Engine mechanics: stats, fallback for plan-less schemes, edge cases."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.linear_scan import LinearScanScheme
from repro.core.algorithm1 import SimpleKRoundScheme
from repro.core.params import Algorithm1Params, BaseParameters
from repro.hamming.points import PackedPoints
from repro.hamming.sampling import random_points
from repro.service import BatchQueryEngine


@pytest.fixture(scope="module")
def db():
    gen = np.random.default_rng(5)
    return PackedPoints(random_points(gen, 100, 128), 128)


@pytest.fixture(scope="module")
def queries():
    gen = np.random.default_rng(6)
    return random_points(gen, 12, 128)


def make_scheme(db, seed=2, k=2):
    base = BaseParameters(n=len(db), d=db.d, gamma=4.0, c1=8.0)
    return SimpleKRoundScheme(db, Algorithm1Params(base, k=k), seed=seed)


def test_stats_match_per_query_accounting(db, queries):
    engine = BatchQueryEngine(make_scheme(db))
    results = engine.run(queries)
    stats = engine.last_stats
    assert stats.batch_size == len(queries)
    assert stats.total_probes == sum(r.probes for r in results)
    assert stats.total_rounds == sum(r.rounds for r in results)
    assert stats.sweeps >= max(r.rounds for r in results)
    assert stats.prefetched_cells > 0


def test_no_prefetch_engine_prefetches_nothing(db, queries):
    engine = BatchQueryEngine(make_scheme(db), prefetch=False)
    engine.run(queries)
    assert engine.last_stats.prefetched_cells == 0


def test_empty_batch(db):
    engine = BatchQueryEngine(make_scheme(db))
    assert engine.run(np.empty((0, db.word_count), dtype=np.uint64)) == []
    assert engine.last_stats.batch_size == 0


def test_planless_scheme_falls_back_to_loop(db, queries, planless_scheme_cls):
    scan = planless_scheme_cls(db)
    assert not scan.supports_plans()
    engine = BatchQueryEngine(scan)
    results = engine.run(queries)
    loop = [scan.query(q) for q in queries]
    for r, l in zip(results, loop):
        assert r.answer_index == l.answer_index
        assert r.probes == l.probes
    assert engine.last_stats.sweeps == 0  # fallback path, no lockstep sweeps


def test_plan_capable_scheme_advertises_it(db):
    assert make_scheme(db).supports_plans()


def test_every_baseline_advertises_plans(db):
    assert LinearScanScheme(db).supports_plans()


def test_table_classification_persists_across_runs(db, queries):
    engine = BatchQueryEngine(make_scheme(db, seed=4))
    engine.run(queries[:4])
    classified = dict(engine._prefetchable)
    assert classified  # tables were classified during the first run
    engine.run(queries[4:8])
    # Re-running reuses (and only extends) the classification map.
    assert all(engine._prefetchable[tid] is entry for tid, entry in classified.items())


def test_engine_reusable_across_batches(db, queries):
    engine = BatchQueryEngine(make_scheme(db, seed=3))
    first = engine.run(queries)
    second = engine.run(queries)
    for a, b in zip(first, second):
        assert a.answer_index == b.answer_index
        assert a.probes == b.probes
