"""ShardedANNIndex: partitioning, parallel build, distance merging.

The acceptance bar: with S ∈ {1, 4}, the sharded index returns exactly
the answer set a single unsharded index produces under the
distance-merge rule — per query, the minimum-true-Hamming-distance
answer across shards, ties to the smallest global row id — and the
parallel (worker-process) build is bitwise-identical to the serial one.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import IndexSpec
from repro.core.index import ANNIndex
from repro.hamming.distance import hamming_distance
from repro.hamming.kernels import (
    KNOWN_KERNELS,
    available_kernels,
    unavailable_kernels,
    use_kernel,
)
from repro.hamming.points import PackedPoints
from repro.hamming.sampling import flip_random_bits, random_points
from repro.persistence import load_any
from repro.service.sharded import ShardedANNIndex, shard_bounds, shard_seed


@pytest.fixture(scope="module")
def workload():
    gen = np.random.default_rng(7)
    n, d = 128, 128
    db = PackedPoints(random_points(gen, n, d), d)
    queries = np.vstack(
        [
            flip_random_bits(
                gen, db.row(int(gen.integers(0, n))), int(gen.integers(0, 10)), d
            )
            for _ in range(12)
        ]
        + [random_points(gen, 4, d)]
    )
    return db, queries


SPEC = IndexSpec(scheme="algorithm1", params={"rounds": 2}, seed=11)


def merge_oracle(db, spec, shards, queries):
    """The distance-merge rule applied to independently built shard
    indexes: per query the min-true-distance answer, ties to the
    smallest global row id."""
    bounds = shard_bounds(len(db), shards)
    singles = [
        ANNIndex.from_spec(
            db.take(range(start, stop)),
            spec.replace(seed=shard_seed(spec.seed, i)),
        )
        for i, (start, stop) in enumerate(bounds)
    ]
    merged = []
    for qi in range(queries.shape[0]):
        best = None
        for si, index in enumerate(singles):
            res = index.query_packed(queries[qi])
            if res.answer_packed is None:
                continue
            cand = (
                hamming_distance(queries[qi], res.answer_packed),
                bounds[si][0] + res.answer_index,
            )
            if best is None or cand < best:
                best = cand
        merged.append(best)
    return merged


class TestPartitioning:
    def test_bounds_cover_all_rows_once(self):
        for n, shards in ((10, 3), (128, 4), (7, 7), (100, 1)):
            bounds = shard_bounds(n, shards)
            assert bounds[0][0] == 0 and bounds[-1][1] == n
            for (_, stop), (start, _) in zip(bounds, bounds[1:]):
                assert stop == start
            sizes = [stop - start for start, stop in bounds]
            assert max(sizes) - min(sizes) <= 1

    def test_bounds_reject_bad_splits(self):
        with pytest.raises(ValueError):
            shard_bounds(4, 0)
        with pytest.raises(ValueError):
            shard_bounds(3, 4)

    def test_shard_seeds_deterministic_and_independent(self):
        assert shard_seed(5, 0) == shard_seed(5, 0)
        assert shard_seed(5, 0) != shard_seed(5, 1)
        assert shard_seed(5, 0) != shard_seed(6, 0)


def _kernel_cases():
    cases = []
    for name in KNOWN_KERNELS:
        if name in available_kernels():
            cases.append(pytest.param(name))
        else:
            reason = unavailable_kernels().get(name, "not registered")
            cases.append(
                pytest.param(name, marks=pytest.mark.skip(reason=f"{name}: {reason}"))
            )
    return cases


class TestKernelEquivalence:
    """The sharded serving path under every registered kernel backend.

    Build, fan-out query, and distance-merge all run behind the kernel
    seam; per-query answers, probe/round accounting, and merge distances
    must be identical field by field whichever backend is active —
    compiled cases self-skip when the dependency is absent.
    """

    @pytest.mark.parametrize("kernel", _kernel_cases())
    def test_sharded_answers_identical_under_kernel(self, kernel, workload):
        db, queries = workload
        with use_kernel("reference"):
            baseline_index = ShardedANNIndex.build(db, SPEC, shards=4)
            baseline = baseline_index.query_batch(queries)
        with use_kernel(kernel):
            index = ShardedANNIndex.build(db, SPEC, shards=4)
            results = index.query_batch(queries)
        assert len(results) == len(baseline)
        for got, want in zip(results, baseline):
            assert got.answer_index == want.answer_index
            assert got.probes == want.probes
            assert got.rounds == want.rounds
            assert got.meta.get("distance") == want.meta.get("distance")


class TestDistanceMerge:
    @pytest.mark.parametrize("shards", [1, 4])
    def test_matches_merge_oracle(self, shards, workload):
        db, queries = workload
        sharded = ShardedANNIndex.build(db, SPEC, shards=shards)
        results = sharded.query_batch(queries)
        oracle = merge_oracle(db, SPEC, shards, queries)
        for res, best in zip(results, oracle):
            if best is None:
                assert not res.answered
            else:
                dist, global_id = best
                assert res.answer_index == global_id
                assert res.meta["distance"] == dist

    def test_single_shared_seed_shard_is_the_unsharded_index(self, workload):
        # With one shard and shared_seed=True the shard sees the whole
        # database under the root seed: answers match the plain
        # ANNIndex bit for bit.
        db, queries = workload
        sharded = ShardedANNIndex.build(db, SPEC, shards=1, shared_seed=True)
        plain = ANNIndex.from_spec(db, SPEC)
        for s_res, p_res in zip(sharded.query_batch(queries), plain.query_batch(queries)):
            assert s_res.answer_index == p_res.answer_index
            assert s_res.probes == p_res.probes
            assert s_res.rounds == p_res.rounds

    def test_global_row_ids_point_at_the_answer(self, workload):
        db, queries = workload
        sharded = ShardedANNIndex.build(db, SPEC, shards=4)
        for res in sharded.query_batch(queries):
            if res.answered:
                assert np.array_equal(db.row(res.answer_index), res.answer_packed)

    def test_query_is_query_batch_of_one(self, workload):
        db, queries = workload
        sharded = ShardedANNIndex.build(db, SPEC, shards=4)
        batch = sharded.query_batch(queries)
        single = sharded.query(queries[0])
        assert single.answer_index == batch[0].answer_index
        assert single.probes == batch[0].probes


class TestAccounting:
    def test_probes_sum_and_rounds_max_across_shards(self, workload):
        db, queries = workload
        shards = 4
        sharded = ShardedANNIndex.build(db, SPEC, shards=shards)
        merged = sharded.query_batch(queries)
        per_shard = [shard.query_batch(queries) for shard in sharded.shards]
        for qi, res in enumerate(merged):
            shard_results = [results[qi] for results in per_shard]
            assert res.probes == sum(r.probes for r in shard_results)
            assert res.rounds == max(r.rounds for r in shard_results)

    def test_batch_stats_aggregate(self, workload):
        db, queries = workload
        sharded = ShardedANNIndex.build(db, SPEC, shards=4)
        results = sharded.query_batch(queries)
        stats = sharded.last_batch_stats
        assert stats.batch_size == queries.shape[0]
        assert stats.total_probes == sum(r.probes for r in results)
        assert stats.total_rounds == sum(r.rounds for r in results)
        assert stats.sweeps >= 1

    def test_size_report_sums_shards(self, workload):
        db, _ = workload
        sharded = ShardedANNIndex.build(db, SPEC, shards=4)
        report = sharded.size_report()
        assert report.table_cells == sum(
            shard.size_report().table_cells for shard in sharded.shards
        )
        assert len(sharded) == len(db)


class TestParallelBuild:
    def test_parallel_build_is_bitwise_identical_to_serial(self, workload):
        db, queries = workload
        serial = ShardedANNIndex.build(db, SPEC, shards=4, workers=1)
        parallel = ShardedANNIndex.build(db, SPEC, shards=4, workers=2)
        for s_res, p_res in zip(
            serial.query_batch(queries), parallel.query_batch(queries)
        ):
            assert s_res.answer_index == p_res.answer_index
            assert s_res.probes == p_res.probes
            assert s_res.rounds == p_res.rounds


class TestPersistence:
    def test_save_load_round_trip(self, workload, tmp_path):
        db, queries = workload
        sharded = ShardedANNIndex.build(db, SPEC, shards=4)
        sharded.save(tmp_path / "sharded")
        loaded = ShardedANNIndex.load(tmp_path / "sharded")
        assert loaded.num_shards == 4
        assert loaded.spec == sharded.spec
        for s_res, l_res in zip(
            sharded.query_batch(queries), loaded.query_batch(queries)
        ):
            assert s_res.answer_index == l_res.answer_index
            assert s_res.probes == l_res.probes
            assert s_res.rounds == l_res.rounds

    def test_load_any_dispatches_to_sharded(self, workload, tmp_path):
        db, _ = workload
        ShardedANNIndex.build(db, SPEC, shards=2).save(tmp_path / "s")
        assert isinstance(load_any(tmp_path / "s"), ShardedANNIndex)
