"""Distributed shard serving: router equivalence, fault injection, chaos.

Three layers:

* pure unit tests for the deterministic pieces (:class:`WriteSequencer`
  ordering/idempotence/gap refusal, ``parse_shard_map``);
* a gating smoke test — a real 2-shard × 2-replica subprocess cluster
  must answer queries, survive a replica SIGKILL with bitwise-identical
  answers, and catch a restarted replica up from the router's write log
  (this is the test CI's distributed-smoke step runs);
* a ``slow`` hypothesis property test driving seeded chaos schedules
  through ``tests/utils/cluster_harness.run_chaos`` — every completed
  operation bitwise-identical to the single-process
  :class:`ShardedANNIndex` oracle, ending with the caught-up replica
  answering alone.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import cluster_harness as ch
from repro.service.cluster import parse_shard_map
from repro.service.server import WriteSequencer
from repro.service.sharded import ShardedANNIndex

pytestmark = pytest.mark.filterwarnings("ignore::pytest.PytestUnraisableExceptionWarning")


# -- write sequencer ---------------------------------------------------------
class TestWriteSequencer:
    def test_admits_exactly_the_next_sequence(self):
        gate = WriteSequencer(initial=5)
        assert gate.admit(6) is True
        assert gate.accepted == 6

    def test_duplicates_are_idempotent(self):
        gate = WriteSequencer()
        assert gate.admit(1) is True
        assert gate.admit(1) is False  # same write from a stale buffer
        assert gate.accepted == 1

    def test_gaps_are_refused_loudly(self):
        gate = WriteSequencer(initial=3)
        with pytest.raises(ValueError, match="write sequence gap"):
            gate.admit(5)
        assert gate.accepted == 3  # refused, not half-applied

    def test_duplicate_ack_replays_the_recorded_response(self):
        gate = WriteSequencer()
        gate.admit(1)
        gate.record(1, {"ok": True, "ids": [7, 8], "seq": 1})
        ack = gate.duplicate_ack(1)
        assert ack["ids"] == [7, 8]
        assert ack["duplicate"] is True

    def test_ack_window_is_bounded(self):
        gate = WriteSequencer()
        for seq in range(1, 100):
            gate.admit(seq)
            gate.record(seq, {"ok": True, "seq": seq})
        assert len(gate._acks) <= 32
        # evicted acks still answer, just without the recorded payload
        assert gate.duplicate_ack(1) == {
            "ok": True,
            "duplicate": True,
            "seq": 1,
            "applied_seq": 0,
        }


# -- shard map parsing -------------------------------------------------------
class TestParseShardMap:
    def test_parses_replicated_map(self):
        got = parse_shard_map(["1=host-b:2,host-c:3", "0=host-a:1"])
        assert got == [[("host-a", 1)], [("host-b", 2), ("host-c", 3)]]

    @pytest.mark.parametrize(
        "specs, message",
        [
            ([], "at least one"),
            (["0:localhost:1"], "missing '='"),
            (["x=localhost:1"], "not an index"),
            (["0=localhost:1", "0=localhost:2"], "specified twice"),
            (["0=localhost"], "malformed endpoint"),
            (["0=localhost:http"], "malformed port"),
            (["0=localhost:1", "2=localhost:2"], "must cover 0..1"),
        ],
    )
    def test_rejects_malformed_specs(self, specs, message):
        with pytest.raises(ValueError, match=message):
            parse_shard_map(specs)


# -- subprocess cluster ------------------------------------------------------
@pytest.fixture(scope="module")
def snapshot(tmp_path_factory):
    """A saved 2-shard planted-workload index plus its query batch."""
    return ch.build_sharded_snapshot(tmp_path_factory.mktemp("cluster") / "snap")


def test_cluster_smoke_equivalence_and_failover(snapshot):
    """The CI distributed-smoke scenario, end to end:

    query + query_batch bitwise-identical to the oracle, then kill one
    replica (answers unchanged), write while it is down, restart it
    (router replays the missed writes), kill its sibling, and verify the
    caught-up replica answers the whole shard alone — still identical.
    """
    snap, queries = snapshot
    oracle = ShardedANNIndex.load(snap)
    with ch.ClusterHarness(snap, replicas=2) as cluster:
        with cluster.connect() as client:
            info = client.info()
            assert len(info["cluster"]["shards"]) == oracle.num_shards
            for bits in queries[:4]:
                ch.assert_query_equivalent(client, oracle, bits)

            # batched path merges identically to per-query
            remotes = client.query_batch(queries)
            for bits, remote in zip(queries, remotes):
                expected = ch.oracle_wire_result(oracle, bits)
                assert ch.remote_wire_result(remote) == ch._jsonable(expected)

            # writes replicate with oracle-identical ids/counts
            rng = np.random.default_rng(5)
            pts = rng.integers(0, 2, size=(3, oracle.d), dtype=np.uint8)
            assert client.insert(pts.tolist()) == oracle.insert(pts)
            victim = next(g for g in range(oracle.id_space) if oracle.is_live(g))
            assert client.delete([victim]) == oracle.delete([victim]) == 1
            ch.assert_query_equivalent(client, oracle, queries[0])

            # crash one replica: reads fail over, answers unchanged
            cluster.kill_replica(0, 0)
            for bits in queries[:4]:
                ch.assert_query_equivalent(client, oracle, bits)

            # writes applied while it is down land in the router log
            pts = rng.integers(0, 2, size=(2, oracle.d), dtype=np.uint8)
            assert client.insert(pts.tolist()) == oracle.insert(pts)

            # restart from the (stale) snapshot: catch-up replays the log
            cluster.restart_replica(0, 0)
            recovery = cluster.wait_replica_alive(0, 0)
            assert recovery >= 0.0

            # the caught-up replica must carry the shard alone, bitwise
            cluster.kill_replica(0, 1)
            for bits in queries[:4]:
                ch.assert_query_equivalent(client, oracle, bits)

            counters = client.stats()  # router counters are top-level keys
            assert counters["catch_ups"] == 1
            assert counters["replayed_writes"] >= 1
            assert counters["divergence"] == 0
            assert counters["dead_transitions"] >= 2


def test_router_refuses_queries_when_a_shard_has_no_replica(snapshot):
    """With every replica of a shard dead the router degrades loudly:
    per-request errors naming the shard, never a silent partial answer
    — and recovers as soon as a replica returns."""
    from repro.service.client import ServiceError

    snap, queries = snapshot
    oracle = ShardedANNIndex.load(snap)
    with ch.ClusterHarness(snap, replicas=1, router_timeout=1.0) as cluster:
        with cluster.connect() as client:
            ch.assert_query_equivalent(client, oracle, queries[0])
            cluster.kill_replica(1, 0)
            with pytest.raises(ServiceError, match="shard 1"):
                client.query(queries[0])
            cluster.restart_replica(1, 0)
            cluster.wait_replica_alive(1, 0)
            ch.assert_query_equivalent(client, oracle, queries[0])


# -- chaos property ----------------------------------------------------------
@pytest.mark.slow
@given(seed=st.integers(min_value=0, max_value=2**32 - 1))
@settings(max_examples=4, deadline=None)
def test_chaos_schedule_is_bitwise_equivalent_to_oracle(snapshot, seed):
    """Any seeded interleaving of queries/inserts/deletes with a replica
    SIGKILLed and restarted at seeded points stays bitwise-identical to
    the single-process oracle — including the final phase where the
    caught-up replica answers its shard alone."""
    snap, _ = snapshot
    counts = ch.run_chaos(snap, seed=seed, steps=10, replicas=2)
    assert counts["queries"] >= 1
    assert counts["recovery_s"] is not None
