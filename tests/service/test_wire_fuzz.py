"""Fuzzing the NDJSON wire protocol, plus the client-timeout regression.

The server's contract under malformed input is *per-request error,
never a wedge*: whatever bytes arrive — truncated JSON, binary garbage,
non-object JSON, unknown verbs, oversized lines, half-written frames —
the connection (or at worst that one connection) answers or closes, and
the server keeps serving everyone else.  Each fuzz case therefore ends
by asserting the same server still answers a real query.

The regression half pins the :class:`ServiceTimeoutError` behavior:
a client whose server dies or stops answering *mid-request* must raise,
not block forever (the pre-1.6 client hung on ``readline``).
"""

from __future__ import annotations

import asyncio
import json
import queue
import socket
import threading
import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import IndexSpec
from repro.core.index import ANNIndex
from repro.hamming.points import PackedPoints
from repro.hamming.sampling import random_points
from repro.service import ServiceClient, ServiceError, ServiceTimeoutError
from repro.service.server import WIRE_LINE_LIMIT, serve

N, D = 60, 128
SPEC = IndexSpec(scheme="algorithm1", params={"rounds": 2}, seed=31)


@pytest.fixture(scope="module")
def endpoint():
    """One live server shared by every fuzz case — surviving all of
    them on a single process is exactly the property under test."""
    gen = np.random.default_rng(17)
    index = ANNIndex.from_spec(PackedPoints(random_points(gen, N, D), D), SPEC)
    ready: "queue.Queue" = queue.Queue()

    def run():
        asyncio.run(
            serve(
                index,
                port=0,
                max_batch=8,
                max_wait_ms=1.0,
                ready_cb=lambda host, port: ready.put((host, port)),
            )
        )

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    host, port = ready.get(timeout=10)
    yield host, port
    try:
        with ServiceClient(host=host, port=port, timeout=5.0) as client:
            client.shutdown()
    except (ServiceError, OSError):
        pass
    thread.join(timeout=10)
    assert not thread.is_alive()


def raw_exchange(endpoint, payload: bytes, timeout: float = 10.0):
    """Send raw bytes on a fresh socket; return the response lines the
    server sends before EOF/timeout (parsed where they are JSON)."""
    host, port = endpoint
    with socket.create_connection((host, port), timeout=timeout) as sock:
        sock.sendall(payload)
        sock.shutdown(socket.SHUT_WR)  # EOF: server answers, then closes
        sock.settimeout(timeout)
        buf = b""
        while True:
            try:
                chunk = sock.recv(65536)
            except socket.timeout:
                break
            if not chunk:
                break
            buf += chunk
    lines = [line for line in buf.split(b"\n") if line]
    parsed = []
    for line in lines:
        try:
            parsed.append(json.loads(line))
        except json.JSONDecodeError:
            parsed.append(line)
    return parsed


def assert_still_serving(endpoint):
    """The server must answer a real query after whatever we just sent."""
    host, port = endpoint
    bits = [i % 2 for i in range(D)]
    with ServiceClient(host=host, port=port, timeout=10.0) as client:
        assert client.ping()
        result = client.query(bits)
        assert result.probes >= 0


# -- malformed frames --------------------------------------------------------
@given(
    junk=st.one_of(
        st.binary(min_size=1, max_size=200),
        st.text(min_size=1, max_size=200).map(lambda s: s.encode("utf-8", "ignore")),
    ).filter(lambda b: b.strip())
)
@settings(max_examples=25, deadline=None)
def test_garbage_bytes_get_errors_not_wedges(endpoint, junk):
    """Arbitrary garbage: every line is answered (ok: false) or the
    connection is closed — and the server keeps serving afterwards."""
    responses = raw_exchange(endpoint, junk + b"\n")
    for response in responses:
        if isinstance(response, dict) and "op" not in response:
            assert response.get("ok") is False
            assert "error" in response
    assert_still_serving(endpoint)


@pytest.mark.parametrize(
    "frame",
    [
        b'{"op": "query", "bits": [1, 0',  # truncated JSON
        b'{"op": "query"}',  # missing bits
        b'{"op": "query", "bits": "nope"}',  # wrong type
        b'{"op": "query", "bits": [1, 2, 3]}',  # non-binary values
        b'{"op": "frobnicate", "id": 9}',  # unknown verb
        b"[1, 2, 3]",  # non-object JSON
        b'"just a string"',
        b"42",
        b"null",
        b'{"op": "insert", "points": []}',  # empty write
        b'{"op": "delete", "ids": [1, 1]}',  # duplicate ids in one delete
        b'{"op": "delete", "ids": [999999]}',  # out-of-range id
        b'{"op": "insert", "points": [[1, 0]]}',  # wrong dimension
    ],
)
def test_bad_requests_get_per_request_errors(endpoint, frame):
    responses = raw_exchange(endpoint, frame + b"\n")
    dicts = [r for r in responses if isinstance(r, dict)]
    assert dicts, f"no JSON response to {frame!r}"
    assert all(r.get("ok") is False and r.get("error") for r in dicts)
    assert_still_serving(endpoint)


def test_unknown_verb_echoes_request_id(endpoint):
    (response,) = raw_exchange(endpoint, b'{"op": "frobnicate", "id": 7}\n')
    assert response["ok"] is False
    assert response["id"] == 7
    assert "frobnicate" in response["error"]


def test_oversized_line_is_refused_without_wedging(endpoint):
    """A line past WIRE_LINE_LIMIT can't be buffered; the server must
    refuse it (error or close) and keep serving everyone else."""
    big = b'{"op": "query", "bits": "' + b"a" * (WIRE_LINE_LIMIT + 64) + b'"}\n'
    responses = raw_exchange(endpoint, big)
    for response in responses:
        if isinstance(response, dict):
            assert response.get("ok") is False
    assert_still_serving(endpoint)


def test_partial_writes_reassemble_into_one_request(endpoint):
    """A frame dribbled out in pieces is still one request."""
    host, port = endpoint
    bits = [i % 2 for i in range(D)]
    frame = json.dumps({"op": "query", "id": 0, "bits": bits}).encode() + b"\n"
    with socket.create_connection((host, port), timeout=10) as sock:
        for i in range(0, len(frame), 7):
            sock.sendall(frame[i : i + 7])
            time.sleep(0.001)
        sock.settimeout(10)
        response = json.loads(sock.makefile("rb").readline())
    assert response["ok"] is True
    assert response["id"] == 0
    assert_still_serving(endpoint)


def test_pipelined_duplicate_request_ids_both_answered(endpoint):
    """The protocol echoes ids verbatim; two in-flight requests sharing
    an id both get answers (matching them is the client's problem)."""
    bits = [0] * D
    frame = json.dumps({"op": "query", "id": 5, "bits": bits}).encode() + b"\n"
    responses = raw_exchange(endpoint, frame * 2)
    assert len(responses) == 2
    assert all(r["ok"] and r["id"] == 5 for r in responses)


# -- client timeout regression ----------------------------------------------
@pytest.fixture()
def black_hole():
    """A server that accepts and reads but never answers — what a
    SIGSTOPped or wedged process looks like from the client side."""
    listener = socket.socket()
    listener.bind(("127.0.0.1", 0))
    listener.listen(4)
    conns = []
    stop = threading.Event()

    def run():
        listener.settimeout(0.1)
        while not stop.is_set():
            try:
                conn, _ = listener.accept()
            except socket.timeout:
                continue
            conn.settimeout(0.1)
            conns.append(conn)

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    yield listener.getsockname()
    stop.set()
    thread.join(timeout=5)
    for conn in conns:
        conn.close()
    listener.close()


def test_query_raises_timeout_when_server_never_answers(black_hole):
    host, port = black_hole
    with ServiceClient(host=host, port=port, timeout=0.3) as client:
        with pytest.raises(ServiceTimeoutError, match="did not answer 'query'"):
            client.query([0] * D)


def test_per_request_timeout_overrides_client_default(black_hole):
    host, port = black_hole
    start = time.monotonic()
    with ServiceClient(host=host, port=port, timeout=30.0) as client:
        with pytest.raises(ServiceTimeoutError):
            client.ping(timeout=0.3)
    assert time.monotonic() - start < 5.0  # did not wait out the default


def test_timeout_error_is_a_service_error(black_hole):
    host, port = black_hole
    with ServiceClient(host=host, port=port, timeout=0.3) as client:
        with pytest.raises(ServiceError):  # existing handlers keep working
            client.stats()


def test_server_killed_mid_request_raises_instead_of_hanging():
    """Kill the connection between request and response: the client
    must surface a ServiceError immediately, not block on readline."""
    listener = socket.socket()
    listener.bind(("127.0.0.1", 0))
    listener.listen(1)

    def accept_then_slam():
        conn, _ = listener.accept()
        conn.settimeout(5)
        reader = conn.makefile("rb")
        reader.readline()  # swallow the request...
        conn.close()  # ...and die without answering

    thread = threading.Thread(target=accept_then_slam, daemon=True)
    thread.start()
    host, port = listener.getsockname()
    start = time.monotonic()
    with ServiceClient(host=host, port=port, timeout=30.0) as client:
        with pytest.raises(ServiceError, match="closed the connection"):
            client.query([0] * D)
    assert time.monotonic() - start < 5.0
    thread.join(timeout=5)
    listener.close()


def test_abandoned_late_responses_do_not_leak_into_parked():
    """Regression: a response that arrives *after* its request timed out
    used to be parked forever — nothing ever asks for an abandoned id,
    so a client surviving repeated timeouts leaked one parked response
    per timeout.  Late responses to abandoned ids must be dropped, and
    the abandoned-id set must drain as they arrive."""
    listener = socket.socket()
    listener.bind(("127.0.0.1", 0))
    listener.listen(1)
    delay = 0.25

    def reply_late():
        conn, _ = listener.accept()
        conn.settimeout(10)
        reader = conn.makefile("rb")
        writer = conn.makefile("wb")
        try:
            while True:
                raw = reader.readline()
                if not raw:
                    return
                request = json.loads(raw)
                time.sleep(delay)  # past the hammering client's timeout
                writer.write(
                    json.dumps({"ok": True, "id": request["id"]}).encode() + b"\n"
                )
                writer.flush()
        except OSError:
            pass
        finally:
            conn.close()

    thread = threading.Thread(target=reply_late, daemon=True)
    thread.start()
    host, port = listener.getsockname()
    hammered = 4
    with ServiceClient(host=host, port=port, timeout=30.0) as client:
        for _ in range(hammered):
            with pytest.raises(ServiceTimeoutError):
                client.ping(timeout=0.05)
        assert len(client._abandoned) == hammered
        # A patient request drains every late response ahead of its own:
        # abandoned ids are dropped (not parked), then the real answer
        # arrives.  Before the fix, _parked ended this test 4 entries big.
        assert client.ping(timeout=(hammered + 2) * delay + 5.0)
        assert client._parked == {}
        assert client._abandoned == set()
    thread.join(timeout=10)
    listener.close()


def test_abandoned_set_stays_bounded_when_server_never_answers(black_hole):
    """Regression: against a server that will never answer (the common
    timeout cause), every timeout used to leave one id in _abandoned
    forever — the same slow leak the set was introduced to fix for
    _parked.  The set is capped, evicting the oldest ids first."""
    host, port = black_hole
    with ServiceClient(host=host, port=port, timeout=30.0) as client:
        client.ABANDONED_LIMIT = 8  # shadow the class default for the test
        for _ in range(3 * client.ABANDONED_LIMIT):
            with pytest.raises(ServiceTimeoutError):
                client.ping(timeout=0.02)
        assert len(client._abandoned) == client.ABANDONED_LIMIT
        # the newest ids survive — they are the ones a slow server could
        # still answer late
        assert max(client._abandoned) == client._next_id - 1
        assert min(client._abandoned) == client._next_id - client.ABANDONED_LIMIT


def test_late_responses_for_evicted_ids_are_reclaimed_from_parked():
    """A late response whose id was already evicted from _abandoned is
    parked (it looks like any unrecognized id); the next request must
    sweep it out — parked responses for past ids can never be claimed."""
    listener = socket.socket()
    listener.bind(("127.0.0.1", 0))
    listener.listen(1)
    delay = 0.25

    def reply_late():
        conn, _ = listener.accept()
        conn.settimeout(10)
        reader = conn.makefile("rb")
        writer = conn.makefile("wb")
        try:
            while True:
                raw = reader.readline()
                if not raw:
                    return
                request = json.loads(raw)
                time.sleep(delay)  # past the hammering client's timeout
                writer.write(
                    json.dumps({"ok": True, "id": request["id"]}).encode() + b"\n"
                )
                writer.flush()
        except OSError:
            pass
        finally:
            conn.close()

    thread = threading.Thread(target=reply_late, daemon=True)
    thread.start()
    host, port = listener.getsockname()
    hammered = 4
    with ServiceClient(host=host, port=port, timeout=30.0) as client:
        client.ABANDONED_LIMIT = 2
        for _ in range(hammered):
            with pytest.raises(ServiceTimeoutError):
                client.ping(timeout=0.05)
        assert len(client._abandoned) == 2  # ids 0 and 1 were evicted
        # The patient ping drains all four late responses before its own:
        # ids still in _abandoned are dropped; the evicted ones are
        # parked (they are indistinguishable from unknown ids).
        assert client.ping(timeout=(hammered + 2) * delay + 5.0)
        assert set(client._parked) <= {0, 1}
        # the next request sweeps the unreachable parked entries
        assert client.ping(timeout=delay + 5.0)
        assert client._parked == {}
    thread.join(timeout=10)
    listener.close()
