"""The NDJSON wire protocol: server, ServiceClient, and the CLI entry.

A real asyncio TCP server runs on an ephemeral port in a background
thread; the synchronous :class:`~repro.service.client.ServiceClient`
talks to it exactly as scripts and the CI smoke test do.  Remote answers
must carry the same answer/probe/round accounting a local
``index.query`` call returns.
"""

from __future__ import annotations

import asyncio
import json
import queue
import socket
import threading
import time

import numpy as np
import pytest

from repro.api import IndexSpec
from repro.core.index import ANNIndex
from repro.hamming.points import PackedPoints
from repro.hamming.sampling import random_points
from repro.service import ServiceClient, ServiceError
from repro.service.server import serve

N, D = 80, 128
SPEC = IndexSpec(scheme="algorithm1", params={"rounds": 2}, seed=23)


@pytest.fixture(scope="module")
def index():
    gen = np.random.default_rng(7)
    return ANNIndex.from_spec(PackedPoints(random_points(gen, N, D), D), SPEC)


@pytest.fixture(scope="module")
def query_bits():
    gen = np.random.default_rng(8)
    return gen.integers(0, 2, size=(6, D), dtype=np.uint8)


@pytest.fixture()
def endpoint(index):
    """A live server on an ephemeral port; shut down after the test."""
    ready: "queue.Queue" = queue.Queue()

    def run():
        asyncio.run(
            serve(
                index,
                port=0,
                max_batch=8,
                max_wait_ms=1.0,
                ready_cb=lambda host, port: ready.put((host, port)),
            )
        )

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    host, port = ready.get(timeout=10)
    yield host, port
    try:
        with ServiceClient(host=host, port=port, timeout=5.0) as client:
            client.shutdown()
    except OSError:
        pass  # a test already shut the server down
    thread.join(timeout=10)
    assert not thread.is_alive()


def test_query_matches_local_index(endpoint, index, query_bits):
    host, port = endpoint
    with ServiceClient(host=host, port=port) as client:
        for bits in query_bits:
            local = index.query(bits)
            remote = client.query(bits)
            assert remote.answer_index == local.answer_index
            assert remote.probes == local.probes
            assert remote.rounds == local.rounds
            assert remote.probes_per_round == local.probes_per_round
            assert remote.scheme == local.scheme
            assert remote.answered == local.answered


def test_info_and_ping(endpoint, index):
    host, port = endpoint
    with ServiceClient(host=host, port=port) as client:
        assert client.ping()
        info = client.info()
        assert info["index"]["n"] == N
        assert info["index"]["d"] == D
        assert info["index"]["scheme"] == index.scheme.scheme_name
        assert info["index"]["spec"] == SPEC.to_dict()
        assert info["policy"] == {"max_batch": 8, "max_wait_ms": 1.0}


def test_stats_counts_served_queries(endpoint, query_bits):
    host, port = endpoint
    with ServiceClient(host=host, port=port) as client:
        for bits in query_bits[:3]:
            client.query(bits)
        stats = client.stats()
        assert stats["requests"] == 3
        assert stats["batches"] >= 1
        assert stats["total_probes"] > 0
        assert stats["max_batch"] == 8


def test_protocol_errors_are_responses(endpoint):
    host, port = endpoint
    with ServiceClient(host=host, port=port) as client:
        with pytest.raises(ServiceError, match="unknown op"):
            client._request("frobnicate")
        with pytest.raises(ServiceError, match="bits"):
            client._request("query")  # missing the bits payload
        with pytest.raises(ServiceError, match="dimension"):
            client.query(np.zeros(D + 1, dtype=np.uint8))
        # ...and the connection keeps serving afterwards.
        assert client.ping()


def test_malformed_line_gets_error_response(endpoint):
    host, port = endpoint
    with socket.create_connection((host, port), timeout=5.0) as raw:
        raw.sendall(b"this is not json\n")
        response = json.loads(raw.makefile("rb").readline())
    assert response["ok"] is False
    assert response["id"] is None


def test_pipelined_requests_match_by_id(endpoint, query_bits):
    # Two raw requests written back to back; responses may arrive in any
    # order, but each carries its request id.
    host, port = endpoint
    with socket.create_connection((host, port), timeout=5.0) as raw:
        lines = b"".join(
            json.dumps(
                {"op": "query", "id": i, "bits": [int(b) for b in query_bits[i]]}
            ).encode()
            + b"\n"
            for i in range(2)
        )
        raw.sendall(lines)
        reader = raw.makefile("rb")
        responses = [json.loads(reader.readline()) for _ in range(2)]
    assert {r["id"] for r in responses} == {0, 1}
    assert all(r["ok"] for r in responses)


def test_client_rejects_packed_queries(endpoint):
    host, port = endpoint
    with ServiceClient(host=host, port=port) as client:
        with pytest.raises(ValueError, match="bit vectors"):
            client.query(np.zeros(2, dtype=np.uint64))


def test_shutdown_stops_the_server(index):
    ready: "queue.Queue" = queue.Queue()

    def run():
        asyncio.run(
            serve(index, port=0, ready_cb=lambda host, port: ready.put((host, port)))
        )

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    host, port = ready.get(timeout=10)
    with ServiceClient(host=host, port=port) as client:
        client.shutdown()
    thread.join(timeout=10)
    assert not thread.is_alive()
    with pytest.raises(OSError):
        socket.create_connection((host, port), timeout=1.0).close()


def test_shutdown_without_reading_ack_still_stops(index):
    # A scripted client may fire shutdown and close without reading the
    # reply; the server must stop anyway (regression: the ack write
    # failing used to skip the shutdown trigger).
    ready: "queue.Queue" = queue.Queue()

    def run():
        asyncio.run(
            serve(index, port=0, ready_cb=lambda host, port: ready.put((host, port)))
        )

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    host, port = ready.get(timeout=10)
    with socket.create_connection((host, port), timeout=5.0) as raw:
        raw.sendall(b'{"op": "shutdown", "id": 0}\n')
    thread.join(timeout=10)
    assert not thread.is_alive()


class TestServeCLI:
    def test_serve_ready_file_roundtrip(self, index, tmp_path, query_bits):
        """build → serve → client round-trip → stats → shutdown, through
        the CLI exactly as the CI smoke step drives it."""
        from repro.cli import main

        snapshot = tmp_path / "idx"
        index.save(snapshot)
        ready_file = tmp_path / "ready"
        result: dict = {}

        def run():
            result["code"] = main(
                ["serve", "--index", str(snapshot), "--port", "0",
                 "--max-batch", "16", "--max-wait-ms", "1",
                 "--ready-file", str(ready_file)]
            )

        thread = threading.Thread(target=run, daemon=True)
        thread.start()
        deadline = time.monotonic() + 15
        while not ready_file.exists() and time.monotonic() < deadline:
            time.sleep(0.02)
        host, port = ready_file.read_text().split()
        with ServiceClient(host=host, port=int(port)) as client:
            local = index.query(query_bits[0])
            remote = client.query(query_bits[0])
            assert remote.answer_index == local.answer_index
            assert remote.probes == local.probes
            assert client.stats()["requests"] == 1
            client.shutdown()
        thread.join(timeout=10)
        assert not thread.is_alive()
        assert result["code"] == 0
