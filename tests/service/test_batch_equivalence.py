"""Batch/sequential equivalence: ``query_batch`` must reproduce a
sequential ``query`` loop bit for bit under the same seed — answers,
probe counts, round counts, per-round probe lists — for both algorithms,
the boosted wrapper, and every registered baseline, with and without
cell prefetching."""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import IndexSpec
from repro.core.algorithm2 import LargeKScheme
from repro.core.index import ANNIndex
from repro.core.params import Algorithm2Params, BaseParameters
from repro.hamming.points import PackedPoints
from repro.hamming.sampling import flip_random_bits, random_points
from repro.service import BatchQueryEngine


@pytest.fixture(scope="module")
def workload():
    gen = np.random.default_rng(42)
    n, d = 150, 256
    db = PackedPoints(random_points(gen, n, d), d)
    queries = np.vstack(
        [
            flip_random_bits(gen, db.row(int(gen.integers(0, n))), int(gen.integers(0, 20)), d)
            for _ in range(40)
        ]
        + [random_points(gen, 8, d)]  # plus some uniform (far) queries
    )
    return db, queries


def _spec(scheme, boost=1, **params):
    return IndexSpec(
        scheme=scheme, params={"gamma": 4.0, "c1": 8.0, **params}, seed=9, boost=boost
    )


BUILD_CASES = [
    pytest.param(_spec("algorithm1", rounds=2), id="alg1-k2"),
    pytest.param(_spec("algorithm1", rounds=3), id="alg1-k3"),
    pytest.param(_spec("algorithm2", rounds=8, s=2), id="alg2-k8"),
    pytest.param(_spec("algorithm1", rounds=3, boost=3), id="boosted-alg1"),
    pytest.param(_spec("algorithm2", rounds=8, s=2, boost=2), id="boosted-alg2"),
]


def assert_results_equal(seq, bat):
    assert len(seq) == len(bat)
    for s, b in zip(seq, bat):
        assert s.answer_index == b.answer_index
        assert s.probes == b.probes
        assert s.rounds == b.rounds
        assert s.probes_per_round == b.probes_per_round
        assert s.scheme == b.scheme
        if s.answer_packed is None:
            assert b.answer_packed is None
        else:
            assert np.array_equal(s.answer_packed, b.answer_packed)


@pytest.mark.parametrize("spec", BUILD_CASES)
@pytest.mark.parametrize("prefetch", [True, False], ids=["prefetch", "noprefetch"])
def test_query_batch_matches_sequential_loop(workload, spec, prefetch):
    db, queries = workload
    seq_index = ANNIndex.from_spec(db, spec)
    bat_index = ANNIndex.from_spec(db, spec)
    seq = [seq_index.query_packed(q) for q in queries]
    bat = bat_index.query_batch(queries, prefetch=prefetch)
    assert_results_equal(seq, bat)


@pytest.mark.parametrize("spec", BUILD_CASES[:3])
def test_query_batch_on_same_index_instance(workload, spec):
    """Running both paths on one index (warm caches) changes nothing."""
    db, queries = workload
    index = ANNIndex.from_spec(db, spec)
    bat = index.query_batch(queries)
    seq = [index.query_packed(q) for q in queries]
    bat_again = index.query_batch(queries)
    assert_results_equal(seq, bat)
    assert_results_equal(seq, bat_again)


def test_query_batch_accepts_bit_arrays(workload):
    db, queries = workload
    index = ANNIndex.from_spec(db, _spec("algorithm1", rounds=2))
    from repro.hamming.packing import unpack_bits

    bits = unpack_bits(queries, db.d)
    from_bits = index.query_batch(bits)
    from_packed = index.query_batch(queries)
    assert_results_equal(from_packed, from_bits)


def test_query_batch_single_query_promoted(workload):
    db, queries = workload
    index = ANNIndex.from_spec(db, _spec("algorithm1", rounds=2))
    single = index.query_batch(queries[0])
    assert len(single) == 1
    assert_results_equal([index.query_packed(queries[0])], single)


def test_one_probe_per_round_batch_equivalence(workload):
    """The serialized (fully adaptive, 1 probe/round) variant batches too."""
    db, queries = workload
    base = BaseParameters(n=len(db), d=db.d, gamma=4.0, c1=8.0, c2=8.0)

    def scheme():
        return LargeKScheme(
            db, Algorithm2Params(base, k=8, s_override=2), seed=4, one_probe_per_round=True
        )

    seq_scheme = scheme()
    seq = [seq_scheme.query(q) for q in queries[:16]]
    bat = BatchQueryEngine(scheme()).run(queries[:16])
    assert_results_equal(seq, bat)
    assert all(r.rounds == r.probes for r in bat)  # serialized: 1 probe per round


def test_boosted_serialized_batch_equivalence(workload):
    """Boosting over serialized copies batches with identical accounting."""
    from repro.core.boosting import BoostedScheme

    db, queries = workload
    base = BaseParameters(n=len(db), d=db.d, gamma=4.0, c1=8.0, c2=8.0)

    def factory(seed):
        return LargeKScheme(
            db, Algorithm2Params(base, k=8, s_override=2), seed=seed,
            one_probe_per_round=True,
        )

    seq_scheme = BoostedScheme(factory, seeds=[0, 1])
    seq = [seq_scheme.query(q) for q in queries[:16]]
    bat = BatchQueryEngine(BoostedScheme(factory, seeds=[0, 1])).run(queries[:16])
    assert_results_equal(seq, bat)


def test_batch_results_deterministic_across_runs(workload):
    db, queries = workload
    spec = _spec("algorithm1", rounds=3).replace(seed=21)
    a = ANNIndex.from_spec(db, spec)
    b = ANNIndex.from_spec(db, spec)
    assert_results_equal(a.query_batch(queries), b.query_batch(queries))


# Registry-driven equivalence for every baseline scheme (the non-core
# half of the unified surface); core schemes are covered above.
BASELINE_SPECS = [
    pytest.param(IndexSpec(scheme="lsh", seed=7), id="lsh-nonadaptive"),
    pytest.param(
        IndexSpec(scheme="lsh", params={"mode": "adaptive"}, seed=7), id="lsh-adaptive"
    ),
    pytest.param(IndexSpec(scheme="data-dependent-lsh", seed=7), id="ddlsh"),
    pytest.param(IndexSpec(scheme="linear-scan"), id="linear-scan"),
    pytest.param(IndexSpec(scheme="fully-adaptive", seed=7), id="fully-adaptive"),
    pytest.param(IndexSpec(scheme="lambda-ann", seed=7), id="lambda-ann"),
    pytest.param(
        IndexSpec(scheme="lsh", seed=7, boost=2), id="boosted-lsh"
    ),
]


@pytest.mark.parametrize("spec", BASELINE_SPECS)
@pytest.mark.parametrize("prefetch", [True, False], ids=["prefetch", "noprefetch"])
def test_registry_baseline_batch_matches_sequential_loop(workload, spec, prefetch):
    db, queries = workload
    index = ANNIndex.from_spec(db, spec)
    seq = [index.query_packed(q) for q in queries[:24]]
    bat = index.query_batch(queries[:24], prefetch=prefetch)
    assert_results_equal(seq, bat)


def test_query_batch_reuses_engine(workload):
    """One engine per (index, prefetch flag), reused across calls."""
    db, queries = workload
    index = ANNIndex.from_spec(
        db, IndexSpec(scheme="algorithm1", params={"rounds": 2, "c1": 8.0}, seed=9)
    )
    index.query_batch(queries[:4])
    engine = index._engines[True]
    index.query_batch(queries[4:8])
    assert index._engines[True] is engine
    index.query_batch(queries[:4], prefetch=False)
    assert index._engines[False] is not engine
    assert set(index._engines) == {True, False}


def test_last_batch_stats_none_before_first_batch(workload):
    db, _ = workload
    index = ANNIndex.from_spec(db, IndexSpec(scheme="linear-scan"))
    assert index.last_batch_stats is None


def test_query_batch_empty_inputs(workload):
    """Empty batches mirror the sequential loop: no results, no crash."""
    db, _ = workload
    index = ANNIndex.from_spec(db, _spec("algorithm1", rounds=2))
    assert index.query_batch([]) == []
    assert index.query_batch(np.empty((0, db.d), dtype=np.uint8)) == []
    assert index.query_batch(np.empty((0, db.word_count), dtype=np.uint64)) == []
    assert index.last_batch_stats.batch_size == 0
