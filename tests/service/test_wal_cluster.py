"""Router crash recovery through the durable write-ahead log.

The headline invariant (``docs/DISTRIBUTED.md``): a SIGKILLed router
restarted with ``--log-dir ... --recover`` answers **bitwise
identically** to a router that was never killed — equivalently, to the
single-process :class:`ShardedANNIndex` oracle applying the same write
history.  Cluster state is a pure function of (snapshot, WAL), so the
tests also rebuild an oracle *from the WAL files themselves* and check
the three-way agreement.

Layers:

* gating fast tests — crash/recover round-trip, replay of writes a
  stale replica missed, checkpoint truncation, supervised auto-respawn
  (CI's durability smoke step runs these);
* a ``slow`` hypothesis property test killing the router at seeded
  points of a seeded query/insert/delete schedule.
"""

from __future__ import annotations

import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import cluster_harness as ch
from repro.service.sharded import ShardedANNIndex
from repro.service.wal import read_segment, segment_path

pytestmark = pytest.mark.filterwarnings("ignore::pytest.PytestUnraisableExceptionWarning")


@pytest.fixture(scope="module")
def snapshot(tmp_path_factory):
    """A saved 2-shard planted-workload index plus its query batch."""
    return ch.build_sharded_snapshot(tmp_path_factory.mktemp("walcluster") / "snap")


def replay_oracle(snapshot, log_dir) -> ShardedANNIndex:
    """The recovery definition, executed literally: load the snapshot
    and replay each shard's WAL entries into its shard index.  The
    cluster must be bitwise-equivalent to *this* after any crash."""
    oracle = ShardedANNIndex.load(snapshot)
    for si in range(oracle.num_shards):
        segment = read_segment(segment_path(log_dir, si))
        assert segment["base_seq"] == 0, "replay oracle needs the full log"
        for entry in segment["entries"]:
            if entry["op"] == "insert":
                oracle.shards[si].insert(
                    np.asarray(entry["payload"]["points"], dtype=np.uint8)
                )
            else:
                oracle.shards[si].delete(entry["payload"]["ids"])
    return oracle


def apply_writes(client, oracle, rng, d):
    """One insert + one delete through both cluster and oracle."""
    pts = rng.integers(0, 2, size=(2, d), dtype=np.uint8)
    assert client.insert(pts.tolist()) == oracle.insert(pts)
    victim = next(g for g in range(oracle.id_space) if oracle.is_live(g))
    assert client.delete([victim]) == oracle.delete([victim]) == 1


def test_router_crash_recovery_is_bitwise_identical(snapshot, tmp_path):
    """Write, SIGKILL the router, restart with --recover: the recovered
    router answers every query bitwise-identically to the oracle, and
    the WAL carries exactly the logged history."""
    snap, queries = snapshot
    oracle = ShardedANNIndex.load(snap)
    rng = np.random.default_rng(17)
    log_dir = tmp_path / "wal"
    with ch.ClusterHarness(snap, replicas=2, log_dir=log_dir) as cluster:
        with cluster.connect() as client:
            apply_writes(client, oracle, rng, oracle.d)
            stats = client.stats()
            assert stats["wal_appends"] >= 2  # insert may split across shards
            assert stats["wal"]["dir"] == str(log_dir)

        cluster.kill_router()
        recovery_s = cluster.restart_router()
        assert recovery_s < 30

        with cluster.connect() as client:
            for bits in queries[:4]:
                ch.assert_query_equivalent(client, oracle, bits)
            # the WAL-replay definition of recovery agrees
            replayed = replay_oracle(snap, log_dir)
            for bits in queries[:4]:
                ch.assert_query_equivalent(client, replayed, bits)
            # the recovered router keeps logging: writes still replicate
            apply_writes(client, oracle, rng, oracle.d)
            for bits in queries[:4]:
                ch.assert_query_equivalent(client, oracle, bits)
            assert client.stats()["wal_appends"] >= 2


def test_recovery_replays_writes_a_stale_replica_missed(snapshot, tmp_path):
    """Writes land while one replica per shard is dead; the router is
    killed; the dead replicas restart from their *stale* snapshots.  The
    recovering router must replay the WAL gap into them before serving —
    pinned by killing the up-to-date siblings and querying the recovered
    replicas alone."""
    snap, queries = snapshot
    oracle = ShardedANNIndex.load(snap)
    rng = np.random.default_rng(23)
    with ch.ClusterHarness(
        snap, replicas=2, log_dir=tmp_path / "wal"
    ) as cluster:
        with cluster.connect() as client:
            for si in range(cluster.num_shards):
                cluster.kill_replica(si, 0)
            apply_writes(client, oracle, rng, oracle.d)

        cluster.kill_router()
        # restart the stale replicas while the router is down: nothing
        # can catch them up except the new router's WAL recovery
        for si in range(cluster.num_shards):
            cluster.restart_replica(si, 0)
        cluster.restart_router()

        with cluster.connect() as client:
            stats = client.stats()
            assert stats["recoveries"] >= 1
            assert stats["recovered_writes"] >= 2
            # recovered replicas must carry their shards alone, bitwise
            for si in range(cluster.num_shards):
                cluster.kill_replica(si, 1)
            for bits in queries[:4]:
                ch.assert_query_equivalent(client, oracle, bits)


def test_checkpoint_truncates_the_wal(snapshot, tmp_path):
    """``snapshot`` against the router saves every replica to its own
    snapshot directory and truncates the WAL to the persisted coverage;
    recovery from the truncated log still works because restarted
    replicas load their checkpoints, which carry the prefix."""
    import shutil

    snap_src, queries = snapshot
    snap = tmp_path / "snap"  # private copy, pure test isolation
    shutil.copytree(snap_src, snap)
    oracle = ShardedANNIndex.load(snap)
    rng = np.random.default_rng(29)
    log_dir = tmp_path / "wal"
    with ch.ClusterHarness(snap, replicas=2, log_dir=log_dir) as cluster:
        with cluster.connect() as client:
            apply_writes(client, oracle, rng, oracle.d)
            before = client.stats()["wal"]["segments"]
            assert sum(s["entries"] for s in before) >= 2

            report = client.snapshot()
            assert report["ok"] if "ok" in report else True
            assert sum(report["truncated"]) == sum(s["entries"] for s in before)
            after = client.stats()
            assert after["wal_truncations"] >= 1
            assert after["checkpoints"] == 1
            for si, seg in enumerate(after["wal"]["segments"]):
                assert seg["entries"] == 0
                assert seg["base_seq"] == seg["head"]
                # durable too, not just in the router's memory
                on_disk = read_segment(segment_path(log_dir, si))
                assert on_disk["base_seq"] == seg["base_seq"]
                assert on_disk["entries"] == []

            # post-checkpoint writes append past the new base
            apply_writes(client, oracle, rng, oracle.d)

        # crash + recover on the truncated log: replicas restart from
        # the *checkpointed* snapshots, which cover the truncated prefix
        cluster.kill_router()
        for si in range(cluster.num_shards):
            cluster.restart_replica(si, 0)
        cluster.restart_router()
        with cluster.connect() as client:
            for si in range(cluster.num_shards):
                cluster.kill_replica(si, 1)
            for bits in queries[:4]:
                ch.assert_query_equivalent(client, oracle, bits)


def test_checkpoint_never_touches_the_shared_snapshot(snapshot, tmp_path):
    """Replicas of a shard all load the same ``--index`` snapshot;
    checkpoints must land in per-replica ``--snapshot-dir`` directories
    and leave the shared snapshot byte-identical — a replica saving in
    place would rewrite files its siblings are serving."""
    from pathlib import Path

    snap = Path(snapshot[0])
    oracle = ShardedANNIndex.load(snap)
    rng = np.random.default_rng(41)
    files = sorted(p for p in snap.rglob("*") if p.is_file())
    before = {p: p.read_bytes() for p in files}
    with ch.ClusterHarness(snap, replicas=2, log_dir=tmp_path / "wal") as cluster:
        with cluster.connect() as client:
            apply_writes(client, oracle, rng, oracle.d)
            client.snapshot()
        snap_dirs = sorted(cluster.workdir.glob("shard*r*.snap"))
        assert len(snap_dirs) == cluster.num_shards * 2
        for directory in snap_dirs:
            assert (directory / "manifest.json").is_file()
    assert sorted(p for p in snap.rglob("*") if p.is_file()) == files
    assert all(p.read_bytes() == before[p] for p in files)


def test_mmap_cluster_checkpoints_and_restarts_from_v3(snapshot, tmp_path):
    """Under ``--load-mode mmap`` a checkpoint into a fresh per-replica
    directory must come out as format v3 (the restart reloads it with
    the same load mode), and the restarted replica must carry its shard
    alone after recovery."""
    import json

    snap_v3 = tmp_path / "snap-v3"
    ShardedANNIndex.load(snapshot[0]).save(snap_v3, format_version=3)
    queries = snapshot[1]
    oracle = ShardedANNIndex.load(snap_v3)
    rng = np.random.default_rng(43)
    with ch.ClusterHarness(
        snap_v3, replicas=2, log_dir=tmp_path / "wal", load_mode="mmap"
    ) as cluster:
        with cluster.connect() as client:
            apply_writes(client, oracle, rng, oracle.d)
            client.snapshot()
            for si in range(cluster.num_shards):
                for ri in range(2):
                    manifest = json.loads(
                        (cluster.workdir / f"shard{si}r{ri}.snap" / "manifest.json")
                        .read_text()
                    )
                    assert manifest["format_version"] == 3
            apply_writes(client, oracle, rng, oracle.d)

        cluster.kill_router()
        for si in range(cluster.num_shards):
            cluster.restart_replica(si, 0)  # reloads its own v3 checkpoint
        cluster.restart_router()
        with cluster.connect() as client:
            for si in range(cluster.num_shards):
                cluster.kill_replica(si, 1)
            for bits in queries[:4]:
                ch.assert_query_equivalent(client, oracle, bits)


def test_supervised_cluster_respawns_dead_replicas(snapshot, tmp_path):
    """With supervision on, a SIGKILLed replica comes back by itself
    (same snapshot, same port), is caught up from the write log, and
    the respawn is visible in the router's counters."""
    snap, queries = snapshot
    oracle = ShardedANNIndex.load(snap)
    rng = np.random.default_rng(31)
    with ch.ClusterHarness(
        snap, replicas=2, log_dir=tmp_path / "wal", supervise=True
    ) as cluster:
        with cluster.connect() as client:
            apply_writes(client, oracle, rng, oracle.d)
            cluster.kill_replica(0, 0)
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                if cluster.respawns >= 1 and cluster.replica_alive_in_router(0, 0):
                    break
                time.sleep(0.1)
            else:
                raise AssertionError("supervision never respawned the replica")
            # the respawned replica answers its shard alone, bitwise
            cluster.kill_replica(0, 1)
            cluster.wait_replica_alive(0, 1)  # supervised: comes back too
            for bits in queries[:4]:
                ch.assert_query_equivalent(client, oracle, bits)


# -- chaos property ----------------------------------------------------------
@pytest.mark.slow
@given(seed=st.integers(min_value=0, max_value=2**32 - 1))
@settings(max_examples=3, deadline=None)
def test_router_kill_schedule_is_bitwise_equivalent(snapshot, tmp_path_factory, seed):
    """Kill the router at seeded points of a seeded query/insert/delete
    schedule (replica kills included): after every recovery the cluster
    stays bitwise-identical to the incremental oracle, and the final
    state equals the literal recovery definition — snapshot + per-shard
    WAL replay."""
    snap, queries = snapshot
    oracle = ShardedANNIndex.load(snap)
    rng = np.random.default_rng(seed)
    d = oracle.d
    steps = 10
    router_kills = sorted(
        int(k) for k in rng.choice(steps, size=2, replace=False)
    )
    replica_kill = int(rng.integers(0, steps))
    target = (int(rng.integers(0, oracle.num_shards)), int(rng.integers(0, 2)))
    log_dir = tmp_path_factory.mktemp("chaoswal") / f"wal-{seed}"

    with ch.ClusterHarness(
        snap, replicas=2, log_dir=log_dir, supervise=True
    ) as cluster:
        client = cluster.connect()
        try:
            for step in range(steps):
                if step in router_kills:
                    cluster.kill_router()
                    cluster.restart_router()
                    client.close()
                    client = cluster.connect()
                if step == replica_kill:
                    cluster.kill_replica(*target)  # supervision revives it
                roll = rng.random()
                if roll < 0.5:
                    bits = [int(b) for b in rng.integers(0, 2, size=d, dtype=np.uint8)]
                    ch.assert_query_equivalent(client, oracle, bits)
                elif roll < 0.8:
                    pts = rng.integers(
                        0, 2, size=(int(rng.integers(1, 3)), d), dtype=np.uint8
                    )
                    assert client.insert(pts.tolist()) == oracle.insert(pts)
                else:
                    live = [
                        g for g in range(oracle.id_space) if oracle.is_live(g)
                    ]
                    if len(live) <= 2:
                        continue
                    victim = int(live[int(rng.integers(0, len(live)))])
                    assert client.delete([victim]) == oracle.delete([victim]) == 1
            # final crash + recovery, then the three-way agreement:
            # cluster == incremental oracle == snapshot + WAL replay
            cluster.kill_router()
            cluster.restart_router()
            client.close()
            client = cluster.connect()
            replayed = replay_oracle(snap, log_dir)
            for bits in queries[:3]:
                ch.assert_query_equivalent(client, oracle, bits)
                ch.assert_query_equivalent(client, replayed, bits)
        finally:
            client.close()
