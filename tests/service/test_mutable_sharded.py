"""Mutation semantics of :class:`ShardedANNIndex`.

The sharded contract composes the single-index one: inserts route to the
shard with the fewest live rows (ties → smallest shard index), deletes
map global ids to per-shard tombstones/memtable kills, each shard keeps
its own generation counter, and the merged answer is still the
true-distance minimum over the (mutation-aware) per-shard answers.  The
rebuild-equivalence invariant holds per shard: after compaction every
shard is bitwise-identical to a fresh build on its own survivors under
``RngTree(shard_seed).child("generation", g)``.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.api import IndexSpec
from repro.core.index import ANNIndex
from repro.core.mutable import generation_seed
from repro.hamming.distance import hamming_distance
from repro.hamming.points import PackedPoints
from repro.hamming.sampling import random_points
from repro.service.sharded import ShardedANNIndex

N, D, S = 24, 64, 3
SPEC = IndexSpec(scheme="algorithm1", params={"rounds": 2}, seed=31)


@pytest.fixture()
def db():
    gen = np.random.default_rng(55)
    return PackedPoints(random_points(gen, N, D), D)


@pytest.fixture()
def sharded(db):
    # Auto-compaction off: these tests control compaction explicitly.
    return ShardedANNIndex.build(db, SPEC, shards=S, compact_threshold=float("inf"))


def points(count, seed=5):
    gen = np.random.default_rng(seed)
    return random_points(gen, count, D)


class TestRouting:
    def test_inserts_go_to_the_smallest_shard(self, sharded):
        # 24 rows over 3 shards -> 8 each; routing ties break to shard 0.
        sizes = [len(s) for s in sharded.shards]
        assert sizes == [8, 8, 8]
        sharded.insert(points(4))
        assert [len(s) for s in sharded.shards] == [10, 9, 9]

    def test_insert_rebalances_after_deletes(self, sharded):
        # Empty out shard 2 the most; the next inserts must flow there.
        offsets = sharded.offsets
        sharded.delete([offsets[2] + i for i in range(4)])
        sharded.insert(points(3))
        assert [len(s) for s in sharded.shards] == [8, 8, 7]

    def test_insert_returns_global_ids_in_input_order(self, sharded):
        rows = points(3)
        ids = sharded.insert(rows)
        assert len(ids) == 3
        for gid, row in zip(ids, rows):
            assert sharded.is_live(gid)
            result = sharded.query(row)
            assert result.distance_to(row) == 0

    def test_inserted_duplicate_wins_by_smallest_global_id(self, sharded):
        row = points(1, seed=9)
        ids = sharded.insert(np.vstack([row, row]))
        result = sharded.query(row[0])
        assert result.answer_index == min(ids)


class TestDelete:
    def test_deleted_rows_never_surface(self, sharded, db):
        q = points(1, seed=11)[0]
        victim = sharded.query(q).answer_index
        sharded.delete([victim])
        assert sharded.query(q).answer_index != victim
        assert not sharded.is_live(victim)
        assert len(sharded) == N - 1

    def test_delete_is_atomic_across_shards(self, sharded):
        with pytest.raises(ValueError, match="out of range"):
            sharded.delete([0, 10**6])
        assert len(sharded) == N
        sharded.delete([0])
        with pytest.raises(ValueError, match="already deleted"):
            sharded.delete([5, 0])
        assert sharded.is_live(5)
        with pytest.raises(ValueError, match="duplicate"):
            sharded.delete([7, 7])
        assert sharded.is_live(7)

    def test_non_integer_ids_rejected_not_truncated(self, sharded):
        with pytest.raises(ValueError, match="must be integers"):
            sharded.delete([2.7])
        assert sharded.is_live(2) and len(sharded) == N


class TestMergeRule:
    def test_merged_answer_is_true_distance_min_over_shards(self, sharded):
        sharded.insert(points(5))
        sharded.delete([1, 9])
        queries = points(6, seed=13)
        offsets = sharded.offsets
        merged = sharded.query_batch(queries)
        for qi in range(queries.shape[0]):
            best = None
            for si, shard in enumerate(sharded.shards):
                res = shard.query_packed(queries[qi])
                if res.answer_packed is None:
                    continue
                cand = (
                    hamming_distance(queries[qi], res.answer_packed),
                    offsets[si] + res.answer_index,
                )
                if best is None or cand < best:
                    best = cand
            got = merged[qi]
            if best is None:
                assert got.answer_index is None
            else:
                assert (
                    hamming_distance(queries[qi], got.answer_packed),
                    got.answer_index,
                ) == best

    def test_query_batch_equals_query_loop_when_dirty(self, sharded):
        sharded.insert(points(4))
        sharded.delete([2])
        queries = points(5, seed=17)
        batch = sharded.query_batch(queries)
        for qi in range(queries.shape[0]):
            single = sharded.query(queries[qi])
            assert batch[qi].answer_index == single.answer_index
            assert batch[qi].probes == single.probes
            assert batch[qi].rounds == single.rounds


class TestCompaction:
    def test_each_shard_matches_its_fresh_rebuild(self, sharded, db):
        sharded.insert(points(6))
        offsets = sharded.offsets
        sharded.delete([offsets[0], offsets[1] + 1])
        gens = sharded.compact()
        queries = points(4, seed=19)
        for shard, g in zip(sharded.shards, gens):
            assert shard.generation == g
            fresh = ANNIndex.from_spec(
                shard.database,
                shard.spec.replace(seed=generation_seed(shard.spec.seed, g)),
            )
            for qi in range(queries.shape[0]):
                a = shard.query_packed(queries[qi])
                b = fresh.query_packed(queries[qi])
                assert a.answer_index == b.answer_index
                assert a.probes == b.probes
                assert a.probes_per_round == b.probes_per_round

    def test_offsets_track_id_spaces_through_mutations(self, sharded):
        assert sharded.offsets == [0, 8, 16]
        sharded.insert(points(2))
        assert sharded.offsets == [0, 9, 18]  # shards 0 and 1 grew
        sharded.delete([0])
        sharded.compact()
        # Compaction collapses id spaces to live counts: 8 + 9 + 8.
        assert sharded.offsets == [0, 8, 17]
        assert len(sharded) == N + 2 - 1

    def test_mutated_sharded_snapshot_round_trips(self, sharded, tmp_path):
        sharded.insert(points(4))
        sharded.delete([3, 12])
        queries = points(4, seed=23)
        before = sharded.query_batch(queries)
        sharded.save(tmp_path / "snap")
        loaded = ShardedANNIndex.load(tmp_path / "snap")
        assert loaded.generations == sharded.generations
        assert len(loaded) == len(sharded)
        after = loaded.query_batch(queries)
        for a, b in zip(before, after):
            assert a.answer_index == b.answer_index
            assert a.probes == b.probes
            assert a.rounds == b.rounds


class TestShardedInterleavings:
    """Randomized interleavings against a per-shard shadow model: the
    sharded composition of the single-index property harness."""

    @settings(
        max_examples=25,
        deadline=None,
        derandomize=True,
        suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
    )
    @given(data=st.data())
    def test_interleavings_keep_shards_and_merge_consistent(self, data):
        gen = np.random.default_rng(77)
        db = PackedPoints(random_points(gen, N, D), D)
        pool = random_points(gen, 24, D)
        sharded = ShardedANNIndex.build(
            db, SPEC, shards=2, compact_threshold=float("inf")
        )
        n_ops = data.draw(st.integers(2, 6), label="n_ops")
        for step in range(n_ops):
            live = [int(g) for g in range(sharded.id_space) if sharded.is_live(g)]
            choices = ["insert", "query"]
            if len(live) > 4:
                choices.append("delete")
            op = data.draw(st.sampled_from(choices), label=f"op{step}")
            if op == "insert":
                picks = data.draw(
                    st.lists(st.integers(0, 23), min_size=1, max_size=3),
                    label=f"rows{step}",
                )
                ids = sharded.insert(pool[picks])
                assert all(sharded.is_live(g) for g in ids)
            elif op == "delete":
                ids = data.draw(
                    st.lists(
                        st.sampled_from(live), min_size=1, max_size=2, unique=True
                    ),
                    label=f"ids{step}",
                )
                sharded.delete(ids)
                assert not any(sharded.is_live(g) for g in ids)
            else:
                qi = data.draw(st.integers(0, 23), label=f"q{step}")
                q = pool[qi]
                result = sharded.query(q)
                # The merge rule against the live per-shard answers.
                offsets = sharded.offsets
                best = None
                for si, shard in enumerate(sharded.shards):
                    res = shard.query_packed(q)
                    if res.answer_packed is None:
                        continue
                    cand = (
                        hamming_distance(q, res.answer_packed),
                        offsets[si] + res.answer_index,
                    )
                    if best is None or cand < best:
                        best = cand
                if best is None:
                    assert result.answer_index is None
                else:
                    assert result.answer_index == best[1]
                    assert sharded.is_live(result.answer_index)
            assert len(sharded) == sum(len(s) for s in sharded.shards)
        # Compact every shard that can rebuild, then re-check a query.
        if all(len(s) >= 2 for s in sharded.shards):
            gens = sharded.compact()
            assert gens == sharded.generations
            for shard, g in zip(sharded.shards, gens):
                assert shard.mutation.dirty_count == 0
            result = sharded.query(pool[0])
            if result.answer_index is not None:
                assert sharded.is_live(result.answer_index)
