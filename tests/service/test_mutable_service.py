"""Write verbs on the serving layer: barrier fencing + the wire protocol.

The async service accepts ``insert``/``delete`` in the same FIFO as
queries; a write is a barrier — queries submitted before it resolve
against the pre-write index, queries after it see the post-write state,
and no micro-batch ever mixes the two.  Because the queue is drained by
one batcher task, the interleaving below is deterministic: tasks enqueue
in creation order, so the assertions are exact, not statistical.
"""

from __future__ import annotations

import asyncio
import queue
import threading

import numpy as np
import pytest

from repro.api import IndexSpec
from repro.core.index import ANNIndex
from repro.core.mutable import generation_seed
from repro.hamming.points import PackedPoints
from repro.hamming.sampling import random_points
from repro.service import AsyncANNService, ServiceClient, ServiceError
from repro.service.server import serve
from repro.service.sharded import ShardedANNIndex

N, D = 40, 64
SPEC = IndexSpec(scheme="algorithm1", params={"rounds": 2}, seed=41)


def make_index(threshold=float("inf")):
    gen = np.random.default_rng(9)
    db = PackedPoints(random_points(gen, N, D), D)
    return ANNIndex.from_spec(db, SPEC, compact_threshold=threshold)


def fresh_bits(count, seed=70):
    gen = np.random.default_rng(seed)
    return gen.integers(0, 2, size=(count, D), dtype=np.uint8)


async def enqueue(coro):
    """Create a task and yield so it runs up to its await-on-future."""
    task = asyncio.create_task(coro)
    await asyncio.sleep(0)
    return task


class TestBarrierSemantics:
    def test_queries_before_write_see_old_state_after_see_new(self):
        async def scenario():
            index = make_index()
            point = fresh_bits(1)[0]
            baseline = index.query(point)  # pre-insert answer, directly
            async with AsyncANNService(index, max_batch=16, max_wait_ms=20.0) as svc:
                before = [await enqueue(svc.query(point)) for _ in range(3)]
                write = await enqueue(svc.insert(point[None, :]))
                after = [await enqueue(svc.query(point)) for _ in range(3)]
                ids = await write
                results_before = [await t for t in before]
                results_after = [await t for t in after]
            for res in results_before:
                assert res.answer_index == baseline.answer_index
                assert res.probes == baseline.probes
            for res in results_after:
                # The inserted point is its own exact nearest neighbor.
                assert res.answer_index == ids[0]
                assert res.meta["mutable"]["source"] == "memtable"

        asyncio.run(scenario())

    def test_delete_fences_identically(self):
        async def scenario():
            index = make_index()
            q = fresh_bits(1, seed=71)[0]
            victim = index.query(q).answer_index
            async with AsyncANNService(index, max_batch=16, max_wait_ms=20.0) as svc:
                before = await enqueue(svc.query(q))
                write = await enqueue(svc.delete([victim]))
                after = await enqueue(svc.query(q))
                assert (await write) == 1
                assert (await before).answer_index == victim
                assert (await after).answer_index != victim

        asyncio.run(scenario())

    def test_writes_never_mix_into_query_batches(self):
        async def scenario():
            index = make_index()
            bits = fresh_bits(6, seed=72)
            async with AsyncANNService(index, max_batch=64, max_wait_ms=50.0) as svc:
                tasks = []
                for i in range(3):
                    tasks.append(await enqueue(svc.query(bits[i])))
                write = await enqueue(svc.insert(bits[:1]))
                for i in range(3, 6):
                    tasks.append(await enqueue(svc.query(bits[i])))
                await asyncio.gather(*tasks, write)
                metrics = svc.metrics()
            # The barrier split the 6 queries into (at least) two batches
            # even though max_batch=64 would have held them all.
            assert metrics.batches >= 2
            assert metrics.max_observed_batch <= 3
            assert metrics.writes == 1 and metrics.inserts == 1

        asyncio.run(scenario())

    def test_concurrent_readers_match_direct_queries_after_drain(self):
        async def scenario():
            index = make_index(threshold=0.3)
            bits = fresh_bits(10, seed=73)
            async with AsyncANNService(index, max_batch=4, max_wait_ms=0.5) as svc:
                tasks = [await enqueue(svc.query(bits[i])) for i in range(4)]
                tasks.append(await enqueue(svc.insert(bits[:2])))
                tasks += [await enqueue(svc.query(bits[i])) for i in range(4, 8)]
                tasks.append(await enqueue(svc.delete([0, 1])))
                tasks += [await enqueue(svc.query(bits[i])) for i in range(8, 10)]
                await asyncio.gather(*tasks)
            # After the drain, the service's index answers like any local
            # mutable index — and compaction restores the fresh-build oracle.
            g = index.compact()
            oracle = ANNIndex.from_spec(
                index.database,
                index.spec.replace(seed=generation_seed(index.spec.seed, g)),
            )
            for i in range(10):
                a = index.query(bits[i])
                b = oracle.query(bits[i])
                assert a.answer_index == b.answer_index
                assert a.probes == b.probes

        asyncio.run(scenario())

    def test_validation_happens_before_enqueue(self):
        async def scenario():
            index = make_index()
            async with AsyncANNService(index, max_batch=4, max_wait_ms=0.5) as svc:
                with pytest.raises(ValueError):
                    await svc.insert(np.zeros((1, D + 3), dtype=np.uint8))
                with pytest.raises(ValueError):  # applied atomically, rejected
                    await svc.delete([10**6])
                # Float ids are rejected up front, never truncated onto
                # a neighboring row (the core-layer guard, kept intact
                # through the service surface).
                with pytest.raises(ValueError, match="must be integers"):
                    await svc.delete([2.7])
                assert index.is_live(2)
                assert len(svc.index) == N

        asyncio.run(scenario())

    def test_stop_drains_pending_writes(self):
        async def scenario():
            index = make_index()
            svc = AsyncANNService(index, max_batch=64, max_wait_ms=1000.0)
            await svc.start()
            write = await enqueue(svc.insert(fresh_bits(2)))
            await svc.stop()
            ids = await write
            assert len(ids) == 2
            assert len(index) == N + 2

        asyncio.run(scenario())

    def test_sharded_index_served_with_writes(self):
        async def scenario():
            gen = np.random.default_rng(11)
            db = PackedPoints(random_points(gen, N, D), D)
            sharded = ShardedANNIndex.build(
                db, SPEC, shards=2, compact_threshold=float("inf")
            )
            point = fresh_bits(1, seed=74)[0]
            async with AsyncANNService(sharded, max_batch=8, max_wait_ms=1.0) as svc:
                ids = await svc.insert(point[None, :])
                result = await svc.query(point)
                assert result.answer_index == ids[0]
                assert (await svc.delete(ids)) == 1
                result = await svc.query(point)
                assert result.answer_index != ids[0]

        asyncio.run(scenario())


@pytest.fixture()
def endpoint():
    """A live server over a *mutable* index on an ephemeral port."""
    index = make_index()
    ready: "queue.Queue" = queue.Queue()

    def run():
        asyncio.run(
            serve(
                index,
                port=0,
                max_batch=8,
                max_wait_ms=1.0,
                ready_cb=lambda host, port: ready.put((host, port)),
            )
        )

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    host, port = ready.get(timeout=10)
    yield host, port, index
    try:
        with ServiceClient(host=host, port=port, timeout=5.0) as client:
            client.shutdown()
    except OSError:
        pass
    thread.join(timeout=10)
    assert not thread.is_alive()


class TestWireProtocolWrites:
    def test_insert_then_query_round_trip(self, endpoint):
        host, port, index = endpoint
        bits = fresh_bits(2, seed=75)
        with ServiceClient(host=host, port=port) as client:
            ids = client.insert(bits)
            assert ids == [N, N + 1]
            result = client.query(bits[0])
            assert result.answer_index == ids[0]
            assert result.meta["mutable"]["source"] == "memtable"
            stats = client.stats()
            assert stats["inserts"] == 1 and stats["writes"] == 1
            info = client.info()["index"]
            assert info["n"] == N + 2
            assert info["generations"] == [0]

    def test_delete_round_trip_and_errors(self, endpoint):
        host, port, index = endpoint
        with ServiceClient(host=host, port=port) as client:
            assert client.delete([3]) == 1
            assert not index.is_live(3)
            with pytest.raises(ServiceError, match="already deleted"):
                client.delete([3])
            with pytest.raises(ServiceError, match="out of range"):
                client.delete([10**6])
            stats = client.stats()
            assert stats["deletes"] == 1
            # Failed writes are rejected before mutating anything.
            assert len(index) == N - 1

    def test_insert_rejects_packed_rows_client_side(self, endpoint):
        host, port, _ = endpoint
        with ServiceClient(host=host, port=port) as client:
            with pytest.raises(ValueError, match="bit vectors"):
                client.insert(np.zeros((1, 1), dtype=np.uint64))

    def test_float_ids_rejected_on_both_sides_of_the_wire(self, endpoint):
        host, port, index = endpoint
        with ServiceClient(host=host, port=port) as client:
            with pytest.raises(ValueError, match="must be integers"):
                client.delete([2.7])  # client-side gate
            # Bypass the client gate with a raw request: the server-side
            # gate must also reject instead of truncating to row 2.
            with pytest.raises(ServiceError, match="must be integers"):
                client._request("delete", ids=[2.7])
            assert index.is_live(2)
