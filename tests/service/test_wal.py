"""Unit tests for the durable per-shard write-ahead log.

:mod:`repro.service.wal` is the crash-safety foundation of the router
(``docs/DISTRIBUTED.md``): every property the recovery path relies on —
fsync'd appends that survive reopen, torn final lines dropped (and
*only* final lines), checksummed headers and entries, strictly
consecutive sequence numbers, atomic truncation rebasing — is pinned
here against the raw files, byte surgery included.
"""

from __future__ import annotations

import json

import pytest

from repro.service.wal import (
    WalCorruptionError,
    WalError,
    WriteAheadLog,
    entry_checksum,
    read_segment,
    segment_path,
)


@pytest.fixture()
def wal(tmp_path):
    return WriteAheadLog(tmp_path / "wal").create_segments([0, 0])


class TestAppendAndReopen:
    def test_append_assigns_consecutive_sequences_per_shard(self, wal):
        assert wal.append(0, "insert", {"points": [[1]]}) == 1
        assert wal.append(0, "delete", {"ids": [0]}) == 2
        assert wal.append(1, "insert", {"points": [[0]]}) == 1
        assert wal.head(0) == 2 and wal.head(1) == 1
        assert wal.appends == 3

    def test_reopen_continues_where_the_writer_left_off(self, wal):
        wal.append(0, "insert", {"points": [[1, 0]]})
        wal.append(0, "delete", {"ids": [3]})
        wal.close()
        reopened = WriteAheadLog(wal.log_dir).open_segments(num_shards=2)
        assert reopened.entries(0) == [
            {"seq": 1, "op": "insert", "payload": {"points": [[1, 0]]}},
            {"seq": 2, "op": "delete", "payload": {"ids": [3]}},
        ]
        assert reopened.entries(1) == []
        # appends after reopen extend the same history
        assert reopened.append(0, "insert", {"points": [[0, 1]]}) == 3
        reopened.close()
        assert WriteAheadLog(wal.log_dir).open_segments().head(0) == 3

    def test_nonzero_base_is_preserved_across_reopen(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal").create_segments([7])
        assert wal.base(0) == 7
        assert wal.append(0, "insert", {"points": []}) == 8
        wal.close()
        reopened = WriteAheadLog(tmp_path / "wal").open_segments()
        assert reopened.base(0) == 7 and reopened.head(0) == 8

    def test_create_refuses_to_clobber_existing_segments(self, wal):
        wal.close()
        with pytest.raises(WalError, match="--recover"):
            WriteAheadLog(wal.log_dir).create_segments([0, 0])

    def test_open_requires_segments(self, tmp_path):
        with pytest.raises(WalError, match="no WAL segments"):
            WriteAheadLog(tmp_path / "empty").open_segments()

    def test_open_pins_the_shard_count_to_the_shard_map(self, wal):
        wal.close()
        with pytest.raises(WalError, match="3 shards"):
            WriteAheadLog(wal.log_dir).open_segments(num_shards=3)

    def test_open_requires_contiguous_shard_coverage(self, wal):
        wal.close()
        # duplicate shard 0's segment over shard 1's: headers now claim
        # shards [0, 0], which cannot cover 0..1
        segment_path(wal.log_dir, 1).write_bytes(
            segment_path(wal.log_dir, 0).read_bytes()
        )
        with pytest.raises(WalError, match="cover shards"):
            WriteAheadLog(wal.log_dir).open_segments()


class TestTornTail:
    """A crash mid-append may tear the FINAL line only — leaving it
    without its trailing newline; recovery drops it (the write was never
    acknowledged) and rewrites the file clean.  Any damage to a
    newline-*terminated* line, even the last, is external corruption of
    a completed (possibly acknowledged) append and must raise."""

    def _truncated(self, path, drop: int):
        raw = path.read_bytes()
        path.write_bytes(raw[:-drop])

    def test_partial_final_line_is_dropped_on_open(self, wal):
        wal.append(0, "insert", {"points": [[1, 1]]})
        wal.append(0, "insert", {"points": [[0, 0]]})
        wal.close()
        self._truncated(segment_path(wal.log_dir, 0), 9)
        reopened = WriteAheadLog(wal.log_dir).open_segments()
        assert reopened.torn_tails == 1
        assert [e["seq"] for e in reopened.entries(0)] == [1]
        # the torn bytes were physically removed: appends replace seq 2
        assert reopened.append(0, "delete", {"ids": [1]}) == 2
        reopened.close()
        clean = read_segment(segment_path(wal.log_dir, 0))
        assert not clean["torn_tail"]
        assert [e["op"] for e in clean["entries"]] == ["insert", "delete"]

    def test_corrupt_checksum_on_terminated_final_line_raises(self, wal):
        """The fsync'd append completed (the newline is there); a bad
        checksum on it is bit-rot of acknowledged history, not a torn
        tail — dropping it silently would lose a replicated write."""
        wal.append(1, "insert", {"points": [[1]]})
        wal.close()
        path = segment_path(wal.log_dir, 1)
        lines = path.read_bytes().splitlines()
        record = json.loads(lines[-1])
        record["checksum"] = "00000000"
        lines[-1] = json.dumps(record).encode()
        path.write_bytes(b"\n".join(lines) + b"\n")
        with pytest.raises(WalCorruptionError, match="checksum mismatch"):
            read_segment(path)

    def test_corrupt_checksum_on_unterminated_final_line_is_torn(self, wal):
        """The same damage without the trailing newline *is* the torn
        shape a killed append leaves, and stays tolerated."""
        wal.append(1, "insert", {"points": [[1]]})
        wal.close()
        path = segment_path(wal.log_dir, 1)
        lines = path.read_bytes().splitlines()
        record = json.loads(lines[-1])
        record["checksum"] = "00000000"
        lines[-1] = json.dumps(record).encode()
        path.write_bytes(b"\n".join(lines))  # no trailing newline
        parsed = read_segment(path)
        assert parsed["torn_tail"] and parsed["entries"] == []

    def test_damage_before_the_final_line_raises_corruption(self, wal):
        wal.append(0, "insert", {"points": [[1]]})
        wal.append(0, "insert", {"points": [[0]]})
        path = segment_path(wal.log_dir, 0)
        wal.close()
        lines = path.read_bytes().splitlines()
        lines[1] = lines[1][: len(lines[1]) // 2]  # tear a NON-final entry
        path.write_bytes(b"\n".join(lines) + b"\n")
        with pytest.raises(WalCorruptionError, match="entry line 2"):
            read_segment(path)

    def test_sequence_gap_raises_corruption(self, wal):
        wal.append(0, "insert", {"points": [[1]]})
        path = segment_path(wal.log_dir, 0)
        wal.close()
        record = {"seq": 5, "op": "delete", "payload": {"ids": [0]}}
        record["checksum"] = entry_checksum(5, "delete", record["payload"])
        extra = json.dumps(record).encode() + b"\n"
        # valid-looking entry, wrong seq, followed by one more line so the
        # torn-tail tolerance cannot excuse it
        path.write_bytes(path.read_bytes() + extra + extra)
        with pytest.raises(WalCorruptionError, match="expected 2"):
            read_segment(path)

    def test_header_damage_is_never_tolerated(self, wal):
        wal.close()
        path = segment_path(wal.log_dir, 0)
        header = json.loads(path.read_bytes().splitlines()[0])
        header["base_seq"] = 42  # no longer matches its checksum
        path.write_bytes(json.dumps(header).encode() + b"\n")
        with pytest.raises(WalCorruptionError, match="header checksum"):
            read_segment(path)

    def test_foreign_file_is_rejected(self, wal):
        wal.close()
        path = segment_path(wal.log_dir, 0)
        path.write_text('{"kind": "something-else"}\n')
        with pytest.raises(WalCorruptionError, match="not a repro-shard-wal"):
            read_segment(path)


class TestTruncate:
    def test_truncate_rebases_and_survives_reopen(self, wal):
        for i in range(4):
            wal.append(0, "insert", {"points": [[i]]})
        assert wal.truncate(0, 3) == 3
        assert wal.base(0) == 3 and wal.head(0) == 4
        assert [e["seq"] for e in wal.entries(0)] == [4]
        wal.close()
        reopened = WriteAheadLog(wal.log_dir).open_segments()
        assert reopened.base(0) == 3
        assert [e["seq"] for e in reopened.entries(0)] == [4]

    def test_truncate_is_clamped_and_idempotent(self, wal):
        wal.append(0, "insert", {"points": [[1]]})
        assert wal.truncate(0, 99) == 1  # clamped to the head
        assert wal.base(0) == wal.head(0) == 1
        assert wal.truncate(0, 99) == 0  # nothing left to drop
        assert wal.truncate(0, 0) == 0  # behind the base: no-op
        assert wal.truncations == 1

    def test_appends_continue_after_truncation(self, wal):
        wal.append(0, "insert", {"points": [[1]]})
        wal.truncate(0, 1)
        assert wal.append(0, "delete", {"ids": [0]}) == 2
        wal.close()
        parsed = read_segment(segment_path(wal.log_dir, 0))
        assert parsed["base_seq"] == 1
        assert [e["seq"] for e in parsed["entries"]] == [2]

    def test_describe_reports_segment_positions(self, wal):
        wal.append(0, "insert", {"points": [[1]]})
        wal.append(0, "insert", {"points": [[0]]})
        wal.truncate(0, 1)
        stats = wal.describe()
        assert stats["appends"] == 2 and stats["truncations"] == 1
        assert stats["segments"][0] == {
            "shard": 0, "base_seq": 1, "head": 2, "entries": 1,
        }
        assert stats["segments"][1] == {
            "shard": 1, "base_seq": 0, "head": 0, "entries": 0,
        }
