"""AsyncANNService: interleaving equivalence + micro-batching policy.

The serving guarantee is the batched engine's guarantee lifted to the
online layer: however concurrent requests get interleaved into
micro-batches (any concurrency, any batch cap, any wait deadline, single
or sharded index), every request resolves with a result bitwise-identical
to a sequential ``index.query`` call, and the service's counters
reconcile exactly with the per-flush
:class:`~repro.service.engine.BatchStats`.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.api import IndexSpec
from repro.core.index import ANNIndex
from repro.hamming.points import PackedPoints
from repro.hamming.sampling import flip_random_bits, random_points
from repro.service import AsyncANNService, ShardedANNIndex

N, D, K = 100, 128, 2
NUM_QUERIES = 24

SPEC = IndexSpec(scheme="algorithm1", params={"rounds": K, "gamma": 4.0}, seed=17)


@pytest.fixture(scope="module")
def db():
    gen = np.random.default_rng(41)
    return PackedPoints(random_points(gen, N, D), D)


@pytest.fixture(scope="module")
def queries(db):
    gen = np.random.default_rng(42)
    return np.vstack(
        [
            flip_random_bits(gen, db.row(int(gen.integers(0, N))), int(gen.integers(0, 12)), D)
            for _ in range(NUM_QUERIES)
        ]
    )


@pytest.fixture(scope="module", params=["single", "sharded"])
def served_index(request, db):
    if request.param == "single":
        return ANNIndex.from_spec(db, SPEC)
    return ShardedANNIndex.build(db, SPEC, shards=2, workers=1)


@pytest.fixture(scope="module")
def expected(served_index, queries):
    return [served_index.query(q) for q in queries]


def assert_bitwise_equal(result, reference):
    assert result.answer_index == reference.answer_index
    assert result.probes == reference.probes
    assert result.rounds == reference.rounds
    assert result.probes_per_round == reference.probes_per_round


class _RecordingIndex:
    """Duck-typed index proxy recording every flush's (size, BatchStats)."""

    def __init__(self, index):
        self._index = index
        self.flushes = []

    def __getattr__(self, name):
        return getattr(self._index, name)

    def __len__(self):
        return len(self._index)

    def query_batch(self, rows, prefetch=True):
        results = self._index.query_batch(rows, prefetch=prefetch)
        self.flushes.append((rows.shape[0], self._index.last_batch_stats))
        return results


async def _random_arrivals(service, queries, rng, max_delay_ms):
    """Submit every query as its own task at a random arrival offset,
    in a shuffled order; return results indexed like ``queries``."""
    order = rng.permutation(len(queries))
    delays = rng.uniform(0.0, max_delay_ms / 1000.0, size=len(queries))

    async def fire(qi, delay):
        await asyncio.sleep(delay)
        return qi, await service.query(queries[qi])

    pairs = await asyncio.gather(
        *(fire(int(qi), float(delays[slot])) for slot, qi in enumerate(order))
    )
    results = [None] * len(queries)
    for qi, result in pairs:
        results[qi] = result
    return results


@pytest.mark.parametrize(
    "max_batch,max_wait_ms,max_delay_ms,trial_seed",
    [
        (1, 0.0, 2.0, 0),     # no coalescing: the sequential baseline policy
        (4, 0.0, 2.0, 1),     # zero deadline: flush whatever has accumulated
        (8, 1.0, 3.0, 2),
        (64, 2.0, 0.0, 3),    # all-at-once arrivals, one (or few) big flushes
        (5, 0.5, 5.0, 4),     # cap that never divides the batch evenly
    ],
)
def test_interleaving_equivalence(
    served_index, queries, expected, max_batch, max_wait_ms, max_delay_ms, trial_seed
):
    rng = np.random.default_rng(trial_seed)

    async def run():
        async with AsyncANNService(
            served_index, max_batch=max_batch, max_wait_ms=max_wait_ms
        ) as service:
            return await _random_arrivals(service, queries, rng, max_delay_ms)

    results = asyncio.run(run())
    for result, reference in zip(results, expected):
        assert_bitwise_equal(result, reference)


def test_metrics_reconcile_with_batch_stats(served_index, queries, expected):
    recording = _RecordingIndex(served_index)

    async def run():
        async with AsyncANNService(recording, max_batch=7, max_wait_ms=1.0) as service:
            rng = np.random.default_rng(99)
            results = await _random_arrivals(service, queries, rng, 4.0)
            return results, service.metrics()

    results, metrics = asyncio.run(run())
    for result, reference in zip(results, expected):
        assert_bitwise_equal(result, reference)

    sizes = [size for size, _ in recording.flushes]
    stats = [s for _, s in recording.flushes]
    assert metrics.requests == len(queries) == sum(sizes)
    assert metrics.batches == len(recording.flushes)
    assert metrics.max_observed_batch == max(sizes) <= 7
    assert metrics.mean_batch == pytest.approx(sum(sizes) / len(sizes))
    assert metrics.total_probes == sum(s.total_probes for s in stats)
    assert metrics.total_rounds == sum(s.total_rounds for s in stats)
    assert metrics.total_sweeps == sum(s.sweeps for s in stats)
    assert metrics.prefetched_cells == sum(s.prefetched_cells for s in stats)
    # ...and the flush-level stats reconcile with per-query accounting.
    assert metrics.total_probes == sum(r.probes for r in results)
    assert metrics.probes_per_query == pytest.approx(
        sum(r.probes for r in results) / len(results)
    )
    assert metrics.in_flight == 0
    assert metrics.p50_ms <= metrics.p95_ms <= metrics.p99_ms


def test_batch_cap_one_never_coalesces(served_index, queries, expected):
    async def run():
        async with AsyncANNService(served_index, max_batch=1, max_wait_ms=5.0) as service:
            results = await asyncio.gather(*(service.query(q) for q in queries))
            return results, service.metrics()

    results, metrics = asyncio.run(run())
    assert metrics.max_observed_batch == 1
    assert metrics.batches == metrics.requests == len(queries)
    for result, reference in zip(results, expected):
        assert_bitwise_equal(result, reference)


def test_deadline_collects_concurrent_burst(served_index, queries):
    # A burst submitted in one loop tick, a cap it fits under, and a
    # generous deadline: the policy must gather it into a single flush.
    burst = queries[:10]

    async def run():
        async with AsyncANNService(
            served_index, max_batch=64, max_wait_ms=250.0
        ) as service:
            await asyncio.gather(*(service.query(q) for q in burst))
            return service.metrics()

    metrics = asyncio.run(run())
    assert metrics.batches == 1
    assert metrics.max_observed_batch == len(burst)


def test_full_batch_flushes_before_deadline(served_index, queries):
    # Cap 4 with a deadline far beyond the test's patience: the size
    # trigger must fire, not the clock.
    burst = queries[:8]

    async def run():
        async with AsyncANNService(
            served_index, max_batch=4, max_wait_ms=60_000.0
        ) as service:
            results = await asyncio.wait_for(
                asyncio.gather(*(service.query(q) for q in burst)), timeout=30.0
            )
            return results, service.metrics()

    results, metrics = asyncio.run(run())
    assert len(results) == len(burst)
    assert metrics.max_observed_batch == 4
    assert metrics.batches == 2


def test_wrong_dimension_rejected_before_batching(served_index, queries, expected):
    async def run():
        async with AsyncANNService(served_index, max_batch=4, max_wait_ms=1.0) as service:
            with pytest.raises(ValueError, match="bits"):
                await service.query(np.zeros(D + 3, dtype=np.uint8))
            with pytest.raises(ValueError, match="one at a time"):
                await service.query(np.zeros((2, D), dtype=np.uint8))
            # The service keeps serving after rejected requests.
            return await service.query(queries[0])

    assert_bitwise_equal(asyncio.run(run()), expected[0])


def test_query_outside_lifecycle_raises(served_index, queries):
    service = AsyncANNService(served_index)

    async def before_start():
        with pytest.raises(RuntimeError, match="not started"):
            await service.query(queries[0])

    asyncio.run(before_start())

    async def after_stop():
        async with AsyncANNService(served_index) as running:
            pass
        with pytest.raises(RuntimeError):
            await running.query(queries[0])

    asyncio.run(after_stop())


def test_stop_drains_pending_requests(served_index, queries, expected):
    async def run():
        service = await AsyncANNService(
            served_index, max_batch=64, max_wait_ms=10_000.0
        ).start()
        tasks = [asyncio.create_task(service.query(q)) for q in queries[:6]]
        await asyncio.sleep(0)  # let the submissions enqueue
        await service.stop()  # deadline far away: stop must flush the queue
        return await asyncio.gather(*tasks)

    results = asyncio.run(run())
    for result, reference in zip(results, expected[:6]):
        assert_bitwise_equal(result, reference)


def test_invalid_policy_rejected(served_index):
    with pytest.raises(ValueError, match="max_batch"):
        AsyncANNService(served_index, max_batch=0)
    with pytest.raises(ValueError, match="max_wait_ms"):
        AsyncANNService(served_index, max_wait_ms=-1.0)
