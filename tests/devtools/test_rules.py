"""Per-rule self-tests: each checker fires on its planted fixture at the
exact file:line, stays silent on the clean fixture, and honors reasoned
suppression comments.

Fixture files mark every expected violation with a ``LINT-EXPECT: RXXX``
comment on the offending line; the tests assert the reported
``(path, line)`` set equals the marked set, so the anchors are checked
without hard-coding line numbers.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.devtools import ALL_CHECKERS, run_lint

FIXTURES = Path(__file__).resolve().parent / "fixtures"

RULES = ["R001", "R002", "R003", "R004", "R005", "R006", "R007"]


def lint(tree: str, rule: str):
    return run_lint(FIXTURES / tree, ALL_CHECKERS, select=[rule])


def marked_lines(tree: str, rule: str):
    """(rel path, line) pairs carrying a LINT-EXPECT marker for rule."""
    expected = set()
    root = FIXTURES / tree
    for path in root.rglob("*.py"):
        rel = path.relative_to(root).as_posix()
        for lineno, text in enumerate(
            path.read_text(encoding="utf-8").splitlines(), start=1
        ):
            if f"LINT-EXPECT: {rule}" in text:
                expected.add((rel, lineno))
    return expected


def found_lines(result, rule):
    return {(f.path, f.line) for f in result.findings if f.rule == rule}


@pytest.mark.parametrize("rule", RULES)
def test_rule_fires_on_planted_fixture_at_marked_lines(rule):
    tree = f"{rule.lower()}_bad"
    expected = marked_lines(tree, rule)
    assert expected, f"fixture {tree} has no LINT-EXPECT markers"
    result = lint(tree, rule)
    assert found_lines(result, rule) >= expected
    # Nothing fires on unmarked lines of .py fixture files (R005 also
    # reports doc-side findings against SERVING.md, checked separately).
    py_findings = {
        (f.path, f.line) for f in result.findings
        if f.rule == rule and f.path.endswith(".py")
    }
    assert py_findings == expected


@pytest.mark.parametrize("rule", RULES)
def test_rule_silent_on_clean_fixture(rule):
    result = lint(f"{rule.lower()}_clean", rule)
    assert [f for f in result.findings if f.rule == rule] == []


@pytest.mark.parametrize("rule", ["R001", "R002", "R003", "R004", "R006", "R007"])
def test_reasoned_suppression_silences_rule(rule):
    tree = f"{rule.lower()}_suppressed"
    result = lint(tree, rule)
    assert result.suppressed >= 1
    # No finding survives on a line carrying a reasoned disable (lines
    # with a *bare* disable keep theirs — see test_framework).
    root = FIXTURES / tree
    reasoned = set()
    for path in root.rglob("*.py"):
        rel = path.relative_to(root).as_posix()
        for lineno, text in enumerate(
            path.read_text(encoding="utf-8").splitlines(), start=1
        ):
            if f"repro-lint: disable={rule} " in text:
                reasoned.add((rel, lineno))
    assert reasoned, f"fixture {tree} has no reasoned suppression"
    assert found_lines(result, rule).isdisjoint(reasoned)


def test_r001_exempts_cli_but_not_module_level_state():
    result = lint("r001_bad", "R001")
    cli_findings = [f for f in result.findings if f.path == "cli.py"]
    assert cli_findings == []
    assert any(
        "module-level" in f.message and f.path == "bad_rng.py"
        for f in result.findings
    )


def test_r002_message_names_the_invariant():
    result = lint("r002_bad", "R002")
    assert all("invariant #5" in f.message for f in result.findings)


def test_r004_distinguishes_missing_plan_half_wired_and_unresolvable():
    result = lint("r004_bad", "R004")
    messages = " | ".join(f.message for f in result.findings)
    assert "must implement query_plan()" in messages
    assert "half-wired" in messages
    assert "statically-resolvable" in messages
    # The fully-wired abstract base itself is never flagged.
    assert not any("BaseScheme" in f.message.split("(")[0] for f in result.findings)


def test_r005_reports_doc_side_drift():
    result = lint("r005_bad", "R005")
    doc_findings = [f for f in result.findings if f.path.endswith("SERVING.md")]
    doc_messages = " | ".join(f.message for f in doc_findings)
    # server handles ping/shutdown, doc omits them; doc invents 'flush'.
    assert "'ping'" in doc_messages and "'shutdown'" in doc_messages
    assert "'flush'" in doc_messages
    # The phantom verb is anchored at its table row.
    flush = [f for f in doc_findings if "'flush'" in f.message]
    doc_text = (FIXTURES / "r005_bad/docs/SERVING.md").read_text().splitlines()
    assert flush and "flush" in doc_text[flush[0].line - 1]


def test_r005_requires_a_verb_matrix(tmp_path):
    import shutil

    result_with = lint("r005_clean", "R005")
    assert result_with.clean
    # Same tree, no docs: the missing matrix is itself a finding.  Nest
    # the copy so the upward docs/ search stays inside the tempdir.
    root = tmp_path / "nested" / "tree"
    shutil.copytree(FIXTURES / "r005_clean" / "service", root / "service")
    result_without = run_lint(root, ALL_CHECKERS, select=["R005"])
    assert any("no verb matrix" in f.message for f in result_without.findings)


def test_r007_exempts_hamming_and_distinguishes_bypass_kinds():
    result = lint("r007_bad", "R007")
    messages = " | ".join(f.message for f in result.findings)
    # Both bypass kinds fire with their own guidance.
    assert "direct np.bitwise_count" in messages
    assert "XOR distance assembled at the call site" in messages
    # The clean tree's hamming/ module uses np.bitwise_count legally.
    clean = lint("r007_clean", "R007")
    assert [f for f in clean.findings if f.rule == "R007"] == []


def test_r006_allows_value_and_typed_errors():
    result = lint("r006_bad", "R006")
    assert result.findings, "planted raises must fire"
    # Only the untyped raises are flagged; ValueError (validation) and
    # the module's own typed ServiceError stay legal.
    assert all(
        f.message.startswith(("raise RuntimeError", "raise Exception"))
        for f in result.findings
    )
