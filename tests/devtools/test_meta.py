"""The gate itself: the real ``src/repro`` tree lints clean.

This is the tier-1 enforcement of the CI lint step — a rule violation
anywhere in the package fails this test with the same file:line output
the CLI prints.
"""

from __future__ import annotations

from pathlib import Path

import repro
from repro.devtools import ALL_CHECKERS, format_text, run_lint


def test_repro_package_has_zero_unbaselined_findings():
    root = Path(repro.__file__).resolve().parent
    result = run_lint(root, ALL_CHECKERS)
    assert result.clean, (
        "repro lint found violations in src/repro "
        "(fix them or add a reasoned '# repro-lint: disable=...'):\n"
        + format_text(result)
    )


def test_every_rule_ran():
    root = Path(repro.__file__).resolve().parent
    result = run_lint(root, ALL_CHECKERS)
    assert result.rules_run == [
        "R001", "R002", "R003", "R004", "R005", "R006", "R007",
    ]


def test_real_tree_verb_matrix_is_exercised():
    """R005 on the real tree actually parses the SERVING.md matrix (it
    would also pass vacuously if the doc went missing — rule out that
    degenerate pass)."""
    root = Path(repro.__file__).resolve().parent
    from repro.devtools.framework import LintContext
    from repro.devtools.rules import WireVerbSyncChecker

    ctx = LintContext(root)
    checker = WireVerbSyncChecker()
    path, table = checker._doc_matrix(ctx)
    assert table is not None, "docs/SERVING.md verb matrix not found"
    _, matrix = table
    server_verbs = checker._handler_verbs(
        ctx.modules["service/server.py"], "_handle_request"
    )
    assert set(matrix) == set(server_verbs)
