"""Planted R006 violation in a snapshot-facing module."""


def attach(handle):
    if handle is None:
        raise RuntimeError("detached shard")  # LINT-EXPECT: R006
