"""Planted R006 violations in a wire-facing module."""


class ServiceError(Exception):
    pass


def start(started):
    if started:
        raise RuntimeError("already started")  # LINT-EXPECT: R006
    raise Exception("unreachable")  # LINT-EXPECT: R006


def validate(payload):
    if not payload:
        raise ValueError("empty payload")  # allowed: argument validation
    raise ServiceError("typed: allowed")
