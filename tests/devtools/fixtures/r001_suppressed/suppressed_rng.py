"""Suppression cases for R001: a reasoned disable suppresses; a bare
disable suppresses nothing and is itself flagged (R000)."""

import numpy as np


def entropy_probe(seed):
    rng = np.random.default_rng(seed)  # repro-lint: disable=R001 measuring raw generator cost
    bad = np.random.default_rng(seed)  # repro-lint: disable=R001
    return rng, bad
