"""Planted R003 violations: blocking calls and a sync lock across await."""

import asyncio
import subprocess
import threading
import time


class BlockingHandler:
    def __init__(self):
        self._state_lock = threading.Lock()

    async def tick(self):
        time.sleep(0.1)  # LINT-EXPECT: R003
        subprocess.run(["true"])  # LINT-EXPECT: R003
        log = open("service.log")  # LINT-EXPECT: R003
        guard = threading.Lock()  # LINT-EXPECT: R003
        with self._state_lock:  # LINT-EXPECT: R003
            await asyncio.sleep(0)
        return log, guard
