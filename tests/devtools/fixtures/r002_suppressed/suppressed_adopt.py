"""Suppression case for R002."""


class AuditedScheme:
    def adopt_arrays(self, arrays):
        for key, arr in arrays.items():
            checksum = arr.sum()  # repro-lint: disable=R002 integrity probe reads one page by design
            self._cache[key] = arr
