"""Suppression case for R004 (anchored at the class line)."""

import abc


def register_scheme(name, **kwargs):
    def decorate(fn):
        return fn

    return decorate


class BaseScheme(abc.ABC):
    @abc.abstractmethod
    def query(self, x):
        ...

    @abc.abstractmethod
    def size_report(self):
        ...

    def query_plan(self, x):
        raise NotImplementedError

    def export_arrays(self):
        return {}

    def restore_arrays(self, arrays):
        return None

    def adopt_arrays(self, arrays):
        return None

    def batch_prepare(self, queries):
        return None

    def prewarm(self):
        return None


class PlanlessScheme(BaseScheme):  # repro-lint: disable=R004 plan support lands with the next migration
    def query(self, x):
        return None

    def size_report(self):
        return {}


@register_scheme("planless")
def _build_planless(database, params, rng):
    return PlanlessScheme()
