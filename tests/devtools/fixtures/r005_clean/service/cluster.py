"""Fixture router: forwards a subset of the server's verbs."""


class Router:
    async def _handle_router_request(self, request):
        op = request.get("op")
        if op == "query":
            return {"ok": True}
        if op == "ping":
            return {"ok": True}
        return {"ok": False}
