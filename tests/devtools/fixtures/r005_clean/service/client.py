"""Fixture client: sends a subset of the server's verbs."""


class Client:
    def query(self, bits):
        return self._request("query", bits=bits)

    def ping(self):
        return self._request("ping")

    def _request(self, op, **payload):
        return {"op": op, **payload}
