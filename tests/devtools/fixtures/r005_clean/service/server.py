"""Fixture server: verb set consistent with router, client, and docs."""


class Service:
    async def _handle_request(self, request):
        op = request.get("op")
        if op == "query":
            return {"ok": True}
        if op == "ping":
            return {"ok": True}
        if op == "snapshot":
            return {"ok": True}
        if op == "shutdown":
            return {"ok": True}
        return {"ok": False, "error": f"unknown op {op!r}"}
