"""Call sites that go through the seam: nothing to flag."""

from repro.hamming.distance import (
    cross_distances,
    hamming_distance_many,
    paired_distances,
    popcount_rows,
    popcount_sum,
)


def screen(queries, rows):
    return cross_distances(queries, rows)


def sweep(query, rows):
    return hamming_distance_many(query, rows)


def gathered(a, b, idx_a, idx_b):
    return paired_distances(a[idx_a], b[idx_b])


def density(mask):
    # Popcount of plain (un-XORed) words through the seam helper is legal.
    return popcount_rows(mask).sum()


def parity(anded):
    return popcount_sum(anded, axis=2)
