"""Inside repro/hamming/ the primitives are the implementation — exempt."""

import numpy as np


def popcount_rows(rows):
    return np.bitwise_count(rows).sum(axis=1, dtype=np.int64)


def hamming_distance(x, y):
    return int(np.bitwise_count(x ^ y).sum(dtype=np.int64))
