"""R002-clean adopt_arrays: header checks, installs, and delegation only
(the idiom of sketch/levels.py and cellprobe/scheme.py)."""

import numpy as np

from somewhere import split_arrays  # noqa: F401 - never imported at lint time


class HeaderOnlyScheme:
    def adopt_arrays(self, arrays):
        groups = split_arrays(arrays)
        unknown = set(groups) - {"family", "levels"}
        if unknown:
            raise ValueError(f"unknown scope {sorted(unknown)[0]!r}")
        if "family" in groups:
            self.family.adopt_arrays(groups["family"])
        for key, arr in arrays.items():
            payload = np.asarray(arr)
            if payload.dtype != np.uint64 or payload.shape != (4, 2):
                raise ValueError(
                    f"bad payload {key!r}: dtype {payload.dtype} "
                    f"shape {payload.shape}"
                )
            self._cache[key] = payload


class DelegatingScheme:
    def adopt_arrays(self, arrays):
        self.restore_arrays(arrays)
