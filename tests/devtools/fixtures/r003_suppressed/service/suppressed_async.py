"""Suppression case for R003."""

import time


class CalibratedHandler:
    async def tick(self):
        time.sleep(0.001)  # repro-lint: disable=R003 sub-ms calibration spin, measured cheaper than a loop hop
        return None
