"""Planted R004 violations: half-wired registered schemes."""

import abc


def register_scheme(name, **kwargs):
    def decorate(fn):
        return fn

    return decorate


class BaseScheme(abc.ABC):
    """Stand-in for CellProbingScheme: abstract core + default hooks."""

    @abc.abstractmethod
    def query(self, x):
        ...

    @abc.abstractmethod
    def size_report(self):
        ...

    def query_plan(self, x):
        raise NotImplementedError

    def export_arrays(self):
        return {}

    def restore_arrays(self, arrays):
        if arrays:
            raise ValueError("no arrays expected")

    def adopt_arrays(self, arrays):
        self.restore_arrays(arrays)

    def batch_prepare(self, queries):
        return None

    def prewarm(self):
        return None


class MissingPlanScheme(BaseScheme):  # LINT-EXPECT: R004
    """Implements the abstract pair but never query_plan."""

    def query(self, x):
        return None

    def size_report(self):
        return {}


class HalfWiredScheme(BaseScheme):  # LINT-EXPECT: R004
    """export_arrays without restore_arrays: saves but cannot load."""

    def query(self, x):
        return None

    def size_report(self):
        return {}

    def query_plan(self, x):
        return None

    def export_arrays(self):
        return {"payload": None}


@register_scheme("missing-plan")
def _build_missing_plan(database, params, rng):
    return MissingPlanScheme()


@register_scheme("half-wired")
def _build_half_wired(database, params, rng):
    return HalfWiredScheme()


@register_scheme("dynamic")
def _build_dynamic(database, params, rng):  # LINT-EXPECT: R004
    cls = globals()["MissingPlanScheme"]
    return cls()
