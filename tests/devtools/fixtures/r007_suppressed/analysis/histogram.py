"""Suppression case for R007."""

import numpy as np


def bit_histogram(rows):
    return np.bitwise_count(rows)  # repro-lint: disable=R007 offline analysis notebook export, not a query path
