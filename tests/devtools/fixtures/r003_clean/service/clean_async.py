"""R003-clean service module.

Sync functions may block; nested sync defs (executor callbacks) inside a
coroutine may block; coroutines use asyncio primitives.
"""

import asyncio
import time


class NonBlockingHandler:
    def __init__(self):
        self._lock = asyncio.Lock()

    async def tick(self):
        await asyncio.sleep(0.1)
        async with self._lock:
            await asyncio.sleep(0)

        def blocking_callback():  # runs in an executor thread, not the loop
            time.sleep(0.5)
            with open("service.log") as fh:
                return fh.read()

        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(None, blocking_callback)

    def sync_helper(self):
        time.sleep(0.01)  # not a coroutine: blocking is fine here
        with self._lock:
            pass
