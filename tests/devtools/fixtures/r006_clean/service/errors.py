"""R006-clean: only typed-taxonomy (or validation) raises."""


class ServiceError(Exception):
    pass


class ServiceStateError(RuntimeError):
    pass


def start(started):
    if started:
        raise ServiceStateError("already started")
    raise ValueError("bad flag")


def reraise(exc):
    if isinstance(exc, ServiceError):
        raise
    raise ServiceError("wrapped") from exc
