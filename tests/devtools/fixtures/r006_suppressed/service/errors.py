"""Suppression case for R006."""


def crash_inject(flag):
    if flag:
        raise RuntimeError("boom")  # repro-lint: disable=R006 crash-injection hook must be untyped
