"""A second module: the rule walks the whole tree, aliases included."""

import numpy

from repro.hamming.distance import popcount_rows


def single_word(points, words):
    return numpy.bitwise_count(points[:, 0][:, None] ^ words[None, :, 0])  # LINT-EXPECT: R007


def mask_overlap(mask, rows):
    # AND (not XOR) into the seam helper is fine; the raw ufunc is not.
    legal = popcount_rows(mask & rows)
    return legal + numpy.bitwise_count(mask).sum()  # LINT-EXPECT: R007
