"""Planted R007 violations: popcount/XOR distances outside repro/hamming/."""

import numpy as np
from numpy import bitwise_count

from repro.hamming.distance import popcount_rows, popcount_sum


def screen(queries, rows):
    # A raw distance pipeline bypassing the seam entirely.
    return np.bitwise_count(queries[:, None, :] ^ rows[None, :, :]).sum(axis=2)  # LINT-EXPECT: R007


def weights(rows):
    # Bare name imported from numpy is the same bypass.
    return bitwise_count(rows)  # LINT-EXPECT: R007


def paired(a, b):
    # XOR assembled at the call site, fed to a seam popcount helper:
    # compiled backends can't fuse this — paired_distances exists for it.
    return popcount_rows(a ^ b)  # LINT-EXPECT: R007


def paired_ufunc(a, b):
    return popcount_sum(np.bitwise_xor(a, b), axis=1)  # LINT-EXPECT: R007
