"""R001-clean: all randomness flows through the RngTree helpers."""

from repro.utils.rng import RngTree, as_generator


def make_streams(seed):
    tree = RngTree(seed)
    rng = as_generator(seed)
    child = tree.child("workload")
    return rng, child
