"""CLI entrypoints are exempt from R001: a user-facing --seed becomes
the RngTree root here.  Module-level RNG state stays an error even in
exempt files."""

import numpy as np


def entry(seed):
    return np.random.default_rng(seed)  # exempt: cli.py mints the root
