"""Planted R001 violations (each marked with LINT-EXPECT)."""

import os
import random
import time

import numpy as np

from repro.utils.rng import as_generator

GLOBAL_RNG = np.random.default_rng(0)  # LINT-EXPECT: R001


def make_streams(seed):
    rng = np.random.default_rng(seed)  # LINT-EXPECT: R001
    np.random.seed(123)  # LINT-EXPECT: R001
    legacy = np.random.RandomState(seed)  # LINT-EXPECT: R001
    x = random.random()  # LINT-EXPECT: R001
    token = os.urandom(8)  # LINT-EXPECT: R001
    wall = as_generator(time.time_ns())  # LINT-EXPECT: R001
    return rng, legacy, x, token, wall
