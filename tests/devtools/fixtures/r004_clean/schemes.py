"""A scheme carrying the full hook surface below the ABC defaults."""

import abc


class BaseScheme(abc.ABC):
    @abc.abstractmethod
    def query(self, x):
        ...

    @abc.abstractmethod
    def size_report(self):
        ...

    def query_plan(self, x):
        raise NotImplementedError

    def export_arrays(self):
        return {}

    def restore_arrays(self, arrays):
        if arrays:
            raise ValueError("no arrays expected")

    def adopt_arrays(self, arrays):
        self.restore_arrays(arrays)

    def batch_prepare(self, queries):
        return None

    def prewarm(self):
        return None


class StateMixin:
    """Like SketchStateMixin: a concrete (non-ABC) provider of the
    persistence trio, shared across schemes."""

    def export_arrays(self):
        return {"state": None}

    def restore_arrays(self, arrays):
        return None

    def adopt_arrays(self, arrays):
        return None


class CompleteScheme(StateMixin, BaseScheme):
    def __init__(self, database, params, seed=None):
        self.database = database

    def query(self, x):
        return None

    def size_report(self):
        return {}

    def query_plan(self, x):
        return None
