"""R004-clean registry: the factory lazy-imports the scheme class inside
its body, exactly like the real repro.registry factories."""


def register_scheme(name, **kwargs):
    def decorate(fn):
        return fn

    return decorate


@register_scheme("complete")
def _build_complete(database, params, rng):
    from schemes import CompleteScheme

    return CompleteScheme(database, params, seed=rng)
