"""Planted R002 violations: an adopt_arrays that reads payload contents."""

import numpy as np


class ContentReadingScheme:
    def adopt_arrays(self, arrays):
        for key, arr in arrays.items():
            payload = np.asarray(arr, dtype=np.uint64)  # LINT-EXPECT: R002
            total = payload.sum()  # LINT-EXPECT: R002
            if np.array_equal(arr, arr):  # LINT-EXPECT: R002
                pass
            values = arr.tolist()  # LINT-EXPECT: R002
            for row in arr:  # LINT-EXPECT: R002
                pass
            if arr == 0:  # LINT-EXPECT: R002
                pass
            listed = list(arr)  # LINT-EXPECT: R002
            self._cache[key] = arr
