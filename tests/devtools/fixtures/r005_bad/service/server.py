"""Fixture server handling a deliberately small verb set."""


class Service:
    async def _handle_request(self, request):
        op = request.get("op")
        if op == "query":
            return {"ok": True}
        if op == "ping":
            return {"ok": True}
        if op == "shutdown":
            return {"ok": True}
        return {"ok": False, "error": f"unknown op {op!r}"}
