"""Fixture client sending a verb the server does not handle."""


class Client:
    def query(self, bits):
        return self._request("query", bits=bits)

    def snapshot(self, path):
        return self._request("snapshot", path=path)  # LINT-EXPECT: R005

    def _request(self, op, **payload):
        return {"op": op, **payload}
