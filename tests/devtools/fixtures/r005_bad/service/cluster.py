"""Fixture router forwarding a verb the server does not handle."""


class Router:
    async def _handle_router_request(self, request):
        op = request.get("op")
        if op == "query":
            return {"ok": True}
        if op == "stats":  # LINT-EXPECT: R005
            return {"ok": True}
        return {"ok": False}
