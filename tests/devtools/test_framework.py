"""Framework-level behavior: suppression hygiene, baselines, selection,
and output formats — independent of any particular rule's logic."""

from __future__ import annotations

import json
from pathlib import Path

from repro.devtools import (
    ALL_CHECKERS,
    baseline_payload,
    format_json,
    format_text,
    run_lint,
)

FIXTURES = Path(__file__).resolve().parent / "fixtures"


def test_suppression_without_reason_does_not_suppress():
    result = run_lint(FIXTURES / "r001_suppressed", ALL_CHECKERS, select=["R001"])
    # The reasoned disable suppresses its line; the bare one does not:
    # its R001 finding survives and the comment itself is flagged R000.
    assert result.suppressed == 1
    r001 = [f for f in result.findings if f.rule == "R001"]
    assert len(r001) == 1
    hygiene = [f for f in result.findings if f.rule == "R000"]
    assert len(hygiene) == 1
    assert hygiene[0].line == r001[0].line


def test_suppression_for_other_rule_does_not_apply():
    # A disable=R001 comment cannot silence an R006 finding on its line.
    result = run_lint(FIXTURES / "r006_bad", ALL_CHECKERS, select=["R006"])
    assert len(result.findings) == 3


def test_baseline_grandfathers_findings_line_insensitively():
    root = FIXTURES / "r006_bad"
    first = run_lint(root, ALL_CHECKERS, select=["R006"])
    assert not first.clean
    payload = baseline_payload(first)
    # Shift every line number: matching is on (rule, path, message).
    for entry in payload["findings"]:
        assert "line" not in entry
    second = run_lint(root, ALL_CHECKERS, select=["R006"], baseline=payload["findings"])
    assert second.clean
    assert second.baselined == len(first.findings)


def test_baseline_does_not_hide_new_findings():
    root = FIXTURES / "r006_bad"
    baseline = [
        {"rule": "R006", "path": "storage/store.py",
         "message": "some stale message that matches nothing"}
    ]
    result = run_lint(root, ALL_CHECKERS, select=["R006"], baseline=baseline)
    assert len(result.findings) == 3 and result.baselined == 0


def test_select_restricts_rules():
    result = run_lint(FIXTURES / "r006_bad", ALL_CHECKERS, select=["R001"])
    assert [f for f in result.findings if f.rule == "R006"] == []


def test_text_and_json_formats():
    result = run_lint(FIXTURES / "r006_bad", ALL_CHECKERS, select=["R006"])
    text = format_text(result)
    assert "service/errors.py" in text and "R006" in text
    assert text.splitlines()[-1].startswith(f"{len(result.findings)} finding")
    doc = json.loads(format_json(result))
    assert doc["clean"] is False
    assert doc["counts"]["R006"] == len(result.findings)
    assert {f["rule"] for f in doc["findings"]} == {"R006"}
    assert all({"path", "line", "message"} <= set(f) for f in doc["findings"])


def test_findings_sorted_by_location():
    result = run_lint(FIXTURES / "r001_bad", ALL_CHECKERS, select=["R001"])
    keys = [(f.path, f.line, f.col) for f in result.findings]
    assert keys == sorted(keys)


def test_unparseable_file_is_reported_not_fatal(tmp_path):
    (tmp_path / "broken.py").write_text("def oops(:\n", encoding="utf-8")
    (tmp_path / "fine.py").write_text("x = 1\n", encoding="utf-8")
    result = run_lint(tmp_path, ALL_CHECKERS)
    assert any(
        f.rule == "R000" and f.name == "parse-error" and f.path == "broken.py"
        for f in result.findings
    )
