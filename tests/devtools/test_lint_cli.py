"""CLI surface of ``repro lint``: exit codes, formats, --select
validation, and baseline round-trip."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.cli import main

FIXTURES = Path(__file__).resolve().parent / "fixtures"


def test_unknown_select_rule_lists_valid_ids_and_exits_nonzero():
    with pytest.raises(SystemExit) as excinfo:
        main(["lint", "--select", "R999"])
    message = str(excinfo.value)
    assert "R999" in message
    for rule in ("R001", "R002", "R003", "R004", "R005", "R006"):
        assert rule in message
    # SystemExit with a message exits non-zero.
    assert excinfo.value.code != 0


def test_select_is_case_insensitive(capsys):
    rc = main(["lint", "--root", str(FIXTURES / "r006_clean"), "--select", "r006"])
    assert rc == 0


def test_findings_exit_1_with_locations(capsys):
    rc = main(["lint", "--root", str(FIXTURES / "r006_bad"), "--select", "R006"])
    out = capsys.readouterr().out
    assert rc == 1
    assert "service/errors.py" in out and "R006" in out
    # text findings look like path:line:col: RULE [name] message
    first = out.splitlines()[0]
    path, line, col, rest = first.split(":", 3)
    assert path.endswith(".py") and line.isdigit() and col.isdigit()


def test_json_format_is_machine_readable(capsys):
    rc = main(["lint", "--root", str(FIXTURES / "r006_bad"), "--format", "json"])
    doc = json.loads(capsys.readouterr().out)
    assert rc == 1
    assert doc["clean"] is False and doc["counts"]["R006"] >= 1


def test_baseline_roundtrip(tmp_path, capsys):
    baseline = tmp_path / "baseline.json"
    rc = main(
        ["lint", "--root", str(FIXTURES / "r006_bad"), "--select", "R006",
         "--write-baseline", str(baseline)]
    )
    assert rc == 1 and baseline.is_file()
    capsys.readouterr()
    rc = main(
        ["lint", "--root", str(FIXTURES / "r006_bad"), "--select", "R006",
         "--baseline", str(baseline)]
    )
    out = capsys.readouterr().out
    assert rc == 0
    assert "baselined" in out


def test_bad_root_is_a_clean_error():
    with pytest.raises(SystemExit):
        main(["lint", "--root", "/nonexistent/path"])
