"""Exact linear-scan baseline."""

import numpy as np
import pytest

from repro.baselines.linear_scan import LinearScanScheme
from repro.hamming.balls import nearest_neighbor
from repro.hamming.points import PackedPoints


class TestLinearScan:
    def test_exact_answer(self, small_db, small_queries):
        scheme = LinearScanScheme(small_db)
        for qi in range(6):
            res = scheme.query(small_queries[qi])
            _, opt = nearest_neighbor(small_db, small_queries[qi])
            assert res.distance_to(small_queries[qi]) == opt

    def test_n_probes_one_round(self, small_db, small_queries):
        scheme = LinearScanScheme(small_db)
        res = scheme.query(small_queries[0])
        assert res.probes == len(small_db)
        assert res.rounds == 1

    def test_size_linear(self, small_db):
        scheme = LinearScanScheme(small_db)
        assert scheme.size_report().table_cells == len(small_db)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            LinearScanScheme(PackedPoints(np.zeros((0, 2), dtype=np.uint64), 128))

    def test_ratio_always_one(self, small_db, small_queries):
        scheme = LinearScanScheme(small_db)
        res = scheme.query(small_queries[1])
        assert res.ratio(small_db, small_queries[1]) == 1.0
