"""Data-dependent LSH baseline."""

import numpy as np
import pytest

from repro.baselines.data_dependent_lsh import (
    DataDependentLSHParams,
    DataDependentLSHScheme,
)
from repro.baselines.lsh import LSHParams, LSHScheme
from repro.workloads.spec import WorkloadSpec, make_workload


@pytest.fixture(scope="module")
def clustered():
    return make_workload(
        "clustered", WorkloadSpec(n=240, d=512, num_queries=14, seed=6),
        clusters=6, cluster_radius=12,
    )


def _scheme(db, parts=6, seed=1):
    return DataDependentLSHScheme(
        db, DataDependentLSHParams(gamma=4.0, parts=parts), seed=seed
    )


class TestConstruction:
    def test_parts_cover_database(self, clustered):
        scheme = _scheme(clustered.database)
        covered = np.concatenate([p.indices for p in scheme.parts])
        assert set(covered.tolist()) >= set(range(len(clustered.database)))

    def test_rejects_more_parts_than_points(self, clustered):
        with pytest.raises(ValueError):
            _scheme(clustered.database, parts=10_000)

    def test_params_validation(self):
        with pytest.raises(ValueError):
            DataDependentLSHParams(parts=1)
        with pytest.raises(ValueError):
            DataDependentLSHParams(gamma=0.5)
        with pytest.raises(ValueError):
            DataDependentLSHParams(dispatch_rows=4)


class TestQueries:
    def test_exactly_two_rounds(self, clustered):
        scheme = _scheme(clustered.database)
        for qi in range(5):
            res = scheme.query(clustered.queries[qi])
            assert res.rounds == 2
            assert res.probes_per_round[0] == 1  # the dispatch probe

    def test_probe_count_matches_declared(self, clustered):
        scheme = _scheme(clustered.database)
        q = clustered.queries[0]
        res = scheme.query(q)
        assert res.probes == scheme.probes_per_query(q)

    def test_dispatch_deterministic(self, clustered):
        scheme = _scheme(clustered.database)
        q = clustered.queries[1]
        assert scheme.query(q).meta["part"] == scheme.query(q).meta["part"]

    def test_recall_floor_on_clustered(self, clustered):
        scheme = _scheme(clustered.database)
        db = clustered.database
        ok = 0
        for qi in range(clustered.num_queries):
            res = scheme.query(clustered.queries[qi])
            ratio = res.ratio(db, clustered.queries[qi])
            ok += ratio is not None and ratio <= 4.0
        assert ok / clustered.num_queries >= 0.7

    def test_fewer_probes_than_global_lsh(self, clustered):
        """The data-dependent advantage: per-part n_p^ρ < global n^ρ."""
        db = clustered.database
        dd = _scheme(db)
        glob = LSHScheme(db, LSHParams(gamma=4.0), seed=1)
        q = clustered.queries[0]
        assert dd.query(q).probes < glob.query(q).probes


class TestSizing:
    def test_size_report(self, clustered):
        scheme = _scheme(clustered.database)
        report = scheme.size_report()
        names = dict(report.table_names)
        assert names["dispatch"] > 0
        assert names["parts"] > 0
        assert "data-dependent" in report.notes or "pivot" in report.notes

    def test_k_is_two(self, clustered):
        assert _scheme(clustered.database).k == 2
