"""LSH baseline: sizing, recall, probe accounting."""

import numpy as np
import pytest

from repro.baselines.lsh import LSHParams, LSHScheme, level_sizing, lsh_rho
from repro.hamming.points import PackedPoints
from repro.hamming.sampling import flip_random_bits, random_points


@pytest.fixture(scope="module")
def db():
    rng = np.random.default_rng(3)
    return PackedPoints(random_points(rng, 150, 256), 256)


def _scheme(db, mode="nonadaptive", **kw):
    return LSHScheme(db, LSHParams(gamma=4.0, **kw), mode=mode, seed=5)


class TestSizing:
    def test_rho_below_one(self):
        assert 0 < lsh_rho(256, 8.0, 4.0) < 1

    def test_rho_decreases_with_gamma(self):
        assert lsh_rho(256, 8.0, 4.0) < lsh_rho(256, 8.0, 2.0)

    def test_level_sizing_positive(self):
        K, L, rho = level_sizing(1000, 256, 8.0, LSHParams(gamma=4.0))
        assert K >= 1 and L >= 1 and 0 < rho <= 1

    def test_overrides(self):
        params = LSHParams(gamma=4.0, tables_override=3, bits_override=7)
        K, L, _ = level_sizing(1000, 256, 8.0, params)
        assert (K, L) == (7, 3)

    def test_rejects_bad_gamma(self):
        with pytest.raises(ValueError):
            LSHParams(gamma=1.0)


class TestNonAdaptive:
    def test_single_round(self, db):
        scheme = _scheme(db)
        rng = np.random.default_rng(0)
        q = flip_random_bits(rng, db.row(0), 4, db.d)
        res = scheme.query(q)
        assert res.rounds <= 1

    def test_probe_count_matches_declared(self, db):
        scheme = _scheme(db)
        rng = np.random.default_rng(1)
        q = flip_random_bits(rng, db.row(3), 4, db.d)
        res = scheme.query(q)
        assert res.probes == scheme.probes_per_query()

    def test_recall_on_planted(self, db):
        scheme = _scheme(db, table_boost=2.0)
        rng = np.random.default_rng(2)
        ok = 0
        for _ in range(15):
            q = flip_random_bits(rng, db.row(int(rng.integers(0, len(db)))), 3, db.d)
            res = scheme.query(q)
            ratio = res.ratio(db, q)
            if ratio is not None and ratio <= 4.0:
                ok += 1
        assert ok >= 11  # ≥ ~3/4 recall on easy planted queries

    def test_exact_member_found(self, db):
        scheme = _scheme(db)
        res = scheme.query(db.row(11))
        assert res.answered
        assert res.distance_to(db.row(11)) == 0


class TestAdaptive:
    def test_fewer_probes_than_nonadaptive(self, db):
        rng = np.random.default_rng(4)
        q = flip_random_bits(rng, db.row(7), 3, db.d)
        res_a = _scheme(db, mode="adaptive").query(q)
        res_n = _scheme(db, mode="nonadaptive").query(q)
        assert res_a.probes <= res_n.probes

    def test_multiple_rounds(self, db):
        rng = np.random.default_rng(5)
        q = flip_random_bits(rng, db.row(7), 3, db.d)
        res = _scheme(db, mode="adaptive").query(q)
        assert res.rounds >= 1

    def test_rejects_bad_mode(self, db):
        with pytest.raises(ValueError):
            LSHScheme(db, LSHParams(), mode="bogus")


class TestSizeReport:
    def test_cells_superlinear(self, db):
        scheme = _scheme(db)
        assert scheme.size_report().table_cells > len(db)

    def test_notes_include_rho(self, db):
        assert "ρ" in _scheme(db).size_report().notes or "rho" in _scheme(db).size_report().notes.lower()
