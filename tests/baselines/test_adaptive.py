"""Fully-adaptive (τ=2) extreme."""

from repro.baselines.adaptive import FullyAdaptiveScheme
from repro.core.params import BaseParameters


class TestFullyAdaptive:
    def test_one_probe_per_shrinking_round(self, medium_db, medium_queries, medium_base):
        scheme = FullyAdaptiveScheme(medium_db, medium_base, seed=0)
        res = scheme.query(medium_queries[0])
        # Rounds after the first carry exactly one probe until completion.
        for record in res.accountant.rounds[1:-1]:
            assert record.size == 1

    def test_rounds_loglog_scale(self, medium_db, medium_queries, medium_base):
        scheme = FullyAdaptiveScheme(medium_db, medium_base, seed=0)
        res = scheme.query(medium_queries[1])
        # L = 9 levels at d=512, so ~log2(9)+1 ≈ 5 rounds suffice.
        assert res.rounds <= scheme.k
        assert scheme.k <= 10

    def test_success(self, medium_db, medium_queries, medium_base):
        scheme = FullyAdaptiveScheme(medium_db, medium_base, seed=0)
        ok = 0
        for qi in range(12):
            res = scheme.query(medium_queries[qi])
            ratio = res.ratio(medium_db, medium_queries[qi])
            if ratio is not None and ratio <= 4.0:
                ok += 1
        assert ok >= 9

    def test_tau_is_two(self, medium_db, medium_base):
        scheme = FullyAdaptiveScheme(medium_db, medium_base, seed=0)
        assert scheme.params.tau == 2
