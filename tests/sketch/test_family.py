"""Sketch family: level bounds, caching, public-coin determinism."""

import numpy as np
import pytest

from repro.core.delta import bernoulli_rate
from repro.hamming.sampling import random_points
from repro.sketch.family import SketchFamily
from repro.utils.rng import RngTree


def _family(coarse=True, seed=1):
    return SketchFamily(
        d=128, alpha=2.0, levels=7, accurate_rows=32,
        coarse_rows=8 if coarse else None, rng_tree=RngTree(seed),
    )


class TestFamily:
    def test_level_bounds(self):
        fam = _family()
        fam.accurate(0)
        fam.accurate(7)
        with pytest.raises(ValueError):
            fam.accurate(8)
        with pytest.raises(ValueError):
            fam.accurate(-1)

    def test_entry_probability_tracks_level(self):
        fam = _family()
        assert fam.accurate(0).p == pytest.approx(bernoulli_rate(2.0, 0))
        assert fam.accurate(5).p == pytest.approx(bernoulli_rate(2.0, 5))
        assert fam.coarse(5).p == pytest.approx(bernoulli_rate(2.0, 5))

    def test_caching_returns_same_object(self):
        fam = _family()
        assert fam.accurate(3) is fam.accurate(3)

    def test_no_coarse_raises(self):
        fam = _family(coarse=False)
        with pytest.raises(RuntimeError):
            fam.coarse(0)

    def test_public_coin_determinism(self):
        """Two families from the same seed produce identical sketches —
        the public-coin property the tables rely on."""
        x = random_points(np.random.default_rng(0), 1, 128)[0]
        a = _family(seed=42).accurate_address(4, x)
        b = _family(seed=42).accurate_address(4, x)
        assert a == b

    def test_different_levels_different_matrices(self):
        fam = _family()
        x = random_points(np.random.default_rng(0), 1, 128)[0]
        assert fam.accurate_address(2, x) != fam.accurate_address(3, x)

    def test_address_is_hashable_tuple(self):
        fam = _family()
        x = random_points(np.random.default_rng(0), 1, 128)[0]
        addr = fam.accurate_address(0, x)
        assert isinstance(addr, tuple)
        hash(addr)

    def test_coarse_address_shorter_than_accurate(self):
        fam = _family()
        x = random_points(np.random.default_rng(0), 1, 128)[0]
        assert len(fam.coarse_address(0, x)) <= len(fam.accurate_address(0, x))
