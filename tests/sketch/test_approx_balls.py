"""C_i / D_{i,j} evaluation: thresholds, witnesses, sandwich behaviour."""

import numpy as np
import pytest

from repro.core.delta import midpoint_threshold
from repro.hamming.points import PackedPoints
from repro.hamming.sampling import flip_random_bits, random_points
from repro.sketch.approx_balls import (
    ApproxBallEvaluator,
    accurate_threshold_count,
    coarse_threshold_count,
)
from repro.sketch.family import SketchFamily
from repro.sketch.levels import LevelSketches
from repro.utils.rng import RngTree


def _setup(accurate_rows=96, coarse_rows=16, n=60, d=256, seed=3):
    rng = np.random.default_rng(seed)
    db = PackedPoints(random_points(rng, n, d), d)
    fam = SketchFamily(d, 2.0, 8, accurate_rows, coarse_rows, rng_tree=RngTree(seed))
    return db, fam, ApproxBallEvaluator(LevelSketches(db, fam))


class TestThresholds:
    def test_accurate_threshold_is_floor_of_midpoint(self):
        assert accurate_threshold_count(2.0, 3, 100) == int(
            np.floor(midpoint_threshold(2.0, 3) * 100)
        )

    def test_coarse_threshold_scales_with_rows(self):
        t_small = coarse_threshold_count(2.0, 2, 10)
        t_big = coarse_threshold_count(2.0, 2, 100)
        assert t_big > t_small

    def test_cached(self):
        _, _, ev = _setup()
        assert ev.accurate_threshold(2) == ev.accurate_threshold(2)


class TestCMask:
    def test_query_is_db_point_always_member(self):
        """A distance-0 pair has identical sketches, below any threshold."""
        db, fam, ev = _setup()
        for i in (0, 3, 6):
            addr = fam.accurate_address(i, db.row(5))
            assert ev.c_mask(i, addr)[5]

    def test_witness_none_for_far_address(self):
        db, fam, ev = _setup()
        rng = np.random.default_rng(10)
        # A uniform point is ~d/2 from everything; level 0's threshold is
        # tight enough that C_0 is empty w.h.p.
        x = random_points(rng, 1, db.d)[0]
        addr = fam.accurate_address(0, x)
        if not ev.c_mask(0, addr).any():
            assert ev.c_witness(0, addr) is None

    def test_witness_matches_mask(self):
        db, fam, ev = _setup()
        addr = fam.accurate_address(4, db.row(0))
        witness = ev.c_witness(4, addr)
        mask = ev.c_mask(4, addr)
        if witness is None:
            assert not mask.any()
        else:
            assert mask[witness]

    def test_witness_deterministic(self):
        db, fam, ev = _setup()
        addr = fam.accurate_address(4, db.row(0))
        assert ev.c_witness(4, addr) == ev.c_witness(4, addr)

    def test_counts_match_mask(self):
        db, fam, ev = _setup()
        addr = fam.accurate_address(5, db.row(1))
        assert ev.c_count(5, addr) == int(ev.c_mask(5, addr).sum())


class TestSandwichStatistics:
    def test_sandwich_mostly_holds_with_wide_sketches(self):
        """With generous rows, B_i ⊆ C_i ⊆ B_{i+1} holds for most
        (query, level) pairs — the operational content of Lemma 8."""
        db, fam, ev = _setup(accurate_rows=256, n=40, seed=4)
        rng = np.random.default_rng(5)
        total = ok = 0
        for _ in range(10):
            base = db.row(int(rng.integers(0, len(db))))
            x = flip_random_bits(rng, base, int(rng.integers(0, 16)), db.d)
            dists = db.distances_from(x)
            for i in range(fam.levels + 1):
                addr = fam.accurate_address(i, x)
                c = ev.c_mask(i, addr)
                b_i = dists <= 2.0**i
                b_next = dists <= 2.0 ** (i + 1)
                total += 1
                if not np.any(b_i & ~c) and not np.any(c & ~b_next):
                    ok += 1
        assert ok / total > 0.9


class TestDMask:
    def test_d_subset_of_c(self):
        db, fam, ev = _setup()
        x = db.row(2)
        for i, j in ((4, 2), (6, 6)):
            acc = fam.accurate_address(i, x)
            coarse = fam.coarse_address(j, x)
            d_mask = ev.d_mask(i, acc, j, coarse)
            c_mask = ev.c_mask(i, acc)
            assert not np.any(d_mask & ~c_mask)

    def test_d_count_matches_mask(self):
        db, fam, ev = _setup()
        x = db.row(2)
        acc = fam.accurate_address(5, x)
        coarse = fam.coarse_address(3, x)
        assert ev.d_count(5, acc, 3, coarse) == int(ev.d_mask(5, acc, 3, coarse).sum())

    def test_coarse_requires_family_support(self):
        db, fam, _ = _setup()
        fam_nc = SketchFamily(db.d, 2.0, 8, 32, None, rng_tree=RngTree(0))
        ev = ApproxBallEvaluator(LevelSketches(db, fam_nc))
        with pytest.raises(RuntimeError):
            ev.coarse_threshold(0)
