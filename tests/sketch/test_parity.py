"""Parity sketches: GF(2) linearity, density, chunking, determinism."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hamming.packing import pack_bits, unpack_bits
from repro.sketch.parity import ParitySketch


def _sketch(rows=16, d=100, p=0.25, seed=0):
    return ParitySketch(rows=rows, d=d, p=p, rng=np.random.default_rng(seed))


class TestConstruction:
    def test_shapes(self):
        sk = _sketch(rows=70, d=130)
        assert sk.mask.shape == (70, 3)
        assert sk.out_words == 2

    def test_density_near_p(self):
        sk = ParitySketch(rows=200, d=500, p=0.1, rng=np.random.default_rng(1))
        assert abs(sk.mask_density() - 0.1) < 0.02

    def test_zero_p_all_zero_sketch(self):
        sk = _sketch(p=0.0)
        x = pack_bits(np.ones(100, dtype=np.uint8))
        assert (sk.apply(x) == 0).all()

    def test_rejects_bad_p(self):
        with pytest.raises(ValueError):
            _sketch(p=0.7)

    def test_rejects_bad_rows(self):
        with pytest.raises(ValueError):
            ParitySketch(rows=0, d=10, p=0.1, rng=np.random.default_rng(0))


class TestApplication:
    def test_matches_naive(self):
        d, rows = 90, 20
        sk = _sketch(rows=rows, d=d, seed=2)
        rng = np.random.default_rng(3)
        bits = rng.integers(0, 2, size=d).astype(np.uint8)
        x = pack_bits(bits)
        mask_bits = unpack_bits(sk.mask, d)
        expected = (mask_bits @ bits) % 2
        got = unpack_bits(sk.apply(x), rows)
        assert (got == expected).all()

    def test_batch_matches_single(self):
        sk = _sketch(rows=33, d=150, seed=4)
        rng = np.random.default_rng(5)
        bits = rng.integers(0, 2, size=(7, 150)).astype(np.uint8)
        batch = pack_bits(bits)
        many = sk.apply_many(batch)
        for i in range(7):
            assert (many[i] == sk.apply(batch[i])).all()

    def test_word_count_mismatch(self):
        sk = _sketch(d=100)
        with pytest.raises(ValueError):
            sk.apply_many(np.zeros((3, 5), dtype=np.uint64))

    def test_deterministic_given_seed(self):
        a = _sketch(seed=9)
        b = _sketch(seed=9)
        x = pack_bits(np.random.default_rng(0).integers(0, 2, 100).astype(np.uint8))
        assert (a.apply(x) == b.apply(x)).all()

    @settings(max_examples=30)
    @given(st.integers(min_value=0, max_value=2**32))
    def test_gf2_linearity(self, seed):
        """sketch(x ⊕ y) == sketch(x) ⊕ sketch(y) — the parity map is linear."""
        d = 120
        sk = _sketch(rows=24, d=d, seed=7)
        rng = np.random.default_rng(seed)
        bits = rng.integers(0, 2, size=(2, d)).astype(np.uint8)
        x, y = pack_bits(bits[0]), pack_bits(bits[1])
        xy = x ^ y
        assert (sk.apply(xy) == (sk.apply(x) ^ sk.apply(y))).all()

    def test_zero_maps_to_zero(self):
        sk = _sketch()
        zero = pack_bits(np.zeros(100, dtype=np.uint8))
        assert (sk.apply(zero) == 0).all()


class TestCollisionStatistics:
    def test_collision_rate_matches_formula(self):
        """Fraction of differing sketch bits ≈ μ(p, D) for planted distance."""
        from repro.core.delta import collision_rate
        from repro.hamming.distance import hamming_distance_many
        from repro.hamming.sampling import flip_random_bits, random_points

        d, rows, p, dist = 512, 4000, 1.0 / 32, 16
        sk = ParitySketch(rows=rows, d=d, p=p, rng=np.random.default_rng(10))
        rng = np.random.default_rng(11)
        x = random_points(rng, 1, d)[0]
        y = flip_random_bits(rng, x, dist, d)
        sx, sy = sk.apply(x), sk.apply(y)
        observed = hamming_distance_many(sx, sy[None, :])[0] / rows
        expected = collision_rate(p, dist)
        assert abs(observed - expected) < 0.03
