"""Cached database sketches."""

import numpy as np

from repro.hamming.points import PackedPoints
from repro.hamming.sampling import random_points
from repro.sketch.family import SketchFamily
from repro.sketch.levels import LevelSketches
from repro.utils.rng import RngTree


def _setup():
    rng = np.random.default_rng(0)
    db = PackedPoints(random_points(rng, 40, 128), 128)
    fam = SketchFamily(128, 2.0, 7, accurate_rows=32, coarse_rows=8, rng_tree=RngTree(5))
    return db, fam, LevelSketches(db, fam)


class TestLevelSketches:
    def test_shapes(self):
        db, fam, ls = _setup()
        assert ls.accurate_db(0).shape == (40, 1)
        assert ls.coarse_db(0).shape == (40, 1)

    def test_cached(self):
        _, _, ls = _setup()
        a = ls.accurate_db(2)
        b = ls.accurate_db(2)
        assert a is b

    def test_materialized_counter(self):
        _, _, ls = _setup()
        ls.accurate_db(0)
        ls.accurate_db(1)
        ls.coarse_db(0)
        assert ls.materialized_levels() == (2, 1)

    def test_matches_direct_application(self):
        db, fam, ls = _setup()
        direct = fam.accurate(3).apply_many(db.words)
        assert (ls.accurate_db(3) == direct).all()

    def test_distance_to_own_sketch_is_zero(self):
        db, fam, ls = _setup()
        addr = fam.accurate_address(4, db.row(7))
        dists = ls.accurate_distances(4, addr)
        assert dists[7] == 0

    def test_coarse_distances_shape(self):
        db, fam, ls = _setup()
        addr = fam.coarse_address(1, db.row(0))
        assert ls.coarse_distances(1, addr).shape == (40,)
