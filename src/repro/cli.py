"""Command-line interface: run the headline experiments without pytest.

Usage::

    python -m repro tradeoff   --d 4096 --n 300 --gamma 4 --ks 1 2 3 4
    python -m repro baselines  --d 1024 --n 300
    python -m repro lemma8     --d 1024 --n 200 --rows 64 128 256
    python -m repro ledger     --log2d 1e8 --ks 1 2 3
    python -m repro demo

Each subcommand prints the same markdown tables the corresponding bench
target produces (see DESIGN.md's experiment index).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis.reporting import print_table
from repro.analysis.tradeoff import evaluate_scheme, sweep_algorithm1, sweep_algorithm2
from repro.workloads.spec import WorkloadSpec, make_workload

__all__ = ["main"]


def _cmd_tradeoff(args: argparse.Namespace) -> int:
    wl = make_workload(
        "planted",
        WorkloadSpec(n=args.n, d=args.d, num_queries=args.queries, seed=args.seed),
        max_flips=max(1, args.d // 16),
    )
    drop = ("workload", "queries", "scheme")
    rows = []
    for s in sweep_algorithm1(wl, args.gamma, ks=args.ks, c1=args.c1):
        rows.append({"scheme": "Alg1", **{k: v for k, v in s.row().items() if k not in drop}})
    if args.alg2_ks:
        for s in sweep_algorithm2(wl, args.gamma, ks=args.alg2_ks, c1=args.c1, c2=args.c1):
            rows.append({"scheme": "Alg2", **{k: v for k, v in s.row().items() if k not in drop}})
    print_table(f"Tradeoff (n={args.n}, d={args.d}, γ={args.gamma})", rows)
    return 0


def _cmd_baselines(args: argparse.Namespace) -> int:
    from repro.baselines.adaptive import FullyAdaptiveScheme
    from repro.baselines.linear_scan import LinearScanScheme
    from repro.baselines.lsh import LSHParams, LSHScheme
    from repro.core.algorithm1 import SimpleKRoundScheme
    from repro.core.params import Algorithm1Params, BaseParameters

    wl = make_workload(
        "planted",
        WorkloadSpec(n=args.n, d=args.d, num_queries=args.queries, seed=args.seed),
        max_flips=max(1, args.d // 16),
    )
    db = wl.database
    base = BaseParameters(n=len(db), d=db.d, gamma=args.gamma, c1=args.c1)
    contenders = [
        ("LSH", LSHScheme(db, LSHParams(gamma=args.gamma), seed=args.seed)),
        ("Alg1 k=1", SimpleKRoundScheme(db, Algorithm1Params(base, k=1), seed=args.seed)),
        ("Alg1 k=3", SimpleKRoundScheme(db, Algorithm1Params(base, k=3), seed=args.seed)),
        ("fully-adaptive", FullyAdaptiveScheme(db, base, seed=args.seed)),
        ("linear-scan", LinearScanScheme(db)),
    ]
    rows = []
    for label, scheme in contenders:
        s = evaluate_scheme(scheme, wl, args.gamma)
        rows.append({"scheme": label, "probes": round(s.mean_probes, 1),
                     "rounds": s.max_rounds, "success": round(s.success_rate, 2),
                     "cells=n^c": round(scheme.size_report().cells_log_n(len(db)), 1)})
    print_table(f"Baselines (n={args.n}, d={args.d}, γ={args.gamma})", rows)
    return 0


def _cmd_lemma8(args: argparse.Namespace) -> int:
    from repro.analysis.sandwich import verify_lemma8
    from repro.sketch.family import SketchFamily
    from repro.utils.intmath import num_levels
    from repro.utils.rng import RngTree
    import math

    wl = make_workload(
        "planted",
        WorkloadSpec(n=args.n, d=args.d, num_queries=args.queries, seed=args.seed),
        max_flips=max(1, args.d // 16),
    )
    alpha = math.sqrt(min(4.0, args.gamma))
    levels = num_levels(args.d, alpha)
    rows = []
    for rows_count in args.rows:
        fam = SketchFamily(args.d, alpha, levels, rows_count, rng_tree=RngTree(args.seed))
        report = verify_lemma8(wl.database, fam, wl.queries)
        rows.append({"rows": rows_count,
                     "P[sandwich]": round(report.simultaneous_rate, 3)})
    print_table(f"Lemma 8 sandwich (n={args.n}, d={args.d})", rows)
    return 0


def _cmd_ledger(args: argparse.Namespace) -> int:
    from repro.lowerbound.roundelim import RoundEliminationLedger

    rows = []
    for k in args.ks:
        ledger = RoundEliminationLedger(
            gamma=args.gamma, k=k, log2_n=args.log2d**2, log2_d=args.log2d
        )
        t_star, result = ledger.implied_lower_bound()
        rows.append({"k": k, "m": ledger.m, "regime_ok": ledger.regime_ok,
                     "xi": round(result.xi, 3), "t*": round(t_star, 4),
                     "t*/xi": round(t_star / result.xi, 4) if result.xi else None})
    print_table(f"Round-elimination ledger (log2 d = {args.log2d:g})", rows)
    return 0


def _cmd_demo(args: argparse.Namespace) -> int:
    import numpy as np

    from repro import ANNIndex, PackedPoints
    from repro.hamming.sampling import flip_random_bits, random_points

    rng = np.random.default_rng(2016)
    n, d = 300, 1024
    db = PackedPoints(random_points(rng, n, d), d)
    index = ANNIndex.build(db, gamma=4.0, rounds=3, seed=7, c1=8.0)
    rows = []
    for i in range(8):
        q = flip_random_bits(rng, db.row(int(rng.integers(0, n))), int(rng.integers(0, 40)), d)
        res = index.query_packed(q)
        rows.append({"query": i, "probes": res.probes, "rounds": res.rounds,
                     "ratio": res.ratio(db, q), "path": res.meta.get("path")})
    print_table(f"Demo: k=3 rounds, n={n}, d={d}, γ=4", rows)
    return 0


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="Limited-adaptivity ANNS reproduction experiments"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p: argparse.ArgumentParser) -> None:
        p.add_argument("--n", type=int, default=300)
        p.add_argument("--d", type=int, default=1024)
        p.add_argument("--gamma", type=float, default=4.0)
        p.add_argument("--queries", type=int, default=16)
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--c1", type=float, default=8.0)

    p = sub.add_parser("tradeoff", help="probes vs rounds k (E1/E2)")
    common(p)
    p.add_argument("--ks", type=int, nargs="+", default=[1, 2, 3, 4])
    p.add_argument("--alg2-ks", type=int, nargs="*", default=[])
    p.set_defaults(fn=_cmd_tradeoff)

    p = sub.add_parser("baselines", help="LSH / scans / adaptive (E6)")
    common(p)
    p.set_defaults(fn=_cmd_baselines)

    p = sub.add_parser("lemma8", help="sandwich probability vs rows (E4)")
    common(p)
    p.add_argument("--rows", type=int, nargs="+", default=[64, 128, 256])
    p.set_defaults(fn=_cmd_lemma8)

    p = sub.add_parser("ledger", help="round-elimination ledger (E8)")
    p.add_argument("--log2d", type=float, default=1e8)
    p.add_argument("--gamma", type=float, default=3.0)
    p.add_argument("--ks", type=int, nargs="+", default=[1, 2, 3])
    p.set_defaults(fn=_cmd_ledger)

    p = sub.add_parser("demo", help="run the quickstart example")
    p.set_defaults(fn=_cmd_demo)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
