"""Command-line interface: run the headline experiments without pytest.

Usage::

    python -m repro schemes
    python -m repro bench      --scheme lsh --scheme algorithm1 --scheme linear-scan
    python -m repro build      --scheme algorithm1 --out /tmp/idx [--shards 4]
    python -m repro bench      --index /tmp/idx
    python -m repro bench      --scheme algorithm1 --shards 4
    python -m repro mutate     --index /tmp/idx --insert-random 8 --delete 3 17 --compact
    python -m repro serve      --index /tmp/idx --port 7878
    python -m repro tradeoff   --d 4096 --n 300 --gamma 4 --ks 1 2 3 4
    python -m repro baselines  --d 1024 --n 300
    python -m repro lemma8     --d 1024 --n 200 --rows 64 128 256
    python -m repro ledger     --log2d 1e8 --ks 1 2 3
    python -m repro demo

Every scheme is constructed through the registry
(:mod:`repro.registry`) from an :class:`~repro.api.IndexSpec` — there is
no scheme-specific construction code here.  ``bench`` compares any set
of registered schemes on one workload; ``--set key=value`` overrides a
parameter on every selected scheme that accepts it.

``build`` snapshots an index (optionally sharded) to a directory through
:mod:`repro.persistence`, recording the workload recipe in the manifest;
``bench --index DIR`` loads the snapshot, regenerates that workload, and
evaluates the loaded index — the save/load/serve path exercised by CI.

``serve --index DIR`` loads a snapshot (single or sharded, via
:func:`repro.persistence.load_any`) and serves it over TCP with adaptive
micro-batching — newline-delimited JSON requests, protocol and tuning
guide in ``docs/SERVING.md``.

``mutate --index DIR`` applies streaming inserts/deletes to a snapshot
(``--insert-random M``, ``--delete ID ...``), optionally forces a
compaction (``--compact``), and writes the mutated snapshot back
(format v2: tombstones + memtable + generation ride along) — the CI
mutate→compact→save→load→query smoke path.
"""

from __future__ import annotations

import argparse
import ast
import sys
from typing import Dict, List, Mapping, Optional

from repro.analysis.reporting import print_table
from repro.analysis.tradeoff import evaluate_spec, sweep_rounds
from repro.api import IndexSpec
from repro.registry import (
    available_schemes,
    filter_params,
    registry_rows,
    scheme_defaults,
)
from repro.workloads.spec import WorkloadSpec, make_workload

__all__ = ["main"]


def _planted(args: argparse.Namespace):
    return make_workload(
        "planted",
        WorkloadSpec(n=args.n, d=args.d, num_queries=args.queries, seed=args.seed),
        max_flips=max(1, args.d // 16),
    )


def _parse_overrides(pairs: Optional[List[str]]) -> Dict[str, object]:
    """``--set key=value`` pairs; values parsed as Python literals."""
    overrides: Dict[str, object] = {}
    for pair in pairs or []:
        key, sep, raw = pair.partition("=")
        if not sep or not key:
            raise SystemExit(f"--set expects key=value, got {pair!r}")
        try:
            overrides[key] = ast.literal_eval(raw)
        except (ValueError, SyntaxError):
            overrides[key] = raw  # bare strings like mode=adaptive
    return overrides


def _spec_for(
    name: str,
    args: argparse.Namespace,
    extra: Optional[Mapping[str, object]] = None,
    overrides: Optional[Mapping[str, object]] = None,
) -> IndexSpec:
    """A spec for ``name``: CLI geometry + row-specific + ``--set`` params,
    each filtered to the parameters the scheme accepts."""
    params: Dict[str, object] = {}
    geometry = {"gamma": args.gamma, "c1": args.c1, "c2": args.c2}
    for source in (geometry, extra or {}, overrides or {}):
        params.update(filter_params(name, source))
    return IndexSpec(scheme=name, params=params, seed=args.seed)


def _eval_gamma(spec: IndexSpec, args: argparse.Namespace) -> float:
    """The γ to judge success against: the spec's constructed gamma when
    the scheme has one (so ``--set gamma=...`` moves the success threshold
    with it), else the CLI's γ."""
    return float(spec.resolved_params().get("gamma", args.gamma))


def _summary_row(label: str, summary) -> Dict[str, object]:
    return {
        "scheme": label,
        "probes(mean)": round(summary.mean_probes, 1),
        "rounds(max)": summary.max_rounds,
        "success": round(summary.success_rate, 2),
        "cells=n^c": summary.extras.get("cells=n^c"),
    }


def _cmd_schemes(args: argparse.Namespace) -> int:
    print_table("Registered schemes (repro.registry)", registry_rows())
    return 0


def _workload_extras(args: argparse.Namespace) -> Dict[str, object]:
    """The workload recipe a ``build`` manifest records so ``bench
    --index`` can regenerate the exact same planted workload."""
    return {
        "workload": {
            "n": args.n,
            "d": args.d,
            "queries": args.queries,
            "seed": args.seed,
        }
    }


def _cmd_build(args: argparse.Namespace) -> int:
    from repro.core.index import ANNIndex
    from repro.service.sharded import ShardedANNIndex

    wl = _planted(args)
    overrides = _parse_overrides(args.set)
    spec = _spec_for(args.scheme, args, overrides=overrides).replace(boost=args.boost)
    if args.shards > 1:
        index = ShardedANNIndex.build(
            wl.database, spec, shards=args.shards,
            workers=args.workers, warm=not args.cold,
        )
        cells = index.size_report().table_cells
    else:
        index = ANNIndex.from_spec(wl.database, spec)
        if not args.cold:
            index.prepare()
        cells = index.size_report().table_cells
    path = index.save(
        args.out, extras=_workload_extras(args), format_version=args.format_version
    )
    print_table(
        f"Built index → {path}",
        [{
            "scheme": args.scheme,
            "shards": args.shards,
            "n": args.n,
            "d": args.d,
            "seed": index.spec.seed,
            "cells": cells,
        }],
    )
    return 0


def _bench_index(args: argparse.Namespace) -> int:
    """``bench --index DIR``: evaluate a loaded snapshot."""
    from repro.analysis.tradeoff import evaluate_index
    from repro.persistence import load_any, read_manifest

    manifest = read_manifest(args.index)
    recorded = manifest.get("extras", {}).get("workload")
    if recorded:
        for key in ("n", "d", "queries", "seed"):
            setattr(args, key, recorded[key])
    wl = _planted(args)
    index = load_any(args.index)
    parts = getattr(index, "shards", None) or [index]
    if any(p.generation > 0 or p.mutation.dirty_count for p in parts):
        raise SystemExit(
            f"index {args.index} has been mutated (insert/delete/compact), so "
            "the workload recorded at build time no longer matches its live "
            "rows; bench a fresh, unmutated build instead"
        )
    if len(index) != len(wl.database) or index.d != wl.database.d:
        raise SystemExit(
            f"index {args.index} was built for n={len(index)}, d={index.d}; "
            f"the bench workload has n={len(wl.database)}, d={wl.database.d} "
            "(pass matching --n/--d/--seed or rebuild)"
        )
    summary = evaluate_index(index, wl)
    spec = index.spec
    gamma = float(spec.resolved_params().get("gamma", args.gamma)) if spec else args.gamma
    rows = [{**_summary_row(summary.scheme, summary), "γ": gamma}]
    print_table(
        f"Bench (loaded index {args.index}, n={args.n}, d={args.d})", rows
    )
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    if args.index:
        if args.scheme:
            raise SystemExit("--index benches a snapshot; drop --scheme")
        return _bench_index(args)
    if not args.scheme:
        raise SystemExit("bench needs --scheme NAME (repeatable) or --index DIR")
    wl = _planted(args)
    overrides = _parse_overrides(args.set)
    # An override no selected scheme accepts is a typo, not a preference.
    accepted_anywhere = set()
    for name in args.scheme:
        accepted_anywhere.update(scheme_defaults(name))
    unused = sorted(set(overrides) - accepted_anywhere)
    if unused:
        raise SystemExit(
            f"--set key(s) accepted by none of the selected schemes: "
            f"{', '.join(unused)}"
        )
    rows = []
    for name in args.scheme:
        spec = _spec_for(name, args, overrides=overrides)
        gamma = _eval_gamma(spec, args)
        if args.shards > 1:
            from repro.analysis.tradeoff import evaluate_index
            from repro.service.sharded import ShardedANNIndex

            sharded = ShardedANNIndex.build(
                wl.database, spec, shards=args.shards, workers=args.workers
            )
            summary = evaluate_index(sharded, wl, gamma)
            label = summary.scheme
        else:
            summary = evaluate_spec(spec, wl, gamma, batch=args.batch)
            label = name
        # γ is a per-row fact: --set gamma=... moves it for the schemes
        # that accept it, while gamma-less schemes keep the CLI value.
        rows.append({**_summary_row(label, summary), "γ": gamma})
    print_table(f"Bench (n={args.n}, d={args.d}, planted workload)", rows)
    return 0


def _write_ready_file(path, host: str, port: int) -> None:
    """Write a ``host port`` ready file atomically (temp + rename).

    Harnesses poll for this file and read it the moment it appears; a
    bare ``write_text`` can be caught between create and write, handing
    the reader an empty or half-written address.  The rename makes the
    file appear with its full contents or not at all.
    """
    import os
    from pathlib import Path

    target = Path(path)
    tmp = target.with_name(target.name + ".tmp")
    tmp.write_text(f"{host} {port}\n")
    os.replace(tmp, target)


def _cmd_serve(args: argparse.Namespace) -> int:
    """``serve --index DIR``: online serving with adaptive micro-batching."""
    import asyncio

    from repro.persistence import load_any
    from repro.service.server import describe_index, serve

    index = load_any(
        args.index, load_mode=args.load_mode, memory_budget=args.memory_budget
    )
    info = describe_index(index)

    def ready(host: str, port: int) -> None:
        budget = (
            f", budget={args.memory_budget}B" if args.memory_budget else ""
        )
        print(
            f"serving {info['scheme']} (n={info['n']}, d={info['d']}, "
            f"load_mode={args.load_mode}{budget}) "
            f"on {host}:{port}  [max_batch={args.max_batch}, "
            f"max_wait_ms={args.max_wait_ms:g}] — send {{\"op\": \"shutdown\"}} "
            "or Ctrl-C to stop",
            flush=True,
        )
        if args.ready_file:
            _write_ready_file(args.ready_file, host, port)

    try:
        asyncio.run(
            serve(
                index,
                host=args.host,
                port=args.port,
                max_batch=args.max_batch,
                max_wait_ms=args.max_wait_ms,
                ready_cb=ready,
                snapshot_dir=args.index,
            )
        )
    except KeyboardInterrupt:
        pass
    return 0


def _cmd_shard_serve(args: argparse.Namespace) -> int:
    """``shard-serve --index DIR --shard I``: serve one shard's index.

    The snapshot must hold a single :class:`ANNIndex` (e.g. the
    ``shard-0000`` subdirectory of a sharded snapshot).  The replica's
    write sequencer starts at the snapshot's recorded ``write_seq``, so
    a router replays exactly the log tail on catch-up.

    ``--snapshot-dir DIR`` separates the replica's *checkpoints* from
    the shared ``--index`` snapshot: a bare ``snapshot`` request saves
    there, and a restart reloads the checkpoint when one exists (falling
    back to ``--index``).  Give every replica of a shard its own
    directory — without it, siblings serving the same ``--index`` would
    checkpoint over each other's files.
    """
    import asyncio
    from pathlib import Path

    from repro.core.index import ANNIndex
    from repro.persistence import MANIFEST_FILE, snapshot_write_seq
    from repro.service.server import describe_index, serve

    if args.memory_budget:
        print(
            "note: --memory-budget is inert for shard-serve (one shard per "
            "process leaves nothing to evict); use --load-mode mmap to keep "
            "this shard out-of-core",
            file=sys.stderr,
        )
    snapshot_dir = args.snapshot_dir or args.index
    source = args.index
    if args.snapshot_dir and (Path(args.snapshot_dir) / MANIFEST_FILE).is_file():
        # The replica has checkpointed before: its own snapshot is at
        # least as recent as the shared --index one, and the router's
        # WAL may have been truncated to the checkpoint's coverage —
        # restarting from the older snapshot could leave a gap no log
        # entry can fill.
        source = args.snapshot_dir
    index = ANNIndex.load(source, load_mode=args.load_mode)
    initial_seq = snapshot_write_seq(source)
    info = describe_index(index)

    def ready(host: str, port: int) -> None:
        print(
            f"shard {args.shard}: serving {info['scheme']} "
            f"(n={info['n']}, d={info['d']}, write_seq={initial_seq}, "
            f"load_mode={args.load_mode}) "
            f"on {host}:{port}",
            flush=True,
        )
        if args.ready_file:
            _write_ready_file(args.ready_file, host, port)

    try:
        asyncio.run(
            serve(
                index,
                host=args.host,
                port=args.port,
                max_batch=args.max_batch,
                max_wait_ms=args.max_wait_ms,
                ready_cb=ready,
                shard_id=args.shard,
                initial_seq=initial_seq,
                snapshot_dir=snapshot_dir,
            )
        )
    except KeyboardInterrupt:
        pass
    return 0


def _cmd_route(args: argparse.Namespace) -> int:
    """``route --shard 0=H:P,H:P ...``: run the cluster router.

    ``--log-dir DIR`` makes the write log durable (one WAL segment per
    shard); ``--recover`` replays existing segments at startup so a
    killed router resumes exactly where it died.  ``--supervise
    --index SNAPSHOT`` flips the command into a self-contained launcher:
    it spawns ``--replicas`` shard servers per shard from the sharded
    snapshot, respawns any that die (the health loop catches them up by
    replay), and routes over them — no hand-built ``--shard`` map.
    """
    import asyncio

    from repro.service.cluster import parse_shard_map, serve_router

    if args.recover and not args.log_dir:
        raise SystemExit("--recover needs --log-dir DIR")
    supervisor = None
    fleet = None
    if args.supervise:
        if not args.index:
            raise SystemExit("--supervise needs --index SNAPSHOT_DIR")
        if args.shard:
            raise SystemExit(
                "--supervise spawns its own shard servers; drop the --shard "
                "specs (or drop --supervise to route over external servers)"
            )
        from repro.service.harness import ShardFleet

        fleet = ShardFleet(
            args.index,
            replicas=args.replicas,
            load_mode=args.load_mode,
            kernel=args.kernel,
        )
        shard_map = fleet.start()
        supervisor = fleet.check_respawn
    else:
        if args.index:
            raise SystemExit("--index only applies with --supervise")
        try:
            shard_map = parse_shard_map(args.shard or [])
        except ValueError as exc:
            raise SystemExit(str(exc))

    def ready(host: str, port: int) -> None:
        replicas = sum(len(group) for group in shard_map)
        durability = f", wal={args.log_dir}" if args.log_dir else ""
        print(
            f"routing {len(shard_map)} shard(s) × {replicas} replica(s) "
            f"on {host}:{port}  [timeout={args.timeout:g}s, "
            f"hedge_ms={args.hedge_ms:g}{durability}]",
            flush=True,
        )
        if args.ready_file:
            _write_ready_file(args.ready_file, host, port)

    try:
        asyncio.run(
            serve_router(
                shard_map,
                host=args.host,
                port=args.port,
                timeout=args.timeout,
                hedge_ms=args.hedge_ms,
                health_interval=args.health_interval,
                ready_cb=ready,
                log_dir=args.log_dir,
                recover=args.recover,
                supervisor=supervisor,
                supervise_interval=args.supervise_interval,
            )
        )
    except KeyboardInterrupt:
        pass
    finally:
        if fleet is not None:
            fleet.stop()
    return 0


def _cmd_mutate(args: argparse.Namespace) -> int:
    """``mutate --index DIR``: streaming inserts/deletes on a snapshot."""
    import numpy as np

    from repro.hamming.sampling import random_points
    from repro.persistence import load_any, read_manifest

    if not args.insert_random and not args.delete and not args.compact:
        raise SystemExit(
            "mutate needs --insert-random M, --delete ID ..., and/or --compact"
        )
    manifest = read_manifest(args.index)
    extras = manifest.get("extras", {})
    # Re-save in the snapshot's own layout (a mutated v3 snapshot stays
    # mmap-loadable); pre-v3 snapshots keep writing the v2 default.
    format_version = (
        manifest["format_version"] if manifest["format_version"] >= 3 else None
    )
    index = load_any(args.index)
    # Deletes run first: --delete ids refer to the on-disk snapshot's
    # numbering, and an insert that trips the amortized compaction would
    # renumber the rows out from under them.
    if args.delete:
        index.delete(args.delete)
    inserted = []
    if args.insert_random:
        rng = np.random.default_rng(args.mutate_seed)
        inserted = index.insert(random_points(rng, args.insert_random, index.d))
    if args.compact:
        index.compact()
    path = index.save(
        args.out or args.index, extras=extras, format_version=format_version
    )
    parts = getattr(index, "shards", None) or [index]
    generations = [shard.generation for shard in parts]
    print_table(
        f"Mutated index → {path}",
        [{
            "live": len(index),
            "id_space": index.id_space,
            "inserted": len(inserted),
            "deleted": len(args.delete),
            "generation(s)": ",".join(str(g) for g in generations),
            "tombstones": sum(s.mutation.tombstone_count for s in parts),
            "memtable": sum(len(s.mutation.memtable) for s in parts),
        }],
    )
    return 0


def _cmd_baselines(args: argparse.Namespace) -> int:
    wl = _planted(args)
    contenders = [
        ("lsh", "lsh", {}),
        ("algorithm1 k=1", "algorithm1", {"rounds": 1}),
        ("algorithm1 k=3", "algorithm1", {"rounds": 3}),
        ("fully-adaptive", "fully-adaptive", {}),
        ("linear-scan", "linear-scan", {}),
    ]
    rows = []
    for label, name, extra in contenders:
        summary = evaluate_spec(_spec_for(name, args, extra=extra), wl, args.gamma)
        rows.append(_summary_row(label, summary))
    print_table(f"Baselines (n={args.n}, d={args.d}, γ={args.gamma})", rows)
    return 0


def _cmd_tradeoff(args: argparse.Namespace) -> int:
    wl = _planted(args)
    drop = ("workload", "queries", "scheme")
    rows = []
    sweeps = [("Alg1", "algorithm1", args.ks)]
    if args.alg2_ks:
        sweeps.append(("Alg2", "algorithm2", args.alg2_ks))
    for label, name, ks in sweeps:
        params = filter_params(
            name, {"gamma": args.gamma, "c1": args.c1, "c2": args.c2}
        )
        for s in sweep_rounds(wl, name, ks, args.gamma, seed=args.seed, params=params):
            rows.append(
                {"scheme": label, **{k: v for k, v in s.row().items() if k not in drop}}
            )
    print_table(f"Tradeoff (n={args.n}, d={args.d}, γ={args.gamma})", rows)
    return 0


def _cmd_lemma8(args: argparse.Namespace) -> int:
    from repro.analysis.sandwich import verify_lemma8
    from repro.sketch.family import SketchFamily
    from repro.utils.intmath import num_levels
    from repro.utils.rng import RngTree
    import math

    wl = _planted(args)
    alpha = math.sqrt(min(4.0, args.gamma))
    levels = num_levels(args.d, alpha)
    rows = []
    for rows_count in args.rows:
        fam = SketchFamily(args.d, alpha, levels, rows_count, rng_tree=RngTree(args.seed))
        report = verify_lemma8(wl.database, fam, wl.queries)
        rows.append({"rows": rows_count,
                     "P[sandwich]": round(report.simultaneous_rate, 3)})
    print_table(f"Lemma 8 sandwich (n={args.n}, d={args.d})", rows)
    return 0


def _cmd_ledger(args: argparse.Namespace) -> int:
    from repro.lowerbound.roundelim import RoundEliminationLedger

    rows = []
    for k in args.ks:
        ledger = RoundEliminationLedger(
            gamma=args.gamma, k=k, log2_n=args.log2d**2, log2_d=args.log2d
        )
        t_star, result = ledger.implied_lower_bound()
        rows.append({"k": k, "m": ledger.m, "regime_ok": ledger.regime_ok,
                     "xi": round(result.xi, 3), "t*": round(t_star, 4),
                     "t*/xi": round(t_star / result.xi, 4) if result.xi else None})
    print_table(f"Round-elimination ledger (log2 d = {args.log2d:g})", rows)
    return 0


def _cmd_demo(args: argparse.Namespace) -> int:
    import numpy as np

    from repro import ANNIndex, PackedPoints
    from repro.hamming.sampling import flip_random_bits, random_points

    rng = np.random.default_rng(2016)
    n, d = 300, 1024
    db = PackedPoints(random_points(rng, n, d), d)
    index = ANNIndex.from_spec(db, IndexSpec.preset("paper", seed=7))
    rows = []
    for i in range(8):
        q = flip_random_bits(rng, db.row(int(rng.integers(0, n))), int(rng.integers(0, 40)), d)
        res = index.query_packed(q)
        rows.append({"query": i, "probes": res.probes, "rounds": res.rounds,
                     "ratio": res.ratio(db, q), "path": res.meta.get("path")})
    print_table(f"Demo: preset 'paper' (k=3 rounds), n={n}, d={d}, γ=4", rows)
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from pathlib import Path

    import repro
    from repro.devtools import (
        ALL_CHECKERS,
        baseline_payload,
        format_json,
        format_text,
        load_baseline,
        rule_ids,
        run_lint,
    )

    if args.select:
        valid = rule_ids()
        for rule in args.select:
            if rule.upper() not in valid:
                raise SystemExit(
                    f"unknown lint rule {rule!r}; available: {', '.join(valid)}"
                )
    root = Path(args.root) if args.root else Path(repro.__file__).parent
    if not root.is_dir():
        raise SystemExit(f"lint root {root} is not a directory")
    baseline = load_baseline(Path(args.baseline)) if args.baseline else None
    result = run_lint(root, ALL_CHECKERS, select=args.select, baseline=baseline)
    if args.write_baseline:
        import json as _json

        Path(args.write_baseline).write_text(
            _json.dumps(baseline_payload(result), indent=2) + "\n", encoding="utf-8"
        )
    if args.format == "json":
        print(format_json(result))
    else:
        print(format_text(result))
    return 0 if result.clean else 1


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="Limited-adaptivity ANNS reproduction experiments"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p: argparse.ArgumentParser) -> None:
        p.add_argument("--n", type=int, default=300)
        p.add_argument("--d", type=int, default=1024)
        p.add_argument("--gamma", type=float, default=4.0)
        p.add_argument("--queries", type=int, default=16)
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--c1", type=float, default=8.0)
        # Default matches Algorithm2Params / the registry's c2 default.
        p.add_argument("--c2", type=float, default=6.0)

    def kernel_opt(p: argparse.ArgumentParser) -> None:
        from repro.hamming.kernels import available_kernels

        p.add_argument("--kernel", choices=available_kernels(), default=None,
                       help="popcount/distance kernel backend "
                            "(default: env REPRO_KERNEL, else 'reference')")

    p = sub.add_parser("schemes", help="list the scheme registry")
    p.set_defaults(fn=_cmd_schemes)

    p = sub.add_parser("bench", help="compare any registered schemes on one workload")
    common(p)
    p.add_argument("--scheme", action="append",
                   choices=available_schemes(),
                   help="scheme to include (repeatable)")
    p.add_argument("--set", action="append", metavar="KEY=VALUE",
                   help="parameter override applied to every scheme that accepts it")
    p.add_argument("--batch", action="store_true",
                   help="evaluate through the batched engine (same results)")
    p.add_argument("--index", metavar="DIR",
                   help="evaluate a saved index snapshot instead of building")
    p.add_argument("--shards", type=int, default=1,
                   help="serve each scheme through a ShardedANNIndex with S shards")
    p.add_argument("--workers", type=int, default=None,
                   help="parallel shard-build worker processes")
    kernel_opt(p)
    p.set_defaults(fn=_cmd_bench)

    p = sub.add_parser("build", help="build an index and snapshot it to a directory")
    common(p)
    p.add_argument("--scheme", default="algorithm1", choices=available_schemes())
    p.add_argument("--set", action="append", metavar="KEY=VALUE",
                   help="parameter override for the scheme")
    p.add_argument("--boost", type=int, default=1,
                   help="parallel-repetition copies")
    p.add_argument("--shards", type=int, default=1,
                   help="partition into S shards (ShardedANNIndex snapshot)")
    p.add_argument("--workers", type=int, default=None,
                   help="parallel shard-build worker processes")
    p.add_argument("--cold", action="store_true",
                   help="skip preprocessing warm-up before saving")
    p.add_argument("--out", required=True, metavar="DIR",
                   help="snapshot directory to write")
    p.add_argument("--format-version", type=int, default=None, choices=(2, 3),
                   help="snapshot layout: 2 (default, compressed .npz) or 3 "
                        "(raw .npy payloads, required for --load-mode mmap)")
    p.set_defaults(fn=_cmd_build)

    p = sub.add_parser(
        "mutate", help="apply streaming inserts/deletes to a saved index"
    )
    p.add_argument("--index", required=True, metavar="DIR",
                   help="snapshot directory to mutate (single or sharded)")
    p.add_argument("--out", metavar="DIR",
                   help="write the mutated snapshot here (default: in place)")
    p.add_argument("--insert-random", type=int, default=0, metavar="M",
                   help="insert M uniform random points")
    p.add_argument("--delete", type=int, nargs="*", default=[], metavar="ID",
                   help="global row ids to delete (applied before any inserts, "
                        "against the snapshot's numbering)")
    p.add_argument("--compact", action="store_true",
                   help="force a compaction (rebuild from the survivors)")
    p.add_argument("--mutate-seed", type=int, default=0,
                   help="RNG seed for --insert-random points")
    p.set_defaults(fn=_cmd_mutate)

    def out_of_core(p: argparse.ArgumentParser, inert: str = "") -> None:
        note = f" ({inert})" if inert else ""
        p.add_argument("--load-mode", choices=("heap", "mmap"), default="heap",
                       help="how snapshot payloads load: heap materializes "
                            "everything, mmap maps format-v3 payloads "
                            f"zero-copy{note}")
        p.add_argument("--memory-budget", type=int, default=None, metavar="BYTES",
                       help="evict least-recently-queried clean shards once "
                            f"resident bytes exceed this{note}")

    p = sub.add_parser(
        "serve", help="serve a saved index over TCP with adaptive micro-batching"
    )
    p.add_argument("--index", required=True, metavar="DIR",
                   help="snapshot directory to load (single or sharded)")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=7878,
                   help="TCP port (0 binds an ephemeral port)")
    p.add_argument("--max-batch", type=int, default=64,
                   help="flush a micro-batch at this many pending queries")
    p.add_argument("--max-wait-ms", type=float, default=2.0,
                   help="flush when the oldest pending query has waited this long")
    p.add_argument("--ready-file", metavar="PATH",
                   help="write 'host port' here once listening (for scripts)")
    kernel_opt(p)
    out_of_core(p)
    p.set_defaults(fn=_cmd_serve)

    p = sub.add_parser(
        "shard-serve", help="serve one shard's index as a cluster replica"
    )
    p.add_argument("--index", required=True, metavar="DIR",
                   help="single-index snapshot to serve (e.g. shard-0000/)")
    p.add_argument("--shard", required=True, type=int,
                   help="this replica's shard number in the router's map")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=0,
                   help="TCP port (0 binds an ephemeral port)")
    p.add_argument("--max-batch", type=int, default=64,
                   help="flush a micro-batch at this many pending queries")
    p.add_argument("--max-wait-ms", type=float, default=2.0,
                   help="flush when the oldest pending query has waited this long")
    p.add_argument("--ready-file", metavar="PATH",
                   help="write 'host port' here once listening (for scripts)")
    p.add_argument("--snapshot-dir", metavar="DIR",
                   help="this replica's own checkpoint directory: bare "
                        "'snapshot' requests save here, and a restart "
                        "reloads the checkpoint when one exists (defaults "
                        "to --index; required per replica when siblings "
                        "share an --index snapshot)")
    kernel_opt(p)
    out_of_core(p, inert="inert here: a single shard has nothing to evict")
    p.set_defaults(fn=_cmd_shard_serve)

    p = sub.add_parser(
        "route", help="route queries/writes across replicated shard servers"
    )
    p.add_argument("--shard", action="append",
                   metavar="I=HOST:PORT[,HOST:PORT...]",
                   help="shard I's replica endpoints (repeat per shard; "
                        "not used with --supervise)")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=0,
                   help="TCP port (0 binds an ephemeral port)")
    p.add_argument("--timeout", type=float, default=5.0,
                   help="per-replica request timeout in seconds")
    p.add_argument("--hedge-ms", type=float, default=0.0,
                   help="hedge reads to a sibling after this many ms (0 = off)")
    p.add_argument("--health-interval", type=float, default=0.5,
                   help="seconds between replica health sweeps")
    p.add_argument("--ready-file", metavar="PATH",
                   help="write 'host port' here once listening (for scripts)")
    p.add_argument("--log-dir", metavar="DIR",
                   help="durable write-ahead log directory (one fsync'd "
                        "segment per shard; see docs/DISTRIBUTED.md)")
    p.add_argument("--recover", action="store_true",
                   help="rebuild the write log from --log-dir's segments and "
                        "replay the gap to every replica before serving")
    p.add_argument("--supervise", action="store_true",
                   help="spawn and auto-respawn the shard servers from "
                        "--index instead of routing over external ones")
    p.add_argument("--index", metavar="DIR",
                   help="sharded snapshot --supervise launches shard "
                        "servers from")
    p.add_argument("--replicas", type=int, default=2,
                   help="replicas per shard under --supervise")
    p.add_argument("--supervise-interval", type=float, default=1.0,
                   help="seconds between supervisor respawn sweeps")
    kernel_opt(p)
    out_of_core(p, inert="accepted for launch-script symmetry; the router "
                         "holds no index, so both are inert here")
    p.set_defaults(fn=_cmd_route)

    p = sub.add_parser("tradeoff", help="probes vs rounds k (E1/E2)")
    common(p)
    p.add_argument("--ks", type=int, nargs="+", default=[1, 2, 3, 4])
    p.add_argument("--alg2-ks", type=int, nargs="*", default=[])
    p.set_defaults(fn=_cmd_tradeoff)

    p = sub.add_parser("baselines", help="LSH / scans / adaptive (E6)")
    common(p)
    p.set_defaults(fn=_cmd_baselines)

    p = sub.add_parser("lemma8", help="sandwich probability vs rows (E4)")
    common(p)
    p.add_argument("--rows", type=int, nargs="+", default=[64, 128, 256])
    p.set_defaults(fn=_cmd_lemma8)

    p = sub.add_parser("ledger", help="round-elimination ledger (E8)")
    p.add_argument("--log2d", type=float, default=1e8)
    p.add_argument("--gamma", type=float, default=3.0)
    p.add_argument("--ks", type=int, nargs="+", default=[1, 2, 3])
    p.set_defaults(fn=_cmd_ledger)

    p = sub.add_parser("demo", help="run the quickstart example")
    p.set_defaults(fn=_cmd_demo)

    p = sub.add_parser(
        "lint",
        help="static analysis: check project invariants (see docs/DEVTOOLS.md)",
    )
    p.add_argument(
        "--root",
        default=None,
        help="package tree to lint (default: the installed repro package)",
    )
    p.add_argument("--format", choices=("text", "json"), default="text")
    p.add_argument(
        "--select",
        action="append",
        metavar="RULE",
        help="run only these rule ids (repeatable, e.g. --select R002)",
    )
    p.add_argument("--baseline", metavar="FILE",
                   help="JSON baseline of grandfathered findings to ignore")
    p.add_argument("--write-baseline", metavar="FILE",
                   help="write the current findings out as a baseline file")
    p.set_defaults(fn=_cmd_lint)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)
    # --kernel is applied here, centrally, so command handlers (and every
    # call site below them) stay backend-agnostic — the kernel seam's one
    # runtime switch (repro.hamming.set_kernel).
    kernel = getattr(args, "kernel", None)
    if kernel:
        from repro.hamming.kernels import set_kernel

        set_kernel(kernel)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
