"""One-probe membership structures for the degenerate cases (Section 3.1).

The paper handles queries with ``B₀ ≠ ∅`` (query is a database point) or
``B₁ ≠ ∅`` (query within distance 1 of the database) by perfect hashing —
one probe into a quadratic-size table storing the set ``B`` respectively
its 1-neighborhood ``N₁(B)`` (at most ``(d+1)n`` points), with the hash
function as public randomness.

We simulate both as 1-probe :class:`~repro.cellprobe.table.LazyTable`
structures: the probed cell's content is the member of the stored set that
perfect-hashes to the probed address — which, because the scheme only ever
probes address ``h(x)``, is exactly "the stored point equal to / within
distance 1 of ``x``, if any".  The lazy content function computes that by a
vectorized distance scan, i.e. precisely what FKS preprocessing would have
placed in the cell.  Probe and word accounting match the paper:

* 1 probe each, issued in parallel with the first round of the main scheme;
* word size ``O(d)`` (the stored point);
* logical table size ``O(n²)`` for exact membership, ``O(((d+1)n)²)`` for
  the 1-neighborhood (quadratic-size perfect hashing).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.cellprobe.table import LazyTable
from repro.cellprobe.words import EMPTY, PointWord
from repro.hamming.distance import cross_distances, paired_distances
from repro.hamming.points import PackedPoints

__all__ = ["MembershipStructure"]


class MembershipStructure:
    """A 1-probe structure answering "is ``x`` within distance ``radius`` of
    the database, and if so return such a database point".

    Parameters
    ----------
    database : the packed database ``B``
    radius : 0 for exact membership (the ``B₀`` structure) or 1 for the
        1-neighborhood structure (``B₁``)
    name : table name used in probe traces
    """

    def __init__(self, database: PackedPoints, radius: int, name: str):
        if radius not in (0, 1):
            raise ValueError(f"membership radius must be 0 or 1, got {radius}")
        self.database = database
        self.radius = int(radius)
        n = max(1, len(database))
        d = database.d
        stored_points = n if radius == 0 else (d + 1) * n
        self.table = LazyTable(
            name=name,
            logical_cells=stored_points * stored_points,  # quadratic perfect hashing
            word_size_bits=1 + d,
            content_fn=self._content,
            batch_content_fn=self._batch_contents,
        )

    def address_for(self, x: np.ndarray) -> tuple:
        """The (simulated) perfect-hash address of query ``x``.

        The simulator uses the point itself as the address key; the model's
        hash value would be a ``O(log n)``-bit address, and collisions are
        resolved by the perfect-hash construction, so identifying the
        address with the point is behaviorally exact for probing purposes.
        """
        return tuple(np.asarray(x, dtype=np.uint64).ravel().tolist())

    def _content(self, address: tuple) -> object:
        x = np.asarray(address, dtype=np.uint64)
        if len(self.database) == 0:
            return EMPTY
        dists = self.database.distances_from(x)
        hits = np.nonzero(dists <= self.radius)[0]
        if hits.size == 0:
            return EMPTY
        # Prefer an exact match so the degenerate answer is the true NN.
        exact = hits[dists[hits] == 0]
        idx = int(exact[0]) if exact.size else int(hits[0])
        return PointWord.from_packed(idx, self.database.row(idx), self.database.d)

    def _batch_contents(self, addresses: list) -> list:
        """Vectorized form of :meth:`_content` for many probed addresses.

        A query within distance ``radius ≤ 1`` of a stored point must be
        within ``radius`` on the first packed word alone, so one cheap
        ``(B, n)`` single-word popcount screens the batch and the full
        ``W``-word distance is computed only for the rare candidate pairs.
        The survivors go through the same hit selection as ``_content``
        (prefer exact, lowest index), so contents are identical.
        """
        if len(self.database) == 0:
            return [EMPTY] * len(addresses)
        points = np.asarray([tuple(a) for a in addresses], dtype=np.uint64)
        words = self.database.words
        radius = self.radius
        first_word = cross_distances(points[:, :1], words[:, :1])
        cand_q, cand_z = np.nonzero(first_word <= radius)
        best: dict[int, tuple[bool, int]] = {}  # query row -> (found exact, index)
        if cand_q.size:
            if points.shape[1] == 1:
                cand_dists = first_word[cand_q, cand_z]
            else:
                cand_dists = paired_distances(points[cand_q], words[cand_z])
            # Candidates arrive sorted by (query, index), so the first hit
            # per query is the lowest index and the first exact hit is the
            # lowest-index exact — matching _content's selection.
            for q, z, dist in zip(cand_q.tolist(), cand_z.tolist(), cand_dists.tolist()):
                if dist > radius:
                    continue
                current = best.get(q)
                if current is None:
                    best[q] = (dist == 0, z)
                elif dist == 0 and not current[0]:
                    best[q] = (True, z)
        out = []
        for q in range(points.shape[0]):
            hit = best.get(q)
            if hit is None:
                out.append(EMPTY)
            else:
                idx = hit[1]
                out.append(
                    PointWord.from_packed(idx, self.database.row(idx), self.database.d)
                )
        return out

    def lookup_ground_truth(self, x: np.ndarray) -> Optional[int]:
        """Unaccounted ground-truth check (tests only)."""
        content = self._content(self.address_for(x))
        return content.index if isinstance(content, PointWord) else None
