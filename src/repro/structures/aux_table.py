"""The auxiliary tables ``T̃_{i,j}`` of Theorem 10.

For level ``i`` and accurate-sketch value ``j = M_i x``, the auxiliary
table answers, in **one probe**, a batched question about up to ``s``
coarse sets at once: given lower/upper thresholds ``(l, u)``, a group index
and coarse addresses ``w_1..w_{w₀}`` (the values ``N_{ρ(r)} x`` for the
group's levels), it returns the smallest in-group position ``q`` such that

    |D_{i, ρ(r_q)}| > n^{-1/s} · |C_i(j)|,

or the sentinel ``s + 1`` when no such position exists.  This is how
Algorithm 2 scans ``τ − 1`` coarse sets with only ``⌈(τ−1)/s⌉`` probes.

Addressing note (documented in DESIGN.md): the paper's cell address stores
``(l, u, w₀, w_1..w_s)`` and has the table re-derive the group's levels via
a *local* interpolation ``ρ(r) = ⌊l + (r−1)(u−l)/(s−1)⌋``, which does not
reproduce the querier's global levels exactly because of floor rounding.
Since lookup functions and the table code are two halves of one scheme and
share its fixed parameters, our address carries ``(l, u, group_index, w₀)``
and **both sides** derive the identical global sequence
``ρ(r) = ⌊l + r(u−l)/τ⌋`` with the scheme constant ``τ``.  The address
space is unchanged up to ``poly(n)`` factors.
"""

from __future__ import annotations

from typing import Sequence

from repro.cellprobe.table import LazyTable
from repro.cellprobe.words import IntWord
from repro.sketch.approx_balls import ApproxBallEvaluator

__all__ = ["AuxCountTable", "aux_table_logical_cells", "group_levels", "rho"]


def rho(l: int, u: int, tau: int, r: int) -> int:
    """The interpolated level ``ρ(r) = ⌊l + r(u−l)/τ⌋`` (both algorithms)."""
    return l + (r * (u - l)) // tau


def group_levels(l: int, u: int, tau: int, s: int, group_index: int, w0: int) -> list[int]:
    """Levels ``ρ(1+(g−1)s) .. ρ(1+(g−1)s+w₀−1)`` scanned by group ``g``."""
    start = 1 + (group_index - 1) * s
    return [rho(l, u, tau, start + q) for q in range(w0)]


def aux_table_logical_cells(
    levels: int, accurate_rows: int, coarse_rows: int, s: int
) -> int:
    """Logical cell count of the auxiliary structure for one level ``i``.

    Mirrors the paper's accounting: one sub-table per accurate-sketch value
    (``2^{accurate_rows}``), each with ``(levels+1)² · s`` threshold/group
    slots times ``2^{s · coarse_rows}`` coarse-address combinations.
    (The count is reported exactly as a Python big int; nothing of this
    size is ever materialized.)
    """
    per_subtable = (levels + 1) ** 2 * max(1, s) * (1 << (s * coarse_rows))
    return (1 << accurate_rows) * per_subtable


class AuxCountTable:
    """Lazy simulation of the auxiliary tables for one level ``i``.

    The accurate address ``j`` is folded into the cell address (equivalent
    to the paper's family of tables indexed by ``j``).

    Parameters
    ----------
    evaluator : table-side ball evaluator (owns the DB sketches)
    level : the level ``i`` (Algorithm 2 always uses ``i = u``)
    tau : the scheme constant ``τ`` (shared by querier and table)
    s : group capacity (the paper's integer use of ``s``)
    frac_exponent : the real-valued ``s`` used in the ``n^{-1/s}`` density
        threshold (the paper's ``s`` before integer truncation)
    """

    SENTINEL_OFFSET = 1  # stored sentinel is s + 1

    def __init__(
        self,
        evaluator: ApproxBallEvaluator,
        level: int,
        tau: int,
        s: int,
        frac_exponent: float,
    ):
        if s < 1:
            raise ValueError(f"group capacity s must be >= 1, got {s}")
        if tau < 2:
            raise ValueError(f"tau must be >= 2, got {tau}")
        if frac_exponent <= 0:
            raise ValueError(f"frac_exponent must be > 0, got {frac_exponent}")
        self.evaluator = evaluator
        self.level = int(level)
        self.tau = int(tau)
        self.s = int(s)
        self.frac_exponent = float(frac_exponent)
        fam = evaluator.sketches.family
        if fam.coarse_rows is None:
            raise RuntimeError("auxiliary tables require coarse sketches")
        n = max(2, len(evaluator.sketches.database))
        self._n = n
        self.table = LazyTable(
            name=f"Aux{self.level}",
            logical_cells=aux_table_logical_cells(
                fam.levels, fam.accurate_rows, fam.coarse_rows, self.s
            ),
            word_size_bits=1 + max(1, (self.s + 1).bit_length()),
            content_fn=self._content,
            batch_content_fn=self._batch_contents,
        )

    def address(
        self,
        accurate_address: tuple,
        l: int,
        u: int,
        group_index: int,
        coarse_addresses: Sequence[tuple],
    ) -> tuple:
        """Build the hashable cell address for one group probe."""
        w0 = len(coarse_addresses)
        if not (1 <= w0 <= self.s):
            raise ValueError(f"group must contain 1..{self.s} coarse sets, got {w0}")
        return (
            accurate_address,
            int(l),
            int(u),
            int(group_index),
            w0,
            tuple(tuple(a) for a in coarse_addresses),
        )

    def density_threshold(self, c_size: int) -> float:
        """The density cut ``n^{-1/s} · |C_i|``."""
        return (self._n ** (-1.0 / self.frac_exponent)) * c_size

    def _content(self, address: tuple) -> IntWord:
        accurate_address, l, u, group_index, w0, coarse_addresses = address
        levels = group_levels(l, u, self.tau, self.s, group_index, w0)
        c_size = self.evaluator.c_count(self.level, accurate_address)
        cut = self.density_threshold(c_size)
        for q, (lvl, w_addr) in enumerate(zip(levels, coarse_addresses), start=1):
            d_size = self.evaluator.d_count(self.level, accurate_address, lvl, w_addr)
            if d_size > cut:
                return IntWord(q, self.s + self.SENTINEL_OFFSET)
        return IntWord(self.s + self.SENTINEL_OFFSET, self.s + self.SENTINEL_OFFSET)

    def _batch_contents(self, addresses: list) -> list:
        """Vectorized form of :meth:`_content` for many group probes.

        Shares one ``C_i`` membership matrix across the distinct accurate
        addresses in the batch and one coarse matrix per (level, coarse
        address) set, then assembles each probe's smallest dense position
        with the same threshold logic as the scalar path.
        """
        ev = self.evaluator
        acc_order: dict[tuple, int] = {}
        for address in addresses:
            acc_order.setdefault(address[0], len(acc_order))
        acc_masks = ev.c_masks(self.level, list(acc_order))
        c_sizes = acc_masks.sum(axis=1)

        per_address_levels = []
        needed: dict[int, dict[tuple, None]] = {}
        for address in addresses:
            _, l, u, group_index, w0, coarse_addresses = address
            levels = group_levels(l, u, self.tau, self.s, group_index, w0)
            per_address_levels.append(levels)
            for lvl, w_addr in zip(levels, coarse_addresses):
                needed.setdefault(lvl, {})[w_addr] = None  # ordered de-dup
        coarse_masks = {
            lvl: dict(zip(addrs, ev.coarse_masks(lvl, list(addrs))))
            for lvl, addrs in needed.items()
        }

        sentinel = self.s + self.SENTINEL_OFFSET
        out = []
        for address, levels in zip(addresses, per_address_levels):
            accurate_address, _, _, _, _, coarse_addresses = address
            row = acc_order[accurate_address]
            base = acc_masks[row]
            cut = self.density_threshold(int(c_sizes[row]))
            value = sentinel
            for q, (lvl, w_addr) in enumerate(zip(levels, coarse_addresses), start=1):
                if int((base & coarse_masks[lvl][w_addr]).sum()) > cut:
                    value = q
                    break
            out.append(IntWord(value, sentinel))
        return out
