"""The level tables ``T_i`` of Theorem 9.

Table ``T_i`` has one cell per possible accurate-sketch value
``j ∈ {0,1}^{c₁ log n}``; cell ``T_i[j]`` stores a database point ``z``
with ``dist(j, M_i z) ≤ θ_i · rows`` if one exists (i.e. a member of
``C_i(j)``) and EMPTY otherwise.  Probing ``T_i[M_i x]`` therefore reveals
whether ``C_i`` (for this query) is empty, and a witness when it is not —
the primitive both algorithms' multi-way searches are built from.
"""

from __future__ import annotations

from repro.cellprobe.table import LazyTable
from repro.cellprobe.words import EMPTY, PointWord
from repro.sketch.approx_balls import ApproxBallEvaluator

__all__ = ["MainLevelTable", "main_table_logical_cells"]


def main_table_logical_cells(accurate_rows: int) -> int:
    """Cells per level table: ``2^{accurate_rows}`` (one per sketch value)."""
    return 1 << int(accurate_rows)


class MainLevelTable:
    """Lazy simulation of one level table ``T_i``."""

    def __init__(self, evaluator: ApproxBallEvaluator, level: int):
        self.evaluator = evaluator
        self.level = int(level)
        db = evaluator.sketches.database
        self.table = LazyTable(
            name=f"T{self.level}",
            logical_cells=main_table_logical_cells(evaluator.sketches.family.accurate_rows),
            word_size_bits=1 + db.d,
            content_fn=self._content,
            batch_content_fn=self._batch_contents,
        )

    def _content(self, address: tuple) -> object:
        witness = self.evaluator.c_witness(self.level, address)
        if witness is None:
            return EMPTY
        db = self.evaluator.sketches.database
        return PointWord.from_packed(witness, db.row(witness), db.d)

    def _batch_contents(self, addresses: list) -> list:
        witnesses = self.evaluator.c_witnesses(self.level, addresses)
        db = self.evaluator.sketches.database
        return [
            EMPTY if w is None else PointWord.from_packed(w, db.row(w), db.d)
            for w in witnesses
        ]
