"""Table structures: 1-probe membership (degenerate cases), the level
tables ``T_i`` of Theorem 9, and the auxiliary tables ``T̃_{i,j}`` of
Theorem 10."""

from repro.structures.aux_table import AuxCountTable
from repro.structures.main_table import MainLevelTable, main_table_logical_cells
from repro.structures.perfect_hash import MembershipStructure

__all__ = [
    "AuxCountTable",
    "MainLevelTable",
    "MembershipStructure",
    "main_table_logical_cells",
]
