"""The per-level sketch family of Definition 7.

One :class:`SketchFamily` instance holds, for every level
``i = 0..L = ⌈log_α d⌉``:

* the **accurate** sketch ``M_i`` — ``accurate_rows`` output bits,
  Bernoulli(``1/(4αⁱ)``) mask entries; used by the main tables ``T_i``;
* optionally the **coarse** sketch ``N_i`` — ``coarse_rows`` output bits
  (the paper's ``(c₂/s) log n``), same entry probability; used by the
  auxiliary tables of Algorithm 2.

All matrices derive from one :class:`~repro.utils.rng.RngTree` so the table
structure and the cell-probing algorithm (public-coin model) see identical
randomness without sharing mutable state.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.delta import bernoulli_rate
from repro.sketch.parity import ParitySketch
from repro.utils.rng import RngTree

__all__ = ["SketchFamily"]


class SketchFamily:
    """Accurate (and optionally coarse) sketches for all levels.

    Parameters
    ----------
    d : dimension of the Hamming cube
    alpha : level base (``√γ``)
    levels : top level ``L``; sketches exist for ``i = 0..L`` inclusive
    accurate_rows : output bits of each ``M_i`` (the paper's ``c₁ log n``)
    coarse_rows : output bits of each ``N_i`` (``(c₂/s) log n``), or None
        when the scheme does not use coarse sketches (Algorithm 1, λ-ANNS)
    rng_tree : randomness root shared with the table structure
    """

    def __init__(
        self,
        d: int,
        alpha: float,
        levels: int,
        accurate_rows: int,
        coarse_rows: Optional[int] = None,
        rng_tree: Optional[RngTree] = None,
    ):
        if levels < 0:
            raise ValueError(f"levels must be >= 0, got {levels}")
        if accurate_rows < 1:
            raise ValueError(f"accurate_rows must be >= 1, got {accurate_rows}")
        if coarse_rows is not None and coarse_rows < 1:
            raise ValueError(f"coarse_rows must be >= 1, got {coarse_rows}")
        self.d = int(d)
        self.alpha = float(alpha)
        self.levels = int(levels)
        self.accurate_rows = int(accurate_rows)
        self.coarse_rows = int(coarse_rows) if coarse_rows is not None else None
        self._rng = rng_tree if rng_tree is not None else RngTree()
        self._accurate: dict[int, ParitySketch] = {}
        self._coarse: dict[int, ParitySketch] = {}

    def _check_level(self, i: int) -> int:
        i = int(i)
        if not (0 <= i <= self.levels):
            raise ValueError(f"level {i} outside [0, {self.levels}]")
        return i

    def accurate(self, i: int) -> ParitySketch:
        """The accurate sketch ``M_i`` (lazily constructed, cached)."""
        i = self._check_level(i)
        sk = self._accurate.get(i)
        if sk is None:
            sk = ParitySketch(
                rows=self.accurate_rows,
                d=self.d,
                p=bernoulli_rate(self.alpha, i),
                rng=self._rng.generator("accurate", i),
            )
            self._accurate[i] = sk
        return sk

    def coarse(self, i: int) -> ParitySketch:
        """The coarse sketch ``N_i`` (requires ``coarse_rows``)."""
        if self.coarse_rows is None:
            raise RuntimeError("this family was built without coarse sketches")
        i = self._check_level(i)
        sk = self._coarse.get(i)
        if sk is None:
            sk = ParitySketch(
                rows=self.coarse_rows,
                d=self.d,
                p=bernoulli_rate(self.alpha, i),
                rng=self._rng.generator("coarse", i),
            )
            self._coarse[i] = sk
        return sk

    # -- persistence ---------------------------------------------------------
    def export_arrays(self) -> dict[str, np.ndarray]:
        """Every level's packed sketch masks, keyed ``accurate/i`` and
        ``coarse/i`` — the family's complete random state.

        Materializes all levels (lazily built ones included) so the export
        is self-contained; :meth:`restore_arrays` checks a payload against
        the masks a family rebuilds from its seed.
        """
        out: dict[str, np.ndarray] = {}
        for i in range(self.levels + 1):
            out[f"accurate/{i}"] = self.accurate(i).mask
            if self.coarse_rows is not None:
                out[f"coarse/{i}"] = self.coarse(i).mask
        return out

    def restore_arrays(self, arrays: dict) -> None:
        """Verify exported masks against this family's own sketches.

        The masks are the family's randomness, and the family rebuilds
        them bit-for-bit from its RNG tree — so restoring is a
        *verification*: a payload that disagrees belongs to different
        public coins (corrupt snapshot, wrong manifest, drifted RNG
        stream) and must fail loudly rather than silently coexist with
        levels rebuilt from the tree.  Keys for levels this family does
        not have raise for the same reason.
        """
        for key, mask in arrays.items():
            kind, _, level = key.partition("/")
            i = self._check_level(int(level))
            if kind == "accurate":
                current = self.accurate(i)
            elif kind == "coarse":
                if self.coarse_rows is None:
                    raise ValueError("coarse mask for a family without coarse sketches")
                current = self.coarse(i)
            else:
                raise ValueError(f"unknown sketch-family array key {key!r}")
            if not np.array_equal(current.mask, np.asarray(mask, dtype=np.uint64)):
                raise ValueError(
                    f"snapshot sketch mask {key!r} disagrees with the mask "
                    "rebuilt from the manifest seed"
                )

    def adopt_arrays(self, arrays: dict) -> None:
        """Install stored masks as this family's sketches, trusting the
        payload instead of rebuilding it from the RNG tree.

        The out-of-core counterpart of :meth:`restore_arrays`: the stored
        mask is the randomness the index actually probed with, and
        regenerating every level to verify it would read each (possibly
        memory-mapped) mask in full and burn the RNG work the zero-copy
        load exists to skip.  Shape and dtype are still checked per level;
        content is adopted as-is, so answers follow the snapshot's coins
        bit for bit.
        """
        for key, mask in arrays.items():
            kind, _, level = key.partition("/")
            i = self._check_level(int(level))
            p = bernoulli_rate(self.alpha, i)
            if kind == "accurate":
                self._accurate[i] = ParitySketch.from_mask(
                    self.accurate_rows, self.d, p, mask
                )
            elif kind == "coarse":
                if self.coarse_rows is None:
                    raise ValueError("coarse mask for a family without coarse sketches")
                self._coarse[i] = ParitySketch.from_mask(
                    self.coarse_rows, self.d, p, mask
                )
            else:
                raise ValueError(f"unknown sketch-family array key {key!r}")

    # -- query-side helpers --------------------------------------------------
    def accurate_address(self, i: int, x: np.ndarray) -> tuple:
        """``M_i x`` as a hashable table address (tuple of packed words)."""
        return tuple(self.accurate(i).apply(x).tolist())

    def coarse_address(self, i: int, x: np.ndarray) -> tuple:
        """``N_i x`` as a hashable address component."""
        return tuple(self.coarse(i).apply(x).tolist())

    def accurate_addresses(self, i: int, points: np.ndarray) -> list[tuple]:
        """``M_i x`` for every row of a packed batch, as address tuples.

        One vectorized :meth:`~repro.sketch.parity.ParitySketch.apply_many`
        call; row ``q`` equals ``accurate_address(i, points[q])`` exactly.
        """
        return [tuple(row) for row in self.accurate(i).apply_many(points).tolist()]

    def coarse_addresses(self, i: int, points: np.ndarray) -> list[tuple]:
        """``N_i x`` for every row of a packed batch, as address tuples."""
        return [tuple(row) for row in self.coarse(i).apply_many(points).tolist()]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SketchFamily(d={self.d}, alpha={self.alpha:.4g}, levels={self.levels}, "
            f"accurate_rows={self.accurate_rows}, coarse_rows={self.coarse_rows})"
        )
