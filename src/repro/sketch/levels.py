"""Cached database sketches per level.

Evaluating a table cell at level ``i`` requires the distances between the
cell's address (a sketch value) and the sketches of *all* database points
under ``M_i`` (or ``N_i``).  Those database sketches depend only on the
database and the public randomness — they are preprocessing, computed once
per level on first use and cached here.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.hamming.distance import cross_distances, hamming_distance_many
from repro.hamming.points import PackedPoints
from repro.sketch.family import SketchFamily

__all__ = ["LevelSketches"]


class LevelSketches:
    """Lazily computed per-level sketches of a fixed database.

    Parameters
    ----------
    database : the packed database ``B``
    family : the sketch family shared with the query algorithm
    """

    def __init__(self, database: PackedPoints, family: SketchFamily):
        self.database = database
        self.family = family
        self._accurate_db: Dict[int, np.ndarray] = {}
        self._coarse_db: Dict[int, np.ndarray] = {}

    # -- database sketches -----------------------------------------------
    def accurate_db(self, i: int) -> np.ndarray:
        """Packed ``(n, OW)`` sketches of all database points under ``M_i``."""
        sk = self._accurate_db.get(i)
        if sk is None:
            sk = self.family.accurate(i).apply_many(self.database.words)
            self._accurate_db[i] = sk
        return sk

    def coarse_db(self, i: int) -> np.ndarray:
        """Packed ``(n, OW)`` sketches of all database points under ``N_i``."""
        sk = self._coarse_db.get(i)
        if sk is None:
            sk = self.family.coarse(i).apply_many(self.database.words)
            self._coarse_db[i] = sk
        return sk

    # -- persistence --------------------------------------------------------
    def export_arrays(self) -> Dict[str, np.ndarray]:
        """The *materialized* per-level database sketches, keyed
        ``accurate_db/i`` / ``coarse_db/i``.

        Unlike the sketch masks these are pure derived caches, so only the
        levels computed so far are exported — restoring them transfers the
        warm preprocessing state without forcing cold levels."""
        out: Dict[str, np.ndarray] = {}
        for i, arr in self._accurate_db.items():
            out[f"accurate_db/{i}"] = arr
        for i, arr in self._coarse_db.items():
            out[f"coarse_db/{i}"] = arr
        return out

    def restore_arrays(self, arrays: Dict[str, np.ndarray]) -> None:
        """Prime the per-level database-sketch caches from an export.

        Installing the payload is what transfers warm preprocessing (the
        whole point — recomputing it here would defeat parallel shard
        builds), so each level is admitted after its shape is validated
        and a deterministic spot-check: a few rows are re-sketched through
        the (already seed-verified) family and compared.  That catches
        mismatched or corrupted cache payloads without paying the full
        recompute.
        """
        n = len(self.database)
        for key, arr in arrays.items():
            kind, _, level = key.partition("/")
            cache = {"accurate_db": self._accurate_db, "coarse_db": self._coarse_db}.get(kind)
            if cache is None:
                raise ValueError(f"unknown level-sketch array key {key!r}")
            i = int(level)
            sketch = (
                self.family.accurate(i) if kind == "accurate_db" else self.family.coarse(i)
            )
            payload = np.ascontiguousarray(np.asarray(arr, dtype=np.uint64))
            if payload.shape != (n, sketch.out_words):
                raise ValueError(
                    f"snapshot database sketches {key!r} have shape "
                    f"{payload.shape}, expected {(n, sketch.out_words)}"
                )
            probe_rows = sorted({0, n // 2, n - 1})
            expected = sketch.apply_many(self.database.words[probe_rows])
            if not np.array_equal(payload[probe_rows], expected):
                raise ValueError(
                    f"snapshot database sketches {key!r} disagree with the "
                    "sketches recomputed from the manifest seed"
                )
            cache[i] = payload

    def adopt_arrays(self, arrays: Dict[str, np.ndarray]) -> None:
        """Install the per-level database-sketch caches trusting the payload.

        The out-of-core counterpart of :meth:`restore_arrays`: the
        spot-check would sketch a few database rows through the family
        masks, which reads every (possibly memory-mapped) mask in full —
        exactly the page-in the zero-copy load avoids.  Shapes and dtypes
        are still validated against the (adopted) family; contents are
        admitted as-is and page in lazily at the levels a query probes.
        """
        n = len(self.database)
        for key, arr in arrays.items():
            kind, _, level = key.partition("/")
            cache = {"accurate_db": self._accurate_db, "coarse_db": self._coarse_db}.get(kind)
            if cache is None:
                raise ValueError(f"unknown level-sketch array key {key!r}")
            i = int(level)
            sketch = (
                self.family.accurate(i) if kind == "accurate_db" else self.family.coarse(i)
            )
            payload = np.asarray(arr)
            if payload.dtype != np.uint64 or payload.shape != (n, sketch.out_words):
                raise ValueError(
                    f"snapshot database sketches {key!r} have dtype "
                    f"{payload.dtype} shape {payload.shape}, expected uint64 "
                    f"{(n, sketch.out_words)}"
                )
            cache[i] = payload

    def materialize_all(self) -> None:
        """Compute every level's database sketches now (build-time warm-up;
        this is the real preprocessing cost the lazy path defers)."""
        for i in range(self.family.levels + 1):
            self.accurate_db(i)
            if self.family.coarse_rows is not None:
                self.coarse_db(i)

    # -- address-vs-database distances -------------------------------------
    def accurate_distances(self, i: int, address: tuple) -> np.ndarray:
        """Hamming distances between an accurate address and all DB sketches."""
        addr = np.asarray(address, dtype=np.uint64)
        return hamming_distance_many(addr, self.accurate_db(i))

    def coarse_distances(self, i: int, address: tuple) -> np.ndarray:
        """Hamming distances between a coarse address and all DB sketches."""
        addr = np.asarray(address, dtype=np.uint64)
        return hamming_distance_many(addr, self.coarse_db(i))

    def accurate_cross_distances(self, i: int, addresses) -> np.ndarray:
        """``(B, n)`` distances between many accurate addresses and all DB
        sketches — one broadcast kernel call for a whole batch of queries."""
        addr = np.asarray(list(addresses), dtype=np.uint64)
        return cross_distances(addr, self.accurate_db(i))

    def coarse_cross_distances(self, i: int, addresses) -> np.ndarray:
        """``(B, n)`` distances between many coarse addresses and all DB sketches."""
        addr = np.asarray(list(addresses), dtype=np.uint64)
        return cross_distances(addr, self.coarse_db(i))

    def materialized_levels(self) -> tuple[int, int]:
        """(accurate, coarse) level counts computed so far (statistics)."""
        return len(self._accurate_db), len(self._coarse_db)
