"""Cached database sketches per level.

Evaluating a table cell at level ``i`` requires the distances between the
cell's address (a sketch value) and the sketches of *all* database points
under ``M_i`` (or ``N_i``).  Those database sketches depend only on the
database and the public randomness — they are preprocessing, computed once
per level on first use and cached here.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.hamming.distance import cross_distances, hamming_distance_many
from repro.hamming.points import PackedPoints
from repro.sketch.family import SketchFamily

__all__ = ["LevelSketches"]


class LevelSketches:
    """Lazily computed per-level sketches of a fixed database.

    Parameters
    ----------
    database : the packed database ``B``
    family : the sketch family shared with the query algorithm
    """

    def __init__(self, database: PackedPoints, family: SketchFamily):
        self.database = database
        self.family = family
        self._accurate_db: Dict[int, np.ndarray] = {}
        self._coarse_db: Dict[int, np.ndarray] = {}

    # -- database sketches -----------------------------------------------
    def accurate_db(self, i: int) -> np.ndarray:
        """Packed ``(n, OW)`` sketches of all database points under ``M_i``."""
        sk = self._accurate_db.get(i)
        if sk is None:
            sk = self.family.accurate(i).apply_many(self.database.words)
            self._accurate_db[i] = sk
        return sk

    def coarse_db(self, i: int) -> np.ndarray:
        """Packed ``(n, OW)`` sketches of all database points under ``N_i``."""
        sk = self._coarse_db.get(i)
        if sk is None:
            sk = self.family.coarse(i).apply_many(self.database.words)
            self._coarse_db[i] = sk
        return sk

    # -- address-vs-database distances -------------------------------------
    def accurate_distances(self, i: int, address: tuple) -> np.ndarray:
        """Hamming distances between an accurate address and all DB sketches."""
        addr = np.asarray(address, dtype=np.uint64)
        return hamming_distance_many(addr, self.accurate_db(i))

    def coarse_distances(self, i: int, address: tuple) -> np.ndarray:
        """Hamming distances between a coarse address and all DB sketches."""
        addr = np.asarray(address, dtype=np.uint64)
        return hamming_distance_many(addr, self.coarse_db(i))

    def accurate_cross_distances(self, i: int, addresses) -> np.ndarray:
        """``(B, n)`` distances between many accurate addresses and all DB
        sketches — one broadcast kernel call for a whole batch of queries."""
        addr = np.asarray(list(addresses), dtype=np.uint64)
        return cross_distances(addr, self.accurate_db(i))

    def coarse_cross_distances(self, i: int, addresses) -> np.ndarray:
        """``(B, n)`` distances between many coarse addresses and all DB sketches."""
        addr = np.asarray(list(addresses), dtype=np.uint64)
        return cross_distances(addr, self.coarse_db(i))

    def materialized_levels(self) -> tuple[int, int]:
        """(accurate, coarse) level counts computed so far (statistics)."""
        return len(self._accurate_db), len(self._coarse_db)
