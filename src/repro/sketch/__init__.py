"""Dimension-reduction substrate: the KOR/Chakrabarti–Regev style GF(2)
parity sketches behind Definition 7, the per-level sketch family (accurate
``M_i`` and coarse ``N_j`` matrices), cached database sketches, and the
``C_i`` / ``D_{i,j}`` approximate-ball evaluations of Lemma 8.
"""

from repro.sketch.approx_balls import ApproxBallEvaluator, coarse_threshold_count, accurate_threshold_count
from repro.sketch.family import SketchFamily
from repro.sketch.levels import LevelSketches
from repro.sketch.parity import ParitySketch

__all__ = [
    "ApproxBallEvaluator",
    "LevelSketches",
    "ParitySketch",
    "SketchFamily",
    "accurate_threshold_count",
    "coarse_threshold_count",
]
