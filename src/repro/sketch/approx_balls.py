"""Approximate-ball evaluation: the sets ``C_i`` and ``D_{i,j}`` of
Definition 7, as computed by the table structure.

Given a level-``i`` *address* (a sketch value ``j = M_i x``), the table can
reconstruct

    C_i(j)      = { z ∈ B : dist(j, M_i z) ≤ θ_i · accurate_rows },
    D_{i,j'}(j, w) = { z ∈ C_i(j) : dist(w, N_{j'} z) ≤ θ_{j'} · coarse_rows },

where ``θ`` is the midpoint threshold of :mod:`repro.core.delta` and ``w``
is a coarse address ``N_{j'} x``.  Lemma 8 (reproduced empirically in
experiment E4) states that with probability ≥ 3/4 simultaneously for all
levels: ``B_i ⊆ C_i ⊆ B_{i+1}``, and the coarse sets miss/admit at most an
``n^{-1/s}`` fraction of the relevant points.

Everything here is vectorized over the database; results are boolean masks.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.delta import midpoint_threshold
from repro.sketch.levels import LevelSketches

__all__ = [
    "ApproxBallEvaluator",
    "accurate_threshold_count",
    "coarse_threshold_count",
]


def accurate_threshold_count(alpha: float, i: int, rows: int) -> int:
    """Integer distance threshold for level-``i`` accurate membership."""
    return int(math.floor(midpoint_threshold(alpha, i) * rows))


def coarse_threshold_count(alpha: float, j: int, rows: int) -> int:
    """Integer distance threshold for level-``j`` coarse membership."""
    return int(math.floor(midpoint_threshold(alpha, j) * rows))


class ApproxBallEvaluator:
    """Evaluates ``C_i`` and ``D_{i,j}`` membership masks for a database.

    This object lives on the *table* side: its inputs are addresses (sketch
    values), never raw query points, so the lazy tables built on top of it
    compute exactly what eager preprocessing would store.
    """

    def __init__(self, sketches: LevelSketches):
        self.sketches = sketches
        self.alpha = sketches.family.alpha
        self._accurate_thresholds: dict[int, int] = {}
        self._coarse_thresholds: dict[int, int] = {}

    # -- thresholds -----------------------------------------------------------
    def accurate_threshold(self, i: int) -> int:
        t = self._accurate_thresholds.get(i)
        if t is None:
            t = accurate_threshold_count(self.alpha, i, self.sketches.family.accurate_rows)
            self._accurate_thresholds[i] = t
        return t

    def coarse_threshold(self, j: int) -> int:
        t = self._coarse_thresholds.get(j)
        if t is None:
            rows = self.sketches.family.coarse_rows
            if rows is None:
                raise RuntimeError("family has no coarse sketches")
            t = coarse_threshold_count(self.alpha, j, rows)
            self._coarse_thresholds[j] = t
        return t

    # -- membership masks -----------------------------------------------------
    def c_mask(self, i: int, address: tuple) -> np.ndarray:
        """Boolean mask over the database: membership in ``C_i(address)``."""
        dists = self.sketches.accurate_distances(i, address)
        return dists <= self.accurate_threshold(i)

    def c_witness(self, i: int, address: tuple) -> int | None:
        """Index of one member of ``C_i(address)``, or None when empty.

        Returns the member whose accurate-sketch distance to the address is
        smallest (the paper allows "an arbitrary one"); ties break to the
        lowest index, making cell contents deterministic.
        """
        dists = self.sketches.accurate_distances(i, address)
        thr = self.accurate_threshold(i)
        best = int(dists.argmin())
        if int(dists[best]) <= thr:
            return best
        return None

    def c_witnesses(self, i: int, addresses) -> list:
        """Batched :meth:`c_witness`: one entry per address, same tie-breaks.

        A single broadcast distance kernel replaces the per-address scans;
        ``np.argmin`` keeps the identical lowest-index tie-break, so entry
        ``q`` equals ``c_witness(i, addresses[q])`` exactly.
        """
        addresses = list(addresses)
        if not addresses:
            return []
        dists = self.sketches.accurate_cross_distances(i, addresses)
        thr = self.accurate_threshold(i)
        best = dists.argmin(axis=1)
        best_dists = dists[np.arange(dists.shape[0]), best]
        return [
            int(b) if int(bd) <= thr else None for b, bd in zip(best, best_dists)
        ]

    def c_masks(self, i: int, addresses) -> np.ndarray:
        """Batched :meth:`c_mask`: ``(B, n)`` boolean membership matrix."""
        dists = self.sketches.accurate_cross_distances(i, list(addresses))
        return dists <= self.accurate_threshold(i)

    def coarse_masks(self, j: int, addresses) -> np.ndarray:
        """``(B, n)`` coarse-membership matrix for many coarse addresses."""
        dists = self.sketches.coarse_cross_distances(j, list(addresses))
        return dists <= self.coarse_threshold(j)

    def d_mask(self, i: int, accurate_address: tuple, j: int, coarse_address: tuple) -> np.ndarray:
        """Membership mask of ``D_{i,j}`` given both addresses."""
        base = self.c_mask(i, accurate_address)
        coarse_d = self.sketches.coarse_distances(j, coarse_address)
        return base & (coarse_d <= self.coarse_threshold(j))

    def d_count(self, i: int, accurate_address: tuple, j: int, coarse_address: tuple) -> int:
        """``|D_{i,j}|`` — the quantity the auxiliary tables threshold on."""
        return int(self.d_mask(i, accurate_address, j, coarse_address).sum())

    def c_count(self, i: int, address: tuple) -> int:
        """``|C_i(address)|``."""
        return int(self.c_mask(i, address).sum())
