"""GF(2) parity sketches with sparse Bernoulli masks.

A :class:`ParitySketch` is a random Boolean matrix ``M`` of shape
``(rows, d)`` with i.i.d. Bernoulli(``p``) entries, applied to packed
points over GF(2): output bit ``r`` is the parity of ``popcount(mask_r AND
x)``.  Outputs are packed uint64 rows so downstream distance tests reuse
the same XOR+popcount kernels as raw points.

The map is linear over GF(2) — ``sketch(x ⊕ y) = sketch(x) ⊕ sketch(y)`` —
which property tests exploit, and which implies the collision-rate formula
``μ(p, D)`` of :mod:`repro.core.delta` governs distances of sketches.
"""

from __future__ import annotations

import numpy as np

from repro.hamming.distance import popcount_rows, popcount_sum
from repro.hamming.packing import pack_bits, packed_words, tail_mask

__all__ = ["ParitySketch"]

# Bound on the elements of the (row_block × point_block × words) AND buffer
# used during batched application; ~2^21 uint64 ≈ 16 MB.
_APPLY_BUFFER_ELEMENTS = 1 << 21


class ParitySketch:
    """A sparse random parity map ``{0,1}^d → {0,1}^rows``.

    Parameters
    ----------
    rows : number of output bits
    d : input dimension
    p : per-entry mask probability (Definition 7 uses ``1/(4αⁱ)``)
    rng : generator supplying the mask bits (public randomness)

    Examples
    --------
    >>> import numpy as np
    >>> from repro.hamming.packing import pack_bits
    >>> sk = ParitySketch(rows=8, d=16, p=0.25, rng=np.random.default_rng(0))
    >>> x = pack_bits(np.ones(16, dtype=np.uint8))
    >>> sk.apply(x).shape
    (1,)
    """

    def __init__(self, rows: int, d: int, p: float, rng: np.random.Generator):
        if rows < 1:
            raise ValueError(f"rows must be >= 1, got {rows}")
        if d < 1:
            raise ValueError(f"d must be >= 1, got {d}")
        if not (0.0 <= p <= 0.5):
            raise ValueError(f"p must be in [0, 1/2], got {p}")
        self.rows = int(rows)
        self.d = int(d)
        self.p = float(p)
        mask_bits = (rng.random((rows, d)) < p).astype(np.uint8)
        self._mask = pack_bits(mask_bits, d)  # (rows, W) packed mask rows
        self.in_words = packed_words(d)
        self.out_words = packed_words(rows)
        self._out_tail = np.uint64(tail_mask(rows))

    @classmethod
    def from_mask(
        cls, rows: int, d: int, p: float, mask: np.ndarray
    ) -> "ParitySketch":
        """Adopt an already-packed mask without regenerating it from RNG.

        The trusted counterpart of ``__init__`` for zero-copy snapshot
        loads: the stored mask *is* the public randomness the index was
        built with, so it is installed as-is (shape- and dtype-checked
        against the parameters, content untouched).  ``mask`` may be a
        read-only memmap; it is never copied or written.
        """
        if rows < 1:
            raise ValueError(f"rows must be >= 1, got {rows}")
        if d < 1:
            raise ValueError(f"d must be >= 1, got {d}")
        if not (0.0 <= p <= 0.5):
            raise ValueError(f"p must be in [0, 1/2], got {p}")
        mask = np.asarray(mask)
        if mask.dtype != np.uint64 or mask.shape != (int(rows), packed_words(d)):
            raise ValueError(
                f"mask payload has dtype {mask.dtype} shape {mask.shape}, "
                f"expected uint64 {(int(rows), packed_words(d))}"
            )
        obj = cls.__new__(cls)
        obj.rows = int(rows)
        obj.d = int(d)
        obj.p = float(p)
        obj._mask = mask
        obj.in_words = packed_words(d)
        obj.out_words = packed_words(rows)
        obj._out_tail = np.uint64(tail_mask(rows))
        return obj

    @property
    def mask(self) -> np.ndarray:
        """The packed mask rows (read-only use only)."""
        return self._mask

    def mask_density(self) -> float:
        """Empirical fraction of set mask entries (≈ p)."""
        return float(popcount_rows(self._mask).sum()) / (self.rows * self.d)

    # -- application ---------------------------------------------------------
    def apply(self, x: np.ndarray) -> np.ndarray:
        """Sketch a single packed point; returns packed ``(out_words,)``."""
        return self.apply_many(np.asarray(x, dtype=np.uint64).reshape(1, -1))[0]

    def apply_many(self, points: np.ndarray) -> np.ndarray:
        """Sketch a packed batch ``(m, W)``; returns packed ``(m, OW)``.

        Work is tiled over both rows and points so the intermediate AND
        buffer stays within ``_APPLY_BUFFER_ELEMENTS`` words.
        """
        pts = np.asarray(points, dtype=np.uint64)
        if pts.ndim == 1:
            pts = pts[None, :]
        if pts.shape[1] != self.in_words:
            raise ValueError(
                f"point word count {pts.shape[1]} != expected {self.in_words}"
            )
        m = pts.shape[0]
        bits = np.empty((m, self.rows), dtype=np.uint8)
        row_block = max(1, min(self.rows, _APPLY_BUFFER_ELEMENTS // max(1, self.in_words) // max(1, min(m, 1024))))
        pt_block = max(1, _APPLY_BUFFER_ELEMENTS // max(1, self.in_words) // row_block)
        for r0 in range(0, self.rows, row_block):
            r1 = min(self.rows, r0 + row_block)
            band = self._mask[r0:r1]  # (B, W)
            for q0 in range(0, m, pt_block):
                q1 = min(m, q0 + pt_block)
                # (Q, B, W) AND buffer -> per-(point,row) popcount parity.
                # Summing uint8 popcounts wraps mod 256, which preserves
                # the parity bit while moving 8x less memory than int64.
                anded = pts[q0:q1, None, :] & band[None, :, :]
                counts = popcount_sum(anded, axis=2, dtype=np.uint8)
                bits[q0:q1, r0:r1] = counts & np.uint8(1)
        return pack_bits(bits, self.rows)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ParitySketch(rows={self.rows}, d={self.d}, p={self.p:.4g})"
