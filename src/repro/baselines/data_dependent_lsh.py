"""Data-dependent LSH: the two-round, slightly adaptive baseline.

The paper's introduction contrasts three adaptivity regimes: classic LSH
(non-adaptive, one round), **data-dependent LSH** [Andoni et al. 2014/2015]
— "a little more adaptive: the algorithm retrieves a data-dependent hash
function before making the second round of cell-probes, while the
cell-probes in the second round are independent of each other" — and the
fully adaptive Chakrabarti–Regev scheme.

This module implements a faithful *miniature* of that middle regime:

* **Preprocessing** partitions the database around pivot points (the
  data-dependent decomposition; real data-dependent LSH uses a more
  sophisticated dense-cluster peeling, but the probe structure — which is
  what the paper compares — is the same) and builds an independent
  bit-sampling LSH structure per part, sized to the part's cardinality.
* **Round 1** probes a single *dispatch* cell, addressed by a coarse
  sketch of the query; the cell stores the identity of the part whose
  pivot is closest in sketch space — information that depends on the
  database, i.e. the "data-dependent hash function".
* **Round 2** probes only the chosen part's buckets, non-adaptively.

Because each part holds ``n_p ≪ n`` points, its table count ``n_p^ρ``
is smaller than the global ``n^ρ`` — the data-dependent probe saving the
paper alludes to, measured in experiment E14 on clustered workloads.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.baselines.lsh import LSHParams, _BucketWord, level_sizing, sampled_bits_hash
from repro.cellprobe.accounting import ProbeAccountant
from repro.cellprobe.plan import PlanDraft, QueryPlan, run_query_plan
from repro.cellprobe.scheme import CellProbingScheme, SchemeSizeReport
from repro.cellprobe.session import ProbeRequest
from repro.cellprobe.table import DictTable, LazyTable
from repro.cellprobe.words import IntWord
from repro.core.result import QueryResult
from repro.hamming.distance import hamming_distance, hamming_distance_many
from repro.hamming.points import PackedPoints
from repro.sketch.parity import ParitySketch
from repro.utils.intmath import ceil_log
from repro.utils.rng import RngTree

__all__ = ["DataDependentLSHParams", "DataDependentLSHScheme"]


@dataclass(frozen=True)
class DataDependentLSHParams:
    """Sizing knobs for the data-dependent baseline."""

    gamma: float = 4.0
    parts: int = 8
    dispatch_rows: int = 64
    bucket_capacity: int = 16
    table_boost: float = 1.0

    def __post_init__(self) -> None:
        if self.gamma <= 1:
            raise ValueError(f"gamma must be > 1, got {self.gamma}")
        if self.parts < 2:
            raise ValueError(f"need >= 2 parts, got {self.parts}")
        if self.dispatch_rows < 8:
            raise ValueError("dispatch sketch needs >= 8 rows")


class _PartLSH:
    """Bit-sampling LSH over one part of the database (global indices)."""

    def __init__(
        self,
        part_id: int,
        database: PackedPoints,
        indices: np.ndarray,
        params: DataDependentLSHParams,
        alpha: float,
        levels: int,
        rng_tree: RngTree,
    ):
        self.part_id = part_id
        self.indices = indices
        self.levels = levels
        n_p = max(2, len(indices))
        d = database.d
        lsh_params = LSHParams(
            gamma=params.gamma,
            bucket_capacity=params.bucket_capacity,
            table_boost=params.table_boost,
        )
        self.level_meta: Dict[int, Tuple[int, int, float]] = {}
        self.positions: Dict[Tuple[int, int], np.ndarray] = {}
        self.tables: Dict[Tuple[int, int], DictTable] = {}
        self.total_cells = 0
        for i in range(levels + 1):
            K, L, rho = level_sizing(n_p, d, alpha**i, lsh_params)
            self.level_meta[i] = (K, L, rho)
            for t in range(L):
                rng = rng_tree.generator("positions", part_id, i, t)
                positions = rng.choice(d, size=min(K, d), replace=False)
                self.positions[(i, t)] = positions
                buckets: Dict[int, _BucketWord] = {}
                keys = sampled_bits_hash(database.words[indices], positions)
                for local, key in enumerate(keys):
                    bucket = buckets.setdefault(int(key), _BucketWord())
                    global_idx = int(indices[local])
                    if len(bucket.entries) < params.bucket_capacity:
                        bucket.entries.append((global_idx, database.row(global_idx)))
                    else:
                        bucket.overflowed = True
                table = DictTable(
                    name=f"ddlsh-P{part_id}-L{i}-T{t}",
                    logical_cells=n_p,
                    word_size_bits=params.bucket_capacity * (1 + d),
                    cells=buckets,
                    default=_BucketWord(),
                )
                self.tables[(i, t)] = table
                self.total_cells += n_p

    def requests(self, x: np.ndarray) -> List[ProbeRequest]:
        """All of this part's bucket probes for one query (one round)."""
        out: List[ProbeRequest] = []
        for i in range(self.levels + 1):
            _, L, _ = self.level_meta[i]
            for t in range(L):
                key = int(sampled_bits_hash(np.asarray(x, dtype=np.uint64)[None, :],
                                       self.positions[(i, t)])[0])
                out.append(ProbeRequest(self.tables[(i, t)], key))
        return out


class DataDependentLSHScheme(CellProbingScheme):
    """Two-round data-dependent LSH baseline.

    Parameters
    ----------
    database : the packed database
    params : :class:`DataDependentLSHParams`
    seed : randomness for pivots, dispatch sketch and bucket hashes
    """

    scheme_name = "data-dependent-lsh"
    k = 2

    def __init__(
        self,
        database: PackedPoints,
        params: DataDependentLSHParams = DataDependentLSHParams(),
        seed=None,
    ):
        if len(database) < params.parts:
            raise ValueError(
                f"database of {len(database)} points cannot fill {params.parts} parts"
            )
        self.database = database
        self.params = params
        self.alpha = math.sqrt(min(4.0, params.gamma))
        self.levels = ceil_log(float(database.d), self.alpha)
        tree = RngTree(seed)

        # -- data-dependent decomposition: pivots + nearest-pivot parts ----
        rng = tree.generator("pivots")
        n, d = len(database), database.d
        pivot_ids = rng.choice(n, size=params.parts, replace=False)
        self.pivots = database.take(pivot_ids)
        assignment = np.empty(n, dtype=np.int64)
        for i in range(n):
            assignment[i] = int(
                hamming_distance_many(database.row(i), self.pivots.words).argmin()
            )
        self.parts: List[_PartLSH] = []
        for p in range(params.parts):
            indices = np.nonzero(assignment == p)[0]
            if indices.size == 0:
                indices = np.array([int(pivot_ids[p])], dtype=np.int64)
            self.parts.append(
                _PartLSH(p, database, indices, params, self.alpha, self.levels,
                         tree.child("part", p))
            )

        # -- dispatch structure: coarse sketch → nearest pivot id ----------
        # Mask density 2/d keeps the per-bit collision rate unsaturated
        # out to distances ~d/2, so sketch-space argmin over pivots tracks
        # true-space argmin (pivot separations are Θ(d)).
        self._dispatch_sketch = ParitySketch(
            rows=params.dispatch_rows, d=d, p=min(0.5, 2.0 / d),
            rng=tree.generator("dispatch"),
        )
        self._pivot_sketches = self._dispatch_sketch.apply_many(self.pivots.words)
        self.dispatch_table = LazyTable(
            name="ddlsh-dispatch",
            logical_cells=1 << params.dispatch_rows,
            word_size_bits=1 + max(1, params.parts.bit_length()),
            content_fn=self._dispatch_content,
        )

    def _dispatch_content(self, address: tuple) -> IntWord:
        """The data-dependent hash: part of the sketch-nearest pivot."""
        addr = np.asarray(address, dtype=np.uint64)
        dists = hamming_distance_many(addr, self._pivot_sketches)
        return IntWord(int(dists.argmin()), self.params.parts)

    # -- persistence ---------------------------------------------------------
    def export_arrays(self) -> Dict[str, np.ndarray]:
        """Pivots, dispatch-sketch mask, and every part's sampled hash
        positions — the scheme's complete random state."""
        out: Dict[str, np.ndarray] = {
            "pivots": self.pivots.words,
            "dispatch_mask": self._dispatch_sketch.mask,
        }
        for part in self.parts:
            for (i, t), positions in part.positions.items():
                out[f"part{part.part_id}/positions/{i}/{t}"] = positions
        return out

    def restore_arrays(self, arrays: Dict[str, np.ndarray]) -> None:
        """Verify the eagerly rebuilt decomposition against the snapshot
        (construction from the manifest seed already reproduced it)."""
        for key, arr in arrays.items():
            if key == "pivots":
                ours = self.pivots.words
            elif key == "dispatch_mask":
                ours = self._dispatch_sketch.mask
            elif key.startswith("part"):
                scope, _, rest = key.partition("/")
                kind, _, level_table = rest.partition("/")
                i, _, t = level_table.partition("/")
                if kind != "positions":
                    raise ValueError(f"unknown array key {key!r} for {self.scheme_name}")
                part_id = int(scope[len("part"):])
                if not (0 <= part_id < len(self.parts)):
                    raise ValueError(
                        f"payload names part {part_id} but the scheme has "
                        f"{len(self.parts)} parts"
                    )
                ours = self.parts[part_id].positions.get((int(i), int(t)))
            else:
                raise ValueError(f"unknown array key {key!r} for {self.scheme_name}")
            if ours is None or not np.array_equal(ours, arr):
                raise ValueError(
                    f"snapshot array {key!r} disagrees with the scheme "
                    "rebuilt from the manifest seed"
                )

    # -- querying ------------------------------------------------------------
    def make_accountant(self) -> ProbeAccountant:
        return ProbeAccountant(max_rounds=2)

    def query(self, x: np.ndarray) -> QueryResult:
        return run_query_plan(self, x)

    def query_plan(self, x: np.ndarray) -> QueryPlan:
        """Round 1 retrieves the data-dependent hash (the part id); round 2
        probes the chosen part's buckets non-adaptively."""
        address = tuple(int(v) for v in self._dispatch_sketch.apply(x))
        contents = yield [ProbeRequest(self.dispatch_table, address)]
        dispatch = contents[0]
        assert isinstance(dispatch, IntWord)
        part = self.parts[dispatch.value]
        contents = yield part.requests(x)
        best_idx: Optional[int] = None
        best_dist: Optional[int] = None
        for bucket in contents:
            assert isinstance(bucket, _BucketWord)
            for idx, packed in bucket.entries:
                dist = hamming_distance(x, packed)
                if best_dist is None or dist < best_dist:
                    best_idx, best_dist = idx, dist
        meta = {"part": dispatch.value, "part_size": len(part.indices)}
        if best_idx is None:
            return PlanDraft(None, None, {**meta, "failed": "no-candidate"})
        return PlanDraft(
            best_idx, self.database.row(best_idx).copy(),
            {**meta, "distance": best_dist},
        )

    def probes_per_query(self, x: np.ndarray) -> int:
        """Exact probe count for a query: 1 dispatch + the part's buckets."""
        address = tuple(int(v) for v in self._dispatch_sketch.apply(x))
        part = self.parts[self.dispatch_table.read(address).value]
        return 1 + len(part.requests(x))

    def size_report(self) -> SchemeSizeReport:
        part_cells = sum(p.total_cells for p in self.parts)
        return SchemeSizeReport(
            table_cells=self.dispatch_table.logical_cells + part_cells,
            word_bits=self.params.bucket_capacity * (1 + self.database.d),
            table_names=[("dispatch", self.dispatch_table.logical_cells),
                         ("parts", part_cells)],
            notes=(
                f"{self.params.parts} pivot parts; per-part LSH sized to n_p; "
                "2 rounds (data-dependent hash retrieved in round 1)"
            ),
        )
