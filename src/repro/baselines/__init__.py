"""Baselines the paper positions against (Section 1).

* :class:`~repro.baselines.linear_scan.LinearScanScheme` — exact NN by
  reading every database cell; ``n`` probes, 1 round.
* :class:`~repro.baselines.lsh.LSHScheme` — classic bit-sampling
  locality-sensitive hashing (Indyk–Motwani) with ``O~(n^ρ)`` probes per
  radius on tables of size ``O~(n^{1+ρ})``; non-adaptive (1 round) or
  level-adaptive modes.
* :class:`~repro.baselines.data_dependent_lsh.DataDependentLSHScheme` —
  the "little more adaptive" middle regime the introduction describes
  (Andoni et al.): a data-dependent hash retrieved in round 1 confines
  round 2's non-adaptive probes to one part of the database.
* :class:`~repro.baselines.adaptive.FullyAdaptiveScheme` — the fully
  adaptive extreme of Algorithm 1 (τ = 2 binary search over levels,
  1 probe/round, ``O(log log d)`` probes).
"""

from repro.baselines.adaptive import FullyAdaptiveScheme
from repro.baselines.data_dependent_lsh import (
    DataDependentLSHParams,
    DataDependentLSHScheme,
)
from repro.baselines.linear_scan import LinearScanScheme
from repro.baselines.lsh import LSHParams, LSHScheme

__all__ = [
    "DataDependentLSHParams",
    "DataDependentLSHScheme",
    "FullyAdaptiveScheme",
    "LSHParams",
    "LSHScheme",
    "LinearScanScheme",
]
