"""Exact nearest neighbor by linear scan, in cell-probe accounting.

The trivial data structure: one cell per database point (``n`` cells, word
size ``d``), probed entirely in a single non-adaptive round.  This is the
exactness/space anchor of experiment E6: 1 round like LSH and Algorithm 1
(k=1), but ``n`` probes and ratio exactly 1.
"""

from __future__ import annotations

import numpy as np

from repro.cellprobe.accounting import ProbeAccountant
from repro.cellprobe.plan import PlanDraft, QueryPlan, run_query_plan
from repro.cellprobe.scheme import CellProbingScheme, SchemeSizeReport
from repro.cellprobe.session import ProbeRequest
from repro.cellprobe.table import LazyTable
from repro.cellprobe.words import PointWord
from repro.core.result import QueryResult
from repro.hamming.distance import hamming_distance
from repro.hamming.points import PackedPoints

__all__ = ["LinearScanScheme"]


class LinearScanScheme(CellProbingScheme):
    """Reads all ``n`` point cells in one round; returns the exact NN."""

    scheme_name = "linear-scan"
    k = 1

    def __init__(self, database: PackedPoints):
        if len(database) == 0:
            raise ValueError("database must be non-empty")
        self.database = database
        self.table = LazyTable(
            name="points",
            logical_cells=len(database),
            word_size_bits=1 + database.d,
            content_fn=self._content,
        )

    def _content(self, address: int) -> PointWord:
        idx = int(address)
        return PointWord.from_packed(idx, self.database.row(idx), self.database.d)

    def make_accountant(self) -> ProbeAccountant:
        return ProbeAccountant(max_rounds=1, max_probes=len(self.database))

    def query(self, x: np.ndarray) -> QueryResult:
        return run_query_plan(self, x)

    def query_plan(self, x: np.ndarray) -> QueryPlan:
        """One round probing every point cell; the exact NN wins."""
        requests = [ProbeRequest(self.table, i) for i in range(len(self.database))]
        contents = yield requests
        best_idx, best_dist = None, None
        for content in contents:
            assert isinstance(content, PointWord)
            dist = hamming_distance(x, content.packed_array())
            if best_dist is None or dist < best_dist:
                best_idx, best_dist = content.index, dist
        assert best_idx is not None
        return PlanDraft(
            best_idx,
            self.database.row(best_idx).copy(),
            {"exact_distance": best_dist},
        )

    def size_report(self) -> SchemeSizeReport:
        return SchemeSizeReport(
            table_cells=self.table.logical_cells,
            word_bits=self.table.word_size_bits,
            table_names=[("points", self.table.logical_cells)],
            notes="exact baseline; linear space, linear probes",
        )
