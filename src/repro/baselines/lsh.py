"""Bit-sampling locality-sensitive hashing for Hamming space
(Indyk–Motwani), with cell-probe accounting.

The paper's introduction contrasts its polynomial-size tables against LSH's
``O~(d n^ρ)`` probes on ``O~(n^{1+ρ})`` cells.  This module implements the
classic construction so experiment E6 can measure that contrast:

* For a radius ``r``, the bit-sampling family ``h(x) = x_j`` has
  ``p₁ = 1 − r/d`` (collision probability within distance ``r``) and
  ``p₂ = 1 − γr/d`` (beyond ``γr``), giving ``ρ = ln(1/p₁)/ln(1/p₂)``.
* One radius level uses ``L ≈ n^ρ`` hash tables of ``K ≈ log_{1/p₂} n``
  sampled bits each; a query probes its bucket in every table.
* Nearest-neighbor search runs the near-neighbor structure at the
  geometric radii ``αⁱ``; **non-adaptive** mode probes all levels' buckets
  in a single round, **adaptive** mode binary-searches the levels
  (``O(log levels)`` rounds, one level's buckets per round).

Bucket cells store up to ``bucket_capacity`` points (a standard
multi-point word; the word-size note in the size report records the
capacity).  Overflowing buckets drop the excess — the standard LSH failure
mode; larger ``L`` compensates, and the measured recall is what E6 reports.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.cellprobe.accounting import ProbeAccountant
from repro.cellprobe.plan import PlanDraft, QueryPlan, run_query_plan
from repro.cellprobe.scheme import CellProbingScheme, SchemeSizeReport
from repro.cellprobe.session import ProbeRequest
from repro.cellprobe.table import DictTable
from repro.core.result import QueryResult
from repro.hamming.distance import hamming_distance
from repro.hamming.points import PackedPoints
from repro.utils.intmath import ceil_log
from repro.utils.rng import RngTree

__all__ = ["LSHParams", "LSHScheme", "sampled_bits_hash"]


def sampled_bits_hash(words: np.ndarray, positions: np.ndarray) -> np.ndarray:
    """Hash keys for a packed batch under bit sampling.

    Gathers the sampled bit positions of every row (vectorized shifts) and
    folds them into arbitrary-precision integer keys, 64 bits at a time.
    Shared by the classic and data-dependent LSH baselines.
    """
    word_idx = (positions // 64).astype(np.int64)
    bit_idx = (positions % 64).astype(np.uint64)
    bits = (words[:, word_idx] >> bit_idx[None, :]) & np.uint64(1)
    keys = np.zeros(bits.shape[0], dtype=object)
    for start in range(0, bits.shape[1], 64):
        chunk = bits[:, start : start + 64]
        weights = np.uint64(1) << np.arange(chunk.shape[1], dtype=np.uint64)
        folded = (chunk * weights[None, :]).sum(axis=1, dtype=np.uint64)
        keys = keys + (np.array([int(v) for v in folded], dtype=object) << start)
    return keys


@dataclass(frozen=True)
class LSHParams:
    """Sizing knobs for the LSH baseline.

    ``tables_override``/``bits_override`` pin L and K directly (used by the
    ablation bench); otherwise the classic formulas apply with the safety
    multiplier ``table_boost`` on L.
    """

    gamma: float = 4.0
    bucket_capacity: int = 16
    table_boost: float = 1.0
    tables_override: Optional[int] = None
    bits_override: Optional[int] = None

    def __post_init__(self) -> None:
        if self.gamma <= 1:
            raise ValueError(f"gamma must be > 1, got {self.gamma}")
        if self.bucket_capacity < 1:
            raise ValueError("bucket_capacity must be >= 1")


def lsh_rho(d: int, r: float, gamma: float) -> float:
    """The LSH exponent ``ρ = ln(1/p₁)/ln(1/p₂)`` for bit sampling.

    Capped at 1: an exponent above 1 would mean more tables than points,
    at which point a linear scan dominates and the construction is moot
    (this happens only in the degenerate ``γr ≥ d`` regime handled by
    :func:`level_sizing`).
    """
    p1 = max(1e-9, 1.0 - r / d)
    p2 = max(1e-9, 1.0 - min(d - 1, gamma * r) / d)
    if p2 >= 1.0 or p1 >= 1.0:
        return 1.0
    return min(1.0, math.log(1.0 / p1) / math.log(1.0 / p2))


def level_sizing(n: int, d: int, r: float, params: LSHParams) -> Tuple[int, int, float]:
    """``(K, L, ρ)`` for one radius level.

    The degenerate regime ``γr ≥ d`` (the top geometric levels) is
    trivially satisfiable — *every* database point is a ``γr``-near
    neighbor — so a single 1-bit table suffices there.
    """
    if params.gamma * r >= d:
        return 1, 1, 1.0
    rho = lsh_rho(d, r, params.gamma)
    if params.bits_override is not None:
        K = params.bits_override
    else:
        p2 = max(1e-9, 1.0 - min(d - 1, params.gamma * r) / d)
        K = max(1, math.ceil(math.log(n) / math.log(1.0 / p2)))
    if params.tables_override is not None:
        L = params.tables_override
    else:
        L = min(max(1, n), max(1, math.ceil(params.table_boost * (n**rho))))
    return K, L, rho


class _BucketWord:
    """Contents of one bucket cell: up to ``capacity`` (index, packed) pairs."""

    __slots__ = ("entries", "overflowed")

    def __init__(self) -> None:
        self.entries: List[Tuple[int, np.ndarray]] = []
        self.overflowed = False


class LSHScheme(CellProbingScheme):
    """LSH for γ-approximate NN search over geometric radii.

    Parameters
    ----------
    database : the packed database
    params : :class:`LSHParams`
    mode : "nonadaptive" (all levels in one round) or "adaptive"
        (binary search over levels, one level per round)
    seed : randomness for the sampled bit positions
    """

    scheme_name = "lsh"

    def __init__(
        self,
        database: PackedPoints,
        params: LSHParams = LSHParams(),
        mode: str = "nonadaptive",
        seed=None,
    ):
        if mode not in ("nonadaptive", "adaptive"):
            raise ValueError(f"unknown mode {mode!r}")
        if len(database) < 2:
            raise ValueError("database must have >= 2 points")
        self.database = database
        self.params = params
        self.mode = mode
        self.alpha = math.sqrt(min(4.0, params.gamma))
        self.levels = ceil_log(float(database.d), self.alpha)
        self._rng_tree = RngTree(seed)
        n, d = len(database), database.d
        self._level_meta: Dict[int, Tuple[int, int, float]] = {}
        # Per (level, table) sampled bit positions and bucket directory.
        self._positions: Dict[Tuple[int, int], np.ndarray] = {}
        self._tables: Dict[Tuple[int, int], DictTable] = {}
        self._total_cells = 0
        for i in range(self.levels + 1):
            r = self.alpha**i
            K, L, rho = level_sizing(n, d, r, params)
            self._level_meta[i] = (K, L, rho)
            for t in range(L):
                self._build_table(i, t, K)

    # -- construction ------------------------------------------------------
    def _build_table(self, level: int, t: int, K: int) -> None:
        rng = self._rng_tree.generator("positions", level, t)
        d = self.database.d
        positions = rng.choice(d, size=min(K, d), replace=False)
        self._positions[(level, t)] = positions
        keys = self._hash_batch(self.database.words, positions)
        buckets: Dict[int, _BucketWord] = {}
        for idx, key in enumerate(keys):
            bucket = buckets.setdefault(int(key), _BucketWord())
            if len(bucket.entries) < self.params.bucket_capacity:
                bucket.entries.append((idx, self.database.row(idx)))
            else:
                bucket.overflowed = True
        table = DictTable(
            name=f"lsh-L{level}-T{t}",
            logical_cells=len(self.database),  # hashed directory of ~n cells
            word_size_bits=self.params.bucket_capacity * (1 + d),
            cells={k: v for k, v in buckets.items()},
            default=_BucketWord(),
        )
        self._tables[(level, t)] = table
        self._total_cells += table.logical_cells

    @staticmethod
    def _hash_batch(words: np.ndarray, positions: np.ndarray) -> np.ndarray:
        return sampled_bits_hash(words, positions)

    # -- persistence ---------------------------------------------------------
    def export_arrays(self) -> Dict[str, np.ndarray]:
        """The sampled bit positions of every (level, table) hash — the
        scheme's complete random state (buckets are derived from them)."""
        return {
            f"positions/{level}/{t}": positions
            for (level, t), positions in self._positions.items()
        }

    def restore_arrays(self, arrays: Dict[str, np.ndarray]) -> None:
        """Verify the eagerly rebuilt hashes against the snapshot.

        Construction already rebuilt positions and buckets from the
        recorded seed; a mismatch means the payload belongs to different
        randomness (corrupt snapshot, wrong manifest), which must fail
        loudly rather than silently answer from other tables.
        """
        for key, positions in arrays.items():
            scope, _, rest = key.partition("/")
            level, _, t = rest.partition("/")
            if scope != "positions":
                raise ValueError(f"unknown array key {key!r} for {self.scheme_name}")
            ours = self._positions.get((int(level), int(t)))
            if ours is None or not np.array_equal(ours, positions):
                raise ValueError(
                    f"snapshot hash positions for (level={level}, table={t}) "
                    "disagree with the scheme rebuilt from the manifest seed"
                )

    def _hash_query(self, level: int, t: int, x: np.ndarray) -> int:
        key = self._hash_batch(
            np.asarray(x, dtype=np.uint64)[None, :], self._positions[(level, t)]
        )
        return int(key[0])

    # -- querying ------------------------------------------------------------
    def _level_requests(self, level: int, x: np.ndarray) -> List[ProbeRequest]:
        _, L, _ = self._level_meta[level]
        return [
            ProbeRequest(self._tables[(level, t)], self._hash_query(level, t, x))
            for t in range(L)
        ]

    def _scan_contents(
        self, x: np.ndarray, contents: List[object], radius: float
    ) -> Tuple[Optional[int], Optional[int]]:
        """Best candidate within ``γ·radius`` among bucket contents."""
        best_idx, best_dist = None, None
        limit = self.params.gamma * radius
        for bucket in contents:
            assert isinstance(bucket, _BucketWord)
            for idx, packed in bucket.entries:
                dist = hamming_distance(x, packed)
                if dist <= limit and (best_dist is None or dist < best_dist):
                    best_idx, best_dist = idx, dist
        return best_idx, best_dist

    def make_accountant(self) -> ProbeAccountant:
        if self.mode == "nonadaptive":
            return ProbeAccountant(max_rounds=1)
        return ProbeAccountant()

    def query(self, x: np.ndarray) -> QueryResult:
        return run_query_plan(self, x)

    def query_plan(self, x: np.ndarray) -> QueryPlan:
        if self.mode == "nonadaptive":
            return self._plan_nonadaptive(x)
        return self._plan_adaptive(x)

    def _plan_nonadaptive(self, x: np.ndarray) -> QueryPlan:
        """All levels' buckets in one parallel round (k = 1)."""
        requests: List[ProbeRequest] = []
        spans: List[Tuple[int, int, int]] = []  # (level, start, stop)
        for i in range(self.levels + 1):
            reqs = self._level_requests(i, x)
            spans.append((i, len(requests), len(requests) + len(reqs)))
            requests.extend(reqs)
        contents = yield requests
        for i, start, stop in spans:  # smallest succeeding radius wins
            idx, dist = self._scan_contents(x, contents[start:stop], self.alpha**i)
            if idx is not None:
                return PlanDraft(idx, self.database.row(idx).copy(),
                                 {"level": i, "distance": dist})
        return PlanDraft(None, None, {"failed": "no-candidate"})

    def _plan_adaptive(self, x: np.ndarray) -> QueryPlan:
        """Binary search over radius levels; one level's buckets per round."""
        lo, hi = 0, self.levels
        best: Optional[Tuple[int, int, int]] = None  # (level, idx, dist)
        while lo <= hi:
            mid = (lo + hi) // 2
            contents = yield self._level_requests(mid, x)
            idx, dist = self._scan_contents(x, contents, self.alpha**mid)
            if idx is not None:
                best = (mid, idx, dist)
                hi = mid - 1
            else:
                lo = mid + 1
        if best is None:
            return PlanDraft(None, None, {"failed": "no-candidate"})
        level, idx, dist = best
        return PlanDraft(idx, self.database.row(idx).copy(),
                         {"level": level, "distance": dist})

    # -- sizing ----------------------------------------------------------------
    def probes_per_query(self) -> int:
        """Non-adaptive probe count: ``Σ_i L_i`` (exact, data-independent)."""
        return sum(self._level_meta[i][1] for i in range(self.levels + 1))

    def size_report(self) -> SchemeSizeReport:
        names = [
            (f"level{i}", self._level_meta[i][1] * len(self.database))
            for i in range(self.levels + 1)
        ]
        return SchemeSizeReport(
            table_cells=self._total_cells,
            word_bits=self.params.bucket_capacity * (1 + self.database.d),
            table_names=names,
            notes=(
                f"bit-sampling LSH; per-level (K, L, ρ): "
                f"{[self._level_meta[i] for i in range(min(3, self.levels + 1))]}..."
                f"; bucket capacity {self.params.bucket_capacity}"
            ),
        )
