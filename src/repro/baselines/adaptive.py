"""The fully adaptive extreme (Section 1 discussion).

Algorithm 1 with ``τ = 2`` degenerates into binary search over the
``L = ⌈log_α d⌉`` levels: one probe per round, ``O(log L) = O(log log d)``
probes and rounds.  The paper notes this is *not* optimal for fully
adaptive algorithms (Chakrabarti–Regev achieve
``Θ(log log d / log log log d)``), which is exactly what Algorithm 2's
1-probe-per-round extreme improves on; experiment E2 plots both.
"""

from __future__ import annotations

from repro.core.algorithm1 import SimpleKRoundScheme
from repro.core.params import Algorithm1Params, BaseParameters, worst_case_shrinking_rounds
from repro.hamming.points import PackedPoints

__all__ = ["FullyAdaptiveScheme"]


class FullyAdaptiveScheme(SimpleKRoundScheme):
    """Binary search over levels: τ=2, one probe per shrinking round."""

    scheme_name = "fully-adaptive"

    def __init__(self, database: PackedPoints, base: BaseParameters, seed=None):
        rounds = worst_case_shrinking_rounds(base.levels, 2) + 1
        params = Algorithm1Params(base, k=rounds, tau_override=2)
        super().__init__(database, params, seed=seed)
        self.k = rounds
