"""Per-shard residency: lazy attach, LRU eviction, write promotion.

:class:`ResidencyManager` owns the set of :class:`ShardHandle` objects a
:class:`~repro.service.sharded.ShardedANNIndex` serves from.  A handle is
either **attached** (its :class:`~repro.core.index.ANNIndex` is live in
this process) or **cold** (only the snapshot-manifest metadata is held —
row counts, id space, payload bytes — so routing, offsets, and ``len()``
work without touching a payload file).

The contract, in order of precedence:

* **Attach on demand.**  ``attach(i)`` loads a cold shard through the
  injected loader (a snapshot load, heap or mmap) and counts a *miss*;
  an already-attached shard counts a *hit*.  Every attach stamps the
  handle with a logical clock — the LRU order is by last use, not wall
  time.
* **Budget.**  When ``memory_budget`` is set and the resident total
  exceeds it after an attach, evictable shards are detached in LRU
  order until the total fits (or nothing evictable remains — the shard
  just attached is never evicted to make room for itself, so a budget
  smaller than one shard degrades to "one shard at a time" instead of
  thrashing or failing).  A shard's resident size is its payload bytes
  from the manifest — the bytes it occupies fully paged-in — identical
  for heap and mmap loads, so budget arithmetic does not depend on which
  pages the OS happens to have faulted in.
* **Never evict state that exists nowhere else.**  Evictable means: the
  handle has a snapshot path to reload from, is not pinned, and is not
  *dirty*.  Dirty — attached for write at least once — marks in-memory
  state that has diverged from the snapshot (memtable inserts,
  tombstones, compactions); evicting it would lose writes.
* **Writes promote mmap to heap.**  ``attach(i, for_write=True)`` on a
  clean mmap-loaded shard first reloads it heap-resident (copy-on-write
  at shard granularity), then marks it dirty.  Promotion is sound
  exactly while the shard is clean: its in-memory state equals the
  snapshot, so a fresh heap load answers bitwise-identically.  After
  the first write the shard is dirty and stays attached, so the
  question never arises again.  (A clean *heap* shard skips the reload
  and is just marked dirty.)

The loader is injected (``loader(handle) -> ANNIndex``), so the eviction
policy is unit-testable with stub indexes — see
``tests/storage/test_residency.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence

__all__ = [
    "ResidencyError",
    "ResidencyManager",
    "ResidencyStats",
    "ShardHandle",
    "ShardMeta",
]


class ResidencyError(RuntimeError):
    """A shard is in a residency state the requested operation cannot
    serve (e.g. detached with no snapshot path to reload from).
    Subclasses :class:`RuntimeError` so untyped callers keep working."""


@dataclass(frozen=True)
class ShardMeta:
    """Cold facts about a shard, read from its snapshot manifest.

    Valid whenever the shard is detached: a shard can only diverge from
    its snapshot by being written, writes mark it dirty, and dirty shards
    are never evicted — so a cold shard always matches its manifest.
    """

    n: int
    d: int
    live_n: int
    generation: int
    id_space: int
    scheme_name: str
    nbytes: int


@dataclass
class ShardHandle:
    """One shard's residency state: an attached index or a cold snapshot."""

    shard_id: int
    meta: ShardMeta
    path: Optional[Path] = None
    load_mode: str = "heap"
    index: Optional[object] = None  # the attached ANNIndex, if any
    pinned: bool = False
    dirty: bool = False
    last_used: int = 0
    heap_promoted: bool = False

    @property
    def attached(self) -> bool:
        return self.index is not None

    @property
    def evictable(self) -> bool:
        """Whether detaching would lose nothing: reloadable, unpinned, clean."""
        return self.attached and self.path is not None and not self.pinned and not self.dirty

    # -- cold-safe accessors (prefer live state, fall back to manifest) ----
    @property
    def live_count(self) -> int:
        return self.index.live_count if self.index is not None else self.meta.live_n

    @property
    def id_space(self) -> int:
        return self.index.id_space if self.index is not None else self.meta.id_space

    @property
    def generation(self) -> int:
        return self.index.generation if self.index is not None else self.meta.generation

    @property
    def scheme_name(self) -> str:
        if self.index is not None:
            return self.index.scheme.scheme_name
        return self.meta.scheme_name

    @property
    def nbytes(self) -> int:
        return self.meta.nbytes


@dataclass(frozen=True)
class ResidencyStats:
    """A point-in-time snapshot of the manager's counters and occupancy."""

    shards: int
    attached: int
    resident_bytes: int
    memory_budget: Optional[int]
    hits: int
    misses: int
    evictions: int
    promotions: int
    per_shard: List[dict] = field(default_factory=list)

    def to_dict(self) -> dict:
        """JSON-able form (the serving layer's ``stats``/``info`` verbs)."""
        return {
            "shards": self.shards,
            "attached": self.attached,
            "resident_bytes": self.resident_bytes,
            "memory_budget": self.memory_budget,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "promotions": self.promotions,
            "per_shard": list(self.per_shard),
        }


class ResidencyManager:
    """LRU residency over a fixed set of shard handles."""

    def __init__(
        self,
        handles: Sequence[ShardHandle],
        loader: Callable[[ShardHandle], object],
        memory_budget: Optional[int] = None,
        heap_loader: Optional[Callable[[ShardHandle], object]] = None,
    ):
        if memory_budget is not None and memory_budget <= 0:
            raise ValueError(f"memory_budget must be positive, got {memory_budget}")
        self._handles = list(handles)
        self._loader = loader
        # Promotion loads the same snapshot heap-resident; by default the
        # main loader is reused with the handle's load_mode switched.
        self._heap_loader = heap_loader
        self.memory_budget = memory_budget
        self._clock = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.promotions = 0

    # -- core protocol -----------------------------------------------------
    def __len__(self) -> int:
        return len(self._handles)

    @property
    def handles(self) -> List[ShardHandle]:
        return self._handles

    def handle(self, shard_id: int) -> ShardHandle:
        return self._handles[shard_id]

    def attach(self, shard_id: int, for_write: bool = False):
        """The shard's live index, loading (and evicting) as needed."""
        handle = self._handles[shard_id]
        if handle.index is None:
            if handle.path is None:
                raise ResidencyError(
                    f"shard {shard_id} is detached and has no snapshot to "
                    "reload from"
                )
            self.misses += 1
            handle.index = self._loader(handle)
        else:
            self.hits += 1
        if for_write:
            self._mark_written(handle)
        self._touch(handle)
        self._enforce_budget(keep=shard_id)
        return handle.index

    def _mark_written(self, handle: ShardHandle) -> None:
        """Dirty the handle, promoting a clean mmap shard to heap first.

        Promotion must precede the write that is about to happen: a heap
        reload is bitwise-equivalent only while in-memory state still
        equals the snapshot.
        """
        if not handle.dirty and handle.load_mode == "mmap" and handle.path is not None:
            loader = self._heap_loader or self._loader
            original_mode = handle.load_mode
            handle.load_mode = "heap"
            try:
                handle.index = loader(handle)
            finally:
                if self._heap_loader is not None:
                    handle.load_mode = original_mode
            handle.heap_promoted = True
            self.promotions += 1
        handle.dirty = True

    def _touch(self, handle: ShardHandle) -> None:
        self._clock += 1
        handle.last_used = self._clock

    def evict(self, shard_id: int) -> bool:
        """Detach one shard; False when it is not evictable."""
        handle = self._handles[shard_id]
        if not handle.evictable:
            return False
        handle.index = None
        self.evictions += 1
        return True

    def pin(self, shard_id: int) -> None:
        """Exempt a shard from eviction (it still attaches lazily)."""
        self._handles[shard_id].pinned = True

    def unpin(self, shard_id: int) -> None:
        self._handles[shard_id].pinned = False

    # -- budget ------------------------------------------------------------
    @property
    def resident_bytes(self) -> int:
        return sum(h.nbytes for h in self._handles if h.attached)

    def _enforce_budget(self, keep: Optional[int] = None) -> None:
        if self.memory_budget is None:
            return
        while self.resident_bytes > self.memory_budget:
            victims = [
                h
                for h in self._handles
                if h.evictable and h.shard_id != keep
            ]
            if not victims:
                return  # nothing left to give back; stay best-effort
            victim = min(victims, key=lambda h: h.last_used)
            self.evict(victim.shard_id)

    # -- introspection -----------------------------------------------------
    def stats(self) -> ResidencyStats:
        per_shard = [
            {
                "shard": h.shard_id,
                "attached": h.attached,
                "load_mode": h.load_mode,
                "nbytes": h.nbytes,
                "pinned": h.pinned,
                "dirty": h.dirty,
                "last_used": h.last_used,
            }
            for h in self._handles
        ]
        return ResidencyStats(
            shards=len(self._handles),
            attached=sum(h.attached for h in self._handles),
            resident_bytes=self.resident_bytes,
            memory_budget=self.memory_budget,
            hits=self.hits,
            misses=self.misses,
            evictions=self.evictions,
            promotions=self.promotions,
            per_shard=per_shard,
        )
