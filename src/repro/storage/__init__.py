"""Out-of-core storage: zero-copy snapshot payloads and shard residency.

Two layers, both below the index logic and above the filesystem:

* :mod:`repro.storage.layout` — the format-v3 payload tree: every large
  array is its own raw ``.npy`` file, indexed by the manifest, so
  ``load_mode="mmap"`` maps the packed database and per-scheme arrays
  zero-copy instead of materializing them in heap.
* :mod:`repro.storage.residency` — :class:`ResidencyManager`: lazy
  per-shard attach, LRU eviction under a memory budget, and the
  write-promotes-to-heap rule that keeps mutation bitwise-sound.

The persistence codec (:mod:`repro.persistence`) writes and reads the
layout; :class:`~repro.service.sharded.ShardedANNIndex` drives the
residency manager.  ``docs/PERSISTENCE.md`` documents the on-disk
format, ``docs/SERVING.md`` the serving-side behavior.
"""

from repro.storage.layout import StorageLayoutError
from repro.storage.residency import (
    ResidencyError,
    ResidencyManager,
    ResidencyStats,
    ShardHandle,
    ShardMeta,
)

__all__ = [
    "ResidencyError",
    "ResidencyManager",
    "ResidencyStats",
    "ShardHandle",
    "ShardMeta",
    "StorageLayoutError",
]
