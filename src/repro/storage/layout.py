"""The format-v3 payload tree: raw ``.npy`` files for zero-copy loads.

Format v2 packs every array into two compressed ``.npz`` archives —
compact, but an archive member can only be *read*, never mapped: loading
always decompresses the whole payload into heap.  Format v3 trades a
little disk for residency control: each array becomes its own
uncompressed ``.npy`` file under the snapshot directory, so
``np.load(..., mmap_mode="r")`` maps it zero-copy and the OS pages data
in on demand.  (Modern numpy aligns the ``.npy`` header to 64 bytes, so
mapped arrays are allocator-grade aligned.)

Layout inside a snapshot directory::

    database/words.npy              the packed database
    database/tombstones.npy         mutation payload (always loaded heap)
    database/memtable_words.npy
    database/memtable_deleted.npy
    arrays/<key...>.npy             one file per export_arrays() key,
                                    '/'-separated components as nested
                                    directories (copy0/accurate/3.npy)

The manifest's ``payloads`` field indexes every file::

    {"arrays/accurate/0.npy": {"shape": [12, 1024], "dtype": "<u8",
                               "nbytes": 98304}, ...}

The index is what makes *cold* snapshots cheap to reason about: the
residency layer (:mod:`repro.storage.residency`) reads shard sizes and
memtable row counts from manifests alone, without opening a single
payload file.

This module is deliberately free of index/scheme knowledge — it moves
named arrays to and from disk.  The persistence codec
(:mod:`repro.persistence`) owns what the names mean.
"""

from __future__ import annotations

import os
import re
from pathlib import Path
from typing import Dict, Mapping

import numpy as np

__all__ = [
    "ARRAYS_DIR",
    "DATABASE_DIR",
    "StorageLayoutError",
    "key_from_relpath",
    "payload_nbytes",
    "payload_relpath",
    "read_group",
    "read_payload",
    "write_payloads",
]

DATABASE_DIR = "database"
ARRAYS_DIR = "arrays"

#: Every '/'-separated key component must be a plain filename — no path
#: tricks (``..``), no separators, nothing the filesystem would reinterpret.
_COMPONENT = re.compile(r"^[A-Za-z0-9_][A-Za-z0-9_.\-]*$")

LOAD_MODES = ("heap", "mmap")


class StorageLayoutError(RuntimeError):
    """A payload tree could not be written or read (bad key, missing or
    mismatched payload file)."""


def check_load_mode(load_mode: str) -> str:
    """Validate and return a load mode (``"heap"`` or ``"mmap"``)."""
    if load_mode not in LOAD_MODES:
        raise StorageLayoutError(
            f"unknown load_mode {load_mode!r}; expected one of {LOAD_MODES}"
        )
    return load_mode


def payload_relpath(group: str, key: str) -> str:
    """The snapshot-relative path for array ``key`` in ``group``.

    ``key`` components split on ``/`` and become nested directories, so
    the export-key namespace (``copy0/accurate/3``) maps onto the
    filesystem unchanged.
    """
    components = key.split("/")
    if not all(_COMPONENT.match(c) for c in components):
        raise StorageLayoutError(
            f"array key {key!r} has a component unsafe as a filename"
        )
    return "/".join([group, *components]) + ".npy"


def key_from_relpath(group: str, relpath: str) -> str:
    """Invert :func:`payload_relpath` for entries of ``group``."""
    prefix = group + "/"
    if not relpath.startswith(prefix) or not relpath.endswith(".npy"):
        raise StorageLayoutError(
            f"payload path {relpath!r} does not belong to group {group!r}"
        )
    return relpath[len(prefix) : -len(".npy")]


def _fsync_dir(directory: Path) -> None:
    """Best-effort directory fsync so a rename survives a crash."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return  # platforms without directory fds; the rename still happened
    try:
        os.fsync(fd)
    except OSError:
        pass  # unsupported on this filesystem; best effort
    finally:
        os.close(fd)


def write_payloads(
    directory: Path, group: str, arrays: Mapping[str, np.ndarray]
) -> Dict[str, Dict[str, object]]:
    """Write each array as ``<group>/<key>.npy``; return the payload index.

    The returned mapping (relpath → shape/dtype/nbytes) goes into the
    manifest, where it serves both as the read-side file list and as the
    cold-size oracle for the residency layer.

    Each file is written to a temp name, fsync'd, and ``os.replace``\\ d
    into place, so the final path always holds a *fresh, complete* inode:
    a process (this one or a sibling replica) that has the old file
    mmap'd keeps reading the old bytes — POSIX keeps a replaced inode
    alive for existing mappings — instead of seeing pages change (or
    zero out) under a live query, and a crash mid-write never leaves a
    half-written payload at the final name.
    """
    index: Dict[str, Dict[str, object]] = {}
    for key in sorted(arrays):
        arr = np.asarray(arrays[key])
        relpath = payload_relpath(group, key)
        target = directory / relpath
        target.parent.mkdir(parents=True, exist_ok=True)
        tmp = target.with_name(target.name + ".tmp")
        with open(tmp, "wb") as fh:
            np.save(fh, arr, allow_pickle=False)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, target)
        _fsync_dir(target.parent)
        index[relpath] = {
            "shape": [int(s) for s in arr.shape],
            "dtype": arr.dtype.str,
            "nbytes": int(arr.nbytes),
            # Byte offset of the raw data past the .npy header (the file
            # is exactly header + data).  Recorded so mmap reads can map
            # the data region directly — without it, every cold attach
            # pays one random header read per payload file just to
            # rediscover what the manifest already knows.
            "offset": int(target.stat().st_size) - int(arr.nbytes),
        }
    return index


def read_payload(
    directory: Path,
    relpath: str,
    info: Mapping[str, object],
    load_mode: str = "heap",
) -> np.ndarray:
    """Load one indexed payload, heap or zero-copy mmap.

    Heap reads parse the ``.npy`` header and check its shape and dtype
    against the manifest's index entry, so a swapped or truncated payload
    fails loudly before any query runs — the v3 analogue of the npz
    tamper checks.  Mmap reads go the other way: the manifest entry's
    shape, dtype, and data offset describe the mapping directly, so
    attaching a shard reads *no* payload bytes at all (not even headers);
    a file too short for its manifest entry still fails at map time.
    """
    check_load_mode(load_mode)
    path = directory / relpath
    if not path.is_file():
        raise StorageLayoutError(f"snapshot {directory} is missing {relpath}")
    expected_shape = tuple(int(s) for s in info.get("shape", ()))
    expected_dtype = str(info.get("dtype"))
    if load_mode == "mmap" and "offset" in info:
        dtype = np.dtype(expected_dtype)
        nbytes = int(info.get("nbytes", 0))
        if nbytes == 0:
            return np.zeros(expected_shape, dtype=dtype)
        try:
            size = path.stat().st_size
            if size < int(info["offset"]) + nbytes:
                raise ValueError(
                    f"file is {size} bytes, too short for the mapped region"
                )
            return np.memmap(
                path, dtype=dtype, mode="r", offset=int(info["offset"]),
                shape=expected_shape,
            )
        except (OSError, ValueError) as exc:
            raise StorageLayoutError(
                f"payload {relpath} cannot be mapped as "
                f"{expected_dtype}{list(expected_shape)} that the manifest "
                f"records: {exc}"
            ) from exc
    try:
        arr = np.load(
            path, mmap_mode="r" if load_mode == "mmap" else None, allow_pickle=False
        )
    except Exception as exc:
        raise StorageLayoutError(
            f"snapshot {directory} has an unreadable {relpath}: {exc}"
        ) from exc
    if arr.shape != expected_shape or arr.dtype.str != expected_dtype:
        raise StorageLayoutError(
            f"payload {relpath} is {arr.dtype.str}{list(arr.shape)} on disk "
            f"but the manifest records {expected_dtype}{list(expected_shape)}"
        )
    return arr


def read_group(
    directory: Path,
    payload_index: Mapping[str, Mapping[str, object]],
    group: str,
    load_mode: str = "heap",
) -> Dict[str, np.ndarray]:
    """Load every payload of ``group`` back into a key → array dict."""
    out: Dict[str, np.ndarray] = {}
    for relpath in sorted(payload_index):
        if not relpath.startswith(group + "/"):
            continue
        key = key_from_relpath(group, relpath)
        out[key] = read_payload(directory, relpath, payload_index[relpath], load_mode)
    return out


def payload_nbytes(payload_index: Mapping[str, Mapping[str, object]]) -> int:
    """Total bytes the indexed payloads occupy once resident."""
    return sum(int(info.get("nbytes", 0)) for info in payload_index.values())
