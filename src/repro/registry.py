"""The scheme registry: every cell-probing scheme, buildable by name.

Core algorithms and all baselines register a factory
``(db, spec, rng) -> CellProbingScheme`` here, together with the scheme's
accepted parameters (name, default, short doc) and the paper section it
implements.  Everything downstream — :meth:`repro.core.index.ANNIndex.from_spec`,
the CLI's ``bench``/``baselines``/``tradeoff`` subcommands, the workload
sweeps in :mod:`repro.analysis.tradeoff`, and the benchmarks — constructs
schemes exclusively through :func:`build_scheme`, so adding a scheme here
makes it available to every harness at once.

``spec`` is a :class:`repro.api.IndexSpec` (scheme name + params + seed +
boost); this module deliberately does not import :mod:`repro.api` — the
spec layer validates against the registry, not the other way around — so
any object with ``scheme``/``params``/``seed``/``boost`` attributes works.

Success boosting is handled centrally: ``spec.boost > 1`` wraps the
factory in :class:`~repro.core.boosting.BoostedScheme` with per-copy
seeds derived from ``spec.seed`` through the same ``RngTree("copy", i)``
streams the legacy ``ANNIndex.build`` used, so specs and legacy kwargs
produce identical schemes for identical seeds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Tuple

from repro.cellprobe.scheme import CellProbingScheme
from repro.utils.rng import RngTree

__all__ = [
    "ParamInfo",
    "SchemeInfo",
    "available_schemes",
    "build_scheme",
    "filter_params",
    "get_scheme",
    "register_scheme",
    "registry_rows",
    "resolved_params",
    "scheme_defaults",
]


@dataclass(frozen=True)
class ParamInfo:
    """One accepted parameter of a registered scheme."""

    default: object
    doc: str = ""


@dataclass(frozen=True)
class SchemeInfo:
    """Registry entry: how to build one scheme and what it accepts."""

    name: str
    factory: Callable[..., CellProbingScheme]  # (db, spec, rng) -> scheme
    description: str = ""
    paper_section: str = ""
    params: Mapping[str, ParamInfo] = field(default_factory=dict)

    def defaults(self) -> Dict[str, object]:
        return {key: info.default for key, info in self.params.items()}


_REGISTRY: Dict[str, SchemeInfo] = {}


def register_scheme(
    name: str,
    *,
    description: str = "",
    paper_section: str = "",
    params: Optional[Mapping[str, Tuple[object, str]]] = None,
):
    """Decorator registering ``factory(db, spec, rng)`` under ``name``.

    ``params`` maps accepted parameter names to ``(default, doc)`` pairs;
    :class:`repro.api.IndexSpec` validates its ``params`` keys against
    this set at construction time.
    """

    def wrap(factory: Callable[..., CellProbingScheme]):
        if name in _REGISTRY:
            raise ValueError(f"scheme {name!r} already registered")
        _REGISTRY[name] = SchemeInfo(
            name=name,
            factory=factory,
            description=description,
            paper_section=paper_section,
            params={k: ParamInfo(default, doc) for k, (default, doc) in (params or {}).items()},
        )
        return factory

    return wrap


def available_schemes() -> List[str]:
    """Sorted names of every registered scheme."""
    return sorted(_REGISTRY)


def get_scheme(name: str) -> SchemeInfo:
    """The registry entry for ``name`` (ValueError lists known schemes)."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown scheme {name!r}; available: {', '.join(available_schemes())}"
        ) from None


def scheme_defaults(name: str) -> Dict[str, object]:
    """The accepted parameters of ``name`` with their default values."""
    return get_scheme(name).defaults()


def filter_params(name: str, candidate: Mapping[str, object]) -> Dict[str, object]:
    """The subset of ``candidate`` that scheme ``name`` accepts.

    Harnesses comparing several schemes under shared knobs (CLI ``bench``,
    the baseline benches) use this to build a valid spec per scheme from
    one candidate mapping.
    """
    accepted = get_scheme(name).params
    return {k: v for k, v in candidate.items() if k in accepted}


def resolved_params(spec) -> Dict[str, object]:
    """``spec.params`` merged over the scheme's registered defaults."""
    merged = scheme_defaults(spec.scheme)
    for key, value in spec.params.items():
        if key not in merged:
            raise ValueError(
                f"scheme {spec.scheme!r} accepts no parameter {key!r}; "
                f"accepted: {', '.join(sorted(merged)) or '(none)'}"
            )
        merged[key] = value
    return merged


def build_scheme(database, spec) -> CellProbingScheme:
    """Construct the scheme a spec describes, boost wrapping included.

    Per-copy seeds are the ``RngTree(spec.seed)`` streams ``("copy", i)``
    — the exact derivation the legacy ``ANNIndex.build`` used, so legacy
    kwargs and their equivalent specs build identical schemes.
    """
    info = get_scheme(spec.scheme)
    boost = int(getattr(spec, "boost", 1))
    if boost < 1:
        raise ValueError(f"boost must be >= 1, got {boost}")
    tree = RngTree(spec.seed)
    if boost == 1:
        return info.factory(database, spec, tree.generator("copy", 0))
    from repro.core.boosting import BoostedScheme

    seeds = [tree.generator("copy", i) for i in range(boost)]
    return BoostedScheme(lambda s: info.factory(database, spec, s), seeds)


def registry_rows() -> List[Dict[str, str]]:
    """One row per scheme (name, paper section, params, description) —
    the table behind ``python -m repro schemes`` and the docs."""
    rows = []
    for name in available_schemes():
        info = _REGISTRY[name]
        rows.append(
            {
                "scheme": name,
                "paper": info.paper_section,
                "params": ", ".join(
                    f"{k}={info.params[k].default!r}" for k in sorted(info.params)
                ) or "(none)",
                "description": info.description,
            }
        )
    return rows


# -- built-in schemes ---------------------------------------------------------
#
# Factories are defined here (rather than in the scheme modules) so that
# importing repro.registry is the single side-effect-free way to populate
# the registry; scheme modules stay importable on their own.

_GEOMETRY_PARAMS = {
    "gamma": (4.0, "approximation ratio γ > 1"),
    "c1": (6.0, "accurate-sketch row multiplier"),
    "c2": (6.0, "coarse-sketch row multiplier"),
    "profile": ("empirical", "'empirical' or 'theory' sketch sizing"),
}


def _base_parameters(database, p) -> "object":
    from repro.core.params import BaseParameters

    return BaseParameters.for_database(
        database, gamma=p["gamma"], c1=p["c1"], c2=p["c2"], profile=p["profile"]
    )


@register_scheme(
    "algorithm1",
    description="Theorem 9 simple k-round scheme: interpolated shrinking rounds",
    paper_section="§3 / Thm 2, 9",
    params={
        **_GEOMETRY_PARAMS,
        "rounds": (2, "adaptivity budget k"),
        "tau": (None, "branching-factor override (None = paper τ)"),
    },
)
def _build_algorithm1(database, spec, rng):
    from repro.core.algorithm1 import SimpleKRoundScheme
    from repro.core.params import Algorithm1Params

    p = resolved_params(spec)
    params = Algorithm1Params(
        _base_parameters(database, p), k=int(p["rounds"]), tau_override=p["tau"]
    )
    return SimpleKRoundScheme(database, params, seed=rng)


@register_scheme(
    "algorithm2",
    description="Theorem 10 large-k scheme: two-round phases with grouped density tests",
    paper_section="§4 / Thm 3, 10",
    params={
        **_GEOMETRY_PARAMS,
        "rounds": (16, "adaptivity budget k (needs s ≥ 1)"),
        "c": (3.0, "the c > 2 constant of Theorem 10"),
        "s": (None, "group-capacity override (None = paper s)"),
    },
)
def _build_algorithm2(database, spec, rng):
    from repro.core.algorithm2 import LargeKScheme
    from repro.core.params import Algorithm2Params

    p = resolved_params(spec)
    params = Algorithm2Params(
        _base_parameters(database, p), k=int(p["rounds"]), c=p["c"], s_override=p["s"]
    )
    return LargeKScheme(database, params, seed=rng)


@register_scheme(
    "lambda-ann",
    description="Theorem 11 one-probe λ-near-neighbor scheme",
    paper_section="§5 / Thm 11",
    params={
        **_GEOMETRY_PARAMS,
        "lam": (16.0, "near-neighbor radius λ"),
    },
)
def _build_lambda_ann(database, spec, rng):
    from repro.core.lambda_ann import OneProbeNearNeighborScheme

    p = resolved_params(spec)
    return OneProbeNearNeighborScheme(
        database, _base_parameters(database, p), lam=p["lam"], seed=rng
    )


@register_scheme(
    "fully-adaptive",
    description="τ=2 binary search: the fully adaptive extreme (1 probe/round)",
    paper_section="§1 discussion",
    params=_GEOMETRY_PARAMS,
)
def _build_fully_adaptive(database, spec, rng):
    from repro.baselines.adaptive import FullyAdaptiveScheme

    p = resolved_params(spec)
    return FullyAdaptiveScheme(database, _base_parameters(database, p), seed=rng)


@register_scheme(
    "lsh",
    description="bit-sampling LSH over geometric radii (Indyk–Motwani)",
    paper_section="§1 baseline",
    params={
        "gamma": (4.0, "approximation ratio γ > 1"),
        "mode": ("nonadaptive", "'nonadaptive' (1 round) or 'adaptive' (level binary search)"),
        "bucket_capacity": (16, "points stored per bucket cell"),
        "table_boost": (1.0, "safety multiplier on the table count L"),
        "tables": (None, "override L directly"),
        "bits": (None, "override K directly"),
    },
)
def _build_lsh(database, spec, rng):
    from repro.baselines.lsh import LSHParams, LSHScheme

    p = resolved_params(spec)
    params = LSHParams(
        gamma=p["gamma"],
        bucket_capacity=int(p["bucket_capacity"]),
        table_boost=p["table_boost"],
        tables_override=p["tables"],
        bits_override=p["bits"],
    )
    return LSHScheme(database, params, mode=p["mode"], seed=rng)


@register_scheme(
    "data-dependent-lsh",
    description="two-round data-dependent LSH: dispatch probe, then one part's buckets",
    paper_section="§1 baseline (Andoni et al.)",
    params={
        "gamma": (4.0, "approximation ratio γ > 1"),
        "parts": (8, "pivot parts of the decomposition"),
        "dispatch_rows": (64, "coarse dispatch-sketch rows"),
        "bucket_capacity": (16, "points stored per bucket cell"),
        "table_boost": (1.0, "safety multiplier on per-part table counts"),
    },
)
def _build_data_dependent_lsh(database, spec, rng):
    from repro.baselines.data_dependent_lsh import (
        DataDependentLSHParams,
        DataDependentLSHScheme,
    )

    p = resolved_params(spec)
    params = DataDependentLSHParams(
        gamma=p["gamma"],
        parts=int(p["parts"]),
        dispatch_rows=int(p["dispatch_rows"]),
        bucket_capacity=int(p["bucket_capacity"]),
        table_boost=p["table_boost"],
    )
    return DataDependentLSHScheme(database, params, seed=rng)


@register_scheme(
    "linear-scan",
    description="exact nearest neighbor: all n point cells in one round",
    paper_section="§1 baseline",
    params={},
)
def _build_linear_scan(database, spec, rng):
    from repro.baselines.linear_scan import LinearScanScheme

    return LinearScanScheme(database)
