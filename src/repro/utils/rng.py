"""Deterministic random-number plumbing.

The paper's schemes are *public-coin*: the random matrices are shared
between the table (preprocessing) and the cell-probing algorithm.  To make
every experiment reproducible we derive all randomness from a single root
seed through named streams, so that e.g. the level-``i`` accurate sketch
always sees the same bits for a given root seed regardless of evaluation
order.
"""

from __future__ import annotations

from typing import Iterable, List, Union

import numpy as np

__all__ = ["RngTree", "as_generator", "spawn_generators"]

SeedLike = Union[int, np.random.Generator, "RngTree", None]


def as_generator(seed: SeedLike) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`."""
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, RngTree):
        return seed.generator("__default__")
    return np.random.default_rng(seed)


def _spawn_seeds(root, count: int) -> List[np.random.SeedSequence]:
    """``count`` child seed sequences of a generator-like ``root``.

    Prefers the bit generator's own ``seed_seq`` (cheap, does not touch
    the stream).  Third-party or hand-rolled bit generators may not carry
    one — the attribute is conventional, not part of the BitGenerator
    contract — in which case we fall back to seeding a fresh
    :class:`~numpy.random.SeedSequence` from one draw of ``root``.
    """
    seed_seq = getattr(getattr(root, "bit_generator", None), "seed_seq", None)
    if seed_seq is None or not hasattr(seed_seq, "spawn"):
        seed_seq = np.random.SeedSequence(int(root.integers(0, 2**63 - 1)))
    return seed_seq.spawn(count)


def spawn_generators(seed: SeedLike, count: int) -> List[np.random.Generator]:
    """Spawn ``count`` independent generators from ``seed``."""
    root = as_generator(seed)
    return [np.random.default_rng(s) for s in _spawn_seeds(root, count)]


class RngTree:
    """A tree of named, independent random streams.

    Each call to :meth:`generator` with the same path returns a *fresh*
    generator seeded identically, so components can re-derive their
    randomness without coordinating evaluation order.

    Examples
    --------
    >>> tree = RngTree(1234)
    >>> g1 = tree.generator("sketch", 3)
    >>> g2 = tree.generator("sketch", 3)
    >>> bool((g1.integers(0, 2**32, 4) == g2.integers(0, 2**32, 4)).all())
    True
    """

    def __init__(self, seed: SeedLike = None):
        if isinstance(seed, RngTree):
            self._root_entropy = seed._root_entropy
        elif isinstance(seed, np.random.Generator):
            # Derive a stable integer from the generator without advancing
            # the caller's stream: draw once, then rewind the bit-generator
            # state.  (The drawn value matches what a plain draw would
            # produce, so trees seeded from a fresh generator are unchanged.)
            state = seed.bit_generator.state
            self._root_entropy = int(seed.integers(0, 2**63 - 1))
            seed.bit_generator.state = state
        elif seed is None:
            self._root_entropy = int(np.random.SeedSequence().entropy % (2**63))
        else:
            self._root_entropy = int(seed)

    @property
    def root_entropy(self) -> int:
        """The root entropy integer every stream is derived from."""
        return self._root_entropy

    def _seed_for(self, path: Iterable[object]) -> np.random.SeedSequence:
        key = tuple(str(p) for p in path)
        # Stable 64-bit hash of the path (Python's hash() is salted per
        # process, so roll our own FNV-1a).
        h = 1469598103934665603
        for part in key:
            for byte in part.encode("utf8"):
                h ^= byte
                h = (h * 1099511628211) % (1 << 64)
        return np.random.SeedSequence(entropy=self._root_entropy, spawn_key=(h % (1 << 32), h >> 32))

    def generator(self, *path: object) -> np.random.Generator:
        """Return a fresh generator for the named stream ``path``."""
        return np.random.default_rng(self._seed_for(path))

    def child(self, *path: object) -> "RngTree":
        """Return a subtree rooted at ``path`` (independent of siblings)."""
        g = self.generator(*path, "__child__")
        return RngTree(int(g.integers(0, 2**63 - 1)))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RngTree(root_entropy={self._root_entropy})"
