"""Small shared utilities: deterministic RNG trees and integer math helpers."""

from repro.utils.intmath import (
    ceil_div,
    ceil_log,
    ceil_pow2,
    ilog2_ceil,
    ilog2_floor,
    num_levels,
)
from repro.utils.rng import RngTree, as_generator, spawn_generators

__all__ = [
    "RngTree",
    "as_generator",
    "spawn_generators",
    "ceil_div",
    "ceil_log",
    "ceil_pow2",
    "ilog2_ceil",
    "ilog2_floor",
    "num_levels",
]
