"""Exact integer math helpers used throughout the cell-probe simulator.

All the level/round bookkeeping in the paper is in terms of integer
quantities like ``⌈log_α d⌉``; computing those through floating point
``math.log`` invites off-by-one errors at exact powers.  The helpers here
are exact for the integer cases we care about and fall back to carefully
rounded floats otherwise.
"""

from __future__ import annotations

import math

__all__ = [
    "ceil_div",
    "ceil_log",
    "ceil_pow2",
    "ilog2_ceil",
    "ilog2_floor",
    "num_levels",
]


def ceil_div(a: int, b: int) -> int:
    """Return ``ceil(a / b)`` for integers with ``b > 0``."""
    if b <= 0:
        raise ValueError(f"ceil_div requires b > 0, got {b}")
    return -(-a // b)


def ilog2_floor(x: int) -> int:
    """Return ``floor(log2 x)`` exactly for a positive integer ``x``."""
    if x <= 0:
        raise ValueError(f"ilog2_floor requires x > 0, got {x}")
    return x.bit_length() - 1


def ilog2_ceil(x: int) -> int:
    """Return ``ceil(log2 x)`` exactly for a positive integer ``x``."""
    if x <= 0:
        raise ValueError(f"ilog2_ceil requires x > 0, got {x}")
    return (x - 1).bit_length()


def ceil_pow2(x: int) -> int:
    """Return the smallest power of two that is ``>= x`` (``x >= 1``)."""
    return 1 << ilog2_ceil(max(1, x))


def ceil_log(x: float, base: float) -> int:
    """Return ``⌈log_base(x)⌉`` robustly for ``x >= 1`` and ``base > 1``.

    Floating point logs can land just above an integer when ``x`` is an
    exact power of ``base``; we correct by checking the neighbouring
    integers with exponentiation.
    """
    if x < 1:
        raise ValueError(f"ceil_log requires x >= 1, got {x}")
    if base <= 1:
        raise ValueError(f"ceil_log requires base > 1, got {base}")
    if x == 1:
        return 0
    approx = math.log(x) / math.log(base)
    candidate = math.ceil(approx)
    # Walk down while the previous integer power still covers x.
    while candidate > 0 and base ** (candidate - 1) >= x:
        candidate -= 1
    # Walk up if rounding left us short (can happen when approx is just
    # below an integer but base**candidate underflows the comparison).
    while base**candidate < x:
        candidate += 1
    return candidate


def num_levels(d: int, alpha: float) -> int:
    """Number of distance levels ``⌈log_α d⌉`` used by the schemes.

    Level ``i`` corresponds to the Hamming ball of radius ``αⁱ``; the top
    level always covers the full cube diameter ``d``.
    """
    if d < 2:
        raise ValueError(f"dimension must be >= 2, got {d}")
    return ceil_log(float(d), alpha)
