"""The typed construction surface: :class:`IndexSpec`.

An :class:`IndexSpec` is a frozen, validated description of *which*
scheme to build and *how* — scheme name, per-scheme parameters, the
public-coin seed, and the boost (parallel-repetition) factor.  It
replaces the kwarg sprawl of the legacy ``ANNIndex.build`` and is the
one value that flows through every construction path::

    from repro import ANNIndex, IndexSpec

    spec = IndexSpec(scheme="algorithm1", params={"rounds": 3}, seed=7)
    index = ANNIndex.from_spec(database, spec)

    spec2 = IndexSpec.from_dict(spec.to_dict())   # reproducible round-trip
    assert spec2 == spec

Validation happens at construction: the scheme name must be registered
in :mod:`repro.registry` and every ``params`` key must be one the scheme
accepts (value validation is the parameter dataclasses' job, at build
time).  Named presets bundle well-tested configurations::

    IndexSpec.preset("paper", seed=7)        # the paper's headline k=3 scheme
    IndexSpec.preset("fast")                 # one round, cheapest build
    IndexSpec.preset("high-recall", seed=7)  # boosted ×3 for amplified success
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Dict, Mapping, Optional

from repro import registry

__all__ = ["IndexSpec", "PRESETS"]


#: Named presets: well-tested (scheme, params, boost) bundles.
PRESETS: Mapping[str, Mapping[str, object]] = MappingProxyType(
    {
        # The paper's headline configuration (the demo/quickstart setting):
        # Algorithm 1 at k=3 with laptop-scale sketch rows.
        "paper": MappingProxyType(
            {"scheme": "algorithm1", "params": {"rounds": 3, "c1": 8.0}, "boost": 1}
        ),
        # Cheapest useful index: one non-adaptive round, default rows.
        "fast": MappingProxyType(
            {"scheme": "algorithm1", "params": {"rounds": 1}, "boost": 1}
        ),
        # Success amplification: wider sketches plus 3 parallel copies
        # (probes triple, rounds stay at k — Section 2 remark).
        "high-recall": MappingProxyType(
            {"scheme": "algorithm1", "params": {"rounds": 3, "c1": 10.0}, "boost": 3}
        ),
    }
)


@dataclass(frozen=True)
class IndexSpec:
    """A validated, immutable recipe for building one index.

    Attributes
    ----------
    scheme : registered scheme name (see
        :func:`repro.registry.available_schemes`)
    params : per-scheme parameters; keys are validated against the
        scheme's registered parameter set, unset keys take the
        registered defaults
    seed : public-coin randomness root (None = fresh entropy)
    boost : parallel repetitions (≥ 1); probes scale linearly, rounds
        stay at the scheme's k
    """

    scheme: str
    params: Mapping[str, object] = field(default_factory=dict)
    seed: Optional[int] = None
    boost: int = 1

    def __post_init__(self) -> None:
        if not isinstance(self.scheme, str) or not self.scheme:
            raise ValueError(f"scheme must be a non-empty string, got {self.scheme!r}")
        # Freeze params first (a copy, so the caller's dict stays theirs;
        # None is treated as "no params", matching from_dict).
        object.__setattr__(self, "params", MappingProxyType(dict(self.params or {})))
        # Raises on unknown scheme names and unknown parameter keys; the
        # registry is the single source of truth for both checks.
        registry.resolved_params(self)
        if int(self.boost) < 1:
            raise ValueError(f"boost must be >= 1, got {self.boost}")

    def __hash__(self) -> int:
        return hash(
            (self.scheme, tuple(sorted(self.params.items())), self.seed, self.boost)
        )

    def __reduce__(self):
        # MappingProxyType is not picklable; round-trip through the plain
        # dict form instead (specs are the reproducibility currency, so
        # they must survive pickling/deepcopy to workers and caches).
        return (IndexSpec.from_dict, (self.to_dict(),))

    # -- construction helpers ------------------------------------------------
    @classmethod
    def preset(cls, name: str, seed: Optional[int] = None, **overrides) -> "IndexSpec":
        """A named preset, optionally with parameter overrides.

        ``overrides`` merge into the preset's params; pass ``boost=`` to
        override the preset's boost factor.
        """
        try:
            bundle = PRESETS[name]
        except KeyError:
            raise ValueError(
                f"unknown preset {name!r}; available: {', '.join(sorted(PRESETS))}"
            ) from None
        boost = int(overrides.pop("boost", bundle["boost"]))
        params = {**bundle["params"], **overrides}
        return cls(scheme=bundle["scheme"], params=params, seed=seed, boost=boost)

    def replace(self, **changes) -> "IndexSpec":
        """A copy with fields replaced (re-validated)."""
        return dataclasses.replace(self, **changes)

    def resolve_seed(self) -> "IndexSpec":
        """This spec with a concrete seed (fresh entropy when ``None``).

        ``seed=None`` means "fresh public coins" — fine for one-off
        builds, but an index whose coins were never recorded can neither
        be saved nor rebuilt.  :meth:`ANNIndex.from_spec
        <repro.core.index.ANNIndex.from_spec>` resolves specs through
        this, so every built index carries the entropy that replays it.
        """
        if self.seed is not None:
            return self
        from repro.utils.rng import RngTree

        return self.replace(seed=RngTree(None).root_entropy)

    # -- reproducible round-tripping -----------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """A plain, JSON-serializable dict (inverse of :meth:`from_dict`)."""
        return {
            "scheme": self.scheme,
            "params": dict(self.params),
            "seed": self.seed,
            "boost": self.boost,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "IndexSpec":
        """Rebuild a spec from :meth:`to_dict` output (validates again)."""
        extra = sorted(set(data) - {"scheme", "params", "seed", "boost"})
        if extra:
            raise ValueError(f"unknown IndexSpec field(s): {', '.join(extra)}")
        return cls(
            scheme=data["scheme"],
            params=dict(data.get("params") or {}),
            seed=data.get("seed"),
            boost=int(data.get("boost", 1)),
        )

    # -- introspection -------------------------------------------------------
    def resolved_params(self) -> Dict[str, object]:
        """``params`` merged over the scheme's registered defaults."""
        return registry.resolved_params(self)
