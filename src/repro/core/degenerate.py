"""Degenerate-case handling shared by both algorithms (Section 3.1).

Before the main multi-way search may assume ``B₀ = B₁ = ∅`` (Assumption 1),
the query fires two 1-probe membership structures *in parallel with its
first round*: exact membership in ``B`` and membership in the
1-neighborhood ``N₁(B)``.  A hit on either answers the query exactly (the
returned point is a true nearest neighbor, since its distance is 0 or 1 and
a distance-1 answer is only used when no exact match exists).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.cellprobe.session import ProbeRequest
from repro.cellprobe.words import PointWord
from repro.hamming.points import PackedPoints
from repro.structures.perfect_hash import MembershipStructure

__all__ = ["DegenerateCaseHandler"]


class DegenerateCaseHandler:
    """Owns the two 1-probe membership structures and their protocol."""

    def __init__(self, database: PackedPoints):
        self.exact = MembershipStructure(database, radius=0, name="B0-membership")
        self.near = MembershipStructure(database, radius=1, name="B1-membership")

    def requests_for(self, x: np.ndarray) -> List[ProbeRequest]:
        """The two probe requests to fold into the query's first round."""
        return [
            ProbeRequest(self.exact.table, self.exact.address_for(x)),
            ProbeRequest(self.near.table, self.near.address_for(x)),
        ]

    @staticmethod
    def interpret(contents: List[object]) -> Optional[Tuple[int, np.ndarray, str]]:
        """Interpret the two degenerate answers.

        Returns ``(index, packed_point, which)`` on a hit (preferring the
        exact structure) or None when the main search must decide.
        """
        exact_content, near_content = contents
        if isinstance(exact_content, PointWord):
            return exact_content.index, exact_content.packed_array(), "exact"
        if isinstance(near_content, PointWord):
            return near_content.index, near_content.packed_array(), "near"
        return None

    def logical_cells(self) -> int:
        """Combined logical size of both structures."""
        return self.exact.table.logical_cells + self.near.table.logical_cells
