"""Query results and execution traces.

Every scheme returns a :class:`QueryResult` carrying the answer, exact
probe/round accounting, and scheme-specific metadata (which path answered,
budget flags, the level the witness came from).  Ground-truth helpers
compute achieved approximation ratios for the analysis harness — the
schemes themselves never look at ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.cellprobe.accounting import ProbeAccountant
from repro.hamming.distance import hamming_distance
from repro.hamming.points import PackedPoints

__all__ = ["QueryResult", "achieved_ratio"]


@dataclass
class QueryResult:
    """Outcome of one cell-probe query execution.

    Attributes
    ----------
    answer_index : database index of the returned point (None = no answer)
    answer_packed : the returned point itself, packed (None = no answer)
    accountant : the probe/round meter that recorded the execution
    scheme : name of the scheme that produced this result
    meta : free-form metadata (path taken, levels, violation flags...)
    """

    answer_index: Optional[int]
    answer_packed: Optional[np.ndarray]
    accountant: ProbeAccountant
    scheme: str = ""
    meta: Dict[str, object] = field(default_factory=dict)

    # -- accounting shortcuts ---------------------------------------------
    @property
    def probes(self) -> int:
        """Total cell-probes used."""
        return self.accountant.total_probes

    @property
    def rounds(self) -> int:
        """Rounds of parallel probes used."""
        return self.accountant.total_rounds

    @property
    def probes_per_round(self) -> List[int]:
        return self.accountant.probes_per_round

    @property
    def answered(self) -> bool:
        """Whether the scheme produced an answer at all."""
        return self.answer_index is not None

    # -- ground-truth evaluation (analysis only) ----------------------------
    def distance_to(self, x: np.ndarray) -> Optional[int]:
        """Hamming distance from the query to the returned point."""
        if self.answer_packed is None:
            return None
        return hamming_distance(x, self.answer_packed)

    def ratio(self, database: PackedPoints, x: np.ndarray) -> Optional[float]:
        """Achieved approximation ratio against the exact nearest neighbor."""
        if self.answer_packed is None:
            return None
        return achieved_ratio(database, x, self.answer_packed)

    def as_dict(self) -> dict:
        """Flat summary for reporting."""
        return {
            "scheme": self.scheme,
            "answer_index": self.answer_index,
            "probes": self.probes,
            "rounds": self.rounds,
            "probes_per_round": self.probes_per_round,
            **{f"meta_{k}": v for k, v in self.meta.items()},
        }


def achieved_ratio(database: PackedPoints, x: np.ndarray, answer: np.ndarray) -> float:
    """``dist(x, answer) / min_z dist(x, z)`` with the convention that an
    exact hit on a distance-0 nearest neighbor has ratio 1.0, and any
    answer at distance > 0 against a distance-0 optimum has ratio +inf."""
    dists = database.distances_from(x)
    opt = int(dists.min())
    got = hamming_distance(x, answer)
    if opt == 0:
        return 1.0 if got == 0 else float("inf")
    return got / opt
