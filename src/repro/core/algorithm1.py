"""Algorithm 1 (Theorem 9): the simple k-round scheme with
``O(k (log d)^{1/k})`` total cell-probes.

Structure of a query on the level range ``[l, u]`` (initially ``[0, L]``),
maintaining the invariant ``C_l = ∅ ∧ C_u ≠ ∅``:

* **Shrinking rounds** (at most ``k − 1``): while ``u − l ≥ τ``, probe the
  ``τ − 1`` interpolated levels ``ρ(r) = ⌊l + r(u−l)/τ⌋``; the smallest
  non-EMPTY ``r*`` (or ``τ``) pins the transition into ``[ρ(r*−1), ρ(r*)]``,
  shrinking the gap by a factor ``≈ τ``.
* **Completion round**: probe every remaining level ``l+1..u`` in parallel
  and return the witness from the smallest non-empty ``C_i``.

The two degenerate-case membership probes (Section 3.1) are folded into the
first round.  Under Assumptions 1–2 the returned point lies in a ``C_i``
with ``C_{i−1} = ∅``, hence is a ``γ = α²``-approximate nearest neighbor.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.cellprobe.accounting import ProbeAccountant
from repro.cellprobe.plan import BatchAddressPrimer, PlanDraft, QueryPlan, run_query_plan
from repro.cellprobe.scheme import (
    CellProbingScheme,
    SchemeSizeReport,
    SketchStateMixin,
)
from repro.cellprobe.session import ProbeRequest
from repro.cellprobe.words import PointWord
from repro.core.degenerate import DegenerateCaseHandler
from repro.core.invariants import InvariantChecker
from repro.core.params import Algorithm1Params
from repro.core.result import QueryResult
from repro.hamming.points import PackedPoints
from repro.sketch.approx_balls import ApproxBallEvaluator
from repro.sketch.family import SketchFamily
from repro.sketch.levels import LevelSketches
from repro.structures.main_table import MainLevelTable
from repro.utils.rng import RngTree

__all__ = ["SimpleKRoundScheme"]


def interpolated_levels(l: int, u: int, tau: int) -> List[int]:
    """The probe levels ``ρ(1)..ρ(τ−1)`` of one shrinking round."""
    return [l + (r * (u - l)) // tau for r in range(1, tau)]


class SimpleKRoundScheme(SketchStateMixin, CellProbingScheme):
    """Theorem 9's scheme, ready to answer queries for a fixed database.

    Parameters
    ----------
    database : the packed database ``B``
    params : validated :class:`~repro.core.params.Algorithm1Params`
    seed : public-coin randomness root (shared by tables and querier)

    Examples
    --------
    >>> import numpy as np
    >>> from repro.core.params import Algorithm1Params, BaseParameters
    >>> from repro.hamming.points import PackedPoints
    >>> from repro.hamming.sampling import random_points
    >>> rng = np.random.default_rng(0)
    >>> db = PackedPoints(random_points(rng, 64, 128), 128)
    >>> scheme = SimpleKRoundScheme(db, Algorithm1Params(BaseParameters(64, 128), k=3), seed=1)
    >>> res = scheme.query(random_points(rng, 1, 128)[0])
    >>> res.rounds <= 3
    True
    """

    scheme_name = "algorithm1"

    def __init__(
        self,
        database: PackedPoints,
        params: Algorithm1Params,
        seed=None,
        check_invariants: bool = False,
    ):
        if len(database) != params.base.n:
            raise ValueError(
                f"database has {len(database)} points but params.n={params.base.n}"
            )
        if database.d != params.base.d:
            raise ValueError(f"database d={database.d} but params.d={params.base.d}")
        self.database = database
        self.params = params
        self.k = params.k
        rng_tree = RngTree(seed)
        self.family = SketchFamily(
            d=params.base.d,
            alpha=params.base.alpha,
            levels=params.base.levels,
            accurate_rows=params.base.accurate_rows,
            coarse_rows=None,
            rng_tree=rng_tree.child("sketches"),
        )
        self.level_sketches = LevelSketches(database, self.family)
        self.evaluator = ApproxBallEvaluator(self.level_sketches)
        self.tables: Dict[int, MainLevelTable] = {
            i: MainLevelTable(self.evaluator, i) for i in range(params.base.levels + 1)
        }
        self.degenerate = DegenerateCaseHandler(database)
        # Optional out-of-band invariant oracle (charges no probes).
        self.invariant_checker = (
            InvariantChecker(self.evaluator, self.family) if check_invariants else None
        )
        self._address_cache: Dict[Tuple[int, bytes], tuple] = {}
        self._primer = BatchAddressPrimer()

    # -- internals -----------------------------------------------------------
    def _address(self, i: int, x: np.ndarray) -> tuple:
        """``M_i x`` as a table address, memoized per query point bytes.

        In batch mode the first miss at a level sketches that level for
        the *whole* batch in one vectorized pass; levels no query probes
        are never sketched.
        """
        key = (i, np.asarray(x, dtype=np.uint64).tobytes())
        addr = self._address_cache.get(key)
        if addr is None:
            if self._primer.prime(
                i,
                lambda points: self.family.accurate_addresses(i, points),
                self._address_cache,
                lambda point_bytes: (i, point_bytes),
            ):
                addr = self._address_cache.get(key)
                if addr is not None:
                    return addr
            addr = self.family.accurate_address(i, x)
            self._address_cache[key] = addr
        return addr

    def _main_requests(self, x: np.ndarray, levels: List[int]) -> List[ProbeRequest]:
        return [
            ProbeRequest(self.tables[i].table, self._address(i, x)) for i in levels
        ]

    @staticmethod
    def _first_nonempty(levels: List[int], contents: List[object]) -> Optional[int]:
        """Position (not level) of the first non-EMPTY content, or None."""
        for pos, content in enumerate(contents):
            if isinstance(content, PointWord):
                return pos
        return None

    @staticmethod
    def _draft(
        index: Optional[int],
        packed: Optional[np.ndarray],
        inv_trace=None,
        **meta: object,
    ) -> PlanDraft:
        if inv_trace is not None:
            meta["invariants"] = inv_trace.as_dict()
        return PlanDraft(answer_index=index, answer_packed=packed, meta=meta)

    # -- plan-protocol hooks --------------------------------------------------
    def make_accountant(self) -> ProbeAccountant:
        return ProbeAccountant(
            max_rounds=self.params.round_budget, max_probes=self.params.probe_budget
        )

    def begin_query(self) -> None:
        self._address_cache.clear()
        self._primer.reset()

    def batch_prepare(self, batch: np.ndarray) -> None:
        """Enter batch mode: per-level address sketching becomes one
        vectorized pass over the whole batch, done lazily the first time
        any query probes that level (see :meth:`_address`)."""
        self._primer.enter(batch)

    # -- the cell-probing algorithm -------------------------------------------
    def query(self, x: np.ndarray) -> QueryResult:
        """Answer one query; exact probe/round accounting in the result."""
        return run_query_plan(self, x)

    def query_plan(self, x: np.ndarray) -> QueryPlan:
        """The query as a round generator (see :mod:`repro.cellprobe.plan`).

        Yields each round's complete request list, receives the contents,
        and returns the draft answer; ``query`` and the batched engine both
        execute exactly this plan.
        """
        params = self.params
        l, u = 0, params.base.levels
        tau = params.tau
        first_round = True
        shrink_count = 0
        inv_trace = self.invariant_checker.start() if self.invariant_checker else None
        if self.invariant_checker:
            self.invariant_checker.record(inv_trace, x, l, u)

        while u - l >= tau:
            levels = interpolated_levels(l, u, tau)
            requests = self._main_requests(x, levels)
            if first_round:
                requests = self.degenerate.requests_for(x) + requests
            contents = yield requests
            if first_round:
                degenerate_hit = self.degenerate.interpret(contents[:2])
                contents = contents[2:]
                first_round = False
                if degenerate_hit is not None:
                    idx, packed, which = degenerate_hit
                    return self._draft(idx, packed, path=f"degenerate-{which}")
            pos = self._first_nonempty(levels, contents)
            if pos is None:
                l, u = levels[-1], u  # r* = τ: C stays nonempty only at u
            elif pos == 0:
                l, u = l, levels[0]  # r* = 1: transition in [l, ρ(1)]
            else:
                l, u = levels[pos - 1], levels[pos]
            shrink_count += 1
            if self.invariant_checker:
                self.invariant_checker.record(inv_trace, x, l, u)

        # Completion round over the remaining gap.
        levels = list(range(l + 1, u + 1))
        requests = self._main_requests(x, levels)
        if first_round:
            requests = self.degenerate.requests_for(x) + requests
        contents = yield requests
        if first_round:
            degenerate_hit = self.degenerate.interpret(contents[:2])
            contents = contents[2:]
            if degenerate_hit is not None:
                idx, packed, which = degenerate_hit
                return self._draft(idx, packed, path=f"degenerate-{which}")
        pos = self._first_nonempty(levels, contents)
        if pos is None:
            # Assumption 2 failed for this query's randomness: C_u was
            # believed nonempty but every probed level came back EMPTY.
            return self._draft(
                None, None, path="main", failed="empty-completion",
                shrink_rounds=shrink_count, inv_trace=inv_trace,
            )
        word = contents[pos]
        assert isinstance(word, PointWord)
        return self._draft(
            word.index,
            word.packed_array(),
            path="main",
            answer_level=levels[pos],
            shrink_rounds=shrink_count,
            inv_trace=inv_trace,
        )

    # -- size accounting ------------------------------------------------------
    def size_report(self) -> SchemeSizeReport:
        per_level = self.tables[0].table.logical_cells
        level_cells = (self.params.base.levels + 1) * per_level
        degenerate_cells = self.degenerate.logical_cells()
        names = [(t.table.name, t.table.logical_cells) for t in self.tables.values()]
        names.append(("degenerate", degenerate_cells))
        return SchemeSizeReport(
            table_cells=level_cells + degenerate_cells,
            word_bits=1 + self.database.d,
            table_names=names,
            notes=(
                f"public-coin sizes; Newman/Prop.6 private-coin blowup ×O(dn) "
                f"applies (see repro.lowerbound.newman); tau={self.params.tau}"
            ),
        )
