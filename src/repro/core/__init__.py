"""The paper's primary contribution: k-round randomized cell-probing
schemes for approximate nearest neighbor search (Theorems 9–11)."""

from repro.core.algorithm1 import SimpleKRoundScheme
from repro.core.algorithm2 import LargeKScheme
from repro.core.boosting import BoostedScheme
from repro.core.index import ANNIndex
from repro.core.invariants import InvariantChecker, InvariantTrace
from repro.core.lambda_ann import OneProbeNearNeighborScheme
from repro.core.params import Algorithm1Params, Algorithm2Params, BaseParameters
from repro.core.result import QueryResult, achieved_ratio

__all__ = [
    "ANNIndex",
    "Algorithm1Params",
    "Algorithm2Params",
    "BaseParameters",
    "BoostedScheme",
    "InvariantChecker",
    "InvariantTrace",
    "LargeKScheme",
    "OneProbeNearNeighborScheme",
    "QueryResult",
    "SimpleKRoundScheme",
    "achieved_ratio",
]
