"""Success amplification by parallel repetition (Section 2 remark).

For nearest-neighbor search, once the query is fixed there is a monotone
order of answer quality (closer is better), so any constant success
probability boosts to ``1 − ε`` by running ``O(log 1/ε)`` independent
copies of the scheme *in parallel* and returning the best answer.  The
repetitions share rounds — round ``i`` of every copy executes together —
so the round complexity is unchanged while probes scale linearly.

The wrapper re-instantiates the underlying scheme with independent
public-coin seeds.  Its :meth:`BoostedScheme.query_plan` drives every
copy's plan in lockstep and yields the concatenation of the copies'
current rounds, which reproduces the parallel-repetition accounting
directly: global round ``i`` contains each copy's round-``i`` probes, in
copy order — exactly what merging per-copy accountants via
:meth:`~repro.cellprobe.accounting.ProbeAccountant.merge_parallel` used
to produce.  Each copy keeps its own semantics:

* a private meter (with the copy's probe/round budgets) is charged with
  the copy's own round structure — including one-probe-per-round
  serialization when the copy's sessions would serialize — and the
  yielded global rounds are built from the same adapted structure;
* each finished copy's draft goes through the copy's own ``finalize``
  against that meter, so copy-level metadata (Algorithm 2's
  ``probe_budget_ok`` / ``round_budget_ok`` flags) survives into
  ``winner_meta`` unchanged.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.cellprobe.accounting import ProbeAccountant
from repro.cellprobe.plan import PlanDraft, QueryPlan, run_query_plan
from repro.cellprobe.scheme import (
    CellProbingScheme,
    SchemeSizeReport,
    prefix_arrays,
    split_arrays,
)
from repro.cellprobe.session import ProbeRequest
from repro.core.result import QueryResult
from repro.hamming.distance import hamming_distance

__all__ = ["BoostedScheme"]


class _CopyDriver:
    """Per-copy lockstep state: the copy's plan, its private budget meter,
    and the current round split into the rounds the copy's own session
    would record (singletons when the copy serializes)."""

    def __init__(self, copy: CellProbingScheme, x: np.ndarray):
        self.copy = copy
        self.plan = copy.query_plan(x)
        self.meter = copy.make_accountant()
        self.serializes = copy.serializes_rounds()
        self.result: Optional[QueryResult] = None
        self.queue: List[List[ProbeRequest]] = []
        self.buffer: List[object] = []

    def advance(self, contents: Optional[List[object]]) -> bool:
        """Feed the previous round's contents; stage the next one.

        Returns False when the copy's plan finished (result is set).
        Empty rounds are delivered immediately — sessions never open them.
        """
        while True:
            try:
                requests = next(self.plan) if contents is None else self.plan.send(contents)
            except StopIteration as stop:
                self.result = self.copy.finalize(stop.value, self.meter)
                return False
            if requests:
                self.queue = [[r] for r in requests] if self.serializes else [requests]
                self.buffer = []
                return True
            contents = []

    def stage_round(self) -> List[ProbeRequest]:
        """Pop the next adapted round and charge it to the private meter."""
        requests = self.queue.pop(0)
        record = self.meter.begin_round()
        self.meter.charge_round(
            record, [(req.table.name, req.address) for req in requests]
        )
        return requests


class BoostedScheme(CellProbingScheme):
    """Runs ``copies`` independent instances in parallel, keeps the best.

    Parameters
    ----------
    factory : builds one scheme instance given a seed (copies use seeds
        ``seed_base + 0..copies-1`` derived by the caller)
    seeds : the per-copy public-coin seeds
    """

    scheme_name = "boosted"

    def __init__(self, factory: Callable[[int], CellProbingScheme], seeds: List[int]):
        if not seeds:
            raise ValueError("need at least one seed / copy")
        self.copies: List[CellProbingScheme] = [factory(s) for s in seeds]
        self.inner_name = self.copies[0].scheme_name
        self.scheme_name = f"boosted({self.inner_name}×{len(seeds)})"

    @property
    def k(self) -> Optional[int]:
        return getattr(self.copies[0], "k", None)

    # -- plan-protocol hooks --------------------------------------------------
    def begin_query(self) -> None:
        for copy in self.copies:
            copy.begin_query()

    def batch_prepare(self, batch: np.ndarray) -> None:
        for copy in self.copies:
            copy.batch_prepare(batch)

    def supports_plans(self) -> bool:
        """Plan-driven only when every copy is (drivers check this before
        entering the lockstep path)."""
        return all(copy.supports_plans() for copy in self.copies)

    # -- persistence ----------------------------------------------------------
    def export_arrays(self) -> Dict[str, np.ndarray]:
        """Every copy's payload, namespaced ``copy<i>/...``."""
        out: Dict[str, np.ndarray] = {}
        for i, copy in enumerate(self.copies):
            out.update(prefix_arrays(f"copy{i}", copy.export_arrays()))
        return out

    def restore_arrays(self, arrays: Dict[str, np.ndarray]) -> None:
        groups = split_arrays(arrays)
        for scope, group in groups.items():
            if not scope.startswith("copy"):
                raise ValueError(f"unknown array scope {scope!r} for boosted scheme")
            index = int(scope[len("copy"):])
            if not (0 <= index < len(self.copies)):
                raise ValueError(
                    f"payload names copy {index} but the scheme has "
                    f"{len(self.copies)} copies"
                )
            self.copies[index].restore_arrays(group)

    def prewarm(self) -> None:
        for copy in self.copies:
            copy.prewarm()

    def query(self, x: np.ndarray) -> QueryResult:
        """All copies answer in shared rounds; the closest point wins."""
        if self.supports_plans():
            return run_query_plan(self, x)
        return self._query_independent(x)

    def _query_independent(self, x: np.ndarray) -> QueryResult:
        """Fallback for plan-less copies (e.g. baselines): each copy runs
        its own query; accountants merge positionally as parallel rounds."""
        results = [copy.query(x) for copy in self.copies]
        merged = ProbeAccountant()
        for res in results:
            merged.merge_parallel(res.accountant)
        best: Optional[QueryResult] = None
        best_dist: Optional[int] = None
        for res in results:
            if res.answer_packed is None:
                continue
            dist = hamming_distance(x, res.answer_packed)
            if best_dist is None or dist < best_dist:
                best, best_dist = res, dist
        answered = sum(1 for r in results if r.answered)
        meta = {
            "copies": len(self.copies),
            "copies_answered": answered,
            "inner": self.inner_name,
        }
        if best is None:
            return QueryResult(None, None, merged, scheme=self.scheme_name, meta=meta)
        return QueryResult(
            best.answer_index,
            best.answer_packed,
            merged,
            scheme=self.scheme_name,
            meta={**meta, "winner_meta": dict(best.meta)},
        )

    def query_plan(self, x: np.ndarray) -> QueryPlan:
        """Lockstep interleaving of the copies' plans.

        Every iteration yields the concatenation of all still-running
        copies' next rounds (copy order, each adapted to the copy's own
        round structure), splits the received contents back per copy, and
        advances a copy's plan once its full round has been delivered.
        """
        drivers = [_CopyDriver(copy, x) for copy in self.copies]
        active: Dict[int, _CopyDriver] = {}
        for i, driver in enumerate(drivers):
            if driver.advance(None):
                active[i] = driver
        while active:
            spans: List[Tuple[int, int]] = []
            flat: List[ProbeRequest] = []
            for i in list(active):  # insertion order == copy order
                requests = active[i].stage_round()
                spans.append((i, len(requests)))
                flat.extend(requests)
            contents = yield flat
            pos = 0
            for i, size in spans:
                driver = active[i]
                driver.buffer.extend(contents[pos:pos + size])
                pos += size
                if not driver.queue and not driver.advance(driver.buffer):
                    del active[i]

        best: Optional[QueryResult] = None
        best_dist: Optional[int] = None
        for driver in drivers:
            result = driver.result
            if result.answer_packed is None:
                continue
            dist = hamming_distance(x, result.answer_packed)
            if best_dist is None or dist < best_dist:
                best, best_dist = result, dist
        answered = sum(1 for driver in drivers if driver.result.answered)
        meta = {
            "copies": len(self.copies),
            "copies_answered": answered,
            "inner": self.inner_name,
        }
        if best is None:
            return PlanDraft(None, None, meta)
        return PlanDraft(
            best.answer_index,
            best.answer_packed,
            {**meta, "winner_meta": dict(best.meta)},
        )

    def size_report(self) -> SchemeSizeReport:
        reports = [c.size_report() for c in self.copies]
        return SchemeSizeReport(
            table_cells=sum(r.table_cells for r in reports),
            word_bits=max(r.word_bits for r in reports),
            table_names=[(f"copy{i}", r.table_cells) for i, r in enumerate(reports)],
            notes=f"{len(reports)} parallel copies of {self.inner_name}",
        )
