"""Success amplification by parallel repetition (Section 2 remark).

For nearest-neighbor search, once the query is fixed there is a monotone
order of answer quality (closer is better), so any constant success
probability boosts to ``1 − ε`` by running ``O(log 1/ε)`` independent
copies of the scheme *in parallel* and returning the best answer.  The
repetitions share rounds — round ``i`` of every copy executes together —
so the round complexity is unchanged while probes scale linearly.

The wrapper re-instantiates the underlying scheme with independent
public-coin seeds; probe accounting merges per-round via
:meth:`~repro.cellprobe.accounting.ProbeAccountant.merge_parallel`.
"""

from __future__ import annotations

from typing import Callable, List, Optional

import numpy as np

from repro.cellprobe.accounting import ProbeAccountant
from repro.cellprobe.scheme import CellProbingScheme, SchemeSizeReport
from repro.core.result import QueryResult
from repro.hamming.distance import hamming_distance

__all__ = ["BoostedScheme"]


class BoostedScheme(CellProbingScheme):
    """Runs ``copies`` independent instances in parallel, keeps the best.

    Parameters
    ----------
    factory : builds one scheme instance given a seed (copies use seeds
        ``seed_base + 0..copies-1`` derived by the caller)
    seeds : the per-copy public-coin seeds
    """

    scheme_name = "boosted"

    def __init__(self, factory: Callable[[int], CellProbingScheme], seeds: List[int]):
        if not seeds:
            raise ValueError("need at least one seed / copy")
        self.copies: List[CellProbingScheme] = [factory(s) for s in seeds]
        self.inner_name = self.copies[0].scheme_name
        self.scheme_name = f"boosted({self.inner_name}×{len(seeds)})"

    @property
    def k(self) -> Optional[int]:
        return getattr(self.copies[0], "k", None)

    def query(self, x: np.ndarray) -> QueryResult:
        """All copies answer; the closest returned point wins."""
        results = [copy.query(x) for copy in self.copies]
        merged = ProbeAccountant()
        for res in results:
            merged.merge_parallel(res.accountant)
        best: Optional[QueryResult] = None
        best_dist: Optional[int] = None
        for res in results:
            if res.answer_packed is None:
                continue
            dist = hamming_distance(x, res.answer_packed)
            if best_dist is None or dist < best_dist:
                best, best_dist = res, dist
        answered = sum(1 for r in results if r.answered)
        meta = {
            "copies": len(self.copies),
            "copies_answered": answered,
            "inner": self.inner_name,
        }
        if best is None:
            return QueryResult(None, None, merged, scheme=self.scheme_name, meta=meta)
        return QueryResult(
            best.answer_index,
            best.answer_packed,
            merged,
            scheme=self.scheme_name,
            meta={**meta, "winner_meta": dict(best.meta)},
        )

    def size_report(self) -> SchemeSizeReport:
        reports = [c.size_report() for c in self.copies]
        return SchemeSizeReport(
            table_cells=sum(r.table_cells for r in reports),
            word_bits=max(r.word_bits for r in reports),
            table_names=[(f"copy{i}", r.table_cells) for i, r in enumerate(reports)],
            notes=f"{len(reports)} parallel copies of {self.inner_name}",
        )
