"""Scheme parameters: validation and the derived constants of Theorems 9/10.

Two profiles exist for the sketch row counts:

* ``theory`` — rows sized by the Hoeffding bound of
  :func:`repro.core.delta.sandwich_margin_rows` with a union bound over all
  points and levels, mirroring the paper's ``c₁, c₂ > 64/(1−e^{(1−α)/2})²``
  constants.  Guarantees Lemma 8 at any scale but makes sketches wide.
* ``empirical`` — user-supplied (or default) ``c₁, c₂`` multipliers of
  ``log₂ n``, sized so the measured success probability already clears the
  paper's 3/4 floor at laptop scale (experiment E4 maps the knee).

Both algorithms share :class:`BaseParameters`; the per-algorithm classes
add the round bookkeeping: ``τ`` for Algorithm 1 (Theorem 9's
``τ(τ/2)^{k−1} ≥ ⌈log_α d⌉``), and ``(τ, s)`` plus the phase budgets for
Algorithm 2 (Theorem 10).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from functools import cached_property
from typing import Optional

from repro.core.delta import sandwich_margin_rows
from repro.utils.intmath import ceil_div, num_levels

__all__ = [
    "Algorithm1Params",
    "Algorithm2Params",
    "BaseParameters",
    "worst_case_shrinking_rounds",
]

#: γ is clamped to (1, 4): the paper assumes γ < 4 WLOG (a larger γ only
#: weakens the requested guarantee, and the α = √γ < 2 machinery covers it).
GAMMA_CAP = 4.0


def worst_case_shrinking_rounds(levels: int, tau: int) -> int:
    """Shrinking rounds Algorithm 1 needs in the worst case.

    One shrinking round turns a gap ``g ≥ τ`` into at most
    ``⌊g/τ⌋ + 1``; iterate from ``g = levels`` until ``g < τ``.
    """
    if tau < 2:
        raise ValueError(f"tau must be >= 2, got {tau}")
    g = int(levels)
    rounds = 0
    while g >= tau:
        g_next = g // tau + 1
        if g_next >= g:  # tau == 2 and g == 2 edge: gap 2 -> 2; forbid stall
            g_next = g - 1
        g = g_next
        rounds += 1
        if rounds > 10_000:  # pragma: no cover - safety net
            raise RuntimeError("shrinking-round recurrence failed to converge")
    return rounds


@dataclass(frozen=True)
class BaseParameters:
    """Shared problem/scheme parameters.

    Parameters
    ----------
    n : database size (must exceed 1)
    d : Hamming-cube dimension
    gamma : approximation ratio γ > 1 (clamped to < 4 internally)
    c1 : accurate-sketch row multiplier (``rows = max(8, round(c1·log₂ n))``)
    c2 : coarse-sketch row multiplier (Algorithm 2 only)
    profile : "empirical" (default) or "theory" (Hoeffding-sized rows)
    failure_prob : target simultaneous failure probability for Lemma 8 in
        theory profile (paper: 1/4)
    """

    n: int
    d: int
    gamma: float = 4.0
    c1: float = 6.0
    c2: float = 6.0
    profile: str = "empirical"
    failure_prob: float = 0.25

    def __post_init__(self) -> None:
        if self.n < 2:
            raise ValueError(f"n must be >= 2, got {self.n}")
        if self.d < 4:
            raise ValueError(f"d must be >= 4, got {self.d}")
        if self.gamma <= 1.0:
            raise ValueError(f"gamma must be > 1, got {self.gamma}")
        if self.profile not in ("empirical", "theory"):
            raise ValueError(f"unknown profile {self.profile!r}")
        if self.c1 <= 0 or self.c2 <= 0:
            raise ValueError("c1 and c2 must be positive")

    @classmethod
    def for_database(
        cls,
        database,
        gamma: float = 4.0,
        c1: float = 6.0,
        c2: float = 6.0,
        profile: str = "empirical",
    ) -> "BaseParameters":
        """Parameters sized to a :class:`~repro.hamming.points.PackedPoints`
        database (``n`` and ``d`` read off the database itself)."""
        return cls(n=len(database), d=database.d, gamma=gamma, c1=c1, c2=c2,
                   profile=profile)

    # -- derived geometry ---------------------------------------------------
    @cached_property
    def effective_gamma(self) -> float:
        """γ after the WLOG cap at 4."""
        return min(self.gamma, GAMMA_CAP)

    @cached_property
    def alpha(self) -> float:
        """Level base ``α = √γ`` (with the γ < 4 cap, so α < 2)."""
        return math.sqrt(self.effective_gamma)

    @cached_property
    def levels(self) -> int:
        """Top level ``L = ⌈log_α d⌉``; level radii are ``αⁱ, i = 0..L``."""
        return num_levels(self.d, self.alpha)

    # -- sketch sizing ------------------------------------------------------
    @cached_property
    def accurate_rows(self) -> int:
        """Output bits of each accurate sketch ``M_i``."""
        if self.profile == "theory":
            # Union bound over n points × (levels+1) levels, split evenly.
            per_event = self.failure_prob / (self.n * (self.levels + 1) * 2.0)
            # Level 0 has the smallest separation gap -> widest requirement.
            return sandwich_margin_rows(self.alpha, 0, per_event)
        return max(8, round(self.c1 * math.log2(self.n)))

    def coarse_rows(self, s: float) -> int:
        """Output bits of each coarse sketch ``N_j`` for real-valued ``s``."""
        if s <= 0:
            raise ValueError(f"s must be positive, got {s}")
        if self.profile == "theory":
            per_event = self.n ** (-1.0 / s)
            return sandwich_margin_rows(self.alpha, 0, max(1e-12, min(0.5, per_event)))
        return max(4, round(self.c2 * math.log2(self.n) / s))


@dataclass(frozen=True)
class Algorithm1Params:
    """Parameters of Theorem 9's simple k-round scheme."""

    base: BaseParameters
    k: int = 2
    tau_override: Optional[int] = None

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ValueError(f"k must be >= 1, got {self.k}")
        if self.tau_override is not None and self.tau_override < 2:
            raise ValueError(f"tau must be >= 2, got {self.tau_override}")

    @cached_property
    def tau(self) -> int:
        """The branching factor ``τ``.

        The smallest integer with ``τ(τ/2)^{k−1} ≥ L + 1`` (the strict
        version of Theorem 9's condition, so the gap is strictly below τ
        after k−1 shrinking rounds); matches the closed form
        ``τ = Θ((log d)^{1/k})``.
        """
        if self.tau_override is not None:
            return self.tau_override
        target = self.base.levels + 1
        if self.k == 1:
            return target + 1  # no shrinking rounds: completion must cover L
        tau = 3
        while tau * (tau / 2.0) ** (self.k - 1) < target:
            tau += 1
        return tau

    @cached_property
    def shrinking_round_budget(self) -> int:
        """Worst-case shrinking rounds (must be ≤ k − 1 for paper-τ)."""
        return worst_case_shrinking_rounds(self.base.levels, self.tau)

    @cached_property
    def probe_budget(self) -> int:
        """Total probe budget: shrinking rounds × (τ−1) + completion (≤ τ−1)
        + 2 degenerate probes."""
        return self.shrinking_round_budget * (self.tau - 1) + (self.tau - 1) + 2

    @cached_property
    def round_budget(self) -> int:
        """Round budget ``k`` (degenerate probes fold into round 1)."""
        return max(1, self.shrinking_round_budget + 1)

    def theoretical_probe_curve(self) -> float:
        """The claim's envelope ``k · (log₂ d)^{1/k}`` for reporting."""
        return self.k * (math.log2(self.base.d)) ** (1.0 / self.k)


@dataclass(frozen=True)
class Algorithm2Params:
    """Parameters of Theorem 10's large-k scheme.

    ``theory_strict=True`` enforces the paper's ``k > 5c²/(c−2)`` regime;
    the default accepts any ``k`` large enough that ``s ≥ 1`` so the scheme
    can also be exercised (and measured) at laptop-scale round counts, with
    phase-budget violations surfaced in query metadata rather than hidden.
    """

    base: BaseParameters
    k: int = 16
    c: float = 3.0
    s_override: Optional[int] = None
    theory_strict: bool = False

    def __post_init__(self) -> None:
        if self.c <= 2:
            raise ValueError(f"c must be > 2, got {self.c}")
        if self.k < 3:
            raise ValueError(f"k must be >= 3, got {self.k}")
        if self.theory_strict:
            bound = 5.0 * self.c * self.c / (self.c - 2.0)
            if self.k <= bound:
                raise ValueError(
                    f"theory_strict requires k > 5c²/(c−2) = {bound:.1f}, got {self.k}"
                )
        if self.s_override is not None and self.s_override < 1:
            raise ValueError(f"s must be >= 1, got {self.s_override}")
        if self.s_override is None and self.s_real < 1.0:
            raise ValueError(
                f"k={self.k}, c={self.c} give s={self.s_real:.3f} < 1; "
                f"increase k (need k ≥ {math.ceil((1.25 + 1) / (0.25 - 0.5 / self.c))}) "
                "or pass s_override"
            )

    @cached_property
    def s_real(self) -> float:
        """The paper's ``s = (1/4 − 1/(2c))k − 1/4``."""
        return (0.25 - 0.5 / self.c) * self.k - 0.25

    @cached_property
    def s(self) -> int:
        """Integer group capacity (coarse sets per auxiliary probe)."""
        if self.s_override is not None:
            return self.s_override
        return max(1, math.floor(self.s_real))

    @cached_property
    def phase_budget(self) -> int:
        """Maximum shrinking phases ``⌊(k−1)/2⌋``."""
        return (self.k - 1) // 2

    @cached_property
    def size_shrink_budget(self) -> int:
        """Phases in which ``|C_u|`` may shrink instead of the gap: ``2s``."""
        return 2 * self.s

    @cached_property
    def gap_shrink_budget(self) -> int:
        """Phases available for shrinking the gap ``u − l``."""
        return max(0, self.phase_budget - self.size_shrink_budget)

    @cached_property
    def completion_cut(self) -> int:
        """Completion triggers when ``u − l < max(3τ, k)``."""
        return max(3 * self.tau, self.k)

    @cached_property
    def tau(self) -> int:
        """Branching factor: smallest ``τ ≥ 3`` whose gap-shrink budget
        brings the gap below the completion cut.

        Matches Theorem 10's ``(τ/2)^{(k−1)/2 − 2s} ≥ ⌈log_α d / k⌉``
        condition; when the gap-shrink budget is zero the completion cut
        itself must cover all levels, handled by widening τ.
        """
        levels = self.base.levels
        budget = self.gap_shrink_budget
        if budget <= 0:
            # Completion must trigger immediately: max(3τ, k) > L.
            if self.k > levels:
                return 3
            return max(3, ceil_div(levels + 1, 3))
        target = ceil_div(levels + 1, max(3, self.k))
        tau = 3
        while (tau / 2.0) ** budget < target:
            tau += 1
        return tau

    @cached_property
    def groups_per_phase(self) -> int:
        """Auxiliary probes per phase: ``⌈(τ−1)/s⌉``."""
        return ceil_div(max(1, self.tau - 1), self.s)

    @cached_property
    def probe_budget(self) -> int:
        """Total probes: phases × (groups + 2) + completion + degenerate."""
        per_phase = self.groups_per_phase + 2  # +Tu probe, +2nd-round probe
        return self.phase_budget * per_phase + self.completion_cut + 2

    @cached_property
    def round_budget(self) -> int:
        """Round budget: 2 per phase + completion."""
        return 2 * self.phase_budget + 1

    def theoretical_probe_curve(self) -> float:
        """The claim's envelope ``k + ((log₂ d)/k)^{c/k}`` for reporting."""
        return self.k + (math.log2(self.base.d) / self.k) ** (self.c / self.k)
