"""Debug-time invariant checking for the multi-way searches.

Both algorithms maintain the loop invariant ``C_l = ∅ ∧ C_u ≠ ∅`` across
every threshold update (Section 3).  The checker evaluates the *actual*
``C_i`` sets through the table-side evaluator after each update — an
out-of-band oracle that charges no probes — and records violations.

A violation is not a bug in the implementation: the invariant only holds
*conditioned on* Assumptions 1–2 (Lemma 8's sandwich), which fail with
probability ≤ 1/4 over the public randomness.  The checker therefore
reports violation *rates*, which tests bound, rather than asserting zero.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.sketch.approx_balls import ApproxBallEvaluator
from repro.sketch.family import SketchFamily

__all__ = ["InvariantChecker", "InvariantTrace"]


@dataclass
class InvariantTrace:
    """Per-query record of invariant evaluations.

    ``steps`` holds ``(l, u, lower_ok, upper_ok)`` per threshold update,
    where ``lower_ok ⇔ C_l = ∅`` and ``upper_ok ⇔ C_u ≠ ∅``.
    """

    steps: List[Tuple[int, int, bool, bool]] = field(default_factory=list)

    @property
    def checked(self) -> int:
        return len(self.steps)

    @property
    def violations(self) -> int:
        return sum(1 for _, _, lo, up in self.steps if not (lo and up))

    @property
    def ok(self) -> bool:
        return self.violations == 0

    def as_dict(self) -> dict:
        return {"checked": self.checked, "violations": self.violations}


class InvariantChecker:
    """Evaluates the ``C_l = ∅ ∧ C_u ≠ ∅`` invariant out of band.

    Parameters
    ----------
    evaluator : the scheme's table-side evaluator (shares its randomness)
    family : the scheme's sketch family (to compute addresses for ``x``)
    """

    def __init__(self, evaluator: ApproxBallEvaluator, family: SketchFamily):
        self.evaluator = evaluator
        self.family = family

    def start(self) -> InvariantTrace:
        """A fresh per-query trace."""
        return InvariantTrace()

    def record(self, trace: Optional[InvariantTrace], x: np.ndarray, l: int, u: int) -> None:
        """Evaluate and record the invariant at thresholds ``(l, u)``.

        Level ``l = 0`` is checked like any other (the initial ``C_0 = ∅``
        requires Assumptions 1–2 too); ``no-op`` when ``trace`` is None so
        schemes can make checking optional at zero cost.
        """
        if trace is None:
            return
        lower_ok = self.evaluator.c_count(l, self.family.accurate_address(l, x)) == 0
        upper_ok = self.evaluator.c_count(u, self.family.accurate_address(u, x)) > 0
        trace.steps.append((int(l), int(u), lower_ok, upper_ok))
