"""Streaming mutation state: tombstones, the insert memtable, compaction.

Every scheme in the package builds a *static* structure for a fixed
database.  :class:`MutationState` is the bookkeeping that dynamizes such
a structure the classic way (tombstones + write buffer + amortized
rebuild), shared by :class:`~repro.core.index.ANNIndex` and, through it,
the sharded and async serving layers:

* **Tombstones** — a bitmap over the static rows, consulted at
  result-merge time (:func:`repro.service.engine.merge_mutation_candidates`)
  so a deleted row can never surface as an answer.  Checking the bitmap
  is metadata work, not a cell probe, so it is never charged.
* **Memtable** — fresh inserts, kept out of the static structure and
  *exactly* scanned at query time (one probe per live memtable row,
  charged as one extra parallel round merged with the static rounds).
* **Generations** — the amortized rebuild counter.  Compaction rebuilds
  the static structure from the surviving rows through the registry with
  seed ``RngTree(seed).child("generation", g)`` (:func:`generation_seed`),
  which is what makes the rebuild-equivalence oracle reproducible: after
  compaction to generation ``g`` the index is *bitwise identical* — same
  answers, same probe/round accounting — to a fresh
  ``ANNIndex.from_spec(survivors, spec.replace(seed=generation_seed(seed, g)))``.

**Row ids are positional and remap at compaction** (the FAISS
``remove_ids`` convention): at any moment ids ``0..n_static-1`` are the
static rows (tombstoned ids stay allocated but dead) and ids
``n_static..n_static+m-1`` are the memtable entries in insertion order;
compaction renumbers the survivors — static survivors first, in id
order, then live memtable rows — to ``0..live-1``.

The invariant the property harness in
``tests/integration/test_mutation_properties.py`` checks at every step:
the answer of a mutated index is exactly the documented merge of (a) a
fresh registry build of the current generation's base rows under the
generation seed and (b) the exact memtable scan, with tombstoned rows
filtered — i.e. query answers are a pure function of
``(base rows, seed, generation, tombstones, memtable)``, never of the
mutation history that produced them.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.utils.rng import RngTree

__all__ = [
    "DEFAULT_COMPACT_THRESHOLD",
    "Memtable",
    "MutationState",
    "coerce_delete_ids",
    "generation_seed",
]


def coerce_delete_ids(ids) -> np.ndarray:
    """Validated int64 id array for a delete call.

    The single id-validation gate shared by every delete surface
    (:meth:`MutationState.delete_ids`, the sharded index, the async
    service, the wire client): the list must be flat, genuinely integer
    (int64-casting a float array would silently truncate and delete the
    wrong row), and free of within-call duplicates.
    """
    raw = np.atleast_1d(np.asarray(ids))
    if raw.ndim != 1:
        raise ValueError(f"delete expects a flat id list, got shape {raw.shape}")
    if raw.size == 0:
        return raw.astype(np.int64)
    if not np.issubdtype(raw.dtype, np.integer):
        raise ValueError(f"ids must be integers, got dtype {raw.dtype}")
    arr = raw.astype(np.int64)
    unique, counts = np.unique(arr, return_counts=True)
    repeated = unique[counts > 1]
    if repeated.size:
        raise ValueError(f"duplicate ids in one delete call: {repeated.tolist()}")
    return arr

#: Compact once (tombstones + memtable entries) exceed this fraction of
#: the static row count.  ``float("inf")`` disables auto-compaction.
DEFAULT_COMPACT_THRESHOLD = 0.25


def generation_seed(seed: int, generation: int) -> int:
    """The public-coin seed of rebuild generation ``generation``.

    Generation 0 is the original build, so it keeps the root seed
    (existing snapshots and specs stay bitwise-reproducible); generation
    ``g >= 1`` derives ``RngTree(seed).child("generation", g)`` — a
    deterministic, collision-free stream per rebuild, so the
    rebuild-equivalence oracle can re-derive any generation's coins from
    the root spec alone.
    """
    if seed is None:
        raise ValueError("generation seeds need a concrete root seed")
    if generation == 0:
        return int(seed)
    return RngTree(int(seed)).child("generation", int(generation)).root_entropy


class Memtable:
    """Fresh inserts, exactly scanned at query time.

    Entries keep their position (and therefore their global id) until the
    next compaction; deleting a memtable entry marks it dead in place so
    later entries' ids never shift between compactions.
    """

    __slots__ = ("_word_count", "_rows", "_deleted", "_live_count", "_live_cache")

    def __init__(self, word_count: int):
        self._word_count = int(word_count)
        self._rows: List[np.ndarray] = []
        self._deleted: List[bool] = []
        self._live_count = 0
        # (positions, words) of the live entries; queried on every merge,
        # invalidated on every mutation.
        self._live_cache: Optional[Tuple[np.ndarray, np.ndarray]] = None

    def __len__(self) -> int:
        """Total entries, dead ones included (they still occupy ids)."""
        return len(self._rows)

    @property
    def word_count(self) -> int:
        return self._word_count

    @property
    def live_count(self) -> int:
        """Entries that are still live (scanned per query, one probe each)."""
        return self._live_count

    def append(self, row: np.ndarray) -> int:
        """Add one packed row; returns its memtable position."""
        arr = np.asarray(row, dtype=np.uint64).ravel()
        if arr.shape[0] != self._word_count:
            raise ValueError(
                f"memtable rows have {self._word_count} words, got {arr.shape[0]}"
            )
        self._rows.append(arr.copy())
        self._deleted.append(False)
        self._live_count += 1
        self._live_cache = None
        return len(self._rows) - 1

    def is_live(self, position: int) -> bool:
        return 0 <= position < len(self._rows) and not self._deleted[position]

    def delete(self, position: int) -> None:
        """Mark one live entry dead (caller validates liveness first)."""
        if not self.is_live(position):
            raise ValueError(f"memtable position {position} is not live")
        self._deleted[position] = True
        self._live_count -= 1
        self._live_cache = None

    def live_entries(self) -> Tuple[np.ndarray, np.ndarray]:
        """``(positions, words)`` of the live entries, in position order.

        Position order is insertion order, so the first minimum of a
        distance scan over ``words`` is automatically the smallest global
        id — the tie-break rule of the result merge.  Cached between
        mutations: queries hit this on every merge.
        """
        if self._live_cache is None:
            positions = np.array(
                [i for i, dead in enumerate(self._deleted) if not dead],
                dtype=np.int64,
            )
            if positions.size == 0:
                words = np.empty((0, self._word_count), dtype=np.uint64)
            else:
                words = np.vstack([self._rows[i] for i in positions])
            self._live_cache = (positions, words)
        return self._live_cache

    def all_entries(self) -> Tuple[np.ndarray, np.ndarray]:
        """``(words, deleted)`` for every entry in position order (the
        persistence payload — dead entries ship too, so ids survive a
        save/load cycle unchanged)."""
        words = (
            np.vstack(self._rows)
            if self._rows
            else np.empty((0, self._word_count), dtype=np.uint64)
        )
        return words, np.array(self._deleted, dtype=bool)


class MutationState:
    """Tombstones + memtable + generation counter for one static database.

    All id arithmetic lives here; :class:`~repro.core.index.ANNIndex`
    owns one instance and swaps in a fresh one at each compaction.
    """

    def __init__(
        self,
        n_static: int,
        word_count: int,
        compact_threshold: float = DEFAULT_COMPACT_THRESHOLD,
        generation: int = 0,
    ):
        if not (compact_threshold > 0):  # also rejects NaN
            raise ValueError(
                f"compact_threshold must be > 0 (inf disables), got {compact_threshold}"
            )
        self.n_static = int(n_static)
        self.compact_threshold = float(compact_threshold)
        self.generation = int(generation)
        self.tombstones = np.zeros(self.n_static, dtype=bool)
        self.tombstone_count = 0
        self.memtable = Memtable(word_count)

    # -- derived counts ----------------------------------------------------
    @property
    def id_space(self) -> int:
        """Allocated ids: static rows plus every memtable entry ever added."""
        return self.n_static + len(self.memtable)

    @property
    def live_count(self) -> int:
        return self.n_static - self.tombstone_count + self.memtable.live_count

    @property
    def dirty_count(self) -> int:
        """Rows a compaction would clean up: tombstones + memtable entries."""
        return self.tombstone_count + len(self.memtable)

    @property
    def merge_needed(self) -> bool:
        """Whether query results need the mutation merge at all.

        False exactly when no static row is tombstoned and no live
        memtable row exists — then results pass through untouched, which
        is what makes a freshly compacted index bitwise-identical to a
        from-scratch build.
        """
        return self.tombstone_count > 0 or self.memtable.live_count > 0

    def should_compact(self) -> bool:
        """The amortized trigger: dirty fraction over the static size.

        Never triggers below 2 live rows (no registered scheme can build
        on fewer); the dirt stays buffered until rows return.
        """
        if self.dirty_count == 0 or self.live_count < 2:
            return False
        return self.dirty_count > self.compact_threshold * max(1, self.n_static)

    # -- id queries --------------------------------------------------------
    def is_live(self, global_id: int) -> bool:
        gid = int(global_id)
        if 0 <= gid < self.n_static:
            return not self.tombstones[gid]
        return self.memtable.is_live(gid - self.n_static)

    def live_ids(self) -> np.ndarray:
        """All live global ids, ascending (static rows then memtable)."""
        static_live = np.flatnonzero(~self.tombstones).astype(np.int64)
        positions, _ = self.memtable.live_entries()
        return np.concatenate([static_live, positions + self.n_static])

    # -- mutations ---------------------------------------------------------
    def insert_rows(self, words: np.ndarray) -> List[int]:
        """Append packed rows to the memtable; returns their global ids."""
        return [self.n_static + self.memtable.append(row) for row in words]

    def delete_ids(self, ids) -> int:
        """Tombstone/kill the given global ids; returns how many.

        Validates *everything* before touching any state, so a bad id —
        out of range, already dead, or repeated within the call — leaves
        the index unchanged (the call is atomic).
        """
        arr = coerce_delete_ids(ids)
        if arr.size == 0:
            return 0
        bad = [int(g) for g in arr if not (0 <= g < self.id_space)]
        if bad:
            raise ValueError(
                f"ids out of range [0, {self.id_space}): {bad}"
            )
        dead = [int(g) for g in arr if not self.is_live(int(g))]
        if dead:
            raise ValueError(f"ids already deleted: {dead}")
        for gid in arr:
            gid = int(gid)
            if gid < self.n_static:
                self.tombstones[gid] = True
                self.tombstone_count += 1
            else:
                self.memtable.delete(gid - self.n_static)
        return int(arr.size)

    # -- compaction support ------------------------------------------------
    def survivor_words(self, static_words: np.ndarray) -> np.ndarray:
        """The live rows in the post-compaction id order: static survivors
        (original id order) followed by live memtable rows (insertion
        order)."""
        static_live = static_words[~self.tombstones]
        _, mem_words = self.memtable.live_entries()
        return np.concatenate([static_live, mem_words], axis=0)

    # -- persistence hooks -------------------------------------------------
    def export_arrays(self) -> dict:
        """The snapshot-format-v2 mutation payload (``database.npz`` keys)."""
        words, deleted = self.memtable.all_entries()
        return {
            "tombstones": self.tombstones.astype(np.uint8),
            "memtable_words": words,
            "memtable_deleted": deleted.astype(np.uint8),
        }

    def restore_arrays(
        self,
        tombstones: np.ndarray,
        memtable_words: np.ndarray,
        memtable_deleted: np.ndarray,
    ) -> None:
        """Install a v2 snapshot's mutation payload (validating shapes)."""
        stones = np.asarray(tombstones)
        if stones.shape != (self.n_static,):
            raise ValueError(
                f"tombstone bitmap has shape {stones.shape}, "
                f"expected ({self.n_static},)"
            )
        words = np.asarray(memtable_words, dtype=np.uint64)
        if words.ndim != 2 or words.shape[1] != self.memtable.word_count:
            raise ValueError(
                f"memtable words have shape {words.shape}, expected "
                f"(m, {self.memtable.word_count})"
            )
        deleted = np.asarray(memtable_deleted).astype(bool)
        if deleted.shape != (words.shape[0],):
            raise ValueError(
                f"memtable deletion flags have shape {deleted.shape}, "
                f"expected ({words.shape[0]},)"
            )
        self.tombstones = stones.astype(bool).copy()
        self.tombstone_count = int(self.tombstones.sum())
        self.memtable = Memtable(words.shape[1])
        for i in range(words.shape[0]):
            pos = self.memtable.append(words[i])
            if deleted[i]:
                self.memtable.delete(pos)
