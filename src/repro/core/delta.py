"""Sketch separation math: collision rates, the paper's ``δ(β, α)``, and
the operational decision thresholds (Definition 7 / Lemma 8).

The accurate sketch at level ``i`` is a random GF(2) parity map whose mask
entries are i.i.d. Bernoulli(``p_i``) with ``p_i = 1/(4αⁱ)``.  For two
points at Hamming distance ``D``, each sketch output bit differs with
probability

    μ(p, D) = (1 − (1 − 2p)^D) / 2,

the standard parity-collision rate.  Writing ``β = αⁱ`` one checks that the
paper's

    δ(β, α) = ½ (1 − 1/(2β))^β · [1 − (1 − 1/(2β))^{(α−1)β}]

equals exactly ``μ(p_i, αβ) − μ(p_i, β)`` — the *gap* between the expected
differing-bit fractions at distances ``αⁱ⁺¹`` and ``αⁱ`` (a property test
verifies the identity).  The operational membership test for ``C_i``
therefore thresholds at the midpoint

    θ_i = (μ(p_i, αⁱ) + μ(p_i, αⁱ⁺¹)) / 2 = μ(p_i, αⁱ) + δ(αⁱ, α)/2,

which is the Chernoff-separated test that makes Lemma 8's sandwich
``B_i ⊆ C_i ⊆ B_{i+1}`` hold; see DESIGN.md ("Substitutions") for why the
paper's literal ``δ·rows`` reading cannot be the intended absolute
threshold.
"""

from __future__ import annotations

import math

__all__ = [
    "bernoulli_rate",
    "collision_rate",
    "delta_gap",
    "level_radius",
    "midpoint_threshold",
    "sandwich_margin_rows",
]


def level_radius(alpha: float, i: int) -> float:
    """Radius ``αⁱ`` of level ``i``."""
    if i < 0:
        raise ValueError(f"level must be >= 0, got {i}")
    return float(alpha) ** i


def bernoulli_rate(alpha: float, i: int) -> float:
    """Mask entry probability ``p_i = 1/(4αⁱ)`` of Definition 7."""
    return 1.0 / (4.0 * level_radius(alpha, i))


def collision_rate(p: float, distance: float) -> float:
    """Probability ``μ(p, D)`` that one parity bit differs between points
    at Hamming distance ``D`` under a Bernoulli(``p``) mask row.

    Exact for integer ``D``; for the fractional radii ``αⁱ`` it is the
    same analytic expression the paper's δ uses.
    """
    if not (0.0 <= p <= 0.5):
        raise ValueError(f"mask probability must be in [0, 1/2], got {p}")
    if distance < 0:
        raise ValueError(f"distance must be >= 0, got {distance}")
    return 0.5 * (1.0 - (1.0 - 2.0 * p) ** distance)


def delta_gap(beta: float, alpha: float) -> float:
    """The paper's ``δ(β, α)`` (Definition 7), verbatim.

    Equals ``μ(1/(4β), αβ) − μ(1/(4β), β)``; the identity is exercised by
    a hypothesis test.
    """
    if beta < 1:
        raise ValueError(f"β must be >= 1, got {beta}")
    if alpha <= 1:
        raise ValueError(f"α must be > 1, got {alpha}")
    base = 1.0 - 1.0 / (2.0 * beta)
    return 0.5 * (base**beta) * (1.0 - base ** ((alpha - 1.0) * beta))


def midpoint_threshold(alpha: float, i: int) -> float:
    """Fractional threshold ``θ_i`` for level-``i`` membership tests.

    A point ``z`` is accepted iff ``dist(sketch(x), sketch(z)) ≤ θ_i·rows``.
    """
    p = bernoulli_rate(alpha, i)
    near = collision_rate(p, level_radius(alpha, i))
    far = collision_rate(p, level_radius(alpha, i + 1))
    return 0.5 * (near + far)


def sandwich_margin_rows(alpha: float, i: int, failure_prob: float) -> int:
    """Rows needed for one point's level-``i`` test to err with probability
    at most ``failure_prob`` (two-sided Hoeffding).

    The deviation that must not occur is ``δ(αⁱ, α)/2`` per row, so
    ``rows ≥ 2 ln(2/failure_prob) / δ²``.  Used by the parameter objects to
    size the ``c₁ log n`` row counts in `theory` mode and to explain the
    empirical knee measured in experiment E4.
    """
    if not (0 < failure_prob < 1):
        raise ValueError(f"failure_prob must be in (0,1), got {failure_prob}")
    delta = delta_gap(level_radius(alpha, i), alpha)
    if delta <= 0:
        raise ValueError("degenerate separation gap")
    return int(math.ceil(2.0 * math.log(2.0 / failure_prob) / (delta * delta)))
