"""The 1-probe λ-ANNS scheme (Theorem 11, folklore).

For the approximate λ-near-neighbor *search* problem, the table structure
of Theorem 9 already suffices: with ``i = ⌈log_α λ⌉`` (so ``αⁱ ≥ λ`` and
``α^{i+1} ≤ γλ``), a single probe of ``T_i[M_i x]`` returns a point of
``C_i`` when one exists.  Under the sandwich Assumption 2:

* if some database point is within distance λ, then ``B_i ⊇ B_{⌈log λ⌉}``
  is nonempty, hence ``C_i ⊇ B_i`` is nonempty and a point is returned;
  the returned point lies in ``B_{i+1}``, i.e. within ``α^{i+1} ≤ γλ``;
* if no database point is within ``γλ``, then ``B_{i+1} = ∅ ⊇ C_i`` and
  the probe finds EMPTY — answer NO.
"""

from __future__ import annotations

import math
from typing import Dict

import numpy as np

from repro.cellprobe.accounting import ProbeAccountant
from repro.cellprobe.plan import PlanDraft, QueryPlan, run_query_plan
from repro.cellprobe.scheme import (
    CellProbingScheme,
    SchemeSizeReport,
    SketchStateMixin,
)
from repro.cellprobe.session import ProbeRequest
from repro.cellprobe.words import PointWord
from repro.core.params import BaseParameters
from repro.core.result import QueryResult
from repro.hamming.points import PackedPoints
from repro.sketch.approx_balls import ApproxBallEvaluator
from repro.sketch.family import SketchFamily
from repro.sketch.levels import LevelSketches
from repro.structures.main_table import MainLevelTable
from repro.utils.intmath import ceil_log
from repro.utils.rng import RngTree

__all__ = ["OneProbeNearNeighborScheme"]


class OneProbeNearNeighborScheme(SketchStateMixin, CellProbingScheme):
    """λ-ANNS with exactly one cell-probe per query (Theorem 11).

    Parameters
    ----------
    database : the packed database
    base : shared parameters (γ, sketch sizing)
    lam : the near-neighbor radius λ > 0
    seed : public-coin randomness root
    """

    scheme_name = "lambda-ann"

    def __init__(self, database: PackedPoints, base: BaseParameters, lam: float, seed=None):
        if lam <= 0:
            raise ValueError(f"λ must be > 0, got {lam}")
        if len(database) != base.n or database.d != base.d:
            raise ValueError("database does not match parameters")
        self.database = database
        self.base = base
        self.lam = float(lam)
        self.level = min(base.levels, ceil_log(max(1.0, lam), base.alpha))
        rng_tree = RngTree(seed)
        self.family = SketchFamily(
            d=base.d,
            alpha=base.alpha,
            levels=base.levels,
            accurate_rows=base.accurate_rows,
            coarse_rows=None,
            rng_tree=rng_tree.child("sketches"),
        )
        self.level_sketches = LevelSketches(database, self.family)
        self.evaluator = ApproxBallEvaluator(self.level_sketches)
        self.tables: Dict[int, MainLevelTable] = {
            self.level: MainLevelTable(self.evaluator, self.level)
        }

    @property
    def k(self) -> int:
        """Non-adaptive: a single round."""
        return 1

    def make_accountant(self) -> ProbeAccountant:
        return ProbeAccountant(max_rounds=1, max_probes=1)

    def query(self, x: np.ndarray) -> QueryResult:
        """One probe; answer is the near point or a NO (answer_index=None)."""
        return run_query_plan(self, x)

    def query_plan(self, x: np.ndarray) -> QueryPlan:
        address = self.family.accurate_address(self.level, x)
        contents = yield [ProbeRequest(self.tables[self.level].table, address)]
        content = contents[0]
        if isinstance(content, PointWord):
            return PlanDraft(
                content.index,
                content.packed_array(),
                {"level": self.level, "decision": "YES"},
            )
        return PlanDraft(None, None, {"level": self.level, "decision": "NO"})

    def guarantee_radius(self) -> float:
        """The YES side's distance guarantee ``α^{level+1} (≤ γλ)``."""
        return self.base.alpha ** (self.level + 1)

    def size_report(self) -> SchemeSizeReport:
        table = self.tables[self.level].table
        return SchemeSizeReport(
            table_cells=table.logical_cells,
            word_bits=1 + self.database.d,
            table_names=[(table.name, table.logical_cells)],
            notes=f"single level i=⌈log_α λ⌉={self.level} of the Theorem 9 structure",
        )

    @staticmethod
    def decision_correct(
        database: PackedPoints, x: np.ndarray, lam: float, gamma: float, result: QueryResult
    ) -> bool:
        """Ground-truth promise check for λ-ANN (analysis only).

        Correct means: YES answers return a point within ``γλ``; NO answers
        only occur when no point is within ``λ``.  Inputs in the promise gap
        (nearest distance in ``(λ, γλ]``) accept either answer.
        """
        dmin = int(database.distances_from(x).min())
        if result.answered:
            got = result.distance_to(x)
            return got is not None and got <= gamma * lam
        return dmin > lam
