"""Algorithm 2 (Theorem 10): the large-k scheme with
``O(k + ((log d)/k)^{c/k})`` total cell-probes.

Each *shrinking phase* spends at most two rounds:

* **Round A** probes ``T_u[M_u x]`` plus ``⌈(τ−1)/s⌉`` auxiliary cells,
  batching the ``τ − 1`` coarse density tests
  ``|D_{u,ρ(r)}| > n^{-1/s} |C_u|`` into groups of ``s``.  The smallest
  dense position ``r*`` (or ``τ``) drives the phase.
* **Round B** (skipped when ``r* = 1``) probes ``T_{ρ(r*−1)−1}[·]`` and
  selects among the paper's three cases:

  - CASE 1 (``r* = 1``): ``u ← ρ(1) + 1`` — gap shrinks.
  - CASE 2 (probe EMPTY): ``l ← ρ(r*−1) − 1``; if ``r* < τ`` also
    ``u ← ρ(r*) + 1`` — gap shrinks; the density evidence guarantees
    ``C_{ρ(r*)+1} ≠ ∅`` via Lemma 8's second property.
  - CASE 3 (probe non-EMPTY): ``u ← ρ(r*−1) − 1`` — the gap may barely
    move but ``|C_u|`` provably shrinks by ``n^{-1/(2s)}``; at most ``2s``
    such phases can occur.

Once ``u − l < max(3τ, k)`` a completion round finishes as in Algorithm 1.
Budgets (``⌊(k−1)/2⌋`` phases, probe counts) are tracked as soft flags in
the result metadata: the paper's counting arguments are asymptotic, and at
laptop scale experiments report violations instead of crashing.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.cellprobe.accounting import ProbeAccountant
from repro.cellprobe.plan import BatchAddressPrimer, PlanDraft, QueryPlan, run_query_plan
from repro.cellprobe.scheme import (
    CellProbingScheme,
    SchemeSizeReport,
    SketchStateMixin,
)
from repro.cellprobe.session import ProbeRequest, ProbeSession, SerializedProbeSession
from repro.cellprobe.words import EmptyWord, IntWord, PointWord
from repro.core.degenerate import DegenerateCaseHandler
from repro.core.invariants import InvariantChecker
from repro.core.params import Algorithm2Params
from repro.core.result import QueryResult
from repro.hamming.points import PackedPoints
from repro.sketch.approx_balls import ApproxBallEvaluator
from repro.sketch.family import SketchFamily
from repro.sketch.levels import LevelSketches
from repro.structures.aux_table import AuxCountTable, rho
from repro.structures.main_table import MainLevelTable
from repro.utils.intmath import ceil_div
from repro.utils.rng import RngTree

__all__ = ["LargeKScheme"]


class LargeKScheme(SketchStateMixin, CellProbingScheme):
    """Theorem 10's scheme for a fixed database.

    Parameters
    ----------
    database : the packed database ``B``
    params : validated :class:`~repro.core.params.Algorithm2Params`
    seed : public-coin randomness root
    """

    scheme_name = "algorithm2"

    def __init__(
        self,
        database: PackedPoints,
        params: Algorithm2Params,
        seed=None,
        check_invariants: bool = False,
        one_probe_per_round: bool = False,
    ):
        if len(database) != params.base.n:
            raise ValueError(
                f"database has {len(database)} points but params.n={params.base.n}"
            )
        if database.d != params.base.d:
            raise ValueError(f"database d={database.d} but params.d={params.base.d}")
        self.database = database
        self.params = params
        self.k = params.k
        rng_tree = RngTree(seed)
        self.family = SketchFamily(
            d=params.base.d,
            alpha=params.base.alpha,
            levels=params.base.levels,
            accurate_rows=params.base.accurate_rows,
            coarse_rows=params.base.coarse_rows(params.s_real if params.s_override is None else params.s),
            rng_tree=rng_tree.child("sketches"),
        )
        self.level_sketches = LevelSketches(database, self.family)
        self.evaluator = ApproxBallEvaluator(self.level_sketches)
        levels = params.base.levels
        self.tables: Dict[int, MainLevelTable] = {
            i: MainLevelTable(self.evaluator, i) for i in range(levels + 1)
        }
        frac = params.s_real if params.s_override is None else float(params.s)
        self.aux_tables: Dict[int, AuxCountTable] = {
            i: AuxCountTable(self.evaluator, i, params.tau, params.s, max(1.0, frac))
            for i in range(levels + 1)
        }
        self.degenerate = DegenerateCaseHandler(database)
        # Optional out-of-band invariant oracle (charges no probes).
        self.invariant_checker = (
            InvariantChecker(self.evaluator, self.family) if check_invariants else None
        )
        # The paper's remark after Theorem 3: at the transition k the
        # scheme can run with one probe per round; serializing rounds is
        # always legal (it only adds unused adaptivity).
        self.one_probe_per_round = bool(one_probe_per_round)
        self._address_cache: Dict[Tuple[str, int, bytes], tuple] = {}
        self._primer = BatchAddressPrimer()

    # -- address memoization ----------------------------------------------
    def _address(self, kind: str, i: int, x: np.ndarray) -> tuple:
        """Memoized ``M_i x`` (kind "a") or ``N_i x`` (kind "c"); in batch
        mode the first miss sketches that (kind, level) for the whole
        batch in one vectorized pass."""
        key = (kind, i, np.asarray(x, dtype=np.uint64).tobytes())
        addr = self._address_cache.get(key)
        if addr is None:
            many_fn = (
                self.family.accurate_addresses if kind == "a" else self.family.coarse_addresses
            )
            if self._primer.prime(
                (kind, i),
                lambda points: many_fn(i, points),
                self._address_cache,
                lambda point_bytes: (kind, i, point_bytes),
            ):
                addr = self._address_cache.get(key)
                if addr is not None:
                    return addr
            single_fn = (
                self.family.accurate_address if kind == "a" else self.family.coarse_address
            )
            addr = single_fn(i, x)
            self._address_cache[key] = addr
        return addr

    def _acc_address(self, i: int, x: np.ndarray) -> tuple:
        return self._address("a", i, x)

    def _coarse_address(self, i: int, x: np.ndarray) -> tuple:
        return self._address("c", i, x)

    # -- helpers ----------------------------------------------------------
    def _phase_round_a_requests(
        self, x: np.ndarray, l: int, u: int
    ) -> Tuple[List[ProbeRequest], List[int]]:
        """Build round-A requests: T_u plus the grouped auxiliary probes.

        Returns the requests and the per-group first global position so the
        caller can map a group's stored value back to a global ``r``.
        """
        params = self.params
        tau, s = params.tau, params.s
        acc_addr = self._acc_address(u, x)
        requests: List[ProbeRequest] = [
            ProbeRequest(self.tables[u].table, acc_addr)
        ]
        group_starts: List[int] = []
        num_groups = ceil_div(tau - 1, s)
        aux = self.aux_tables[u]
        for g in range(1, num_groups + 1):
            start_r = 1 + (g - 1) * s
            w0 = min(s, (tau - 1) - (g - 1) * s)
            coarse_addrs = [
                self._coarse_address(rho(l, u, tau, start_r + q), x) for q in range(w0)
            ]
            requests.append(
                ProbeRequest(aux.table, aux.address(acc_addr, l, u, g, coarse_addrs))
            )
            group_starts.append(start_r)
        return requests, group_starts

    @staticmethod
    def _decode_r_star(
        contents: List[object], group_starts: List[int], s: int, tau: int
    ) -> int:
        """Smallest global ``r`` with a dense ``D_{u,ρ(r)}``, else ``τ``."""
        sentinel = s + AuxCountTable.SENTINEL_OFFSET
        for content, start in zip(contents, group_starts):
            assert isinstance(content, IntWord)
            if content.value != sentinel:
                return start + content.value - 1
        return tau

    @staticmethod
    def _draft(
        index: Optional[int],
        packed: Optional[np.ndarray],
        inv_trace=None,
        **meta: object,
    ) -> PlanDraft:
        if inv_trace is not None:
            meta["invariants"] = inv_trace.as_dict()
        return PlanDraft(answer_index=index, answer_packed=packed, meta=meta)

    # -- plan-protocol hooks --------------------------------------------------
    def make_accountant(self) -> ProbeAccountant:
        return ProbeAccountant()  # soft budgets; flags set in finalize

    def make_session(self, accountant: ProbeAccountant) -> ProbeSession:
        session_cls = SerializedProbeSession if self.one_probe_per_round else ProbeSession
        return session_cls(accountant)

    def serializes_rounds(self) -> bool:
        return self.one_probe_per_round

    def begin_query(self) -> None:
        self._address_cache.clear()
        self._primer.reset()

    def batch_prepare(self, batch: np.ndarray) -> None:
        """Enter batch mode: accurate/coarse address sketching becomes one
        vectorized pass per (kind, level) over the whole batch, done lazily
        the first time any query needs that level."""
        self._primer.enter(batch)

    def finalize(self, draft: PlanDraft, accountant: ProbeAccountant) -> QueryResult:
        meta = draft.meta
        meta.setdefault("probe_budget_ok", accountant.total_probes <= self.params.probe_budget)
        # Under round serialization the round count equals the probe count
        # by construction, so it is judged against the probe budget.
        round_cap = (
            self.params.probe_budget if self.one_probe_per_round else self.params.round_budget
        )
        meta.setdefault("round_budget_ok", accountant.total_rounds <= round_cap)
        return QueryResult(
            answer_index=draft.answer_index,
            answer_packed=draft.answer_packed,
            accountant=accountant,
            scheme=self.scheme_name,
            meta=meta,
        )

    # -- the cell-probing algorithm -----------------------------------------
    def query(self, x: np.ndarray) -> QueryResult:
        """Answer one query with soft budget flags in the metadata."""
        return run_query_plan(self, x)

    def query_plan(self, x: np.ndarray) -> QueryPlan:
        """The query as a round generator (see :mod:`repro.cellprobe.plan`)."""
        params = self.params
        l, u = 0, params.base.levels
        tau, s = params.tau, params.s
        cut = params.completion_cut
        first_round = True
        phases = 0
        case_counts = {"case1": 0, "case2": 0, "case3": 0}
        budget_violated = False
        inv_trace = self.invariant_checker.start() if self.invariant_checker else None
        if self.invariant_checker:
            self.invariant_checker.record(inv_trace, x, l, u)

        while u - l >= cut:
            if phases >= params.phase_budget:
                budget_violated = True
                break
            phases += 1

            requests, group_starts = self._phase_round_a_requests(x, l, u)
            if first_round:
                requests = self.degenerate.requests_for(x) + requests
            contents = yield requests
            if first_round:
                degenerate_hit = self.degenerate.interpret(contents[:2])
                contents = contents[2:]
                first_round = False
                if degenerate_hit is not None:
                    idx, packed, which = degenerate_hit
                    return self._draft(
                        idx, packed, path=f"degenerate-{which}",
                        phases=phases - 1,
                    )
            tu_content = contents[0]
            r_star = self._decode_r_star(contents[1:], group_starts, s, tau)

            if r_star == 1:
                case_counts["case1"] += 1
                u = rho(l, u, tau, 1) + 1
                if self.invariant_checker:
                    self.invariant_checker.record(inv_trace, x, l, u)
                continue

            probe_level = rho(l, u, tau, r_star - 1) - 1
            round_b = [
                ProbeRequest(self.tables[probe_level].table,
                             self._acc_address(probe_level, x))
            ]
            content = (yield round_b)[0]
            if isinstance(content, EmptyWord):
                case_counts["case2"] += 1
                new_l = probe_level
                new_u = rho(l, u, tau, r_star) + 1 if r_star < tau else u
                l, u = new_l, new_u
            else:
                case_counts["case3"] += 1
                u = probe_level
            if self.invariant_checker:
                self.invariant_checker.record(inv_trace, x, l, u)
            del tu_content  # read per the paper; control flow needs only r*

        # Completion round over the remaining gap.
        levels = list(range(l + 1, u + 1))
        requests = [
            ProbeRequest(self.tables[i].table, self._acc_address(i, x)) for i in levels
        ]
        if first_round:
            requests = self.degenerate.requests_for(x) + requests
        contents = yield requests
        if first_round:
            degenerate_hit = self.degenerate.interpret(contents[:2])
            contents = contents[2:]
            if degenerate_hit is not None:
                idx, packed, which = degenerate_hit
                return self._draft(idx, packed, path="degenerate-" + which)
        answer_pos: Optional[int] = None
        for pos, content in enumerate(contents):
            if isinstance(content, PointWord):
                answer_pos = pos
                break
        meta = {
            "path": "main",
            "phases": phases,
            "budget_violated": budget_violated,
            **case_counts,
        }
        if answer_pos is None:
            return self._draft(
                None, None, failed="empty-completion",
                inv_trace=inv_trace, **meta,
            )
        word = contents[answer_pos]
        assert isinstance(word, PointWord)
        return self._draft(
            word.index, word.packed_array(),
            answer_level=levels[answer_pos], inv_trace=inv_trace, **meta,
        )

    # -- size accounting ------------------------------------------------------
    def size_report(self) -> SchemeSizeReport:
        levels = self.params.base.levels
        main_cells = (levels + 1) * self.tables[0].table.logical_cells
        aux_cells = (levels + 1) * self.aux_tables[0].table.logical_cells
        degenerate_cells = self.degenerate.logical_cells()
        return SchemeSizeReport(
            table_cells=main_cells + aux_cells + degenerate_cells,
            word_bits=1 + self.database.d,
            table_names=[
                ("main-levels", main_cells),
                ("aux-levels", aux_cells),
                ("degenerate", degenerate_cells),
            ],
            notes=(
                f"tau={self.params.tau}, s={self.params.s}, "
                f"phase_budget={self.params.phase_budget}; public-coin sizes"
            ),
        )
