"""The public facade: :class:`ANNIndex`.

Construction goes through a typed :class:`~repro.api.IndexSpec` and the
scheme registry (:mod:`repro.registry`), so every registered scheme —
both paper algorithms and all baselines — is buildable by name::

    from repro import ANNIndex, IndexSpec
    index = ANNIndex.from_spec(points_bits, IndexSpec(
        scheme="algorithm1", params={"rounds": 3}, seed=7))
    result = index.query(query_bits)
    result.answer_index, result.probes, result.rounds

    results = index.query_batch(query_bits_batch)  # batched, same answers

The index is **mutable**: :meth:`ANNIndex.insert` buffers fresh points
in an exactly-scanned memtable, :meth:`ANNIndex.delete` tombstones rows
so they never surface again, and an amortized compaction
(:meth:`ANNIndex.compact`, auto-triggered once the dirty fraction
exceeds ``compact_threshold``) rebuilds the static structure from the
surviving rows through the registry under the generation seed
``RngTree(seed).child("generation", g)`` — after which queries are
bitwise-identical to a from-scratch build on the survivors (see
:mod:`repro.core.mutable` for the exact contract).

The legacy kwarg constructor ``ANNIndex.build(...)`` remains as a thin
deprecated shim that assembles the equivalent spec internally.

Accepts either raw 0/1 bit arrays or pre-packed
:class:`~repro.hamming.points.PackedPoints`.
"""

from __future__ import annotations

import warnings
from typing import Dict, List, Optional, Union

import numpy as np

from repro.api import IndexSpec
from repro.cellprobe.scheme import CellProbingScheme, SchemeSizeReport
from repro.core.mutable import (
    DEFAULT_COMPACT_THRESHOLD,
    MutationState,
    generation_seed,
)
from repro.core.params import Algorithm2Params, BaseParameters
from repro.core.result import QueryResult
from repro.hamming.packing import pack_bits
from repro.hamming.points import PackedPoints
from repro.registry import build_scheme
from repro.service.engine import (
    BatchQueryEngine,
    BatchStats,
    merge_mutation_candidates,
)

__all__ = ["ANNIndex"]

DatabaseLike = Union[PackedPoints, np.ndarray]


def _coerce_database(database: DatabaseLike) -> PackedPoints:
    if isinstance(database, PackedPoints):
        return database
    arr = np.asarray(database)
    if arr.dtype == np.uint64:
        raise TypeError(
            "raw uint64 arrays are ambiguous; wrap packed data in PackedPoints"
        )
    return PackedPoints.from_bits(arr)


class ANNIndex:
    """γ-approximate nearest-neighbor index with a k-round probe budget.

    Use :meth:`from_spec`; the constructor takes an already-constructed
    scheme.
    """

    def __init__(
        self,
        database: PackedPoints,
        scheme: CellProbingScheme,
        spec: Optional[IndexSpec] = None,
        *,
        generation: int = 0,
        compact_threshold: float = DEFAULT_COMPACT_THRESHOLD,
    ):
        self.database = database
        self.scheme = scheme
        #: the spec this index was built from (None for hand-built schemes)
        self.spec = spec
        #: how the payloads are resident: "heap" (built or materialized
        #: load) or "mmap" (zero-copy snapshot mapping; set by load())
        self.load_mode = "heap"
        self._last_batch_stats: Optional[BatchStats] = None
        # One engine per prefetch flag: the engine's table classification
        # is warm after the first batch, so reuse it across calls.
        self._engines: Dict[bool, BatchQueryEngine] = {}
        #: tombstones + memtable + generation counter (repro.core.mutable)
        self.mutation = MutationState(
            len(database),
            database.word_count,
            compact_threshold=compact_threshold,
            generation=generation,
        )

    # -- construction ----------------------------------------------------
    @classmethod
    def from_spec(
        cls,
        database: DatabaseLike,
        spec: IndexSpec,
        compact_threshold: float = DEFAULT_COMPACT_THRESHOLD,
    ) -> "ANNIndex":
        """Build an index from a validated :class:`~repro.api.IndexSpec`.

        This is the canonical constructor: the spec names a registered
        scheme, the registry builds it (boost wrapping included), and the
        spec rides along on the index for reproducibility
        (``index.spec.to_dict()`` round-trips the exact recipe).

        Specs with ``seed=None`` are pinned to fresh entropy first, so the
        index's spec always records the public coins that replay it — the
        invariant :meth:`save` depends on.

        ``compact_threshold`` tunes the amortized rebuild trigger of the
        mutation layer (fraction of static rows that may be dirty before
        :meth:`compact` fires automatically; ``float("inf")`` disables).
        """
        db = _coerce_database(database)
        spec = spec.resolve_seed()
        return cls(
            db, build_scheme(db, spec), spec=spec, compact_threshold=compact_threshold
        )

    @classmethod
    def build(
        cls,
        database: DatabaseLike,
        gamma: float = 4.0,
        rounds: int = 2,
        algorithm: str = "auto",
        boost: int = 1,
        seed: Optional[int] = None,
        c1: float = 6.0,
        c2: float = 6.0,
        profile: str = "empirical",
        algorithm2_c: float = 3.0,
        algorithm2_s: Optional[int] = None,
    ) -> "ANNIndex":
        """Deprecated kwarg constructor; use :meth:`from_spec`.

        Builds the equivalent :class:`~repro.api.IndexSpec` internally
        (same seeds, same schemes, same answers) and is kept only so
        existing callers keep working.  ``algorithm="auto"`` resolves to
        "algorithm2" when its ``s ≥ 1`` constraint admits the requested
        ``k``, else "algorithm1", exactly as before.
        """
        warnings.warn(
            "ANNIndex.build(**kwargs) is deprecated; build an IndexSpec and "
            "use ANNIndex.from_spec(db, spec) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        db = _coerce_database(database)
        if algorithm == "auto":
            base = BaseParameters.for_database(
                db, gamma=gamma, c1=c1, c2=c2, profile=profile
            )
            try:
                Algorithm2Params(base, k=rounds, c=algorithm2_c, s_override=algorithm2_s)
                algorithm = "algorithm2"
            except ValueError:
                algorithm = "algorithm1"
        geometry = {"gamma": gamma, "c1": c1, "c2": c2, "profile": profile}
        if algorithm == "algorithm1":
            params = {**geometry, "rounds": rounds}
        elif algorithm == "algorithm2":
            params = {**geometry, "rounds": rounds, "c": algorithm2_c, "s": algorithm2_s}
        else:
            raise ValueError(f"unknown algorithm {algorithm!r}")
        return cls.from_spec(
            db, IndexSpec(scheme=algorithm, params=params, seed=seed, boost=boost)
        )

    # -- persistence -------------------------------------------------------
    def save(self, path, extras=None, write_seq=0, format_version=None) -> "str":
        """Snapshot this index to a directory (see :mod:`repro.persistence`).

        Writes a JSON manifest (format version + spec + seed), the packed
        database, and the scheme's array payloads.  ``extras`` (JSON-able
        mapping) lands in the manifest for harnesses to read back;
        ``write_seq`` records the replicated write-log position for shard
        replicas (``docs/DISTRIBUTED.md``).  ``format_version=3`` writes
        the raw-payload layout that :meth:`load` can memory-map
        (``load_mode="mmap"``); the default stays the v2 ``.npz`` layout.
        """
        from repro.persistence import save_index

        return str(
            save_index(
                self,
                path,
                extras=extras,
                write_seq=write_seq,
                format_version=format_version,
            )
        )

    @classmethod
    def load(cls, path, load_mode: str = "heap") -> "ANNIndex":
        """Load a snapshot written by :meth:`save`.

        The loaded index answers :meth:`query`/:meth:`query_batch`
        bitwise-identically to the index that was saved —
        ``load_mode="mmap"`` (format-v3 snapshots) maps the packed
        database and large scheme arrays zero-copy instead of
        materializing them, with identical answers and probe accounting.
        """
        from repro.persistence import load_index

        return load_index(path, load_mode=load_mode)

    def prepare(self) -> "ANNIndex":
        """Materialize deferred preprocessing now (sketch masks, per-level
        database sketches).  Returns ``self``; the sharded builder runs
        this in worker processes so the work parallelizes and ships to the
        parent through :meth:`save` payloads."""
        self.scheme.prewarm()
        return self

    # -- mutation ----------------------------------------------------------
    def _coerce_rows(self, points) -> np.ndarray:
        """Packed ``(m, W)`` rows from bits/(packed) points of any shape."""
        if isinstance(points, PackedPoints):
            if points.d != self.database.d:
                raise ValueError(
                    f"points have d={points.d}, index has d={self.database.d}"
                )
            return points.words
        arr = np.asarray(points)
        if arr.dtype == np.uint64:
            if arr.ndim == 1:
                arr = arr[None, :]
            if arr.ndim != 2 or arr.shape[1] != self.database.word_count:
                raise ValueError(
                    f"packed rows need shape (m, {self.database.word_count}), "
                    f"got {arr.shape}"
                )
            return arr
        if arr.ndim == 1:
            arr = arr[None, :]
        if arr.ndim != 2 or arr.shape[1] != self.database.d:
            raise ValueError(
                f"bit rows need shape (m, {self.database.d}), got {arr.shape}"
            )
        return pack_bits(arr.astype(np.uint8), self.database.d)

    def insert(self, points) -> List[int]:
        """Insert points (bit rows, packed rows, or :class:`PackedPoints`).

        Returns the inserted rows' global ids, in input order.  Inserts
        land in the memtable — exactly scanned by every query, so they
        are searchable immediately — until the amortized compaction folds
        them into the static structure.  When this call itself triggers a
        compaction, the returned ids are the *post-compaction* ids (ids
        are positional and remap when the survivors are renumbered).
        """
        rows = self._coerce_rows(points)
        if rows.shape[0] == 0:
            return []
        ids = self.mutation.insert_rows(rows)
        if self._maybe_compact():
            n = len(self.database)
            return list(range(n - rows.shape[0], n))
        return ids

    def delete(self, ids) -> int:
        """Delete rows by global id; returns how many were deleted.

        Static rows are tombstoned (the bitmap is consulted at
        result-merge time, so they never surface again); memtable rows
        are killed in place.  The call is atomic: an out-of-range,
        already-deleted, or repeated id raises ``ValueError`` and leaves
        the index unchanged.  May trigger the amortized compaction.
        """
        count = self.mutation.delete_ids(ids)
        self._maybe_compact()
        return count

    def compact(self) -> int:
        """Rebuild the static structure from the surviving rows now.

        Survivors keep their relative order (static survivors first, then
        live memtable rows) and are renumbered ``0..live-1``; the new
        structure is built through the registry with the next
        generation's seed, ``RngTree(seed).child("generation", g)``, so
        the compacted index answers **bitwise-identically** to
        ``ANNIndex.from_spec(survivors, spec.replace(seed=generation_seed(seed, g)))``.
        No-op on a clean index.  Returns the current generation.  Raises
        when the index has no spec (hand-built scheme), or when the
        scheme cannot be rebuilt on the survivors (e.g. fewer than 2 live
        rows for every registered scheme).
        """
        state = self.mutation
        if state.dirty_count == 0:
            return state.generation
        if self.spec is None:
            raise RuntimeError(
                "index has no spec (hand-built scheme); only registry-built "
                "indexes can compact"
            )
        if self.spec.seed is None:
            raise RuntimeError(
                "index spec has no concrete seed; build through "
                "ANNIndex.from_spec (which pins one)"
            )
        survivors = state.survivor_words(self.database.words)
        if survivors.shape[0] == 0:
            raise ValueError("cannot compact an index with no live rows")
        g = state.generation + 1
        new_db = PackedPoints(survivors, self.database.d)
        spec_g = self.spec.replace(seed=generation_seed(self.spec.seed, g))
        scheme = build_scheme(new_db, spec_g)  # may raise on scheme constraints
        self.database = new_db
        self.scheme = scheme
        self._engines = {}  # cached engines are bound to the old scheme
        self.mutation = MutationState(
            len(new_db),
            new_db.word_count,
            compact_threshold=state.compact_threshold,
            generation=g,
        )
        return g

    def _maybe_compact(self) -> bool:
        """Run the amortized compaction when the trigger fires.

        Deferred (returns False, state stays buffered) when the index has
        no rebuildable spec or the scheme's own constraints reject the
        current live set — the dirt is retried on later mutations.
        """
        if not self.mutation.should_compact():
            return False
        if self.spec is None or self.spec.seed is None:
            return False
        try:
            self.compact()
        except ValueError:
            return False
        return True

    @property
    def generation(self) -> int:
        """How many compactions this index has absorbed."""
        return self.mutation.generation

    @property
    def live_count(self) -> int:
        """Rows that are currently searchable (``len(self)``)."""
        return self.mutation.live_count

    @property
    def id_space(self) -> int:
        """Allocated global ids: static rows plus all memtable entries."""
        return self.mutation.id_space

    def is_live(self, global_id: int) -> bool:
        """Whether a global id currently resolves to a searchable row."""
        return self.mutation.is_live(global_id)

    def live_ids(self) -> np.ndarray:
        """All live global ids, ascending."""
        return self.mutation.live_ids()

    # -- querying ----------------------------------------------------------
    def _merge_mutations(
        self, queries: np.ndarray, results: List[QueryResult]
    ) -> List[QueryResult]:
        """Tombstone-filter + memtable-merge a batch of scheme results.

        Identity when the index is clean (no tombstones, no live
        memtable rows) — that pass-through is what makes a freshly
        compacted index bitwise-identical to a from-scratch build.
        """
        if not self.mutation.merge_needed or not results:
            return results
        return merge_mutation_candidates(queries, results, self.mutation)

    def query(self, x: Union[np.ndarray, list]) -> QueryResult:
        """Answer one query given as a length-d bit vector or packed row."""
        arr = np.asarray(x)
        if arr.dtype != np.uint64:
            arr = pack_bits(arr.astype(np.uint8), self.database.d)
        return self._merge_mutations(arr[None, :], [self.scheme.query(arr)])[0]

    def query_packed(self, x: np.ndarray) -> QueryResult:
        """Answer one query given as a packed uint64 row."""
        arr = np.asarray(x, dtype=np.uint64)
        return self._merge_mutations(arr[None, :], [self.scheme.query(arr)])[0]

    def _engine(self, prefetch: bool) -> BatchQueryEngine:
        """The cached batch engine for this prefetch flag."""
        engine = self._engines.get(prefetch)
        if engine is None:
            engine = BatchQueryEngine(self.scheme, prefetch=prefetch)
            self._engines[prefetch] = engine
        return engine

    def query_batch(
        self, queries: Union[np.ndarray, list], prefetch: bool = True
    ) -> List[QueryResult]:
        """Answer many queries at once through the batched engine.

        Accepts a ``(B, d)`` bit array or a packed ``(B, W)`` uint64 array
        (a single query is promoted to a batch of one).  Results are
        identical to a sequential :meth:`query` loop — same answers, same
        per-query probe/round accounting — but each adaptive round's work
        is vectorized across the whole batch, so throughput is much higher
        (see ``benchmarks/bench_e15_batch_throughput.py``).

        ``prefetch=False`` disables cross-query cell prefetching (the
        engine then only batches sketch addresses); mainly for tests.
        """
        arr = np.asarray(queries)
        if arr.size == 0:
            # An empty batch answers to nothing, like the sequential loop.
            arr = np.empty((0, self.database.word_count), dtype=np.uint64)
        elif arr.dtype != np.uint64:
            if arr.ndim == 1:
                arr = arr[None, :]
            arr = pack_bits(arr.astype(np.uint8), self.database.d)
        elif arr.ndim == 1:
            arr = arr[None, :]
        engine = self._engine(bool(prefetch))
        results = engine.run(arr)
        stats = engine.last_stats
        if results and self.mutation.merge_needed:
            results = self._merge_mutations(arr, results)
            # Memtable scans charge real probes; keep the batch stats
            # reconciled with the merged per-query accountants.
            stats = BatchStats(
                batch_size=stats.batch_size,
                sweeps=stats.sweeps,
                total_probes=sum(r.probes for r in results),
                total_rounds=sum(r.rounds for r in results),
                prefetched_cells=stats.prefetched_cells,
            )
        self._last_batch_stats = stats
        return results

    @property
    def last_batch_stats(self) -> Optional[BatchStats]:
        """Execution statistics of the most recent :meth:`query_batch`."""
        return self._last_batch_stats

    # -- introspection ----------------------------------------------------
    def __len__(self) -> int:
        """Number of live (searchable) points — static rows minus
        tombstones plus live memtable inserts."""
        return self.mutation.live_count

    @property
    def d(self) -> int:
        """Dimension of the Hamming cube."""
        return self.database.d

    @property
    def rounds(self) -> Optional[int]:
        """The scheme's declared round budget ``k``."""
        return getattr(self.scheme, "k", None)

    def size_report(self) -> SchemeSizeReport:
        """Logical table-size accounting of the underlying scheme."""
        return self.scheme.size_report()
