"""The public facade: :class:`ANNIndex`.

Construction goes through a typed :class:`~repro.api.IndexSpec` and the
scheme registry (:mod:`repro.registry`), so every registered scheme —
both paper algorithms and all baselines — is buildable by name::

    from repro import ANNIndex, IndexSpec
    index = ANNIndex.from_spec(points_bits, IndexSpec(
        scheme="algorithm1", params={"rounds": 3}, seed=7))
    result = index.query(query_bits)
    result.answer_index, result.probes, result.rounds

    results = index.query_batch(query_bits_batch)  # batched, same answers

The legacy kwarg constructor ``ANNIndex.build(...)`` remains as a thin
deprecated shim that assembles the equivalent spec internally.

Accepts either raw 0/1 bit arrays or pre-packed
:class:`~repro.hamming.points.PackedPoints`.
"""

from __future__ import annotations

import warnings
from typing import Dict, List, Optional, Union

import numpy as np

from repro.api import IndexSpec
from repro.cellprobe.scheme import CellProbingScheme, SchemeSizeReport
from repro.core.params import Algorithm2Params, BaseParameters
from repro.core.result import QueryResult
from repro.hamming.packing import pack_bits
from repro.hamming.points import PackedPoints
from repro.registry import build_scheme
from repro.service.engine import BatchQueryEngine, BatchStats

__all__ = ["ANNIndex"]

DatabaseLike = Union[PackedPoints, np.ndarray]


def _coerce_database(database: DatabaseLike) -> PackedPoints:
    if isinstance(database, PackedPoints):
        return database
    arr = np.asarray(database)
    if arr.dtype == np.uint64:
        raise TypeError(
            "raw uint64 arrays are ambiguous; wrap packed data in PackedPoints"
        )
    return PackedPoints.from_bits(arr)


class ANNIndex:
    """γ-approximate nearest-neighbor index with a k-round probe budget.

    Use :meth:`from_spec`; the constructor takes an already-constructed
    scheme.
    """

    def __init__(
        self,
        database: PackedPoints,
        scheme: CellProbingScheme,
        spec: Optional[IndexSpec] = None,
    ):
        self.database = database
        self.scheme = scheme
        #: the spec this index was built from (None for hand-built schemes)
        self.spec = spec
        self._last_batch_stats: Optional[BatchStats] = None
        # One engine per prefetch flag: the engine's table classification
        # is warm after the first batch, so reuse it across calls.
        self._engines: Dict[bool, BatchQueryEngine] = {}

    # -- construction ----------------------------------------------------
    @classmethod
    def from_spec(cls, database: DatabaseLike, spec: IndexSpec) -> "ANNIndex":
        """Build an index from a validated :class:`~repro.api.IndexSpec`.

        This is the canonical constructor: the spec names a registered
        scheme, the registry builds it (boost wrapping included), and the
        spec rides along on the index for reproducibility
        (``index.spec.to_dict()`` round-trips the exact recipe).

        Specs with ``seed=None`` are pinned to fresh entropy first, so the
        index's spec always records the public coins that replay it — the
        invariant :meth:`save` depends on.
        """
        db = _coerce_database(database)
        spec = spec.resolve_seed()
        return cls(db, build_scheme(db, spec), spec=spec)

    @classmethod
    def build(
        cls,
        database: DatabaseLike,
        gamma: float = 4.0,
        rounds: int = 2,
        algorithm: str = "auto",
        boost: int = 1,
        seed: Optional[int] = None,
        c1: float = 6.0,
        c2: float = 6.0,
        profile: str = "empirical",
        algorithm2_c: float = 3.0,
        algorithm2_s: Optional[int] = None,
    ) -> "ANNIndex":
        """Deprecated kwarg constructor; use :meth:`from_spec`.

        Builds the equivalent :class:`~repro.api.IndexSpec` internally
        (same seeds, same schemes, same answers) and is kept only so
        existing callers keep working.  ``algorithm="auto"`` resolves to
        "algorithm2" when its ``s ≥ 1`` constraint admits the requested
        ``k``, else "algorithm1", exactly as before.
        """
        warnings.warn(
            "ANNIndex.build(**kwargs) is deprecated; build an IndexSpec and "
            "use ANNIndex.from_spec(db, spec) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        db = _coerce_database(database)
        if algorithm == "auto":
            base = BaseParameters.for_database(
                db, gamma=gamma, c1=c1, c2=c2, profile=profile
            )
            try:
                Algorithm2Params(base, k=rounds, c=algorithm2_c, s_override=algorithm2_s)
                algorithm = "algorithm2"
            except ValueError:
                algorithm = "algorithm1"
        geometry = {"gamma": gamma, "c1": c1, "c2": c2, "profile": profile}
        if algorithm == "algorithm1":
            params = {**geometry, "rounds": rounds}
        elif algorithm == "algorithm2":
            params = {**geometry, "rounds": rounds, "c": algorithm2_c, "s": algorithm2_s}
        else:
            raise ValueError(f"unknown algorithm {algorithm!r}")
        return cls.from_spec(
            db, IndexSpec(scheme=algorithm, params=params, seed=seed, boost=boost)
        )

    # -- persistence -------------------------------------------------------
    def save(self, path, extras=None) -> "str":
        """Snapshot this index to a directory (see :mod:`repro.persistence`).

        Writes a JSON manifest (format version + spec + seed), the packed
        database, and the scheme's array payloads.  ``extras`` (JSON-able
        mapping) lands in the manifest for harnesses to read back.
        """
        from repro.persistence import save_index

        return str(save_index(self, path, extras=extras))

    @classmethod
    def load(cls, path) -> "ANNIndex":
        """Load a snapshot written by :meth:`save`.

        The loaded index answers :meth:`query`/:meth:`query_batch`
        bitwise-identically to the index that was saved.
        """
        from repro.persistence import load_index

        return load_index(path)

    def prepare(self) -> "ANNIndex":
        """Materialize deferred preprocessing now (sketch masks, per-level
        database sketches).  Returns ``self``; the sharded builder runs
        this in worker processes so the work parallelizes and ships to the
        parent through :meth:`save` payloads."""
        self.scheme.prewarm()
        return self

    # -- querying ----------------------------------------------------------
    def query(self, x: Union[np.ndarray, list]) -> QueryResult:
        """Answer one query given as a length-d bit vector or packed row."""
        arr = np.asarray(x)
        if arr.dtype != np.uint64:
            arr = pack_bits(arr.astype(np.uint8), self.database.d)
        return self.scheme.query(arr)

    def query_packed(self, x: np.ndarray) -> QueryResult:
        """Answer one query given as a packed uint64 row."""
        return self.scheme.query(np.asarray(x, dtype=np.uint64))

    def _engine(self, prefetch: bool) -> BatchQueryEngine:
        """The cached batch engine for this prefetch flag."""
        engine = self._engines.get(prefetch)
        if engine is None:
            engine = BatchQueryEngine(self.scheme, prefetch=prefetch)
            self._engines[prefetch] = engine
        return engine

    def query_batch(
        self, queries: Union[np.ndarray, list], prefetch: bool = True
    ) -> List[QueryResult]:
        """Answer many queries at once through the batched engine.

        Accepts a ``(B, d)`` bit array or a packed ``(B, W)`` uint64 array
        (a single query is promoted to a batch of one).  Results are
        identical to a sequential :meth:`query` loop — same answers, same
        per-query probe/round accounting — but each adaptive round's work
        is vectorized across the whole batch, so throughput is much higher
        (see ``benchmarks/bench_e15_batch_throughput.py``).

        ``prefetch=False`` disables cross-query cell prefetching (the
        engine then only batches sketch addresses); mainly for tests.
        """
        arr = np.asarray(queries)
        if arr.size == 0:
            # An empty batch answers to nothing, like the sequential loop.
            arr = np.empty((0, self.database.word_count), dtype=np.uint64)
        elif arr.dtype != np.uint64:
            if arr.ndim == 1:
                arr = arr[None, :]
            arr = pack_bits(arr.astype(np.uint8), self.database.d)
        elif arr.ndim == 1:
            arr = arr[None, :]
        engine = self._engine(bool(prefetch))
        results = engine.run(arr)
        self._last_batch_stats = engine.last_stats
        return results

    @property
    def last_batch_stats(self) -> Optional[BatchStats]:
        """Execution statistics of the most recent :meth:`query_batch`."""
        return self._last_batch_stats

    # -- introspection ----------------------------------------------------
    def __len__(self) -> int:
        """Number of database points indexed."""
        return len(self.database)

    @property
    def d(self) -> int:
        """Dimension of the Hamming cube."""
        return self.database.d

    @property
    def rounds(self) -> Optional[int]:
        """The scheme's declared round budget ``k``."""
        return getattr(self.scheme, "k", None)

    def size_report(self) -> SchemeSizeReport:
        """Logical table-size accounting of the underlying scheme."""
        return self.scheme.size_report()
