"""The public facade: :class:`ANNIndex`.

Wraps database packing, parameter derivation, scheme selection and optional
success boosting behind one constructor, so downstream users can write::

    from repro import ANNIndex
    index = ANNIndex.build(points_bits, gamma=4.0, rounds=3, seed=7)
    result = index.query(query_bits)
    result.answer_index, result.probes, result.rounds

    results = index.query_batch(query_bits_batch)  # batched, same answers

Accepts either raw 0/1 bit arrays or pre-packed
:class:`~repro.hamming.points.PackedPoints`.
"""

from __future__ import annotations

from typing import List, Optional, Union

import numpy as np

from repro.cellprobe.scheme import CellProbingScheme, SchemeSizeReport
from repro.core.algorithm1 import SimpleKRoundScheme
from repro.core.algorithm2 import LargeKScheme
from repro.core.boosting import BoostedScheme
from repro.core.params import Algorithm1Params, Algorithm2Params, BaseParameters
from repro.core.result import QueryResult
from repro.hamming.packing import pack_bits
from repro.hamming.points import PackedPoints
from repro.service.engine import BatchQueryEngine, BatchStats
from repro.utils.rng import RngTree

__all__ = ["ANNIndex"]

DatabaseLike = Union[PackedPoints, np.ndarray]


def _coerce_database(database: DatabaseLike) -> PackedPoints:
    if isinstance(database, PackedPoints):
        return database
    arr = np.asarray(database)
    if arr.dtype == np.uint64:
        raise TypeError(
            "raw uint64 arrays are ambiguous; wrap packed data in PackedPoints"
        )
    return PackedPoints.from_bits(arr)


class ANNIndex:
    """γ-approximate nearest-neighbor index with a k-round probe budget.

    Use :meth:`build`; the constructor takes an already-constructed scheme.
    """

    def __init__(self, database: PackedPoints, scheme: CellProbingScheme):
        self.database = database
        self.scheme = scheme

    # -- construction ----------------------------------------------------
    @classmethod
    def build(
        cls,
        database: DatabaseLike,
        gamma: float = 4.0,
        rounds: int = 2,
        algorithm: str = "auto",
        boost: int = 1,
        seed: Optional[int] = None,
        c1: float = 6.0,
        c2: float = 6.0,
        profile: str = "empirical",
        algorithm2_c: float = 3.0,
        algorithm2_s: Optional[int] = None,
    ) -> "ANNIndex":
        """Build an index.

        Parameters
        ----------
        database : ``(n, d)`` bit array or :class:`PackedPoints`
        gamma : approximation ratio γ > 1
        rounds : the adaptivity budget ``k``
        algorithm : "algorithm1", "algorithm2", or "auto" (algorithm2 when
            its ``s ≥ 1`` constraint admits the requested ``k``, else
            algorithm1)
        boost : number of parallel repetitions (≥ 1); probes scale
            linearly, rounds stay at ``k``
        seed : public-coin randomness root
        """
        db = _coerce_database(database)
        base = BaseParameters(n=len(db), d=db.d, gamma=gamma, c1=c1, c2=c2, profile=profile)
        tree = RngTree(seed)

        def pick(algorithm_name: str):
            if algorithm_name == "algorithm1":
                params = Algorithm1Params(base, k=rounds)
                return lambda s: SimpleKRoundScheme(db, params, seed=s)
            if algorithm_name == "algorithm2":
                params = Algorithm2Params(
                    base, k=rounds, c=algorithm2_c, s_override=algorithm2_s
                )
                return lambda s: LargeKScheme(db, params, seed=s)
            raise ValueError(f"unknown algorithm {algorithm_name!r}")

        if algorithm == "auto":
            try:
                Algorithm2Params(base, k=rounds, c=algorithm2_c, s_override=algorithm2_s)
                algorithm = "algorithm2"
            except ValueError:
                algorithm = "algorithm1"
        factory = pick(algorithm)

        if boost < 1:
            raise ValueError(f"boost must be >= 1, got {boost}")
        if boost == 1:
            scheme = factory(tree.generator("copy", 0))
        else:
            seeds = [tree.generator("copy", i) for i in range(boost)]
            scheme = BoostedScheme(lambda s: factory(s), seeds)
        return cls(db, scheme)

    # -- querying ----------------------------------------------------------
    def query(self, x: Union[np.ndarray, list]) -> QueryResult:
        """Answer one query given as a length-d bit vector or packed row."""
        arr = np.asarray(x)
        if arr.dtype != np.uint64:
            arr = pack_bits(arr.astype(np.uint8), self.database.d)
        return self.scheme.query(arr)

    def query_packed(self, x: np.ndarray) -> QueryResult:
        """Answer one query given as a packed uint64 row."""
        return self.scheme.query(np.asarray(x, dtype=np.uint64))

    def query_batch(
        self, queries: Union[np.ndarray, list], prefetch: bool = True
    ) -> List[QueryResult]:
        """Answer many queries at once through the batched engine.

        Accepts a ``(B, d)`` bit array or a packed ``(B, W)`` uint64 array
        (a single query is promoted to a batch of one).  Results are
        identical to a sequential :meth:`query` loop — same answers, same
        per-query probe/round accounting — but each adaptive round's work
        is vectorized across the whole batch, so throughput is much higher
        (see ``benchmarks/bench_e15_batch_throughput.py``).

        ``prefetch=False`` disables cross-query cell prefetching (the
        engine then only batches sketch addresses); mainly for tests.
        """
        arr = np.asarray(queries)
        if arr.size == 0:
            # An empty batch answers to nothing, like the sequential loop.
            arr = np.empty((0, self.database.word_count), dtype=np.uint64)
        elif arr.dtype != np.uint64:
            if arr.ndim == 1:
                arr = arr[None, :]
            arr = pack_bits(arr.astype(np.uint8), self.database.d)
        elif arr.ndim == 1:
            arr = arr[None, :]
        engine = BatchQueryEngine(self.scheme, prefetch=prefetch)
        results = engine.run(arr)
        self._last_batch_stats = engine.last_stats
        return results

    @property
    def last_batch_stats(self) -> Optional[BatchStats]:
        """Execution statistics of the most recent :meth:`query_batch`."""
        return getattr(self, "_last_batch_stats", None)

    # -- introspection ----------------------------------------------------
    @property
    def rounds(self) -> Optional[int]:
        """The scheme's declared round budget ``k``."""
        return getattr(self.scheme, "k", None)

    def size_report(self) -> SchemeSizeReport:
        """Logical table-size accounting of the underlying scheme."""
        return self.scheme.size_report()
