"""Workload generation for the experiments.

A workload is a (database, queries, description) triple; the registry maps
names to generators so benches and examples share identical inputs.
"""

from repro.workloads.generators import (
    clustered_workload,
    planted_workload,
    shell_workload,
    uniform_workload,
)
from repro.workloads.spec import Workload, WorkloadSpec, make_workload, registry

__all__ = [
    "Workload",
    "WorkloadSpec",
    "clustered_workload",
    "make_workload",
    "planted_workload",
    "registry",
    "shell_workload",
    "uniform_workload",
]
