"""The four workload families used across the experiments.

* **uniform** — i.i.d. uniform database and queries; nearest distances
  concentrate near ``d/2 − Θ(√(d log n))``, exercising the top levels.
* **planted** — uniform database; each query is a database point with a
  controlled number of flipped bits, exercising a chosen level band (the
  workload the paper's guarantees are most meaningfully measured on).
* **shells** — database points planted on geometric shells ``αⁱ`` around
  hidden centers, queries at the centers: every level of the multi-way
  search becomes load-bearing, which is the adversarial profile for the
  shrink/completion logic.
* **clustered** — a few tight clusters plus background noise; queries near
  cluster centers.  Models the "realistic" skewed databases LSH-style
  methods are tuned for.
"""

from __future__ import annotations

import math

import numpy as np

from repro.hamming.packing import packed_words
from repro.hamming.points import PackedPoints
from repro.hamming.sampling import flip_random_bits, random_points
from repro.utils.rng import as_generator
from repro.workloads.spec import Workload, WorkloadSpec, register

__all__ = [
    "clustered_workload",
    "planted_workload",
    "shell_workload",
    "uniform_workload",
]


@register("uniform")
def uniform_workload(spec: WorkloadSpec) -> Workload:
    """Uniform database, uniform queries."""
    rng = as_generator(spec.seed)
    db = PackedPoints(random_points(rng, spec.n, spec.d), spec.d)
    queries = random_points(rng, spec.num_queries, spec.d)
    return Workload(
        name="uniform",
        database=db,
        queries=queries,
        description="i.i.d. uniform points and queries",
    )


@register("planted")
def planted_workload(
    spec: WorkloadSpec,
    min_flips: int = 0,
    max_flips: int | None = None,
) -> Workload:
    """Queries are database points with ``[min_flips, max_flips]`` flips."""
    rng = as_generator(spec.seed)
    if max_flips is None:
        max_flips = max(1, spec.d // 8)
    if not (0 <= min_flips <= max_flips <= spec.d):
        raise ValueError(f"bad flip range [{min_flips}, {max_flips}] for d={spec.d}")
    db = PackedPoints(random_points(rng, spec.n, spec.d), spec.d)
    w = packed_words(spec.d)
    queries = np.empty((spec.num_queries, w), dtype=np.uint64)
    flips = np.empty(spec.num_queries, dtype=np.int64)
    for q in range(spec.num_queries):
        base = db.row(int(rng.integers(0, spec.n)))
        flips[q] = int(rng.integers(min_flips, max_flips + 1))
        queries[q] = flip_random_bits(rng, base, int(flips[q]), spec.d)
    return Workload(
        name="planted",
        database=db,
        queries=queries,
        description=f"planted near neighbors, {min_flips}..{max_flips} flips",
        meta={"flips": flips},
    )


@register("shells")
def shell_workload(spec: WorkloadSpec, alpha: float = 2.0, centers: int = 4) -> Workload:
    """Geometric shells of radius ``αⁱ`` around hidden centers; queries at
    the centers (their exact nearest distance is the innermost shell)."""
    rng = as_generator(spec.seed)
    if centers < 1:
        raise ValueError("need at least one center")
    levels = max(1, int(math.log(spec.d, alpha)))
    w = packed_words(spec.d)
    center_pts = random_points(rng, centers, spec.d)
    rows = []
    per_center = max(1, spec.n // centers)
    for c in range(centers):
        for j in range(per_center):
            level = 1 + (j % levels)
            radius = min(spec.d, int(round(alpha**level)))
            rows.append(flip_random_bits(rng, center_pts[c], radius, spec.d))
    while len(rows) < spec.n:  # top up to exactly n with uniform noise
        rows.append(random_points(rng, 1, spec.d)[0])
    db = PackedPoints(np.vstack(rows[: spec.n]), spec.d)
    queries = np.empty((spec.num_queries, w), dtype=np.uint64)
    for q in range(spec.num_queries):
        queries[q] = center_pts[int(rng.integers(0, centers))]
    return Workload(
        name="shells",
        database=db,
        queries=queries,
        description=f"geometric shells (α={alpha}) around {centers} centers",
        meta={"alpha": alpha, "centers": centers},
    )


@register("clustered")
def clustered_workload(
    spec: WorkloadSpec,
    clusters: int = 8,
    cluster_radius: int | None = None,
    noise_fraction: float = 0.25,
) -> Workload:
    """Tight clusters plus uniform background noise; queries near centers."""
    rng = as_generator(spec.seed)
    if cluster_radius is None:
        cluster_radius = max(1, spec.d // 32)
    noise = int(spec.n * noise_fraction)
    clustered = spec.n - noise
    center_pts = random_points(rng, clusters, spec.d)
    rows = []
    for j in range(clustered):
        c = j % clusters
        r = int(rng.integers(0, cluster_radius + 1))
        rows.append(flip_random_bits(rng, center_pts[c], r, spec.d))
    if noise:
        rows.append(random_points(rng, noise, spec.d))
        db_words = np.vstack([np.vstack(rows[:clustered]), rows[-1]])
    else:
        db_words = np.vstack(rows)
    db = PackedPoints(db_words[: spec.n], spec.d)
    w = packed_words(spec.d)
    queries = np.empty((spec.num_queries, w), dtype=np.uint64)
    for q in range(spec.num_queries):
        c = int(rng.integers(0, clusters))
        queries[q] = flip_random_bits(
            rng, center_pts[c], int(rng.integers(0, 2 * cluster_radius + 1)), spec.d
        )
    return Workload(
        name="clustered",
        database=db,
        queries=queries,
        description=f"{clusters} clusters of radius ≤{cluster_radius} + noise",
        meta={"clusters": clusters, "cluster_radius": cluster_radius},
    )
