"""Workload specification and registry."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict

import numpy as np

from repro.hamming.points import PackedPoints

__all__ = ["Workload", "WorkloadSpec", "make_workload", "registry"]


@dataclass
class Workload:
    """A generated workload: the database and the packed query batch."""

    name: str
    database: PackedPoints
    queries: np.ndarray  # (m, W) packed
    description: str = ""
    meta: Dict[str, object] = field(default_factory=dict)

    @property
    def num_queries(self) -> int:
        return int(self.queries.shape[0])


@dataclass(frozen=True)
class WorkloadSpec:
    """Parameters shared by all workload generators."""

    n: int
    d: int
    num_queries: int = 32
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n < 2:
            raise ValueError(f"n must be >= 2, got {self.n}")
        if self.d < 4:
            raise ValueError(f"d must be >= 4, got {self.d}")
        if self.num_queries < 1:
            raise ValueError("num_queries must be >= 1")


#: name -> generator(spec, **kwargs) registry
registry: Dict[str, Callable[..., Workload]] = {}


def register(name: str):
    """Decorator adding a generator to the registry."""

    def wrap(fn: Callable[..., Workload]) -> Callable[..., Workload]:
        registry[name] = fn
        return fn

    return wrap


def make_workload(name: str, spec: WorkloadSpec, **kwargs) -> Workload:
    """Instantiate a registered workload by name."""
    try:
        fn = registry[name]
    except KeyError:
        raise KeyError(f"unknown workload {name!r}; known: {sorted(registry)}") from None
    return fn(spec, **kwargs)
