"""repro — reproduction of *Randomized Approximate Nearest Neighbor Search
with Limited Adaptivity* (Liu, Pan, Yin; SPAA 2016, arXiv:1602.04421).

The package provides:

* :class:`~repro.core.index.ANNIndex` + :class:`~repro.api.IndexSpec` — the
  public facade: a typed spec (scheme name, params, seed, boost, named
  presets) builds any registered scheme via ``ANNIndex.from_spec``;
* :mod:`repro.registry` — the scheme registry: the paper's algorithms
  *and* every baseline are constructible by name, so one harness serves
  them all (``available_schemes()``, ``build_scheme(db, spec)``);
* :class:`~repro.core.lambda_ann.OneProbeNearNeighborScheme` — the 1-probe
  λ-ANNS folklore scheme (Theorem 11);
* a faithful **cell-probe model simulator** (:mod:`repro.cellprobe`) with
  exact probe/round accounting and structurally enforced limited adaptivity;
* the Hamming-space and sketching substrates (:mod:`repro.hamming`,
  :mod:`repro.sketch`);
* baselines the paper positions against (:mod:`repro.baselines`): LSH,
  linear scan, fully-adaptive binary search;
* the lower-bound machinery (:mod:`repro.lowerbound`): LPM, the
  γ-separated ball-tree reduction, protocol accounting, and a numeric
  round-elimination ledger for Theorem 4;
* the experiment harness (:mod:`repro.analysis`, :mod:`repro.workloads`)
  behind the benches in ``benchmarks/``;
* index persistence (:mod:`repro.persistence`: ``ANNIndex.save``/``load``
  snapshots that answer bitwise-identically; format v2 carries live
  mutation state) and sharded serving
  (:class:`~repro.service.sharded.ShardedANNIndex`: parallel per-shard
  builds, fan-out querying, true-distance merging, inserts routed to the
  smallest shard);
* **mutable indexes** (:mod:`repro.core.mutable`): ``ANNIndex.insert`` /
  ``delete`` / ``compact`` — tombstone bitmap consulted at result-merge
  time, an exactly-scanned memtable of fresh inserts, and amortized
  compaction that rebuilds from the survivors under
  ``RngTree(seed).child("generation", g)`` seeds, making post-compaction
  queries bitwise-identical to a from-scratch build on the live rows;
* the online serving layer (:mod:`repro.service.server`):
  :class:`~repro.service.server.AsyncANNService` coalesces concurrent
  requests into adaptive micro-batches (flush on batch-size cap or wait
  deadline) with answers bitwise-identical to sequential queries,
  ``python -m repro serve`` exposes it over newline-delimited JSON TCP,
  and :class:`~repro.service.client.ServiceClient` is the synchronous
  client (see ``docs/SERVING.md``).
"""

from repro.api import IndexSpec
from repro.core import (
    ANNIndex,
    Algorithm1Params,
    Algorithm2Params,
    BaseParameters,
    BoostedScheme,
    LargeKScheme,
    OneProbeNearNeighborScheme,
    QueryResult,
    SimpleKRoundScheme,
)
from repro.hamming import PackedPoints
from repro.registry import available_schemes, build_scheme
from repro.service import (
    AsyncANNService,
    BatchQueryEngine,
    BatchStats,
    ServiceClient,
    ServiceMetrics,
    ShardedANNIndex,
)
from repro.storage import ResidencyManager, ResidencyStats

__version__ = "1.9.0"

__all__ = [
    "ANNIndex",
    "Algorithm1Params",
    "Algorithm2Params",
    "AsyncANNService",
    "BaseParameters",
    "BatchQueryEngine",
    "BatchStats",
    "BoostedScheme",
    "IndexSpec",
    "LargeKScheme",
    "OneProbeNearNeighborScheme",
    "PackedPoints",
    "QueryResult",
    "ResidencyManager",
    "ResidencyStats",
    "ServiceClient",
    "ServiceMetrics",
    "ShardedANNIndex",
    "SimpleKRoundScheme",
    "available_schemes",
    "build_scheme",
    "__version__",
]
