"""repro — reproduction of *Randomized Approximate Nearest Neighbor Search
with Limited Adaptivity* (Liu, Pan, Yin; SPAA 2016, arXiv:1602.04421).

The package provides:

* :class:`~repro.core.index.ANNIndex` — the public facade over the paper's
  two k-round cell-probing schemes (Theorems 2/9 and 3/10);
* :class:`~repro.core.lambda_ann.OneProbeNearNeighborScheme` — the 1-probe
  λ-ANNS folklore scheme (Theorem 11);
* a faithful **cell-probe model simulator** (:mod:`repro.cellprobe`) with
  exact probe/round accounting and structurally enforced limited adaptivity;
* the Hamming-space and sketching substrates (:mod:`repro.hamming`,
  :mod:`repro.sketch`);
* baselines the paper positions against (:mod:`repro.baselines`): LSH,
  linear scan, fully-adaptive binary search;
* the lower-bound machinery (:mod:`repro.lowerbound`): LPM, the
  γ-separated ball-tree reduction, protocol accounting, and a numeric
  round-elimination ledger for Theorem 4;
* the experiment harness (:mod:`repro.analysis`, :mod:`repro.workloads`)
  behind the benches in ``benchmarks/``.
"""

from repro.core import (
    ANNIndex,
    Algorithm1Params,
    Algorithm2Params,
    BaseParameters,
    BoostedScheme,
    LargeKScheme,
    OneProbeNearNeighborScheme,
    QueryResult,
    SimpleKRoundScheme,
)
from repro.hamming import PackedPoints
from repro.service import BatchQueryEngine, BatchStats

__version__ = "1.1.0"

__all__ = [
    "ANNIndex",
    "Algorithm1Params",
    "Algorithm2Params",
    "BaseParameters",
    "BatchQueryEngine",
    "BatchStats",
    "BoostedScheme",
    "LargeKScheme",
    "OneProbeNearNeighborScheme",
    "PackedPoints",
    "QueryResult",
    "SimpleKRoundScheme",
    "__version__",
]
