"""On-disk snapshots of built indexes: the persistence codec.

An index snapshot is a directory with three files (FAISS-style index I/O,
adapted to the lazy-table simulator):

``manifest.json``
    Format name + version, the index's :meth:`IndexSpec.to_dict()
    <repro.api.IndexSpec.to_dict>` (always with a *concrete* seed — see
    below), the database geometry ``(n, d)``, the scheme name, the array
    payload keys, and free-form ``extras`` (the CLI records its workload
    there so ``bench --index`` can regenerate the matching queries).

``database.npz``
    The packed database: the ``(n, W)`` uint64 word matrix plus ``d``.
    Since format version 2 it also carries the mutation layer's state
    (:mod:`repro.core.mutable`): the ``tombstones`` bitmap over the
    static rows, the ``memtable_words`` of buffered inserts, and their
    ``memtable_deleted`` flags; the manifest records the ``generation``
    counter and ``compact_threshold``, plus ``live_n`` as a consistency
    check on the restored state.  Version-1 snapshots load as clean
    generation-0 indexes.

``arrays.npz``
    The scheme's array payloads from
    :meth:`~repro.cellprobe.scheme.CellProbingScheme.export_arrays`:
    per-level parity sketch masks, materialized database sketches, LSH
    sampled-bit positions, data-dependent pivots/dispatch masks — nested
    components namespaced by ``/``-separated keys (boosted copies under
    ``copy<i>/``).

Loading rebuilds the scheme through the registry from the manifest's spec
— every scheme derives all randomness from the spec's seed through
:class:`~repro.utils.rng.RngTree`, so the rebuild is bitwise-identical —
then installs the array payloads: lazily-derived caches (sketch masks,
database sketches) are primed so the loaded index answers without
recomputing preprocessing, and eagerly-rebuilt state (bucket hash
positions, pivots) is verified against the payload so a corrupted or
mismatched snapshot fails loudly instead of answering from different
randomness.

Concrete seeds are what make this sound: :meth:`ANNIndex.from_spec
<repro.core.index.ANNIndex.from_spec>` pins ``seed=None`` specs to fresh
entropy at build time, so every built index carries a seed that replays
its exact public coins.

The full on-disk format specification — manifest fields, the
format-version policy, per-scheme payload keys, and the tamper checks —
lives in ``docs/PERSISTENCE.md``, written to be consumable without
reading this module.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import TYPE_CHECKING, Dict, Mapping, Optional, Union

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.index import ANNIndex

__all__ = [
    "FORMAT_VERSION",
    "IndexPersistenceError",
    "load_any",
    "load_index",
    "read_manifest",
    "save_index",
    "snapshot_write_seq",
]

#: Bump when the directory layout or payload semantics change.
#: v2 (mutable indexes): database.npz grew tombstones/memtable payloads,
#: the manifest grew generation/live_n/compact_threshold.  v1 snapshots
#: still load (as clean generation-0 indexes).
FORMAT_VERSION = 2

FORMAT_NAME = "repro-ann-index"
MANIFEST_FILE = "manifest.json"
DATABASE_FILE = "database.npz"
ARRAYS_FILE = "arrays.npz"

#: Manifest ``kind`` values this module knows how to load.
KIND_INDEX = "ann-index"
KIND_SHARDED = "sharded-ann-index"

PathLike = Union[str, Path]


class IndexPersistenceError(RuntimeError):
    """A snapshot could not be written or read (missing files, unknown
    format version, payload/seed mismatch, unsaveable index)."""


def _write_manifest(path: Path, manifest: Dict[str, object]) -> None:
    (path / MANIFEST_FILE).write_text(json.dumps(manifest, indent=2, sort_keys=True))


def read_manifest(path: PathLike) -> Dict[str, object]:
    """Read and validate a snapshot directory's manifest.

    Raises :class:`IndexPersistenceError` when the directory is not a
    snapshot, the format name is foreign, or the format version is newer
    than this code understands.
    """
    directory = Path(path)
    manifest_path = directory / MANIFEST_FILE
    if not manifest_path.is_file():
        raise IndexPersistenceError(
            f"{directory} is not an index snapshot (no {MANIFEST_FILE})"
        )
    try:
        manifest = json.loads(manifest_path.read_text())
    except json.JSONDecodeError as exc:
        raise IndexPersistenceError(f"unreadable manifest in {directory}: {exc}") from exc
    if manifest.get("format") != FORMAT_NAME:
        raise IndexPersistenceError(
            f"{manifest_path} has format {manifest.get('format')!r}, "
            f"expected {FORMAT_NAME!r}"
        )
    version = manifest.get("format_version")
    if not isinstance(version, int) or version < 1 or version > FORMAT_VERSION:
        raise IndexPersistenceError(
            f"unsupported index format version {version!r} in {manifest_path} "
            f"(this build reads versions 1..{FORMAT_VERSION})"
        )
    return manifest


def save_index(
    index: "ANNIndex",
    path: PathLike,
    extras: Optional[Mapping[str, object]] = None,
    write_seq: int = 0,
) -> Path:
    """Snapshot a built :class:`~repro.core.index.ANNIndex` to ``path``.

    The directory is created if needed; existing snapshot files are
    overwritten.  ``extras`` lands verbatim in the manifest (JSON-able
    values only).  ``write_seq`` records the last replicated write-log
    sequence number this index has applied (see ``docs/DISTRIBUTED.md``);
    a replica restarted from the snapshot resumes catch-up from there.
    Snapshots written before the field existed read back as 0 through
    :func:`snapshot_write_seq`.  Returns the directory path.
    """
    spec = index.spec
    if spec is None:
        raise IndexPersistenceError(
            "index has no spec (hand-built scheme); only registry-built "
            "indexes (ANNIndex.from_spec) can be saved"
        )
    if spec.seed is None:
        raise IndexPersistenceError(
            "index spec has no concrete seed, so its randomness cannot be "
            "replayed; build through ANNIndex.from_spec (which pins one)"
        )
    directory = Path(path)
    directory.mkdir(parents=True, exist_ok=True)
    db = index.database
    state = index.mutation
    arrays = index.scheme.export_arrays()
    np.savez_compressed(
        directory / DATABASE_FILE,
        words=db.words,
        d=np.int64(db.d),
        **state.export_arrays(),
    )
    np.savez_compressed(directory / ARRAYS_FILE, **arrays)
    _write_manifest(
        directory,
        {
            "format": FORMAT_NAME,
            "format_version": FORMAT_VERSION,
            "kind": KIND_INDEX,
            "spec": spec.to_dict(),
            "seed": spec.seed,
            "n": len(db),
            "d": db.d,
            "live_n": state.live_count,
            "generation": state.generation,
            "compact_threshold": state.compact_threshold,
            "scheme_name": index.scheme.scheme_name,
            "array_keys": sorted(arrays),
            "write_seq": int(write_seq),
            "extras": dict(extras or {}),
        },
    )
    return directory


def snapshot_write_seq(path: PathLike) -> int:
    """The write-log sequence number a snapshot was taken at.

    0 for snapshots that never served replicated writes (including every
    snapshot written before the field existed — absence means "start of
    the log", so old snapshots replay the full write history, which is
    always safe).
    """
    value = read_manifest(path).get("write_seq", 0)
    if not isinstance(value, int) or value < 0:
        raise IndexPersistenceError(
            f"snapshot {path} has a malformed write_seq field: {value!r}"
        )
    return value


#: database.npz keys a format-v2 snapshot must carry beyond words/d.
_MUTATION_KEYS = ("tombstones", "memtable_words", "memtable_deleted")


def _read_npz(directory: Path, filename: str) -> Dict[str, np.ndarray]:
    """Read one snapshot ``.npz`` member into a plain dict.

    A missing, truncated, or otherwise unreadable archive — the
    ``database.npz``/``arrays.npz`` corruption cases the tamper tests
    cover — raises :class:`IndexPersistenceError` instead of leaking
    ``zipfile``/``numpy`` internals.
    """
    path = directory / filename
    if not path.is_file():
        raise IndexPersistenceError(f"snapshot {directory} is missing {filename}")
    try:
        with np.load(path) as payload:
            return {key: payload[key] for key in payload.files}
    except Exception as exc:
        raise IndexPersistenceError(
            f"snapshot {directory} has an unreadable {filename}: {exc}"
        ) from exc


def _load_database(directory: Path, version: int):
    """The packed database plus (for v2) the mutation payload triple."""
    from repro.hamming.points import PackedPoints

    payload = _read_npz(directory, DATABASE_FILE)
    if "words" not in payload or "d" not in payload:
        raise IndexPersistenceError(
            f"snapshot {directory} {DATABASE_FILE} is missing words/d"
        )
    try:
        database = PackedPoints(payload["words"], int(payload["d"]))
    except Exception as exc:
        raise IndexPersistenceError(
            f"snapshot {directory} holds an invalid packed database: {exc}"
        ) from exc
    if version < 2:
        return database, None
    missing = [key for key in _MUTATION_KEYS if key not in payload]
    if missing:
        raise IndexPersistenceError(
            f"snapshot {directory} {DATABASE_FILE} is missing format-v2 "
            f"mutation payload(s): {', '.join(missing)}"
        )
    return database, tuple(payload[key] for key in _MUTATION_KEYS)


def load_index(path: PathLike) -> "ANNIndex":
    """Load a snapshot written by :func:`save_index`.

    The returned index answers bitwise-identically to the one saved: the
    scheme is rebuilt from the manifest's spec (seed derived through the
    recorded compaction generation, same registry factory), the array
    payloads are installed on top, and any tombstones/memtable state is
    restored and checked against the manifest's ``live_n``.
    """
    from repro.api import IndexSpec
    from repro.core.index import ANNIndex
    from repro.core.mutable import DEFAULT_COMPACT_THRESHOLD, generation_seed
    from repro.registry import build_scheme

    directory = Path(path)
    manifest = read_manifest(directory)
    if manifest.get("kind") != KIND_INDEX:
        raise IndexPersistenceError(
            f"snapshot {directory} holds a {manifest.get('kind')!r}, not a "
            f"single index; use repro.persistence.load_any"
        )
    version = int(manifest["format_version"])
    database, mutation_payload = _load_database(directory, version)
    spec = IndexSpec.from_dict(manifest["spec"])
    if int(manifest["n"]) != len(database) or int(manifest["d"]) != database.d:
        raise IndexPersistenceError(
            f"manifest geometry (n={manifest['n']}, d={manifest['d']}) does "
            f"not match the stored database (n={len(database)}, d={database.d})"
        )
    generation = int(manifest.get("generation", 0))
    threshold = float(manifest.get("compact_threshold", DEFAULT_COMPACT_THRESHOLD))
    scheme_spec = spec
    if generation > 0:
        scheme_spec = spec.replace(seed=generation_seed(spec.seed, generation))
    scheme = build_scheme(database, scheme_spec)
    arrays = _read_npz(directory, ARRAYS_FILE)
    try:
        scheme.restore_arrays(arrays)
    except ValueError as exc:
        raise IndexPersistenceError(
            f"snapshot {directory} payload rejected: {exc}"
        ) from exc
    index = ANNIndex(
        database,
        scheme,
        spec=spec,
        generation=generation,
        compact_threshold=threshold,
    )
    if mutation_payload is not None:
        try:
            index.mutation.restore_arrays(*mutation_payload)
        except ValueError as exc:
            raise IndexPersistenceError(
                f"snapshot {directory} mutation state rejected: {exc}"
            ) from exc
    if "live_n" in manifest and int(manifest["live_n"]) != index.live_count:
        raise IndexPersistenceError(
            f"snapshot {directory} mutation state is inconsistent: manifest "
            f"records {manifest['live_n']} live rows, payload restores "
            f"{index.live_count}"
        )
    return index


def load_any(path: PathLike):
    """Load whatever index kind a snapshot directory holds.

    Returns an :class:`~repro.core.index.ANNIndex` for single-index
    snapshots and a :class:`~repro.service.sharded.ShardedANNIndex` for
    sharded ones — the CLI's ``bench --index DIR`` entry point.
    """
    manifest = read_manifest(path)
    kind = manifest.get("kind")
    if kind == KIND_INDEX:
        return load_index(path)
    if kind == KIND_SHARDED:
        from repro.service.sharded import ShardedANNIndex

        return ShardedANNIndex.load(path)
    raise IndexPersistenceError(f"unknown snapshot kind {kind!r} in {path}")
