"""On-disk snapshots of built indexes: the persistence codec.

An index snapshot is a directory with three files (FAISS-style index I/O,
adapted to the lazy-table simulator):

``manifest.json``
    Format name + version, the index's :meth:`IndexSpec.to_dict()
    <repro.api.IndexSpec.to_dict>` (always with a *concrete* seed — see
    below), the database geometry ``(n, d)``, the scheme name, the array
    payload keys, and free-form ``extras`` (the CLI records its workload
    there so ``bench --index`` can regenerate the matching queries).

``database.npz``
    The packed database: the ``(n, W)`` uint64 word matrix plus ``d``.
    Since format version 2 it also carries the mutation layer's state
    (:mod:`repro.core.mutable`): the ``tombstones`` bitmap over the
    static rows, the ``memtable_words`` of buffered inserts, and their
    ``memtable_deleted`` flags; the manifest records the ``generation``
    counter and ``compact_threshold``, plus ``live_n`` as a consistency
    check on the restored state.  Version-1 snapshots load as clean
    generation-0 indexes.

``arrays.npz``
    The scheme's array payloads from
    :meth:`~repro.cellprobe.scheme.CellProbingScheme.export_arrays`:
    per-level parity sketch masks, materialized database sketches, LSH
    sampled-bit positions, data-dependent pivots/dispatch masks — nested
    components namespaced by ``/``-separated keys (boosted copies under
    ``copy<i>/``).

Loading rebuilds the scheme through the registry from the manifest's spec
— every scheme derives all randomness from the spec's seed through
:class:`~repro.utils.rng.RngTree`, so the rebuild is bitwise-identical —
then installs the array payloads: lazily-derived caches (sketch masks,
database sketches) are primed so the loaded index answers without
recomputing preprocessing, and eagerly-rebuilt state (bucket hash
positions, pivots) is verified against the payload so a corrupted or
mismatched snapshot fails loudly instead of answering from different
randomness.

Concrete seeds are what make this sound: :meth:`ANNIndex.from_spec
<repro.core.index.ANNIndex.from_spec>` pins ``seed=None`` specs to fresh
entropy at build time, so every built index carries a seed that replays
its exact public coins.

**Format v3 (opt-in, out-of-core):** ``save(..., format_version=3)``
replaces the two ``.npz`` archives with a raw ``.npy`` payload tree
(``database/words.npy``, ``arrays/<key>.npy`` — see
:mod:`repro.storage.layout`) indexed by the manifest's ``payloads``
field.  Uncompressed payloads cost disk but buy
``load(..., load_mode="mmap")``: the packed database and large scheme
arrays are memory-mapped zero-copy, so a served index pages data in on
demand instead of materializing everything at load time.  Mutation
state (tombstones/memtable) is always loaded into heap — it mutates.
v2 stays the default write format; loading a v2 snapshot with
``load_mode="mmap"`` raises a clear error naming v3.

**Crash safety / save epochs:** the manifest is the *sole* commit
point.  Every save writes its data files under fresh names — the first
save into a directory (``save_epoch`` 0) uses the canonical names
above; each overwrite bumps the epoch and writes ``database-<epoch>.npz``
/ ``arrays-<epoch>.npz`` (v2, recorded as ``database_file`` /
``arrays_file``) or a ``payloads-<epoch>/`` tree (v3, recorded as
``payload_root``).  Data files are fsync'd and renamed into place, the
manifest commits atomically last, and only then is the previous epoch
pruned.  A save killed at any point leaves the directory loading as the
old committed state, the new state, or (fresh directories only) a typed
error — never a torn mixture, and an in-place checkpoint never disturbs
the snapshot it replaces (``tests/core/test_crash_safety.py``).

The full on-disk format specification — manifest fields, the
format-version policy, per-scheme payload keys, and the tamper checks —
lives in ``docs/PERSISTENCE.md``, written to be consumable without
reading this module.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import TYPE_CHECKING, Dict, Mapping, Optional, Union

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.index import ANNIndex

__all__ = [
    "FORMAT_VERSION",
    "MAX_FORMAT_VERSION",
    "MMAP_FORMAT_VERSION",
    "IndexPersistenceError",
    "load_any",
    "load_index",
    "read_manifest",
    "save_index",
    "snapshot_write_seq",
]

#: The *default* write version; bump when the directory layout or payload
#: semantics change.  v2 (mutable indexes): database.npz grew
#: tombstones/memtable payloads, the manifest grew
#: generation/live_n/compact_threshold.  v1 snapshots still load (as
#: clean generation-0 indexes).
FORMAT_VERSION = 2

#: The opt-in out-of-core layout (``save(..., format_version=3)``): the
#: packed database and per-scheme arrays become raw ``.npy`` payload
#: files (:mod:`repro.storage.layout`) indexed by the manifest, so
#: ``load(..., load_mode="mmap")`` maps them zero-copy.  v2 stays the
#: default so snapshots remain readable by v2-only deployments until
#: mmap loading is actually wanted.
MMAP_FORMAT_VERSION = 3

#: Newest version this build can read (writes default to FORMAT_VERSION).
MAX_FORMAT_VERSION = 3

#: Load modes :func:`load_index` accepts: ``"heap"`` materializes every
#: payload; ``"mmap"`` (format v3 only) maps the packed database and
#: scheme arrays zero-copy.  Answers are bitwise-identical either way.
LOAD_MODES = ("heap", "mmap")

FORMAT_NAME = "repro-ann-index"
MANIFEST_FILE = "manifest.json"
DATABASE_FILE = "database.npz"
ARRAYS_FILE = "arrays.npz"

#: Manifest ``kind`` values this module knows how to load.
KIND_INDEX = "ann-index"
KIND_SHARDED = "sharded-ann-index"

PathLike = Union[str, Path]


class IndexPersistenceError(RuntimeError):
    """A snapshot could not be written or read (missing files, unknown
    format version, payload/seed mismatch, unsaveable index)."""


def _write_manifest(path: Path, manifest: Dict[str, object]) -> None:
    """Write the manifest atomically: temp file, fsync, ``os.replace``.

    The manifest is written *last* in every save, so its appearance is
    what commits a snapshot.  A bare ``write_text`` could be caught
    mid-write by a crash and leave a truncated manifest — a snapshot
    that fails as garbage instead of reading as "incomplete save".
    With the rename, readers see either the old manifest or the new
    one, never a torn in-between.
    """
    target = path / MANIFEST_FILE
    tmp = path / (MANIFEST_FILE + ".tmp")
    with open(tmp, "w", encoding="utf-8") as fh:
        fh.write(json.dumps(manifest, indent=2, sort_keys=True))
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, target)
    try:
        dir_fd = os.open(path, os.O_RDONLY)
    except OSError:
        return  # no directory fds on this platform; the rename happened
    try:
        os.fsync(dir_fd)
    except OSError:
        pass  # directory fsync unsupported on this filesystem
    finally:
        os.close(dir_fd)


def read_manifest(path: PathLike) -> Dict[str, object]:
    """Read and validate a snapshot directory's manifest.

    Raises :class:`IndexPersistenceError` when the directory is not a
    snapshot, the format name is foreign, or the format version is newer
    than this code understands.
    """
    directory = Path(path)
    manifest_path = directory / MANIFEST_FILE
    if not manifest_path.is_file():
        raise IndexPersistenceError(
            f"{directory} is not an index snapshot (no {MANIFEST_FILE})"
        )
    try:
        manifest = json.loads(manifest_path.read_text())
    except json.JSONDecodeError as exc:
        raise IndexPersistenceError(f"unreadable manifest in {directory}: {exc}") from exc
    if manifest.get("format") != FORMAT_NAME:
        raise IndexPersistenceError(
            f"{manifest_path} has format {manifest.get('format')!r}, "
            f"expected {FORMAT_NAME!r}"
        )
    version = manifest.get("format_version")
    if not isinstance(version, int) or version < 1 or version > MAX_FORMAT_VERSION:
        raise IndexPersistenceError(
            f"unsupported index format version {version!r} in {manifest_path} "
            f"(this build reads versions 1..{MAX_FORMAT_VERSION})"
        )
    return manifest


def check_load_mode(load_mode: str) -> str:
    """Validate a load-mode string (:data:`LOAD_MODES`)."""
    if load_mode not in LOAD_MODES:
        raise IndexPersistenceError(
            f"unknown load_mode {load_mode!r}; expected one of {LOAD_MODES}"
        )
    return load_mode


def _require_mmap_version(directory: Path, version: int) -> None:
    """The satellite contract: v2 + mmap is a clear error, not a KeyError."""
    if version < MMAP_FORMAT_VERSION:
        raise IndexPersistenceError(
            f"snapshot {directory} is format v{version}, whose compressed "
            f".npz payloads cannot be memory-mapped; load_mode='mmap' needs "
            f"format v{MMAP_FORMAT_VERSION} — re-save the index with "
            f"save(..., format_version={MMAP_FORMAT_VERSION}) "
            f"(CLI: build --format-version {MMAP_FORMAT_VERSION})"
        )


def check_format_version(format_version: Optional[int]) -> int:
    """Resolve a ``format_version`` argument to a writable version."""
    version = FORMAT_VERSION if format_version is None else int(format_version)
    if version not in (FORMAT_VERSION, MMAP_FORMAT_VERSION):
        raise IndexPersistenceError(
            f"cannot write format version {version!r}; this build writes "
            f"v{FORMAT_VERSION} (default) or v{MMAP_FORMAT_VERSION} (mmap)"
        )
    return version


def _next_save_epoch(directory: Path) -> int:
    """The save epoch for the next save into ``directory``.

    Epoch 0 (a directory with no readable manifest — fresh, or wrecked
    beyond commitment) writes the canonical file names; every overwrite
    bumps the committed snapshot's epoch and writes under epoch-suffixed
    names.  Fresh names are what make overwrites crash-safe: the old
    snapshot's data files are never touched until the new manifest has
    committed, so a save killed at any point leaves the old state
    bitwise intact.
    """
    try:
        prior = read_manifest(directory)
    except IndexPersistenceError:
        return 0
    epoch = prior.get("save_epoch", 0)
    return (epoch if isinstance(epoch, int) and epoch >= 0 else 0) + 1


def _epoch_file(base: str, epoch: int) -> str:
    """``database.npz`` → ``database-00000001.npz`` for epoch 1, etc."""
    if epoch == 0:
        return base
    stem, dot, suffix = base.partition(".")
    return f"{stem}-{epoch:08d}{dot}{suffix}"


#: Epoch-suffixed v3 payload roots: ``payloads-00000001/database/...``.
_PAYLOAD_ROOT_PREFIX = "payloads-"


def _payload_root_name(epoch: int) -> str:
    return "" if epoch == 0 else f"{_PAYLOAD_ROOT_PREFIX}{epoch:08d}"


def _write_npz_atomic(target: Path, arrays: Mapping[str, object]) -> None:
    """Write one ``.npz`` archive via temp + fsync + ``os.replace``."""
    tmp = target.with_name(target.name + ".tmp")
    with open(tmp, "wb") as fh:
        np.savez_compressed(fh, **arrays)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, target)


def _manifest_filename(manifest: Mapping[str, object], key: str, default: str) -> str:
    """Resolve a manifest-recorded data file name (plain names only)."""
    name = manifest.get(key) or default
    if not isinstance(name, str) or "/" in name or "\\" in name or name in (".", ".."):
        raise IndexPersistenceError(
            f"snapshot manifest has an unsafe {key} entry: {name!r}"
        )
    return name


def _payload_root(directory: Path, manifest: Mapping[str, object]) -> Path:
    """The directory a v3 snapshot's payload tree lives under."""
    root = manifest.get("payload_root") or ""
    if root:
        if not isinstance(root, str) or "/" in root or "\\" in root or root in (".", ".."):
            raise IndexPersistenceError(
                f"snapshot {directory} manifest has an unsafe payload_root "
                f"entry: {root!r}"
            )
        return directory / root
    return directory


def _prune_stale_payloads(directory: Path, manifest: Mapping[str, object]) -> None:
    """Drop data files the just-committed manifest no longer references.

    Runs *after* the manifest commit, so a crash anywhere in the save
    leaves the previously committed snapshot untouched.  Covers old
    epochs' archives/payload roots, the other layout's files after a
    v2↔v3 re-save, and temp litter from saves that crashed mid-write.
    Unlinking files an mmap'd index (this process or a sibling) still
    maps is safe — POSIX keeps the inode alive for existing mappings.
    Best-effort: the manifest no longer names these files, so a failed
    removal costs disk, not correctness.
    """
    import shutil

    from repro.storage import layout

    version = int(manifest["format_version"])
    keep = set()
    if version >= MMAP_FORMAT_VERSION:
        root = str(manifest.get("payload_root") or "")
        if root:
            keep.add(root)
        else:
            keep.update((layout.DATABASE_DIR, layout.ARRAYS_DIR))
    else:
        keep.add(_manifest_filename(manifest, "database_file", DATABASE_FILE))
        keep.add(_manifest_filename(manifest, "arrays_file", ARRAYS_FILE))
    for entry in directory.iterdir():
        name = entry.name
        if name in keep:
            continue
        if entry.is_file():
            stale = name.endswith(".tmp") or (
                name.endswith(".npz")
                and (name.startswith("database") or name.startswith("arrays"))
            )
        else:
            stale = name in (layout.DATABASE_DIR, layout.ARRAYS_DIR) or (
                name.startswith(_PAYLOAD_ROOT_PREFIX)
            )
        if not stale:
            continue
        try:
            if entry.is_dir():
                shutil.rmtree(entry)
            else:
                entry.unlink()
        except OSError:
            pass


def save_index(
    index: "ANNIndex",
    path: PathLike,
    extras: Optional[Mapping[str, object]] = None,
    write_seq: int = 0,
    format_version: Optional[int] = None,
) -> Path:
    """Snapshot a built :class:`~repro.core.index.ANNIndex` to ``path``.

    The directory is created if needed; existing snapshot files are
    overwritten.  ``extras`` lands verbatim in the manifest (JSON-able
    values only).  ``write_seq`` records the last replicated write-log
    sequence number this index has applied (see ``docs/DISTRIBUTED.md``);
    a replica restarted from the snapshot resumes catch-up from there.
    Snapshots written before the field existed read back as 0 through
    :func:`snapshot_write_seq`.

    ``format_version`` selects the layout: ``None``/:data:`FORMAT_VERSION`
    writes the default v2 ``.npz`` snapshot (readable by every v2
    deployment); :data:`MMAP_FORMAT_VERSION` writes the raw ``.npy``
    payload tree that ``load(..., load_mode="mmap")`` maps zero-copy.
    Returns the directory path.

    Saves are crash-safe end to end, including overwrites: data files
    go to *fresh* epoch-suffixed names (fsync'd, written via temp +
    rename), the manifest — which records those names — commits last and
    atomically, and only then are the previous epoch's files pruned.  A
    process killed at any point of a save leaves a directory that loads
    as the old committed state, the new state, or (fresh directory only)
    fails with a typed error — never a torn mixture, and never a
    destroyed predecessor.
    """
    version = check_format_version(format_version)
    spec = index.spec
    if spec is None:
        raise IndexPersistenceError(
            "index has no spec (hand-built scheme); only registry-built "
            "indexes (ANNIndex.from_spec) can be saved"
        )
    if spec.seed is None:
        raise IndexPersistenceError(
            "index spec has no concrete seed, so its randomness cannot be "
            "replayed; build through ANNIndex.from_spec (which pins one)"
        )
    directory = Path(path)
    directory.mkdir(parents=True, exist_ok=True)
    epoch = _next_save_epoch(directory)
    db = index.database
    state = index.mutation
    arrays = index.scheme.export_arrays()
    manifest = {
        "format": FORMAT_NAME,
        "format_version": version,
        "kind": KIND_INDEX,
        "spec": spec.to_dict(),
        "seed": spec.seed,
        "n": len(db),
        "d": db.d,
        "live_n": state.live_count,
        "generation": state.generation,
        "compact_threshold": state.compact_threshold,
        "scheme_name": index.scheme.scheme_name,
        "array_keys": sorted(arrays),
        "write_seq": int(write_seq),
        "save_epoch": epoch,
        "extras": dict(extras or {}),
    }
    if version >= MMAP_FORMAT_VERSION:
        from repro.storage import layout

        root_name = _payload_root_name(epoch)
        root = directory / root_name if root_name else directory
        root.mkdir(parents=True, exist_ok=True)
        try:
            payloads = layout.write_payloads(
                root,
                layout.DATABASE_DIR,
                {"words": db.words, **state.export_arrays()},
            )
            payloads.update(layout.write_payloads(root, layout.ARRAYS_DIR, arrays))
        except layout.StorageLayoutError as exc:
            raise IndexPersistenceError(str(exc)) from exc
        manifest["payloads"] = payloads
        manifest["payload_root"] = root_name
    else:
        db_file = _epoch_file(DATABASE_FILE, epoch)
        arrays_file = _epoch_file(ARRAYS_FILE, epoch)
        _write_npz_atomic(
            directory / db_file,
            {"words": db.words, "d": np.int64(db.d), **state.export_arrays()},
        )
        _write_npz_atomic(directory / arrays_file, arrays)
        manifest["database_file"] = db_file
        manifest["arrays_file"] = arrays_file
    _write_manifest(directory, manifest)
    _prune_stale_payloads(directory, manifest)
    return directory


def snapshot_write_seq(path: PathLike) -> int:
    """The write-log sequence number a snapshot was taken at.

    0 for snapshots that never served replicated writes (including every
    snapshot written before the field existed — absence means "start of
    the log", so old snapshots replay the full write history, which is
    always safe).
    """
    value = read_manifest(path).get("write_seq", 0)
    if not isinstance(value, int) or value < 0:
        raise IndexPersistenceError(
            f"snapshot {path} has a malformed write_seq field: {value!r}"
        )
    return value


#: database.npz keys a format-v2 snapshot must carry beyond words/d.
_MUTATION_KEYS = ("tombstones", "memtable_words", "memtable_deleted")


def _read_npz(directory: Path, filename: str) -> Dict[str, np.ndarray]:
    """Read one snapshot ``.npz`` member into a plain dict.

    A missing, truncated, or otherwise unreadable archive — the
    ``database.npz``/``arrays.npz`` corruption cases the tamper tests
    cover — raises :class:`IndexPersistenceError` instead of leaking
    ``zipfile``/``numpy`` internals.
    """
    path = directory / filename
    if not path.is_file():
        raise IndexPersistenceError(f"snapshot {directory} is missing {filename}")
    try:
        with np.load(path) as payload:
            return {key: payload[key] for key in payload.files}
    except Exception as exc:
        raise IndexPersistenceError(
            f"snapshot {directory} has an unreadable {filename}: {exc}"
        ) from exc


def _load_database(directory: Path, version: int, manifest: Mapping[str, object]):
    """The packed database plus (for v2) the mutation payload triple."""
    from repro.hamming.points import PackedPoints

    db_file = _manifest_filename(manifest, "database_file", DATABASE_FILE)
    payload = _read_npz(directory, db_file)
    if "words" not in payload or "d" not in payload:
        raise IndexPersistenceError(
            f"snapshot {directory} {db_file} is missing words/d"
        )
    try:
        database = PackedPoints(payload["words"], int(payload["d"]))
    except Exception as exc:
        raise IndexPersistenceError(
            f"snapshot {directory} holds an invalid packed database: {exc}"
        ) from exc
    if version < 2:
        return database, None
    missing = [key for key in _MUTATION_KEYS if key not in payload]
    if missing:
        raise IndexPersistenceError(
            f"snapshot {directory} {db_file} is missing format-v2 "
            f"mutation payload(s): {', '.join(missing)}"
        )
    return database, tuple(payload[key] for key in _MUTATION_KEYS)


def payload_index(directory: Path, manifest: Mapping[str, object]) -> Dict[str, dict]:
    """The manifest's format-v3 ``payloads`` file index (relpath → info)."""
    payloads = manifest.get("payloads")
    if not isinstance(payloads, dict) or not payloads:
        raise IndexPersistenceError(
            f"snapshot {directory} manifest is missing the format-v3 "
            "payloads index"
        )
    return payloads


def _load_database_v3(directory: Path, manifest: Mapping[str, object], load_mode: str):
    """The packed database + mutation triple from the v3 payload tree.

    The word matrix honors ``load_mode``; the mutation triple is always
    materialized in heap — it is *mutable* state (tombstone flips,
    memtable appends), so it can never alias a read-only mapping.
    Mapped words skip the O(n) padding re-scan
    (:meth:`PackedPoints.from_validated`): paging in the whole file to
    re-check an invariant the packer already enforced would defeat the
    lazy load.
    """
    from repro.hamming.points import PackedPoints
    from repro.storage import layout

    payloads = payload_index(directory, manifest)
    root = _payload_root(directory, manifest)
    try:
        words_rel = layout.payload_relpath(layout.DATABASE_DIR, "words")
        if words_rel not in payloads:
            raise IndexPersistenceError(
                f"snapshot {directory} payload index is missing {words_rel}"
            )
        words = layout.read_payload(root, words_rel, payloads[words_rel], load_mode)
        mutation = []
        for key in _MUTATION_KEYS:
            rel = layout.payload_relpath(layout.DATABASE_DIR, key)
            if rel not in payloads:
                raise IndexPersistenceError(
                    f"snapshot {directory} payload index is missing {rel}"
                )
            mutation.append(layout.read_payload(root, rel, payloads[rel], "heap"))
    except layout.StorageLayoutError as exc:
        raise IndexPersistenceError(str(exc)) from exc
    d = int(manifest["d"])
    try:
        if load_mode == "mmap":
            database = PackedPoints.from_validated(words, d)
        else:
            database = PackedPoints(words, d)
    except Exception as exc:
        raise IndexPersistenceError(
            f"snapshot {directory} holds an invalid packed database: {exc}"
        ) from exc
    return database, tuple(mutation)


def _read_arrays_v3(
    directory: Path, manifest: Mapping[str, object], load_mode: str
) -> Dict[str, np.ndarray]:
    """The scheme's array payloads from the v3 tree, keyed like the npz."""
    from repro.storage import layout

    try:
        return layout.read_group(
            _payload_root(directory, manifest),
            payload_index(directory, manifest),
            layout.ARRAYS_DIR,
            load_mode,
        )
    except layout.StorageLayoutError as exc:
        raise IndexPersistenceError(str(exc)) from exc


def load_index(path: PathLike, load_mode: str = "heap") -> "ANNIndex":
    """Load a snapshot written by :func:`save_index`.

    The returned index answers bitwise-identically to the one saved: the
    scheme is rebuilt from the manifest's spec (seed derived through the
    recorded compaction generation, same registry factory), the array
    payloads are installed on top, and any tombstones/memtable state is
    restored and checked against the manifest's ``live_n``.

    ``load_mode="mmap"`` (format v3 only) maps the packed database and
    large scheme arrays zero-copy instead of materializing them; answers
    and probe accounting stay bitwise-identical to ``"heap"``, the
    default.
    """
    from repro.api import IndexSpec
    from repro.core.index import ANNIndex
    from repro.core.mutable import DEFAULT_COMPACT_THRESHOLD, generation_seed
    from repro.registry import build_scheme

    check_load_mode(load_mode)
    directory = Path(path)
    manifest = read_manifest(directory)
    if manifest.get("kind") != KIND_INDEX:
        raise IndexPersistenceError(
            f"snapshot {directory} holds a {manifest.get('kind')!r}, not a "
            f"single index; use repro.persistence.load_any"
        )
    version = int(manifest["format_version"])
    if load_mode == "mmap":
        _require_mmap_version(directory, version)
    if version >= MMAP_FORMAT_VERSION:
        database, mutation_payload = _load_database_v3(directory, manifest, load_mode)
    else:
        database, mutation_payload = _load_database(directory, version, manifest)
    spec = IndexSpec.from_dict(manifest["spec"])
    if int(manifest["n"]) != len(database) or int(manifest["d"]) != database.d:
        raise IndexPersistenceError(
            f"manifest geometry (n={manifest['n']}, d={manifest['d']}) does "
            f"not match the stored database (n={len(database)}, d={database.d})"
        )
    generation = int(manifest.get("generation", 0))
    threshold = float(manifest.get("compact_threshold", DEFAULT_COMPACT_THRESHOLD))
    scheme_spec = spec
    if generation > 0:
        scheme_spec = spec.replace(seed=generation_seed(spec.seed, generation))
    scheme = build_scheme(database, scheme_spec)
    if version >= MMAP_FORMAT_VERSION:
        arrays = _read_arrays_v3(directory, manifest, load_mode)
    else:
        arrays = _read_npz(
            directory, _manifest_filename(manifest, "arrays_file", ARRAYS_FILE)
        )
    try:
        # mmap loads adopt the payloads (header-validated, content
        # trusted) so no array is read in full before a query probes it;
        # heap loads keep the eager rebuild-and-verify restore.
        if load_mode == "mmap":
            scheme.adopt_arrays(arrays)
        else:
            scheme.restore_arrays(arrays)
    except ValueError as exc:
        raise IndexPersistenceError(
            f"snapshot {directory} payload rejected: {exc}"
        ) from exc
    index = ANNIndex(
        database,
        scheme,
        spec=spec,
        generation=generation,
        compact_threshold=threshold,
    )
    if mutation_payload is not None:
        try:
            index.mutation.restore_arrays(*mutation_payload)
        except ValueError as exc:
            raise IndexPersistenceError(
                f"snapshot {directory} mutation state rejected: {exc}"
            ) from exc
    if "live_n" in manifest and int(manifest["live_n"]) != index.live_count:
        raise IndexPersistenceError(
            f"snapshot {directory} mutation state is inconsistent: manifest "
            f"records {manifest['live_n']} live rows, payload restores "
            f"{index.live_count}"
        )
    index.load_mode = load_mode
    return index


def load_any(
    path: PathLike,
    load_mode: str = "heap",
    memory_budget: Optional[int] = None,
    pin=(),
):
    """Load whatever index kind a snapshot directory holds.

    Returns an :class:`~repro.core.index.ANNIndex` for single-index
    snapshots and a :class:`~repro.service.sharded.ShardedANNIndex` for
    sharded ones — the CLI's ``bench --index DIR`` / ``serve`` entry
    point.  ``load_mode``/``memory_budget``/``pin`` forward to the
    loaders; a ``memory_budget`` on a single-index snapshot is an error
    (residency eviction is per shard — there is nothing to evict below
    one index).
    """
    manifest = read_manifest(path)
    kind = manifest.get("kind")
    if kind == KIND_INDEX:
        if memory_budget is not None:
            raise IndexPersistenceError(
                f"snapshot {path} holds a single index; memory_budget "
                "controls per-shard residency and needs a sharded snapshot "
                "(use load_mode='mmap' alone to keep a single index "
                "out-of-core)"
            )
        return load_index(path, load_mode=load_mode)
    if kind == KIND_SHARDED:
        from repro.service.sharded import ShardedANNIndex

        return ShardedANNIndex.load(
            path, load_mode=load_mode, memory_budget=memory_budget, pin=pin
        )
    raise IndexPersistenceError(f"unknown snapshot kind {kind!r} in {path}")
