"""Growth-exponent fitting for the tradeoff claims.

Theorem 2's bound is `O(k (log d)^{1/k})`: at fixed k, the probe count
should grow like `(log d)^{1/k}` as the dimension sweeps.  Fitting the
log-log slope of probes against `log d` therefore recovers `1/k` — the
sharpest scalar check of the claim that doesn't depend on constants.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence

from repro.analysis.stats import loglog_slope

__all__ = ["ExponentFit", "fit_probe_exponent"]


@dataclass(frozen=True)
class ExponentFit:
    """A fitted growth exponent with its theoretical target."""

    k: int
    slope: float            # fitted d(log probes)/d(log log d)
    target: float           # 1/k
    dims: tuple
    probes: tuple

    @property
    def absolute_error(self) -> float:
        return abs(self.slope - self.target)

    def as_row(self) -> dict:
        return {
            "k": self.k,
            "fitted exponent": round(self.slope, 3),
            "target 1/k": round(self.target, 3),
            "|error|": round(self.absolute_error, 3),
        }


def fit_probe_exponent(k: int, dims: Sequence[int], probes: Sequence[float]) -> ExponentFit:
    """Fit `probes ~ (log₂ d)^e` and report ``e`` against the target 1/k.

    ``probes`` should be the *envelope-tracking* statistic (max probes per
    query works best: the completion round's ±1 noise averages out), taken
    at the same k across the dimension sweep.
    """
    if len(dims) != len(probes) or len(dims) < 3:
        raise ValueError("need >= 3 paired (d, probes) points")
    log_dims = [math.log2(d) for d in dims]
    slope = loglog_slope(log_dims, probes)
    return ExponentFit(
        k=int(k),
        slope=slope,
        target=1.0 / k,
        dims=tuple(int(d) for d in dims),
        probes=tuple(float(p) for p in probes),
    )
