"""Experiment harness: statistics, workload evaluation sweeps, Lemma 8
verification, and report rendering used by the benches."""

from repro.analysis.exponents import ExponentFit, fit_probe_exponent
from repro.analysis.sandwich import SandwichReport, verify_lemma8
from repro.analysis.stats import loglog_slope, mean_ci, summarize, wilson_interval
from repro.analysis.tradeoff import EvalSummary, evaluate_scheme, sweep_algorithm1, sweep_algorithm2
from repro.analysis.reporting import format_markdown_table, print_table

__all__ = [
    "EvalSummary",
    "ExponentFit",
    "fit_probe_exponent",
    "SandwichReport",
    "evaluate_scheme",
    "format_markdown_table",
    "loglog_slope",
    "mean_ci",
    "print_table",
    "summarize",
    "sweep_algorithm1",
    "sweep_algorithm2",
    "verify_lemma8",
    "wilson_interval",
]
