"""Scheme evaluation sweeps: run a scheme over a workload, collect probe,
round, and quality statistics; sweep ``k`` for both algorithms.

This module is the engine behind experiments E1–E3 and E6: every bench
calls :func:`evaluate_scheme` (or a sweep) and renders the summary rows.
Registry-driven entry points (:func:`evaluate_spec`, :func:`sweep_rounds`)
evaluate any scheme by :class:`~repro.api.IndexSpec`, so harnesses need no
scheme-specific construction code.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence

import numpy as np

from repro.analysis.stats import summarize, wilson_interval
from repro.cellprobe.scheme import CellProbingScheme
from repro.core.params import Algorithm1Params, Algorithm2Params, BaseParameters
from repro.core.algorithm1 import SimpleKRoundScheme
from repro.core.algorithm2 import LargeKScheme
from repro.workloads.spec import Workload

__all__ = [
    "EvalSummary",
    "evaluate_index",
    "evaluate_scheme",
    "evaluate_spec",
    "sweep_algorithm1",
    "sweep_algorithm2",
    "sweep_rounds",
]


@dataclass
class EvalSummary:
    """Aggregated outcome of running one scheme over one workload."""

    scheme: str
    workload: str
    num_queries: int
    mean_probes: float
    max_probes: int
    mean_rounds: float
    max_rounds: int
    success_rate: float
    success_ci: tuple
    answered_rate: float
    mean_ratio: Optional[float]
    table_cells: int
    extras: Dict[str, object] = field(default_factory=dict)

    def row(self) -> Dict[str, object]:
        """Flat row for table rendering."""
        return {
            "scheme": self.scheme,
            "workload": self.workload,
            "queries": self.num_queries,
            "probes(mean)": round(self.mean_probes, 2),
            "probes(max)": self.max_probes,
            "rounds(mean)": round(self.mean_rounds, 2),
            "rounds(max)": self.max_rounds,
            "success": round(self.success_rate, 3),
            "answered": round(self.answered_rate, 3),
            "ratio(mean)": None if self.mean_ratio is None else round(self.mean_ratio, 3),
            "cells": self.table_cells,
            **self.extras,
        }


def evaluate_scheme(
    scheme: CellProbingScheme,
    workload: Workload,
    gamma: float,
    max_queries: Optional[int] = None,
    batch: bool = False,
) -> EvalSummary:
    """Run every workload query through ``scheme`` and aggregate.

    *Success* means: the scheme answered and the achieved ratio is ≤ γ
    (with the distance-0 convention of
    :func:`repro.core.result.achieved_ratio`).

    ``batch=True`` executes the queries through the batched engine
    instead of a sequential loop — results (and therefore every
    statistic) are identical; only the wall-clock differs.
    """
    queries = workload.queries
    if max_queries is not None:
        queries = queries[:max_queries]
    if batch:
        from repro.service.engine import BatchQueryEngine

        results = BatchQueryEngine(scheme).run(queries)
    else:
        results = (scheme.query(queries[qi]) for qi in range(queries.shape[0]))
    return _aggregate_results(
        results,
        queries,
        workload,
        gamma,
        label=scheme.scheme_name,
        table_cells=scheme.size_report().table_cells,
    )


def _aggregate_results(
    results,
    queries: np.ndarray,
    workload: Workload,
    gamma: float,
    label: str,
    table_cells: int,
) -> EvalSummary:
    """Fold per-query results into an :class:`EvalSummary` (the shared
    tail of :func:`evaluate_scheme` and :func:`evaluate_index`)."""
    db = workload.database
    probes: List[int] = []
    rounds: List[int] = []
    ratios: List[float] = []
    successes = 0
    answered = 0
    extras: Dict[str, object] = {}
    violations = 0
    for qi, res in enumerate(results):
        x = queries[qi]
        probes.append(res.probes)
        rounds.append(res.rounds)
        if res.meta.get("budget_violated"):
            violations += 1
        ratio = res.ratio(db, x)
        if ratio is not None:
            answered += 1
            if np.isfinite(ratio):
                ratios.append(float(ratio))
            if ratio <= gamma:
                successes += 1
    m = queries.shape[0]
    p_summary = summarize(probes)
    r_summary = summarize(rounds)
    if violations:
        extras["budget_violations"] = violations
    return EvalSummary(
        scheme=label,
        workload=workload.name,
        num_queries=m,
        mean_probes=p_summary.mean,
        max_probes=int(p_summary.maximum),
        mean_rounds=r_summary.mean,
        max_rounds=int(r_summary.maximum),
        success_rate=successes / m,
        success_ci=wilson_interval(successes, m),
        answered_rate=answered / m,
        mean_ratio=(sum(ratios) / len(ratios)) if ratios else None,
        table_cells=table_cells,
        extras=extras,
    )


def evaluate_index(
    index,
    workload: Workload,
    gamma: Optional[float] = None,
    max_queries: Optional[int] = None,
) -> EvalSummary:
    """Evaluate a *prebuilt* index over a workload's queries.

    ``index`` is anything with ``query_batch`` + ``size_report`` — an
    :class:`~repro.core.index.ANNIndex` (e.g. loaded from a snapshot) or
    a :class:`~repro.service.sharded.ShardedANNIndex`.  Global-row-id
    semantics matter here: sharded answers come back remapped, so the
    achieved-ratio bookkeeping against the workload database is exact.

    ``gamma`` defaults to the index spec's resolved ``gamma`` (or 4.0).
    """
    spec = getattr(index, "spec", None)
    if gamma is None:
        gamma = 4.0
        if spec is not None:
            gamma = float(spec.resolved_params().get("gamma", 4.0))
    queries = workload.queries
    if max_queries is not None:
        queries = queries[:max_queries]
    results = index.query_batch(queries)
    scheme = getattr(index, "scheme", None)
    label = scheme.scheme_name if scheme is not None else type(index).__name__
    if hasattr(index, "num_shards"):
        inner = index.shards[0].scheme.scheme_name
        label = f"sharded({inner}×{index.num_shards})"
    summary = _aggregate_results(
        results,
        queries,
        workload,
        gamma,
        label=label,
        table_cells=index.size_report().table_cells,
    )
    summary.extras["cells=n^c"] = round(
        index.size_report().cells_log_n(len(workload.database)), 1
    )
    return summary


def sweep_algorithm1(
    workload: Workload,
    gamma: float,
    ks: Sequence[int],
    seed: int = 0,
    c1: float = 6.0,
    scheme_factory: Optional[Callable[[Algorithm1Params], CellProbingScheme]] = None,
) -> List[EvalSummary]:
    """Evaluate Algorithm 1 at each round budget in ``ks``."""
    db = workload.database
    base = BaseParameters(n=len(db), d=db.d, gamma=gamma, c1=c1)
    out: List[EvalSummary] = []
    for k in ks:
        params = Algorithm1Params(base, k=int(k))
        scheme = (
            scheme_factory(params)
            if scheme_factory is not None
            else SimpleKRoundScheme(db, params, seed=seed)
        )
        summary = evaluate_scheme(scheme, workload, gamma)
        summary.extras.update({"k": int(k), "tau": params.tau,
                               "envelope": round(params.theoretical_probe_curve(), 2)})
        out.append(summary)
    return out


def sweep_algorithm2(
    workload: Workload,
    gamma: float,
    ks: Sequence[int],
    seed: int = 0,
    c: float = 3.0,
    c1: float = 6.0,
    c2: float = 6.0,
    s_override: Optional[int] = None,
) -> List[EvalSummary]:
    """Evaluate Algorithm 2 at each round budget in ``ks``.

    Round budgets whose ``s < 1`` constraint fails are skipped (recorded
    nowhere — Theorem 10 simply does not cover them).
    """
    db = workload.database
    base = BaseParameters(n=len(db), d=db.d, gamma=gamma, c1=c1, c2=c2)
    out: List[EvalSummary] = []
    for k in ks:
        try:
            params = Algorithm2Params(base, k=int(k), c=c, s_override=s_override)
        except ValueError:
            continue
        scheme = LargeKScheme(db, params, seed=seed)
        summary = evaluate_scheme(scheme, workload, gamma)
        summary.extras.update(
            {
                "k": int(k),
                "tau": params.tau,
                "s": params.s,
                "envelope": round(params.theoretical_probe_curve(), 2),
                "probes_per_round": round(summary.mean_probes / max(1.0, summary.mean_rounds), 2),
            }
        )
        out.append(summary)
    return out


# -- registry-driven evaluation ------------------------------------------------


def _scheme_extras(scheme: CellProbingScheme) -> Dict[str, object]:
    """Derived constants worth reporting, read generically off the scheme."""
    extras: Dict[str, object] = {}
    params = getattr(scheme, "params", None)
    for attr in ("tau", "s"):
        value = getattr(params, attr, None)
        if value is not None:
            extras[attr] = value
    curve = getattr(params, "theoretical_probe_curve", None)
    if callable(curve):
        extras["envelope"] = round(curve(), 2)
    return extras


def evaluate_spec(
    spec,
    workload: Workload,
    gamma: Optional[float] = None,
    max_queries: Optional[int] = None,
    batch: bool = False,
) -> EvalSummary:
    """Build the spec's scheme via the registry and evaluate it.

    ``gamma`` defaults to the spec's resolved ``gamma`` parameter (or the
    global default 4.0 for schemes without one, e.g. linear-scan).
    """
    from repro.registry import build_scheme

    if gamma is None:
        gamma = float(spec.resolved_params().get("gamma", 4.0))
    scheme = build_scheme(workload.database, spec)
    summary = evaluate_scheme(
        scheme, workload, gamma, max_queries=max_queries, batch=batch
    )
    summary.extras.update(_scheme_extras(scheme))
    summary.extras["cells=n^c"] = round(
        scheme.size_report().cells_log_n(len(workload.database)), 1
    )
    return summary


def sweep_rounds(
    workload: Workload,
    scheme: str,
    ks: Sequence[int],
    gamma: float = 4.0,
    seed: Optional[int] = 0,
    params: Optional[Mapping[str, object]] = None,
    batch: bool = False,
) -> List[EvalSummary]:
    """Evaluate a registered scheme at each round budget in ``ks``.

    Round budgets the scheme's parameter validation rejects (e.g.
    Algorithm 2's ``s ≥ 1`` constraint) are skipped, mirroring the
    legacy per-algorithm sweeps — but if *every* requested ``k`` fails,
    the last error is raised: a k-independent problem (bad γ, bad c1)
    should fail loudly, not return an empty sweep.
    """
    from repro.api import IndexSpec
    from repro.registry import build_scheme

    out: List[EvalSummary] = []
    last_error: Optional[ValueError] = None
    for k in ks:
        spec = IndexSpec(
            scheme=scheme, params={**(params or {}), "rounds": int(k)}, seed=seed
        )
        try:
            built = build_scheme(workload.database, spec)
        except ValueError as exc:
            last_error = exc
            continue
        summary = evaluate_scheme(built, workload, gamma, batch=batch)
        summary.extras = {"k": int(k), **_scheme_extras(built), **summary.extras}
        out.append(summary)
    if not out and last_error is not None:
        raise last_error
    return out
