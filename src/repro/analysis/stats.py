"""Statistics helpers for the experiments: summaries, Wilson intervals for
success probabilities, and log-log slope fits for growth-rate checks."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

__all__ = ["Summary", "loglog_slope", "mean_ci", "summarize", "wilson_interval"]


@dataclass(frozen=True)
class Summary:
    """Five-number-ish summary of a sample."""

    count: int
    mean: float
    std: float
    minimum: float
    maximum: float

    def as_tuple(self) -> Tuple[int, float, float, float, float]:
        return (self.count, self.mean, self.std, self.minimum, self.maximum)


def summarize(values: Sequence[float]) -> Summary:
    """Summary statistics of a non-empty sample."""
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        raise ValueError("cannot summarize an empty sample")
    return Summary(
        count=int(arr.size),
        mean=float(arr.mean()),
        std=float(arr.std(ddof=1)) if arr.size > 1 else 0.0,
        minimum=float(arr.min()),
        maximum=float(arr.max()),
    )


def mean_ci(values: Sequence[float], z: float = 1.96) -> Tuple[float, float, float]:
    """``(mean, lo, hi)`` normal-approximation confidence interval."""
    s = summarize(values)
    half = z * s.std / math.sqrt(s.count) if s.count > 1 else 0.0
    return s.mean, s.mean - half, s.mean + half

def wilson_interval(successes: int, trials: int, z: float = 1.96) -> Tuple[float, float, float]:
    """``(p̂, lo, hi)`` Wilson score interval for a binomial proportion.

    Preferred over the normal interval for the small trial counts the
    success-probability experiments use.
    """
    if trials <= 0:
        raise ValueError("trials must be positive")
    if not (0 <= successes <= trials):
        raise ValueError("successes outside [0, trials]")
    phat = successes / trials
    z2 = z * z
    denom = 1.0 + z2 / trials
    center = (phat + z2 / (2 * trials)) / denom
    half = (z / denom) * math.sqrt(phat * (1 - phat) / trials + z2 / (4 * trials * trials))
    return phat, max(0.0, center - half), min(1.0, center + half)


def loglog_slope(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Least-squares slope of ``log y`` against ``log x``.

    Used to check growth exponents, e.g. that Algorithm 1's probe count at
    fixed ``k`` grows like ``(log d)^{1/k}`` — the fitted slope of probes
    against ``log d`` on log-log axes should sit near ``1/k``.
    """
    x = np.log(np.asarray(list(xs), dtype=np.float64))
    y = np.log(np.asarray(list(ys), dtype=np.float64))
    if x.size != y.size or x.size < 2:
        raise ValueError("need >= 2 paired points")
    x -= x.mean()
    denom = float((x * x).sum())
    if denom == 0.0:
        raise ValueError("x values are all equal")
    return float((x * (y - y.mean())).sum() / denom)
