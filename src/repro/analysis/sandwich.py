"""Empirical verification of Lemma 8 (experiment E4).

For a database, a sketch family, and a batch of query points, measure:

1. the probability that the sandwich ``B_i ⊆ C_i ⊆ B_{i+1}`` holds
   *simultaneously for all levels* (Lemma 8 claims ≥ 3/4 together with the
   coarse property);
2. per-level failure rates for each inclusion separately, to show where the
   concentration knee sits as the row count grows;
3. the coarse-set fractions of Lemma 8's second property:
   ``|B_j \\ D_{i,j}| / |B_j| ≤ n^{-1/s}`` and
   ``|D_{i,j} ∩ (C_i \\ B_{j+1})| / |C_i \\ B_{j+1}| ≤ n^{-1/s}``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.hamming.points import PackedPoints
from repro.sketch.approx_balls import ApproxBallEvaluator
from repro.sketch.family import SketchFamily
from repro.sketch.levels import LevelSketches

__all__ = ["SandwichReport", "verify_lemma8"]


@dataclass
class SandwichReport:
    """Aggregated Lemma 8 measurements."""

    num_queries: int
    levels: int
    simultaneous_ok: int
    lower_failures_by_level: List[int]  # B_i ⊄ C_i events
    upper_failures_by_level: List[int]  # C_i ⊄ B_{i+1} events
    coarse_checked: int = 0
    coarse_miss_ok: int = 0  # |B_j \ D_ij| fraction within n^{-1/s}
    coarse_leak_ok: int = 0  # far-point leak fraction within n^{-1/s}
    extras: Dict[str, object] = field(default_factory=dict)

    @property
    def simultaneous_rate(self) -> float:
        """Fraction of queries whose sandwich held at every level."""
        return self.simultaneous_ok / self.num_queries

    def rows(self) -> List[dict]:
        """Per-level failure-rate rows for reporting."""
        out = []
        for i in range(self.levels + 1):
            out.append(
                {
                    "level": i,
                    "P[B_i ⊄ C_i]": self.lower_failures_by_level[i] / self.num_queries,
                    "P[C_i ⊄ B_{i+1}]": self.upper_failures_by_level[i] / self.num_queries,
                }
            )
        return out


def verify_lemma8(
    database: PackedPoints,
    family: SketchFamily,
    queries: np.ndarray,
    s_exponent: Optional[float] = None,
    coarse_level_pairs: Optional[List[tuple]] = None,
) -> SandwichReport:
    """Measure Lemma 8's properties over ``queries``.

    Parameters
    ----------
    s_exponent : the ``s`` of the coarse bound ``n^{-1/s}``; coarse checks
        run only when the family has coarse sketches and this is given.
    coarse_level_pairs : explicit ``(i, j)`` pairs to check (default: a
        diagonal band ``j ∈ {i, i−2}``).
    """
    sketches = LevelSketches(database, family)
    evaluator = ApproxBallEvaluator(sketches)
    levels = family.levels
    alpha = family.alpha
    q = np.asarray(queries, dtype=np.uint64)
    if q.ndim == 1:
        q = q[None, :]
    m = q.shape[0]

    lower_fail = [0] * (levels + 1)
    upper_fail = [0] * (levels + 1)
    simultaneous_ok = 0
    coarse_checked = coarse_miss_ok = coarse_leak_ok = 0
    n = len(database)
    has_coarse = family.coarse_rows is not None and s_exponent is not None
    cut = n ** (-1.0 / s_exponent) if has_coarse else None

    for qi in range(m):
        x = q[qi]
        dists = database.distances_from(x)
        all_ok = True
        c_masks = []
        for i in range(levels + 1):
            address = family.accurate_address(i, x)
            c_mask = evaluator.c_mask(i, address)
            c_masks.append((address, c_mask))
            b_i = dists <= alpha**i
            b_next = dists <= alpha ** (i + 1)
            if np.any(b_i & ~c_mask):
                lower_fail[i] += 1
                all_ok = False
            if np.any(c_mask & ~b_next):
                upper_fail[i] += 1
                all_ok = False
        if all_ok:
            simultaneous_ok += 1

        if has_coarse:
            pairs = coarse_level_pairs
            if pairs is None:
                pairs = [(i, j) for i in range(levels + 1) for j in (i, i - 2) if 0 <= j <= i]
            for i, j in pairs:
                address, c_mask = c_masks[i]
                w = family.coarse_address(j, x)
                d_mask = evaluator.d_mask(i, address, j, w)
                b_j = dists <= alpha**j
                b_j1 = dists <= alpha ** (j + 1)
                coarse_checked += 1
                nb = int(b_j.sum())
                if nb == 0 or int((b_j & ~d_mask).sum()) <= cut * nb:
                    coarse_miss_ok += 1
                far = c_mask & ~b_j1
                nf = int(far.sum())
                if nf == 0 or int((d_mask & far).sum()) <= cut * nf:
                    coarse_leak_ok += 1

    return SandwichReport(
        num_queries=m,
        levels=levels,
        simultaneous_ok=simultaneous_ok,
        lower_failures_by_level=lower_fail,
        upper_failures_by_level=upper_fail,
        coarse_checked=coarse_checked,
        coarse_miss_ok=coarse_miss_ok,
        coarse_leak_ok=coarse_leak_ok,
        extras={"accurate_rows": family.accurate_rows, "coarse_rows": family.coarse_rows},
    )
