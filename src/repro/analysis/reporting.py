"""Plain-text / markdown table rendering for bench output.

Benches print the same rows EXPERIMENTS.md records; keeping the renderer
here means the bench scripts stay declarative.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

__all__ = ["format_markdown_table", "print_table"]


def _cell(value: object) -> str:
    if value is None:
        return "—"
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def format_markdown_table(rows: Sequence[Dict[str, object]], columns: List[str] | None = None) -> str:
    """Render dict rows as a GitHub-flavored markdown table."""
    if not rows:
        return "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
        for row in rows[1:]:
            for key in row:
                if key not in columns:
                    columns.append(key)
    header = "| " + " | ".join(columns) + " |"
    divider = "| " + " | ".join("---" for _ in columns) + " |"
    body = [
        "| " + " | ".join(_cell(row.get(col)) for col in columns) + " |" for row in rows
    ]
    return "\n".join([header, divider, *body])


def print_table(title: str, rows: Sequence[Dict[str, object]], columns: List[str] | None = None) -> str:
    """Print (and return) a titled markdown table; benches call this so the
    rows appear in the pytest output for EXPERIMENTS.md transcription."""
    text = f"\n### {title}\n\n" + format_markdown_table(rows, columns) + "\n"
    print(text)
    return text
