"""Static-analysis tooling (``repro lint``) for project invariants.

See :mod:`repro.devtools.framework` for the checker machinery,
:mod:`repro.devtools.rules` for the R001–R006 rule suite, and
``docs/DEVTOOLS.md`` for the catalog and the add-a-rule recipe.
"""

from repro.devtools.framework import (
    Checker,
    Finding,
    LintContext,
    LintResult,
    baseline_payload,
    format_json,
    format_text,
    load_baseline,
    run_lint,
)
from repro.devtools.rules import ALL_CHECKERS, checker_for, rule_ids

__all__ = [
    "ALL_CHECKERS",
    "Checker",
    "Finding",
    "LintContext",
    "LintResult",
    "baseline_payload",
    "checker_for",
    "format_json",
    "format_text",
    "load_baseline",
    "rule_ids",
    "run_lint",
]
