"""The project-invariant rule suite for ``repro lint``.

Each rule guards an invariant documented in ``docs/ARCHITECTURE.md`` /
``docs/DEVTOOLS.md``:

- R001 unseeded-rng     — all randomness flows through the RngTree
- R002 adopt-purity     — ``adopt_arrays`` never reads payload contents
- R003 async-blocking   — service coroutines never block the event loop
- R004 registry-contract — registered schemes carry the full hook surface
- R005 wire-verb-sync   — server/router/client/docs verb tables agree
- R006 typed-errors     — wire/snapshot paths raise typed errors only
- R007 kernel-seam      — popcount/XOR distances go through repro.hamming

Rules are pure AST analyses: nothing here imports or executes the code
under inspection.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.devtools.framework import (
    Checker,
    Finding,
    LintContext,
    ModuleInfo,
    attr_chain,
    _imports_in,
)

__all__ = ["ALL_CHECKERS", "checker_for", "rule_ids"]


def _walk_skipping_strings(tree: ast.AST) -> Iterable[ast.AST]:
    """ast.walk; docstrings/doctests are Constants so never yield calls."""
    return ast.walk(tree)


def _function_scope_nodes(fn: ast.AST) -> Iterable[ast.AST]:
    """Nodes in a function body, excluding nested function definitions.

    Nested defs (e.g. sync callbacks handed to ``run_in_executor``) run in
    their own context and are checked — or deliberately not — on their own.
    """
    stack: List[ast.AST] = list(ast.iter_child_nodes(fn))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))


# ======================================================================
# R001 unseeded-rng


class UnseededRngChecker(Checker):
    RULE = "R001"
    NAME = "unseeded-rng"
    DESCRIPTION = (
        "Randomness must flow through repro.utils.rng (RngTree/as_generator) "
        "so every coin derives from the run's root seed; direct "
        "np.random.default_rng()/random.*/os.urandom and time-derived seeds "
        "break public-coin reproducibility. Module-level RNG state is always "
        "an error."
    )

    # Files allowed to mint generators directly: the RNG module itself and
    # the CLI entrypoints that turn a user-facing --seed into the tree root.
    EXEMPT = frozenset({"utils/rng.py", "cli.py", "__main__.py"})

    LEGACY_NP = frozenset(
        {
            "seed", "rand", "randn", "randint", "random", "choice", "shuffle",
            "permutation", "normal", "uniform", "random_sample", "bytes",
            "standard_normal", "binomial", "poisson",
        }
    )
    TIME_CALLS = frozenset(
        {
            ("time", "time"), ("time", "time_ns"), ("time", "monotonic"),
            ("time", "monotonic_ns"), ("time", "perf_counter"),
            ("datetime", "datetime", "now"), ("datetime", "datetime", "utcnow"),
        }
    )
    SEED_SINKS = frozenset({"default_rng", "RandomState", "SeedSequence",
                            "as_generator", "RngTree", "spawn_generators"})

    def check(self, ctx: LintContext) -> Iterable[Finding]:
        out: List[Finding] = []
        for mod in ctx.iter_modules():
            imports = _imports_in(mod.tree.body)
            has_stdlib_random = any(
                isinstance(stmt, ast.Import)
                and any(a.name == "random" for a in stmt.names)
                for stmt in ast.walk(mod.tree)
                if isinstance(stmt, ast.Import)
            )
            # Module-level RNG state: an error everywhere, exempt files
            # included — a generator minted at import time is shared
            # hidden state no seed argument can reach.
            for stmt in mod.tree.body:
                if isinstance(stmt, (ast.Assign, ast.AnnAssign)) and stmt.value:
                    for node in ast.walk(stmt.value):
                        if isinstance(node, ast.Call) and self._is_rng_ctor(node):
                            out.append(
                                self.finding(
                                    "module-level RNG state: generators must be "
                                    "constructed per-run from an explicit seed, "
                                    "never at import time",
                                    mod.rel,
                                    node,
                                )
                            )
            if mod.rel in self.EXEMPT:
                continue
            for stmt in ast.walk(mod.tree):
                if isinstance(stmt, ast.ImportFrom) and stmt.module == "random":
                    out.append(
                        self.finding(
                            "stdlib random imported: draw from an "
                            "np.random.Generator obtained via "
                            "repro.utils.rng.as_generator instead",
                            mod.rel,
                            stmt,
                        )
                    )
            for node in _walk_skipping_strings(mod.tree):
                if not isinstance(node, ast.Call):
                    continue
                out.extend(self._check_call(node, mod, imports, has_stdlib_random))
        return out

    @staticmethod
    def _is_rng_ctor(call: ast.Call) -> bool:
        chain = attr_chain(call.func)
        if not chain:
            return False
        if chain[-1] in ("default_rng", "RandomState"):
            return True
        if chain[-2:] == ("random", "Random"):
            return True
        return False

    def _check_call(
        self,
        call: ast.Call,
        mod: ModuleInfo,
        imports: Dict[str, Tuple[str, str]],
        has_stdlib_random: bool,
    ) -> Iterable[Finding]:
        chain = attr_chain(call.func)
        if not chain:
            return
        head, tail = chain[0], chain[-1]
        # np.random.default_rng(...) / np.random.RandomState(...)
        if head in ("np", "numpy") and len(chain) >= 3 and chain[1] == "random":
            if tail in ("default_rng", "RandomState"):
                yield self.finding(
                    f"direct {'.'.join(chain)}(...): construct generators via "
                    "repro.utils.rng.as_generator/RngTree so the stream derives "
                    "from the root seed",
                    mod.rel,
                    call,
                )
                return
            if tail in self.LEGACY_NP:
                yield self.finding(
                    f"legacy global-state {'.'.join(chain)}(...): draw from an "
                    "explicit np.random.Generator (repro.utils.rng.as_generator)",
                    mod.rel,
                    call,
                )
                return
        # from numpy.random import default_rng; default_rng(...)
        if len(chain) == 1 and tail in ("default_rng", "RandomState"):
            src = imports.get(tail)
            if src and src[0].startswith("numpy"):
                yield self.finding(
                    f"direct {tail}(...): construct generators via "
                    "repro.utils.rng.as_generator/RngTree so the stream derives "
                    "from the root seed",
                    mod.rel,
                    call,
                )
                return
        # stdlib random.* calls
        if head == "random" and len(chain) >= 2 and has_stdlib_random:
            yield self.finding(
                f"stdlib {'.'.join(chain)}(...): not seed-tree reproducible; "
                "draw from an np.random.Generator via repro.utils.rng",
                mod.rel,
                call,
            )
            return
        if chain[-2:] == ("os", "urandom") or chain == ("urandom",):
            yield self.finding(
                "os.urandom(...): entropy outside the seed tree makes runs "
                "unreproducible; derive bytes from the RngTree instead",
                mod.rel,
                call,
            )
            return
        # time-derived seed fed into any RNG constructor
        if tail in self.SEED_SINKS:
            for arg in list(call.args) + [kw.value for kw in call.keywords]:
                for sub in ast.walk(arg):
                    if isinstance(sub, ast.Call):
                        sub_chain = attr_chain(sub.func)
                        if sub_chain in self.TIME_CALLS or sub_chain[-2:] in {
                            c[-2:] for c in self.TIME_CALLS
                        }:
                            yield self.finding(
                                f"time-derived seed in {tail}(...): seeds must "
                                "be explicit values so runs can be replayed",
                                mod.rel,
                                sub,
                            )


# ======================================================================
# R002 adopt-purity


# Taint lattice for values derived from the adopt_arrays payload mapping.
_CLEAN, _PARAM, _ITEMS, _ARRAY = 0, 1, 2, 3

_HEADER_ATTRS = frozenset(
    {"shape", "dtype", "ndim", "size", "nbytes", "itemsize", "base", "flags",
     "strides"}
)
_READING_METHODS = frozenset(
    {"tolist", "sum", "any", "all", "copy", "astype", "tobytes", "item",
     "min", "max", "mean", "byteswap", "dump", "dumps", "view"}
)
_READING_NP_FUNCS = frozenset(
    {"array", "ascontiguousarray", "copy", "array_equal", "allclose", "sum",
     "any", "all", "frombuffer", "concatenate", "stack", "vstack", "hstack",
     "unpackbits", "bincount", "unique", "sort", "equal"}
)
_READING_BUILTINS = frozenset(
    {"list", "tuple", "sorted", "sum", "max", "min", "set", "bytes", "iter",
     "enumerate", "zip", "reversed", "frozenset", "bytearray", "memoryview"}
)


class AdoptPurityChecker(Checker):
    RULE = "R002"
    NAME = "adopt-purity"
    DESCRIPTION = (
        "adopt_arrays installs snapshot payloads for zero-copy loads "
        "(ARCHITECTURE invariant #5): it may inspect array headers "
        "(shape/dtype/...) and delegate, but must never read payload "
        "contents — no copies, conversions, comparisons, reductions, or "
        "iteration over array data, or a 'zero-copy' attach pages in every "
        "byte."
    )

    def check(self, ctx: LintContext) -> Iterable[Finding]:
        out: List[Finding] = []
        for mod in ctx.iter_modules():
            for node in ast.walk(mod.tree):
                if not isinstance(node, ast.ClassDef):
                    continue
                for item in node.body:
                    if (
                        isinstance(item, ast.FunctionDef)
                        and item.name == "adopt_arrays"
                    ):
                        out.extend(self._check_adopt(item, mod))
        return out

    def _check_adopt(self, fn: ast.FunctionDef, mod: ModuleInfo) -> List[Finding]:
        args = [a.arg for a in fn.args.args]
        payload_param = args[1] if len(args) > 1 and args[0] == "self" else (
            args[0] if args else None
        )
        if payload_param is None:
            return []
        findings: List[Finding] = []
        taint: Dict[str, int] = {payload_param: _PARAM}

        def violation(node: ast.AST, what: str) -> None:
            findings.append(
                self.finding(
                    f"{what} inside adopt_arrays reads payload contents; "
                    "adopt may only check headers (shape/dtype/...) and "
                    "install/delegate (ARCHITECTURE invariant #5)",
                    mod.rel,
                    node,
                )
            )

        def taint_of(expr: ast.AST) -> int:
            """Evaluate an expression's taint, recording violations."""
            if isinstance(expr, ast.Name):
                return taint.get(expr.id, _CLEAN)
            if isinstance(expr, ast.Attribute):
                base = taint_of(expr.value)
                if base >= _PARAM:
                    if expr.attr in _HEADER_ATTRS:
                        return _CLEAN
                    return base
                return _CLEAN
            if isinstance(expr, ast.Subscript):
                base = taint_of(expr.value)
                if isinstance(expr.slice, ast.AST):
                    taint_of(expr.slice)
                if base == _ARRAY and isinstance(expr.ctx, ast.Load):
                    violation(expr, "indexing into an adopted array")
                    return _ARRAY
                if base >= _PARAM:
                    return _ARRAY
                return _CLEAN
            if isinstance(expr, ast.Call):
                return call_taint(expr)
            if isinstance(expr, ast.Compare):
                operands = [expr.left] + list(expr.comparators)
                # Membership tests against the payload *mapping* read keys
                # only; any array-level operand is a content comparison.
                for op in operands:
                    if taint_of(op) == _ARRAY:
                        violation(expr, "comparing adopted array contents")
                        break
                return _CLEAN
            if isinstance(expr, ast.BinOp):
                if taint_of(expr.left) == _ARRAY or taint_of(expr.right) == _ARRAY:
                    violation(expr, "arithmetic on adopted array contents")
                return _CLEAN
            if isinstance(expr, ast.BoolOp):
                for v in expr.values:
                    taint_of(v)
                return _CLEAN
            if isinstance(expr, ast.UnaryOp):
                taint_of(expr.operand)
                return _CLEAN
            if isinstance(expr, (ast.Tuple, ast.List, ast.Set)):
                return max((taint_of(e) for e in expr.elts), default=_CLEAN)
            if isinstance(expr, ast.Dict):
                vals = [v for v in expr.values if v is not None]
                return max((taint_of(v) for v in vals), default=_CLEAN)
            if isinstance(expr, ast.IfExp):
                taint_of(expr.test)
                return max(taint_of(expr.body), taint_of(expr.orelse))
            if isinstance(expr, ast.JoinedStr):
                for v in expr.values:
                    if isinstance(v, ast.FormattedValue):
                        if taint_of(v.value) == _ARRAY:
                            violation(v, "formatting adopted array contents")
                return _CLEAN
            if isinstance(expr, ast.Starred):
                return taint_of(expr.value)
            return _CLEAN

        def call_taint(call: ast.Call) -> int:
            chain = attr_chain(call.func)
            arg_taints = [taint_of(a) for a in call.args]
            kw_taints = [taint_of(k.value) for k in call.keywords]
            any_tainted = max(arg_taints + kw_taints, default=_CLEAN)
            # np.asarray(x) with a single positional arg is the one blessed
            # conversion: zero-copy on an ndarray, reads headers only.
            if chain[-1:] == ("asarray",) and chain[0] in ("np", "numpy", "asarray"):
                if len(call.args) == 1 and not call.keywords:
                    return _ARRAY if any_tainted else _CLEAN
                if any_tainted:
                    violation(
                        call,
                        "np.asarray with dtype/copy arguments (forces a "
                        "conversion pass)",
                    )
                    return _ARRAY
                return _CLEAN
            if (
                len(chain) >= 2
                and chain[0] in ("np", "numpy")
                and chain[-1] in _READING_NP_FUNCS
                and any_tainted
            ):
                violation(call, f"{'.'.join(chain)}(...)")
                return _ARRAY
            if isinstance(call.func, ast.Name):
                if call.func.id in _READING_BUILTINS and _ARRAY in arg_taints:
                    violation(call, f"{call.func.id}(...) over adopted array data")
                    return _CLEAN
                if call.func.id in ("len", "isinstance", "str", "repr", "int",
                                    "float", "bool", "type", "hasattr", "getattr"):
                    return _CLEAN
            if isinstance(call.func, ast.Attribute):
                recv = taint_of(call.func.value)
                if recv >= _PARAM and call.func.attr in ("items", "values", "keys"):
                    return _ITEMS if call.func.attr != "keys" else _CLEAN
                if recv == _ARRAY and call.func.attr in _READING_METHODS:
                    violation(call, f".{call.func.attr}() on an adopted array")
                    return _CLEAN
                if recv == _ARRAY and call.func.attr not in ("get",):
                    # Unknown method on an array-level value: conservative.
                    violation(call, f".{call.func.attr}() on an adopted array")
                    return _CLEAN
            # Delegation (self.x.adopt_arrays(...), helpers like
            # split_arrays(...)): allowed; the result stays payload-derived.
            return _PARAM if any_tainted else _CLEAN

        def bind(target: ast.AST, value_taint: int, from_items: bool = False) -> None:
            if isinstance(target, ast.Name):
                taint[target.id] = value_taint
            elif isinstance(target, (ast.Tuple, ast.List)):
                elts = target.elts
                if from_items and len(elts) == 2:
                    bind(elts[0], _CLEAN)   # dict key
                    bind(elts[1], _ARRAY)   # dict value: the payload array
                else:
                    for e in elts:
                        bind(e, value_taint)
            # Attribute/Subscript stores (self._cache[i] = payload) install
            # the payload — that is adopt's whole job; always allowed.

        def exec_block(stmts: List[ast.stmt]) -> None:
            for stmt in stmts:
                if isinstance(stmt, ast.Assign):
                    t = taint_of(stmt.value)
                    for target in stmt.targets:
                        bind(target, t)
                elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                    bind(stmt.target, taint_of(stmt.value))
                elif isinstance(stmt, ast.AugAssign):
                    if taint_of(stmt.value) == _ARRAY or taint_of(stmt.target) == _ARRAY:
                        violation(stmt, "augmented assignment on adopted array")
                elif isinstance(stmt, ast.For):
                    it = taint_of(stmt.iter)
                    if it == _ARRAY:
                        violation(stmt.iter, "iterating over adopted array data")
                        bind(stmt.target, _ARRAY)
                    elif it == _ITEMS:
                        bind(stmt.target, _ARRAY, from_items=True)
                    elif it == _PARAM:
                        bind(stmt.target, _CLEAN)  # dict iteration yields keys
                    else:
                        bind(stmt.target, _CLEAN)
                    exec_block(stmt.body)
                    exec_block(stmt.orelse)
                elif isinstance(stmt, ast.If):
                    taint_of(stmt.test)
                    exec_block(stmt.body)
                    exec_block(stmt.orelse)
                elif isinstance(stmt, ast.While):
                    taint_of(stmt.test)
                    exec_block(stmt.body)
                    exec_block(stmt.orelse)
                elif isinstance(stmt, ast.With):
                    for item in stmt.items:
                        t = taint_of(item.context_expr)
                        if item.optional_vars is not None:
                            bind(item.optional_vars, t)
                    exec_block(stmt.body)
                elif isinstance(stmt, ast.Try):
                    exec_block(stmt.body)
                    for handler in stmt.handlers:
                        exec_block(handler.body)
                    exec_block(stmt.orelse)
                    exec_block(stmt.finalbody)
                elif isinstance(stmt, (ast.Expr, ast.Return)):
                    if stmt.value is not None:
                        taint_of(stmt.value)
                elif isinstance(stmt, ast.Raise):
                    if stmt.exc is not None:
                        taint_of(stmt.exc)
                elif isinstance(stmt, ast.Assert):
                    taint_of(stmt.test)
                # Nested defs / classes inside adopt_arrays: out of scope.

        exec_block(fn.body)
        return findings


# ======================================================================
# R003 async-blocking


_BLOCKING_CALLS: Dict[Tuple[str, ...], str] = {
    ("time", "sleep"): "use 'await asyncio.sleep(...)'",
    ("subprocess", "run"): "blocks the event loop; use asyncio.create_subprocess_*",
    ("subprocess", "call"): "blocks the event loop; use asyncio.create_subprocess_*",
    ("subprocess", "check_call"): "blocks the event loop",
    ("subprocess", "check_output"): "blocks the event loop",
    ("subprocess", "Popen"): "blocks the event loop; use asyncio.create_subprocess_*",
    ("os", "system"): "blocks the event loop",
    ("os", "popen"): "blocks the event loop",
    ("os", "waitpid"): "blocks the event loop",
    ("socket", "socket"): "sync socket I/O; use asyncio streams",
    ("socket", "create_connection"): "sync socket I/O; use asyncio.open_connection",
    ("urllib", "request", "urlopen"): "sync network I/O",
    ("requests", "get"): "sync network I/O",
    ("requests", "post"): "sync network I/O",
    ("requests", "request"): "sync network I/O",
}


class AsyncBlockingChecker(Checker):
    RULE = "R003"
    NAME = "async-blocking"
    DESCRIPTION = (
        "Coroutines in repro.service share one event loop with every "
        "in-flight request: a blocking call (time.sleep, sync socket/file "
        "I/O, subprocess.run) or a sync lock held across an await stalls "
        "the micro-batcher and all its barriers."
    )

    def _in_scope(self, mod: ModuleInfo) -> bool:
        return "service" in mod.rel.split("/")[:-1]

    def check(self, ctx: LintContext) -> Iterable[Finding]:
        out: List[Finding] = []
        for mod in ctx.iter_modules():
            if not self._in_scope(mod):
                continue
            for node in ast.walk(mod.tree):
                if isinstance(node, ast.AsyncFunctionDef):
                    out.extend(self._check_coroutine(node, mod))
        return out

    def _check_coroutine(
        self, fn: ast.AsyncFunctionDef, mod: ModuleInfo
    ) -> List[Finding]:
        findings: List[Finding] = []
        for node in _function_scope_nodes(fn):
            if isinstance(node, ast.Call):
                chain = attr_chain(node.func)
                hint = _BLOCKING_CALLS.get(chain)
                if hint is None and len(chain) > 2:
                    hint = _BLOCKING_CALLS.get(chain[-2:])
                if hint is not None:
                    findings.append(
                        self.finding(
                            f"blocking call {'.'.join(chain)}(...) inside "
                            f"'async def {fn.name}': {hint}",
                            mod.rel,
                            node,
                        )
                    )
                elif chain == ("open",) or chain[-2:] == ("io", "open"):
                    findings.append(
                        self.finding(
                            f"sync file I/O open(...) inside 'async def "
                            f"{fn.name}': blocks the event loop; do file work "
                            "before serving or via run_in_executor",
                            mod.rel,
                            node,
                        )
                    )
                elif chain[-2:] in (("threading", "Lock"), ("threading", "RLock")):
                    findings.append(
                        self.finding(
                            f"threading.{chain[-1]}() inside 'async def "
                            f"{fn.name}': a sync lock cannot guard coroutine "
                            "interleavings; use asyncio.Lock",
                            mod.rel,
                            node,
                        )
                    )
            elif isinstance(node, ast.With):
                # A *sync* `with <lock>` whose body awaits holds the lock
                # across a suspension point: every other task that needs it
                # is blocked for an unbounded time (deadlock-prone).
                if self._looks_like_lock(node) and self._body_awaits(node):
                    findings.append(
                        self.finding(
                            f"sync 'with <lock>' held across an await in "
                            f"'async def {fn.name}': use 'async with' on an "
                            "asyncio lock so the wait suspends instead of "
                            "blocking",
                            mod.rel,
                            node,
                        )
                    )
        return findings

    @staticmethod
    def _looks_like_lock(node: ast.With) -> bool:
        for item in node.items:
            expr = item.context_expr
            if isinstance(expr, ast.Call):
                expr = expr.func
            chain = attr_chain(expr)
            if chain and "lock" in chain[-1].lower():
                return True
        return False

    @staticmethod
    def _body_awaits(node: ast.With) -> bool:
        for stmt in node.body:
            for sub in ast.walk(stmt):
                if isinstance(sub, (ast.Await, ast.AsyncFor, ast.AsyncWith)):
                    return True
        return False


# ======================================================================
# R004 registry-contract


# The scheme hook surface (see cellprobe/scheme.py and docs/ARCHITECTURE.md):
# the abstract core, the plan/batching hook, and the persistence trio.
_ABSTRACT_HOOKS = ("query", "size_report", "query_plan")
_SURFACE_HOOKS = (
    "query", "size_report", "query_plan", "export_arrays", "restore_arrays",
    "adopt_arrays", "batch_prepare", "prewarm",
)


class RegistryContractChecker(Checker):
    RULE = "R004"
    NAME = "registry-contract"
    DESCRIPTION = (
        "Every class returned by a @register_scheme factory must carry the "
        "full CellProbingScheme hook surface — query/size_report/query_plan "
        "implemented below the ABC defaults, export_arrays/restore_arrays "
        "paired, adopt_arrays never without restore_arrays — so a new scheme "
        "cannot land half-wired into the batch/persistence/serving paths."
    )

    def check(self, ctx: LintContext) -> Iterable[Finding]:
        out: List[Finding] = []
        for mod in ctx.iter_modules():
            for node in mod.tree.body:
                if isinstance(node, ast.FunctionDef) and self._registration(node):
                    out.extend(self._check_factory(node, mod, ctx))
        return out

    @staticmethod
    def _registration(fn: ast.FunctionDef) -> Optional[str]:
        """The registered scheme name if fn is a @register_scheme factory."""
        for dec in fn.decorator_list:
            if isinstance(dec, ast.Call):
                chain = attr_chain(dec.func)
                if chain[-1:] == ("register_scheme",):
                    if dec.args and isinstance(dec.args[0], ast.Constant):
                        return str(dec.args[0].value)
                    return fn.name
        return None

    def _check_factory(
        self, fn: ast.FunctionDef, mod: ModuleInfo, ctx: LintContext
    ) -> List[Finding]:
        scheme_name = self._registration(fn)
        local_imports = _imports_in(
            [s for s in ast.walk(fn) if isinstance(s, (ast.Import, ast.ImportFrom))]
        )
        resolved: List[Tuple[str, ast.ClassDef]] = []
        for node in ast.walk(fn):
            if isinstance(node, ast.Return) and isinstance(node.value, ast.Call):
                func = node.value.func
                if isinstance(func, ast.Name):
                    hit = ctx.resolve_class(mod.rel, func.id, local_imports)
                    if hit is not None:
                        resolved.append(hit)
        if not resolved:
            return [
                self.finding(
                    f"factory for scheme {scheme_name!r} does not return a "
                    "statically-resolvable class constructor; the registry "
                    "contract cannot be checked — return SchemeClass(...) "
                    "directly",
                    mod.rel,
                    fn,
                )
            ]
        findings: List[Finding] = []
        for cls_rel, cls in resolved:
            findings.extend(
                self._check_class(scheme_name, cls_rel, cls, ctx)
            )
        return findings

    def _check_class(
        self, scheme_name: str, cls_rel: str, cls: ast.ClassDef, ctx: LintContext
    ) -> List[Finding]:
        ancestors = ctx.ancestors(cls_rel, cls.name)
        concrete: Set[str] = set()   # hooks defined below the ABC defaults
        anywhere: Set[str] = set()   # hooks defined anywhere in the chain
        for anc_rel, anc in ancestors:
            is_default = self._is_default_provider(anc)
            for item in anc.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    anywhere.add(item.name)
                    if not is_default:
                        concrete.add(item.name)

        findings: List[Finding] = []

        def flag(msg: str) -> None:
            findings.append(
                self.finding(
                    f"registered scheme {scheme_name!r} ({cls.name}): {msg}",
                    cls_rel,
                    cls,
                )
            )

        for hook in _ABSTRACT_HOOKS:
            if hook not in concrete:
                flag(
                    f"must implement {hook}() below the CellProbingScheme "
                    "defaults (the ABC stub raises/NotImplements)"
                )
        for hook in _SURFACE_HOOKS:
            if hook not in anywhere:
                flag(
                    f"hook {hook}() is neither defined nor inherited; the "
                    "batch/persistence/serving paths call the full surface"
                )
        has_export = "export_arrays" in concrete
        has_restore = "restore_arrays" in concrete
        if has_export != has_restore:
            present, missing = (
                ("export_arrays", "restore_arrays")
                if has_export
                else ("restore_arrays", "export_arrays")
            )
            flag(
                f"persistence half-wired: {present}() is implemented but "
                f"{missing}() is not — snapshots would save but not load "
                "(or vice versa)"
            )
        if "adopt_arrays" in concrete and not has_restore:
            flag(
                "adopt_arrays() implemented without restore_arrays(): the "
                "verified heap-load path would be missing while the trusting "
                "mmap path exists"
            )
        return findings

    @staticmethod
    def _is_default_provider(cls: ast.ClassDef) -> bool:
        """True for the abstract base(s) whose hook bodies are defaults."""
        for base in cls.bases:
            chain = attr_chain(base)
            if chain[-1:] == ("ABC",) or chain[-1:] == ("ABCMeta",):
                return True
        for item in cls.body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                for dec in item.decorator_list:
                    if attr_chain(dec)[-1:] == ("abstractmethod",):
                        return True
        return False


# ======================================================================
# R005 wire-verb-sync


class WireVerbSyncChecker(Checker):
    RULE = "R005"
    NAME = "wire-verb-sync"
    DESCRIPTION = (
        "The NDJSON wire verbs handled by service.server, forwarded by "
        "service.cluster, and sent by service.client must agree with each "
        "other and with the verb matrix in docs/SERVING.md, so protocol "
        "drift is caught at lint time instead of as runtime 'unknown op' "
        "errors."
    )

    SERVER = "service/server.py"
    ROUTER = "service/cluster.py"
    CLIENT = "service/client.py"
    DOC = "SERVING.md"

    def check(self, ctx: LintContext) -> Iterable[Finding]:
        server_mod = ctx.modules.get(self.SERVER)
        router_mod = ctx.modules.get(self.ROUTER)
        client_mod = ctx.modules.get(self.CLIENT)
        if not (server_mod and server_mod.parsed and client_mod and client_mod.parsed):
            return []  # tree without a service layer: nothing to sync
        out: List[Finding] = []

        server = self._handler_verbs(server_mod, "_handle_request")
        client = self._client_verbs(client_mod)
        router: Dict[str, int] = {}
        if router_mod and router_mod.parsed:
            router = self._handler_verbs(router_mod, "_handle_router_request")

        for verb, line in sorted(client.items()):
            if verb not in server:
                out.append(
                    self.finding(
                        f"client sends verb {verb!r} that service.server's "
                        "_handle_request does not handle",
                        self.CLIENT,
                        line=line,
                    )
                )
        for verb, line in sorted(router.items()):
            if verb not in server:
                out.append(
                    self.finding(
                        f"router forwards verb {verb!r} that service.server's "
                        "_handle_request does not handle",
                        self.ROUTER,
                        line=line,
                    )
                )

        doc_path, doc_table = self._doc_matrix(ctx)
        if doc_table is None:
            out.append(
                self.finding(
                    "docs/SERVING.md has no verb matrix table (a markdown "
                    "table with columns verb/server/router/client); the wire "
                    "protocol must be documented",
                    doc_path or self.SERVER,
                    line=1,
                )
            )
            return out
        header_line, matrix = doc_table
        actual = {"server": server, "router": router, "client": client}
        for component, verbs in actual.items():
            documented = {v for v, cols in matrix.items() if component in cols[0]}
            for verb in sorted(set(verbs) - documented):
                out.append(
                    self.finding(
                        f"verb {verb!r} is handled by {component} but missing "
                        "from (or unticked in) the docs/SERVING.md verb matrix",
                        doc_path,
                        line=header_line,
                    )
                )
            for verb in sorted(documented - set(verbs)):
                out.append(
                    self.finding(
                        f"docs/SERVING.md documents verb {verb!r} for "
                        f"{component}, but the code does not handle it",
                        doc_path,
                        line=matrix[verb][1],
                    )
                )
        return out

    @staticmethod
    def _handler_verbs(mod: ModuleInfo, fn_name: str) -> Dict[str, int]:
        """Verbs compared against the request's ``op`` in a handler."""
        verbs: Dict[str, int] = {}
        for node in ast.walk(mod.tree):
            if (
                isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                and node.name == fn_name
            ):
                for sub in ast.walk(node):
                    if isinstance(sub, ast.Compare) and len(sub.ops) == 1:
                        names = []
                        for side in (sub.left, *sub.comparators):
                            if isinstance(side, ast.Name):
                                names.append(side.id)
                        if "op" not in names:
                            continue
                        for side in (sub.left, *sub.comparators):
                            if isinstance(side, ast.Constant) and isinstance(
                                side.value, str
                            ):
                                verbs.setdefault(side.value, side.lineno)
                            elif isinstance(side, (ast.Tuple, ast.Set, ast.List)):
                                for elt in side.elts:
                                    if isinstance(elt, ast.Constant) and isinstance(
                                        elt.value, str
                                    ):
                                        verbs.setdefault(elt.value, elt.lineno)
        return verbs

    @staticmethod
    def _client_verbs(mod: ModuleInfo) -> Dict[str, int]:
        """Verbs the client passes as the first argument of _request()."""
        verbs: Dict[str, int] = {}
        for node in ast.walk(mod.tree):
            if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                if node.func.attr == "_request" and node.args:
                    first = node.args[0]
                    if isinstance(first, ast.Constant) and isinstance(
                        first.value, str
                    ):
                        verbs.setdefault(first.value, node.lineno)
        return verbs

    def _doc_matrix(
        self, ctx: LintContext
    ) -> Tuple[Optional[str], Optional[Tuple[int, Dict[str, Tuple[Set[str], int]]]]]:
        """Parse the SERVING.md verb table.

        Returns (doc display path, (header line, verb -> (components, line))).
        """
        if ctx.docs_dir is None:
            return None, None
        doc = ctx.docs_dir / self.DOC
        if not doc.is_file():
            return None, None
        try:
            rel = doc.resolve().relative_to(ctx.root).as_posix()
        except ValueError:
            rel = "docs/" + self.DOC
        lines = doc.read_text(encoding="utf-8").splitlines()
        for i, line in enumerate(lines):
            if not line.lstrip().startswith("|"):
                continue
            cells = [c.strip().lower() for c in line.strip().strip("|").split("|")]
            if "verb" not in cells:
                continue
            cols = {
                name: idx
                for idx, name in enumerate(cells)
                if name in ("server", "router", "client")
            }
            if not cols:
                continue
            verb_col = cells.index("verb")
            matrix: Dict[str, Tuple[Set[str], int]] = {}
            for j in range(i + 2, len(lines)):  # skip the |---| separator
                row = lines[j].strip()
                if not row.startswith("|"):
                    break
                parts = [c.strip() for c in row.strip("|").split("|")]
                if verb_col >= len(parts):
                    continue
                verb = parts[verb_col].strip("`* ")
                if not verb:
                    continue
                components = {
                    name
                    for name, idx in cols.items()
                    if idx < len(parts) and parts[idx].strip() not in ("", "-", "—")
                }
                matrix[verb] = (components, j + 1)
            return rel, (i + 1, matrix)
        return rel, None


# ======================================================================
# R006 typed-errors


_BANNED_RAISES = frozenset({"Exception", "BaseException", "RuntimeError"})

_TAXONOMY_HINTS = (
    ("service/", "the service taxonomy (ServiceError/ServiceStateError/"
                 "ClusterError/ReplicaError/HarnessStateError/...)"),
    ("storage/", "the storage taxonomy (StorageLayoutError/ResidencyError)"),
    ("persistence.py", "IndexPersistenceError"),
)


class TypedErrorsChecker(Checker):
    RULE = "R006"
    NAME = "typed-errors"
    DESCRIPTION = (
        "Wire- and snapshot-facing paths (repro.service, repro.persistence, "
        "repro.storage) must raise their module's typed error taxonomy so "
        "callers can catch-and-map faults (retry/hedge/failover) without "
        "string-matching; bare Exception/RuntimeError is invisible to that "
        "machinery. ValueError/TypeError stay allowed for argument "
        "validation."
    )

    def _hint_for(self, rel: str) -> Optional[str]:
        for prefix, hint in _TAXONOMY_HINTS:
            if rel.startswith(prefix) or rel == prefix:
                return hint
        return None

    def check(self, ctx: LintContext) -> Iterable[Finding]:
        out: List[Finding] = []
        for mod in ctx.iter_modules():
            hint = self._hint_for(mod.rel)
            if hint is None:
                continue
            for node in ast.walk(mod.tree):
                if not isinstance(node, ast.Raise) or node.exc is None:
                    continue
                exc = node.exc
                name: Optional[str] = None
                if isinstance(exc, ast.Call):
                    chain = attr_chain(exc.func)
                    if len(chain) == 1:
                        name = chain[0]
                elif isinstance(exc, ast.Name):
                    name = exc.id
                if name in _BANNED_RAISES:
                    out.append(
                        self.finding(
                            f"raise {name} on a wire/snapshot-facing path: "
                            f"use {hint} so callers can catch it by type",
                            mod.rel,
                            node,
                        )
                    )
        return out


# ======================================================================
# R007 kernel-seam


class KernelSeamChecker(Checker):
    RULE = "R007"
    NAME = "kernel-seam"
    DESCRIPTION = (
        "Popcount/XOR-distance work must flow through the repro.hamming "
        "kernel seam (ARCHITECTURE invariant #7): direct np.bitwise_count — "
        "or an XOR distance assembled at the call site and fed to a popcount "
        "helper — outside repro/hamming/ bypasses backend selection "
        "(set_kernel/REPRO_KERNEL/--kernel), the scratch pools, and the "
        "bitwise kernel-equivalence gate."
    )

    # The seam's home: backends and dispatchers may use the primitives.
    EXEMPT_PREFIX = "hamming/"
    # Seam popcount helpers: calling them is legal, but XOR-ing packed
    # arrays *into* them re-implements a distance outside the backends —
    # hamming_distance/_many/cross_distances/paired_distances exist for that.
    SEAM_POPCOUNT_FNS = frozenset({"popcount_rows", "popcount_sum"})

    def check(self, ctx: LintContext) -> Iterable[Finding]:
        out: List[Finding] = []
        for mod in ctx.iter_modules():
            if mod.rel.startswith(self.EXEMPT_PREFIX):
                continue
            imports = _imports_in(mod.tree.body)
            for node in _walk_skipping_strings(mod.tree):
                if not isinstance(node, ast.Call):
                    continue
                chain = attr_chain(node.func)
                if not chain:
                    continue
                tail = chain[-1]
                if tail == "bitwise_count" and self._is_numpy(chain, imports):
                    out.append(
                        self.finding(
                            "direct np.bitwise_count outside repro/hamming/: "
                            "call the kernel seam (popcount_rows/popcount_sum "
                            "or a distance function) so the active backend, "
                            "scratch pooling, and the equivalence gate apply",
                            mod.rel,
                            node,
                        )
                    )
                elif tail in self.SEAM_POPCOUNT_FNS and self._has_xor_arg(node):
                    out.append(
                        self.finding(
                            f"XOR distance assembled at the call site of "
                            f"{tail}: use hamming_distance/"
                            f"hamming_distance_many/cross_distances/"
                            f"paired_distances so compiled backends can fuse "
                            f"the XOR+popcount loop",
                            mod.rel,
                            node,
                        )
                    )
        return out

    @staticmethod
    def _is_numpy(chain: Tuple[str, ...], imports: Dict[str, Tuple[str, str]]) -> bool:
        if len(chain) >= 2:
            return chain[0] in ("np", "numpy")
        origin = imports.get(chain[0])
        return origin is not None and origin[0].split(".")[0] == "numpy"

    @staticmethod
    def _has_xor_arg(call: ast.Call) -> bool:
        args = list(call.args) + [kw.value for kw in call.keywords]
        for arg in args:
            for sub in ast.walk(arg):
                if isinstance(sub, ast.BinOp) and isinstance(sub.op, ast.BitXor):
                    return True
                if isinstance(sub, ast.Call):
                    sub_chain = attr_chain(sub.func)
                    if sub_chain and sub_chain[-1] == "bitwise_xor":
                        return True
        return False


# ======================================================================

ALL_CHECKERS: Tuple[Checker, ...] = (
    UnseededRngChecker(),
    AdoptPurityChecker(),
    AsyncBlockingChecker(),
    RegistryContractChecker(),
    WireVerbSyncChecker(),
    TypedErrorsChecker(),
    KernelSeamChecker(),
)


def rule_ids() -> List[str]:
    return [c.RULE for c in ALL_CHECKERS]


def checker_for(rule: str) -> Optional[Checker]:
    for c in ALL_CHECKERS:
        if c.RULE == rule.upper():
            return c
    return None
