"""AST-based lint framework for project-invariant static analysis.

The serving/persistence/storage layers promise invariants (deterministic
RNG flow, adopt-never-reads-payload, async handlers never block, typed
error taxonomies, wire-verb agreement) that tests can only check by
executing the offending line.  This module provides the machinery to
check them *statically*: parse every module under a root into an
``ast`` tree, hand the whole tree set to pluggable :class:`Checker`
subclasses, and report :class:`Finding`s with file:line pointers.

Key pieces:

- :class:`LintContext` — all parsed modules plus cross-module helpers
  (class index, import resolution, MRO-style ancestor walks, docs
  discovery) that rules share.
- :class:`Checker` — base class; subclasses set ``RULE``/``NAME`` and
  implement :meth:`Checker.check`.
- Suppressions — a ``# repro-lint: disable=R003 <reason>`` comment on
  the finding's line suppresses that rule there.  The reason is
  mandatory: a bare ``disable=`` comment suppresses nothing and itself
  becomes an ``R000`` finding.
- Baseline — a JSON file of grandfathered findings matched on
  ``(rule, path, message)`` (line-insensitive, so unrelated edits that
  shift lines do not resurrect old findings).

See ``docs/DEVTOOLS.md`` for the rule catalog and the recipe for
adding a rule.
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "Finding",
    "ModuleInfo",
    "LintContext",
    "Checker",
    "LintResult",
    "run_lint",
    "load_baseline",
    "baseline_payload",
    "format_text",
    "format_json",
    "attr_chain",
]

# Rule id reserved for framework-level hygiene findings (malformed
# suppression comments, unparseable files).  It cannot be suppressed.
META_RULE = "R000"

_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*disable=([A-Za-z0-9_,\s]*?)(?:\s+(\S.*))?$"
)


@dataclass(frozen=True)
class Finding:
    """One rule violation at a specific location."""

    rule: str
    name: str
    message: str
    path: str
    line: int
    col: int = 0

    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule)

    def to_json(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "name": self.name,
            "message": self.message,
            "path": self.path,
            "line": self.line,
            "col": self.col,
        }


@dataclass
class ModuleInfo:
    """A parsed source module under the lint root."""

    rel: str  # posix-style path relative to the lint root
    abspath: Path
    source: str
    tree: Optional[ast.Module]  # None when the file failed to parse
    lines: List[str] = field(default_factory=list)

    @property
    def parsed(self) -> bool:
        return self.tree is not None


def attr_chain(node: ast.AST) -> Tuple[str, ...]:
    """Flatten ``a.b.c`` into ``("a", "b", "c")``; empty if not a chain."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return ()


def _imports_in(nodes: Iterable[ast.stmt]) -> Dict[str, Tuple[str, str]]:
    """Map local alias -> (module, original name) for ``from X import Y``.

    Only ``ImportFrom`` feeds class resolution; plain ``import X`` binds a
    module object, which cannot appear as a bare base-class name.
    """
    out: Dict[str, Tuple[str, str]] = {}
    for stmt in nodes:
        if isinstance(stmt, ast.ImportFrom) and stmt.module and stmt.level == 0:
            for alias in stmt.names:
                local = alias.asname or alias.name
                out[local] = (stmt.module, alias.name)
    return out


class LintContext:
    """All parsed modules under a root, plus cross-module lookups."""

    def __init__(self, root: Path, docs_dir: Optional[Path] = None) -> None:
        self.root = Path(root).resolve()
        self.modules: Dict[str, ModuleInfo] = {}
        self.parse_failures: List[Finding] = []
        self._load_modules()
        self.docs_dir = docs_dir if docs_dir is not None else self._find_docs_dir()
        # (module_rel, class_name) -> ClassDef, top-level classes only.
        self._class_index: Dict[Tuple[str, str], ast.ClassDef] = {}
        self._module_imports: Dict[str, Dict[str, Tuple[str, str]]] = {}
        self._build_class_index()

    # ------------------------------------------------------------------
    # loading

    def _load_modules(self) -> None:
        for path in sorted(self.root.rglob("*.py")):
            if "__pycache__" in path.parts:
                continue
            rel = path.relative_to(self.root).as_posix()
            source = path.read_text(encoding="utf-8")
            try:
                tree: Optional[ast.Module] = ast.parse(source, filename=str(path))
            except SyntaxError as exc:
                tree = None
                self.parse_failures.append(
                    Finding(
                        rule=META_RULE,
                        name="parse-error",
                        message=f"file does not parse: {exc.msg}",
                        path=rel,
                        line=exc.lineno or 1,
                    )
                )
            self.modules[rel] = ModuleInfo(
                rel=rel,
                abspath=path,
                source=source,
                tree=tree,
                lines=source.splitlines(),
            )

    def _find_docs_dir(self) -> Optional[Path]:
        """Locate the docs/ directory belonging to this tree.

        Searches the root itself, then up to two parents — covers both the
        real layout (root=src/repro, docs at repo/docs) and self-contained
        fixture trees (docs inside the fixture root).
        """
        candidates = [self.root, self.root.parent, self.root.parent.parent]
        for base in candidates:
            docs = base / "docs"
            if docs.is_dir():
                return docs
        return None

    # ------------------------------------------------------------------
    # cross-module class resolution

    def _build_class_index(self) -> None:
        for rel, mod in self.modules.items():
            if mod.tree is None:
                continue
            self._module_imports[rel] = _imports_in(mod.tree.body)
            for stmt in mod.tree.body:
                if isinstance(stmt, ast.ClassDef):
                    self._class_index[(rel, stmt.name)] = stmt

    def iter_modules(self) -> Iterator[ModuleInfo]:
        for mod in self.modules.values():
            if mod.parsed:
                yield mod

    def module_rel_for(self, dotted: str) -> Optional[str]:
        """Resolve a dotted import path to a module rel path in this tree.

        Strips the root package's own name when present, so inside root
        ``src/repro`` the name ``repro.core.algorithm1`` resolves to
        ``core/algorithm1.py``.
        """
        parts = dotted.split(".")
        pkg = self.root.name
        if parts and parts[0] == pkg:
            parts = parts[1:]
        if not parts:
            return "__init__.py" if "__init__.py" in self.modules else None
        stem = "/".join(parts)
        for candidate in (stem + ".py", stem + "/__init__.py"):
            if candidate in self.modules:
                return candidate
        return None

    def resolve_class(
        self,
        module_rel: str,
        name: str,
        local_imports: Optional[Mapping[str, Tuple[str, str]]] = None,
    ) -> Optional[Tuple[str, ast.ClassDef]]:
        """Find the ClassDef a bare name refers to inside ``module_rel``.

        Checks function-local ``from X import Y`` bindings first (the
        registry's factories import lazily inside the function body),
        then module-level imports, then same-module classes.
        """
        for imports in (local_imports or {}, self._module_imports.get(module_rel, {})):
            if name in imports:
                src_module, orig = imports[name]
                target_rel = self.module_rel_for(src_module)
                if target_rel is None:
                    return None
                node = self._class_index.get((target_rel, orig))
                if node is not None:
                    return (target_rel, node)
                # re-exported through a package __init__: follow one hop
                follow = self.resolve_class(target_rel, orig)
                if follow is not None:
                    return follow
                return None
        node = self._class_index.get((module_rel, name))
        if node is not None:
            return (module_rel, node)
        return None

    def ancestors(
        self, module_rel: str, class_name: str
    ) -> List[Tuple[str, ast.ClassDef]]:
        """The class plus every statically-resolvable base, MRO-ish order."""
        out: List[Tuple[str, ast.ClassDef]] = []
        seen: set = set()
        stack: List[Tuple[str, str]] = [(module_rel, class_name)]
        while stack:
            mod_rel, name = stack.pop(0)
            if (mod_rel, name) in seen:
                continue
            seen.add((mod_rel, name))
            resolved = self.resolve_class(mod_rel, name)
            if resolved is None:
                continue
            res_rel, node = resolved
            out.append((res_rel, node))
            for base in node.bases:
                if isinstance(base, ast.Name):
                    stack.append((res_rel, base.id))
                # Attribute bases (abc.ABC, typing.Generic) are external.
        return out

    # ------------------------------------------------------------------
    # suppressions

    def suppressions_for(self, module_rel: str) -> Dict[int, Tuple[frozenset, str]]:
        """line -> (rule ids disabled on that line, reason)."""
        mod = self.modules.get(module_rel)
        if mod is None:
            return {}
        out: Dict[int, Tuple[frozenset, str]] = {}
        for lineno, text in enumerate(mod.lines, start=1):
            m = _SUPPRESS_RE.search(text)
            if m is None:
                continue
            rules = frozenset(
                r.strip().upper() for r in m.group(1).split(",") if r.strip()
            )
            reason = (m.group(2) or "").strip()
            out[lineno] = (rules, reason)
        return out


class Checker:
    """Base class for lint rules.

    Subclasses set ``RULE`` (stable id like ``"R003"``), ``NAME`` (short
    kebab-case label) and ``DESCRIPTION``, then implement :meth:`check`
    returning findings.  Use :meth:`finding` to build them so rule id and
    name are filled in consistently.
    """

    RULE: str = "R999"
    NAME: str = "unnamed"
    DESCRIPTION: str = ""

    def check(self, ctx: LintContext) -> Iterable[Finding]:
        raise NotImplementedError

    def finding(
        self, message: str, path: str, node: Optional[ast.AST] = None, line: int = 1
    ) -> Finding:
        if node is not None:
            line = getattr(node, "lineno", line)
            col = getattr(node, "col_offset", 0)
        else:
            col = 0
        return Finding(
            rule=self.RULE, name=self.NAME, message=message,
            path=path, line=line, col=col,
        )


@dataclass
class LintResult:
    root: Path
    findings: List[Finding]
    suppressed: int
    baselined: int
    rules_run: List[str]

    @property
    def clean(self) -> bool:
        return not self.findings


def _suppression_findings(ctx: LintContext) -> List[Finding]:
    out = []
    for mod in ctx.iter_modules():
        for lineno, (rules, reason) in ctx.suppressions_for(mod.rel).items():
            if not reason or not rules:
                out.append(
                    Finding(
                        rule=META_RULE,
                        name="suppression-hygiene",
                        message=(
                            "malformed suppression: "
                            "'# repro-lint: disable=RXXX <reason>' requires both "
                            "a rule id and a reason; nothing is suppressed here"
                        ),
                        path=mod.rel,
                        line=lineno,
                    )
                )
    return out


def run_lint(
    root: Path,
    checkers: Sequence[Checker],
    select: Optional[Sequence[str]] = None,
    baseline: Optional[Sequence[Mapping[str, object]]] = None,
    docs_dir: Optional[Path] = None,
) -> LintResult:
    """Run ``checkers`` over every module under ``root``.

    ``select`` restricts to the given rule ids (validated by the CLI).
    ``baseline`` is a sequence of ``{"rule", "path", "message"}`` dicts;
    matching findings are dropped (grandfathered), counted in
    ``LintResult.baselined``.
    """
    ctx = LintContext(root, docs_dir=docs_dir)
    active = list(checkers)
    if select:
        wanted = {s.upper() for s in select}
        active = [c for c in active if c.RULE in wanted]

    raw: List[Finding] = list(ctx.parse_failures)
    raw.extend(_suppression_findings(ctx))
    for checker in active:
        raw.extend(checker.check(ctx))

    suppressed = 0
    kept: List[Finding] = []
    supp_cache: Dict[str, Dict[int, Tuple[frozenset, str]]] = {}
    for f in raw:
        if f.rule != META_RULE and f.path in ctx.modules:
            if f.path not in supp_cache:
                supp_cache[f.path] = ctx.suppressions_for(f.path)
            entry = supp_cache[f.path].get(f.line)
            if entry is not None:
                rules, reason = entry
                if reason and f.rule in rules:
                    suppressed += 1
                    continue
        kept.append(f)

    baselined = 0
    if baseline:
        keys = {
            (str(b.get("rule")), str(b.get("path")), str(b.get("message")))
            for b in baseline
        }
        still: List[Finding] = []
        for f in kept:
            if (f.rule, f.path, f.message) in keys:
                baselined += 1
            else:
                still.append(f)
        kept = still

    kept.sort(key=Finding.sort_key)
    return LintResult(
        root=ctx.root,
        findings=kept,
        suppressed=suppressed,
        baselined=baselined,
        rules_run=[c.RULE for c in active],
    )


# ----------------------------------------------------------------------
# baseline I/O and output formatting


def load_baseline(path: Path) -> List[Mapping[str, object]]:
    data = json.loads(Path(path).read_text(encoding="utf-8"))
    if isinstance(data, dict):
        entries = data.get("findings", [])
    else:
        entries = data
    if not isinstance(entries, list):
        raise ValueError(f"baseline {path}: expected a list of findings")
    return entries


def baseline_payload(result: LintResult) -> Dict[str, object]:
    """A baseline document grandfathering every current finding."""
    return {
        "version": 1,
        "findings": [
            {"rule": f.rule, "path": f.path, "message": f.message}
            for f in result.findings
        ],
    }


def format_text(result: LintResult) -> str:
    lines = [
        f"{f.path}:{f.line}:{f.col + 1}: {f.rule} [{f.name}] {f.message}"
        for f in result.findings
    ]
    tally = f"{len(result.findings)} finding(s)"
    extras = []
    if result.suppressed:
        extras.append(f"{result.suppressed} suppressed")
    if result.baselined:
        extras.append(f"{result.baselined} baselined")
    if extras:
        tally += " (" + ", ".join(extras) + ")"
    lines.append("clean" if result.clean and not extras else tally)
    return "\n".join(lines)


def format_json(result: LintResult) -> str:
    counts: Dict[str, int] = {}
    for f in result.findings:
        counts[f.rule] = counts.get(f.rule, 0) + 1
    doc = {
        "root": str(result.root),
        "rules_run": result.rules_run,
        "findings": [f.to_json() for f in result.findings],
        "counts": counts,
        "suppressed": result.suppressed,
        "baselined": result.baselined,
        "clean": result.clean,
    }
    return json.dumps(doc, indent=2, sort_keys=True)
