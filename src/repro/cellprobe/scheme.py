"""The cell-probing-scheme abstraction shared by all algorithms.

A scheme is the pair (table structure, cell-probing algorithm) of the
model: :meth:`CellProbingScheme.preprocess` builds the tables for a
database (public randomness included), and :meth:`CellProbingScheme.query`
answers one query through a :class:`~repro.cellprobe.session.ProbeSession`.

Every scheme also reports its *logical* size parameters — table size ``s``
(cells), word size ``w`` — so experiments can tabulate the space side of
each theorem.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

__all__ = ["CellProbingScheme", "SchemeSizeReport"]


@dataclass(frozen=True)
class SchemeSizeReport:
    """Logical size accounting for a scheme's data structure.

    Attributes
    ----------
    table_cells : total number of cells ``s`` across all tables
    word_bits : word size ``w``
    table_names : per-table breakdown (name, cells)
    notes : human-readable remarks (e.g. Newman blowup applied or not)
    """

    table_cells: int
    word_bits: int
    table_names: List[tuple] = field(default_factory=list)
    notes: str = ""

    @property
    def total_bits(self) -> int:
        return self.table_cells * self.word_bits

    def cells_log_n(self, n: int) -> float:
        """Exponent ``c`` with ``s = n^c`` (how polynomial the size is).

        Uses arbitrary-precision ``int.bit_length`` so the astronomically
        large (but exact) auxiliary-table cell counts don't overflow.
        """
        if n <= 1:
            return float("nan")
        cells = max(2, int(self.table_cells))
        # log2 via bit_length with a float correction on the top 53 bits.
        bits = cells.bit_length()
        if bits <= 53:
            log2_cells = math.log2(cells)
        else:
            log2_cells = math.log2(cells >> (bits - 53)) + (bits - 53)
        return log2_cells / math.log2(n)


class CellProbingScheme(abc.ABC):
    """Abstract base for all cell-probing schemes in the package.

    Concrete schemes are constructed with their parameters and a database,
    perform all preprocessing eagerly or lazily as they choose, and answer
    queries exclusively through probe sessions so that probe/round
    accounting is exact.
    """

    #: human-readable scheme identifier used by the experiment harness
    scheme_name: str = "abstract"

    @abc.abstractmethod
    def query(self, x: np.ndarray) -> "object":
        """Answer a query point; returns a QueryResult (see repro.core.result)."""

    @abc.abstractmethod
    def size_report(self) -> SchemeSizeReport:
        """Logical size accounting for the data structure."""

    # -- shared conveniences -------------------------------------------------
    def query_many(self, queries: np.ndarray) -> List[object]:
        """Answer a batch of packed query rows; returns a list of results."""
        arr = np.asarray(queries, dtype=np.uint64)
        if arr.ndim == 1:
            arr = arr[None, :]
        return [self.query(arr[i]) for i in range(arr.shape[0])]

    @property
    def rounds(self) -> Optional[int]:
        """Declared round budget ``k`` (None = unbounded/fully adaptive)."""
        return getattr(self, "k", None)
