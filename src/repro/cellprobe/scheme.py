"""The cell-probing-scheme abstraction shared by all algorithms.

A scheme is the pair (table structure, cell-probing algorithm) of the
model: :meth:`CellProbingScheme.preprocess` builds the tables for a
database (public randomness included), and :meth:`CellProbingScheme.query`
answers one query through a :class:`~repro.cellprobe.session.ProbeSession`.

Every scheme also reports its *logical* size parameters — table size ``s``
(cells), word size ``w`` — so experiments can tabulate the space side of
each theorem.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

__all__ = [
    "CellProbingScheme",
    "SchemeSizeReport",
    "SketchStateMixin",
    "prefix_arrays",
    "split_arrays",
]


def prefix_arrays(prefix: str, arrays: Dict[str, "np.ndarray"]) -> Dict[str, "np.ndarray"]:
    """Namespace an exported array dict under ``prefix/`` (persistence
    payloads from nested components compose by key prefix)."""
    return {f"{prefix}/{key}": value for key, value in arrays.items()}


def split_arrays(arrays: Dict[str, "np.ndarray"]) -> Dict[str, Dict[str, "np.ndarray"]]:
    """Group a payload dict by its first ``/``-separated key component,
    stripping the prefix — the inverse of :func:`prefix_arrays`."""
    groups: Dict[str, Dict[str, "np.ndarray"]] = {}
    for key, value in arrays.items():
        scope, sep, rest = key.partition("/")
        if not sep:
            raise ValueError(f"array key {key!r} has no component prefix")
        groups.setdefault(scope, {})[rest] = value
    return groups


@dataclass(frozen=True)
class SchemeSizeReport:
    """Logical size accounting for a scheme's data structure.

    Attributes
    ----------
    table_cells : total number of cells ``s`` across all tables
    word_bits : word size ``w``
    table_names : per-table breakdown (name, cells)
    notes : human-readable remarks (e.g. Newman blowup applied or not)
    """

    table_cells: int
    word_bits: int
    table_names: List[tuple] = field(default_factory=list)
    notes: str = ""

    @property
    def total_bits(self) -> int:
        return self.table_cells * self.word_bits

    def cells_log_n(self, n: int) -> float:
        """Exponent ``c`` with ``s = n^c`` (how polynomial the size is).

        Uses arbitrary-precision ``int.bit_length`` so the astronomically
        large (but exact) auxiliary-table cell counts don't overflow.
        """
        if n <= 1:
            return float("nan")
        cells = max(2, int(self.table_cells))
        # log2 via bit_length with a float correction on the top 53 bits.
        bits = cells.bit_length()
        if bits <= 53:
            log2_cells = math.log2(cells)
        else:
            log2_cells = math.log2(cells >> (bits - 53)) + (bits - 53)
        return log2_cells / math.log2(n)


class SketchStateMixin:
    """Persistence hooks for schemes whose random state is a
    :class:`~repro.sketch.family.SketchFamily` (attribute ``family``) with
    derived :class:`~repro.sketch.levels.LevelSketches` caches (attribute
    ``level_sketches``) — both paper algorithms and λ-ANNS."""

    def export_arrays(self) -> Dict[str, "np.ndarray"]:
        """Sketch masks for every level plus the materialized database
        sketches (see :mod:`repro.persistence` for the on-disk layout)."""
        out = prefix_arrays("family", self.family.export_arrays())
        out.update(prefix_arrays("levels", self.level_sketches.export_arrays()))
        return out

    def restore_arrays(self, arrays: Dict[str, "np.ndarray"]) -> None:
        for scope, group in split_arrays(arrays).items():
            if scope == "family":
                self.family.restore_arrays(group)
            elif scope == "levels":
                self.level_sketches.restore_arrays(group)
            else:
                raise ValueError(
                    f"unknown array scope {scope!r} for {self.scheme_name}"
                )

    def adopt_arrays(self, arrays: Dict[str, "np.ndarray"]) -> None:
        """Trusted restore for zero-copy loads: install the payloads
        without the seed-rebuild verification, so nothing beyond array
        headers is read until a query probes it.  Family masks go first —
        the level caches validate their shapes against the adopted family.
        """
        groups = split_arrays(arrays)
        unknown = set(groups) - {"family", "levels"}
        if unknown:
            raise ValueError(
                f"unknown array scope {sorted(unknown)[0]!r} for {self.scheme_name}"
            )
        if "family" in groups:
            self.family.adopt_arrays(groups["family"])
        if "levels" in groups:
            self.level_sketches.adopt_arrays(groups["levels"])

    def prewarm(self) -> None:
        """Materialize all levels' masks and database sketches now."""
        self.level_sketches.materialize_all()


class CellProbingScheme(abc.ABC):
    """Abstract base for all cell-probing schemes in the package.

    Concrete schemes are constructed with their parameters and a database,
    perform all preprocessing eagerly or lazily as they choose, and answer
    queries exclusively through probe sessions so that probe/round
    accounting is exact.

    Schemes that additionally implement :meth:`query_plan` (the resumable
    round-generator form, see :mod:`repro.cellprobe.plan`) can be driven by
    the batched engine in :mod:`repro.service`; for those, ``query`` is the
    sequential execution of the same plan, so both paths are identical by
    construction.  Every built-in scheme — core algorithms and baselines —
    is plan-capable and registered by name in :mod:`repro.registry`, so it
    is constructible through :class:`repro.api.IndexSpec` and batchable
    through ``ANNIndex.query_batch``.
    """

    #: human-readable scheme identifier used by the experiment harness
    scheme_name: str = "abstract"

    @abc.abstractmethod
    def query(self, x: np.ndarray) -> "object":
        """Answer a query point; returns a QueryResult (see repro.core.result)."""

    @abc.abstractmethod
    def size_report(self) -> SchemeSizeReport:
        """Logical size accounting for the data structure."""

    # -- the plan protocol ---------------------------------------------------
    def query_plan(self, x: np.ndarray):
        """Round-generator form of a query (see :mod:`repro.cellprobe.plan`).

        Yields one round's complete request list at a time, receives the
        contents, and returns a :class:`~repro.cellprobe.plan.PlanDraft`.
        Schemes without a plan keep the default, and drivers fall back to
        plain :meth:`query` loops.
        """
        raise NotImplementedError(f"{type(self).__name__} has no query plan")

    def supports_plans(self) -> bool:
        """Whether :meth:`query_plan` is implemented by this scheme."""
        return type(self).query_plan is not CellProbingScheme.query_plan

    def make_accountant(self):
        """A fresh per-query accountant with this scheme's budgets."""
        from repro.cellprobe.accounting import ProbeAccountant

        return ProbeAccountant()

    def make_session(self, accountant):
        """A fresh per-query probe session over ``accountant``."""
        from repro.cellprobe.session import ProbeSession

        return ProbeSession(accountant)

    def serializes_rounds(self) -> bool:
        """Whether this scheme's sessions split every parallel round into
        singleton one-probe rounds (the remark after Theorem 3).  Drivers
        that bypass :meth:`make_session` — the boosted wrapper folds
        copies' rounds itself — use this to preserve round structure."""
        from repro.cellprobe.accounting import ProbeAccountant
        from repro.cellprobe.session import SerializedProbeSession

        return isinstance(self.make_session(ProbeAccountant()), SerializedProbeSession)

    def begin_query(self) -> None:
        """Per-query reset hook (e.g. clearing address memos); no-op here."""

    def batch_prepare(self, batch: np.ndarray) -> None:
        """Warm per-query caches for a packed ``(B, W)`` batch; no-op here.

        Plan-capable schemes override this to compute all queries' sketch
        addresses in vectorized passes before their plans start issuing
        rounds.  Preparation must not change any observable behavior —
        only precompute values the plans would derive anyway.
        """

    def finalize(self, draft, accountant):
        """Wrap a finished plan's draft into a QueryResult."""
        from repro.core.result import QueryResult

        return QueryResult(
            answer_index=draft.answer_index,
            answer_packed=draft.answer_packed,
            accountant=accountant,
            scheme=self.scheme_name,
            meta=draft.meta,
        )

    # -- persistence hooks ---------------------------------------------------
    def export_arrays(self) -> Dict[str, np.ndarray]:
        """Array payloads for :mod:`repro.persistence` snapshots.

        Schemes export their randomness-derived arrays (sketch masks,
        sampled hash positions, pivot sets) plus any warm preprocessing
        caches worth shipping.  Keys are ``/``-separated paths; values are
        numpy arrays.  Schemes without array state export nothing.
        """
        return {}

    def restore_arrays(self, arrays: Dict[str, np.ndarray]) -> None:
        """Install payloads produced by :meth:`export_arrays` into a scheme
        freshly rebuilt from the same spec and seed.

        Implementations either prime lazy caches (so the loaded index skips
        recomputation) or verify eagerly-rebuilt state against the payload
        (so a corrupted or mismatched snapshot fails loudly rather than
        answering from different randomness).
        """
        if arrays:
            raise ValueError(
                f"{type(self).__name__} cannot restore array payloads: "
                f"{', '.join(sorted(arrays))}"
            )

    def adopt_arrays(self, arrays: Dict[str, np.ndarray]) -> None:
        """Install payloads for a zero-copy (memory-mapped) load.

        Schemes with a cheap header-only validation path override this to
        skip content verification that would read every payload in full;
        the default falls back to :meth:`restore_arrays`, which is always
        correct — just eager.
        """
        self.restore_arrays(arrays)

    def prewarm(self) -> None:
        """Materialize deferred preprocessing now (no-op by default).

        The sharded builder calls this in worker processes so the
        expensive per-level database sketching happens in parallel and
        ships to the parent through the persistence payloads.
        """

    # -- shared conveniences -------------------------------------------------
    def query_many(self, queries: np.ndarray) -> List[object]:
        """Answer a batch of packed query rows; returns a list of results."""
        arr = np.asarray(queries, dtype=np.uint64)
        if arr.ndim == 1:
            arr = arr[None, :]
        return [self.query(arr[i]) for i in range(arr.shape[0])]

    @property
    def rounds(self) -> Optional[int]:
        """Declared round budget ``k`` (None = unbounded/fully adaptive)."""
        return getattr(self, "k", None)
