"""Query plans: the resumable round-by-round form of a cell-probing query.

A *query plan* is a generator that yields one round's complete list of
:class:`~repro.cellprobe.session.ProbeRequest` at a time, receives the
round's contents via ``send``, and finally returns a :class:`PlanDraft`
(the answer plus metadata, but no accounting — accounting belongs to
whoever executes the rounds).  The plan formulation separates *what a
query probes* from *who executes the probes*, so the same algorithm code
serves two drivers:

* :func:`run_query_plan` — the sequential driver behind every scheme's
  ``query``: one :class:`~repro.cellprobe.session.ProbeSession` executes
  the plan's rounds back to back;
* :class:`~repro.service.engine.BatchQueryEngine` — the batched driver:
  many plans advance in lockstep and each round's probes are vectorized
  across the whole batch, while every query still charges its *own*
  session, keeping the paper's per-query probe/round ledger intact.

Because a plan can only receive a round's contents after yielding the
complete round, the lookup-function formulation (addresses depend on the
query and *previous* rounds only) is enforced structurally here exactly
as it is in :class:`~repro.cellprobe.session.ProbeSession`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Generator, Hashable, List, Optional

import numpy as np

from repro.cellprobe.session import ProbeRequest

__all__ = ["BatchAddressPrimer", "PlanDraft", "QueryPlan", "run_query_plan"]


@dataclass
class PlanDraft:
    """A plan's answer before accounting is attached.

    Attributes
    ----------
    answer_index : database index of the returned point (None = no answer)
    answer_packed : the returned point itself, packed (None = no answer)
    meta : scheme metadata (path taken, levels, violation flags...)
    """

    answer_index: Optional[int]
    answer_packed: Optional[np.ndarray]
    meta: Dict[str, object] = field(default_factory=dict)


#: Type of a query plan: yields per-round request lists, receives the
#: corresponding content lists, returns the draft answer.
QueryPlan = Generator[List[ProbeRequest], List[object], PlanDraft]


class BatchAddressPrimer:
    """Lazy whole-batch address computation for plan-capable schemes.

    Holds the batch a scheme entered via ``batch_prepare`` and, on the
    first per-query cache miss for a given tag (e.g. a sketch level),
    computes that tag's addresses for *every* query in one vectorized
    pass — so per-query sketching collapses to one kernel call per tag,
    and tags no query needs are never computed.  Outside batch mode
    (``points is None``) priming is a no-op and schemes fall back to
    their scalar path.
    """

    def __init__(self):
        self.points: Optional[np.ndarray] = None
        self.keys: List[bytes] = []
        self._primed: set = set()

    def enter(self, batch: np.ndarray) -> None:
        """Start batch mode for a packed ``(B, W)`` batch."""
        points = np.asarray(batch, dtype=np.uint64)
        if points.ndim == 1:
            points = points[None, :]
        self.points = points
        self.keys = [points[q].tobytes() for q in range(points.shape[0])]
        self._primed = set()

    def reset(self) -> None:
        """Leave batch mode (sequential queries prime nothing)."""
        self.points = None
        self._primed.clear()

    def prime(
        self,
        tag: Hashable,
        many_fn: Callable[[np.ndarray], List[tuple]],
        cache: Dict,
        cache_key: Callable[[bytes], Hashable],
    ) -> bool:
        """Fill ``cache`` with the whole batch's addresses for ``tag``.

        ``many_fn(points)`` computes all addresses at once;
        ``cache_key(point_bytes)`` maps each batch row to its cache key.
        Returns True when priming ran (at most once per tag per batch).
        """
        if self.points is None or tag in self._primed:
            return False
        self._primed.add(tag)
        for key, addr in zip(self.keys, many_fn(self.points)):
            cache[cache_key(key)] = addr
        return True


def run_query_plan(scheme, x: np.ndarray):
    """Sequentially execute ``scheme.query_plan(x)`` and finalize the result.

    This is the generic ``query`` implementation for every plan-capable
    scheme: it owns the per-query accountant and probe session, feeds the
    plan one round at a time, and wraps the returned draft into a
    :class:`~repro.core.result.QueryResult` via ``scheme.finalize``.
    """
    scheme.begin_query()
    accountant = scheme.make_accountant()
    session = scheme.make_session(accountant)
    plan = scheme.query_plan(x)
    try:
        requests = next(plan)
        while True:
            contents = session.parallel_read(requests)
            requests = plan.send(contents)
    except StopIteration as stop:
        draft = stop.value
    if not isinstance(draft, PlanDraft):
        raise TypeError(
            f"query plan of {type(scheme).__name__} returned {type(draft).__name__}, "
            "expected PlanDraft"
        )
    return scheme.finalize(draft, accountant)
