"""Probe sessions: structurally enforced limited adaptivity.

A :class:`ProbeSession` is created per query.  The *only* way for an
algorithm to read cells is :meth:`ProbeSession.parallel_read`, which takes
the complete list of a round's ``(table, address)`` requests and returns
all contents at once.  Addresses in a round therefore cannot depend on the
round's own contents — exactly the paper's lookup-function formulation
(``L_i`` maps the query and *previous* rounds' contents to this round's
addresses).
"""

from __future__ import annotations

from typing import Hashable, List, NamedTuple, Sequence

from repro.cellprobe.accounting import ProbeAccountant
from repro.cellprobe.table import Table

__all__ = ["ProbeRequest", "ProbeSession"]


class ProbeRequest(NamedTuple):
    """One cell-probe request: a table and an address within it."""

    table: Table
    address: Hashable


class ProbeSession:
    """Executes rounds of parallel probes against a set of tables.

    Parameters
    ----------
    accountant : the per-query cost meter (budgets included)

    Notes
    -----
    Duplicate addresses within a round are charged once per request — the
    model allows an algorithm to avoid duplicates itself, and the paper's
    algorithms never issue them; tests assert our implementations do not
    either (via :attr:`last_round_had_duplicates`).
    """

    def __init__(self, accountant: ProbeAccountant):
        self.accountant = accountant
        self.last_round_had_duplicates = False

    def parallel_read(self, requests: Sequence[ProbeRequest]) -> List[object]:
        """Execute one round of parallel probes; returns contents in order.

        An empty request list does not open a round (the paper's rounds
        have ``t_i > 0``).
        """
        if not requests:
            return []
        record = self.accountant.begin_round()
        # First charge every probe (addresses are fixed before any content
        # is revealed), then fetch contents.
        keys = [(req.table.name, req.address) for req in requests]
        self.last_round_had_duplicates = len(set(keys)) != len(keys)
        self.accountant.charge_round(record, keys)
        return [req.table.read(req.address) for req in requests]

    def read_one(self, table: Table, address: Hashable) -> object:
        """Convenience wrapper: a round consisting of a single probe."""
        return self.parallel_read([ProbeRequest(table, address)])[0]


class SerializedProbeSession(ProbeSession):
    """Executes every probe as its own one-probe round.

    Serializing a parallel round into singleton rounds is always legal in
    the model — later rounds are *allowed* to depend on earlier contents
    and simply don't — so any k-round scheme becomes a fully adaptive
    t-round, 1-probe-per-round scheme with identical answers.  This is how
    the paper's remark after Theorem 3 is realized: for large enough
    ``k = Θ(log log d / log log log d)``, Algorithm 2's probe count is
    small enough that "every round contains only 1 cell-probe".
    """

    def parallel_read(self, requests: Sequence[ProbeRequest]) -> List[object]:
        contents: List[object] = []
        for req in requests:
            contents.extend(super().parallel_read([req]))
        return contents
