"""Cell-probe model substrate.

Implements Yao's cell-probe model with the paper's *limited adaptivity*
refinement: a query runs as ``k`` rounds of parallel probes, where the
addresses probed in a round may depend only on the query and on contents
retrieved in **previous** rounds.  The :class:`~repro.cellprobe.session.ProbeSession`
API makes that constraint structural: algorithms gather all of a round's
``(table, address)`` requests before any of the round's contents are
revealed.

Tables are *lazily materialized*: a cell's content is a deterministic
function of (database, shared randomness, address) evaluated on first probe
and memoized.  This is an exact simulation of the model — the model charges
for probes, never for preprocessing — while avoiding the ``n^{O(1)}`` cells
an eager build would allocate.
"""

from repro.cellprobe.accounting import ProbeAccountant, ProbeBudgetExceeded, RoundRecord
from repro.cellprobe.plan import PlanDraft, run_query_plan
from repro.cellprobe.scheme import CellProbingScheme, SchemeSizeReport
from repro.cellprobe.session import ProbeRequest, ProbeSession
from repro.cellprobe.table import LazyTable, Table
from repro.cellprobe.words import (
    EMPTY,
    EmptyWord,
    IntWord,
    PointWord,
    Word,
    word_bits,
)

__all__ = [
    "EMPTY",
    "CellProbingScheme",
    "EmptyWord",
    "IntWord",
    "LazyTable",
    "PlanDraft",
    "PointWord",
    "ProbeAccountant",
    "ProbeBudgetExceeded",
    "ProbeRequest",
    "ProbeSession",
    "RoundRecord",
    "SchemeSizeReport",
    "Table",
    "Word",
    "run_query_plan",
    "word_bits",
]
