"""Probe and round accounting.

The accountant is the simulator's cost meter: every cell read is charged to
exactly one round, rounds are sequential, and optional budgets turn the
paper's complexity claims into runtime assertions (tests run schemes under
their theoretical probe/round budgets and fail loudly on violation).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

__all__ = ["ProbeAccountant", "ProbeBudgetExceeded", "RoundRecord"]


class ProbeBudgetExceeded(RuntimeError):
    """A scheme exceeded its declared probe or round budget."""


@dataclass
class RoundRecord:
    """Addresses probed in one round: list of ``(table_name, address)``."""

    index: int
    probes: List[Tuple[str, object]] = field(default_factory=list)

    @property
    def size(self) -> int:
        return len(self.probes)


class ProbeAccountant:
    """Tracks rounds of parallel probes for one query execution.

    Parameters
    ----------
    max_rounds : optional hard cap on rounds (the scheme's ``k``)
    max_probes : optional hard cap on total probes

    Notes
    -----
    The accountant does not *enforce* non-adaptivity by itself — that is the
    job of :class:`~repro.cellprobe.session.ProbeSession`, which only lets
    algorithms read cells through whole-round batches.
    """

    def __init__(self, max_rounds: Optional[int] = None, max_probes: Optional[int] = None):
        self.max_rounds = max_rounds
        self.max_probes = max_probes
        self.rounds: List[RoundRecord] = []
        self._probe_count = 0  # running total (avoids re-summing per charge)

    # -- recording ---------------------------------------------------------
    def begin_round(self) -> RoundRecord:
        """Open a new round; raises if the round budget would be exceeded."""
        if self.max_rounds is not None and len(self.rounds) >= self.max_rounds:
            raise ProbeBudgetExceeded(
                f"round budget exceeded: {len(self.rounds) + 1} > {self.max_rounds}"
            )
        record = RoundRecord(index=len(self.rounds))
        self.rounds.append(record)
        return record

    def charge(self, record: RoundRecord, table_name: str, address: object) -> None:
        """Charge one probe to ``record``."""
        if self.max_probes is not None and self._probe_count >= self.max_probes:
            raise ProbeBudgetExceeded(
                f"probe budget exceeded: {self._probe_count + 1} > {self.max_probes}"
            )
        record.probes.append((table_name, address))
        self._probe_count += 1

    def charge_round(self, record: RoundRecord, probes: List[Tuple[str, object]]) -> None:
        """Charge a whole round's ``(table_name, address)`` list at once.

        Falls back to per-probe charging when the budget would be hit, so
        the exception fires at exactly the same probe as a charge loop.
        """
        if self.max_probes is not None and self._probe_count + len(probes) > self.max_probes:
            for table_name, address in probes:
                self.charge(record, table_name, address)
            return
        record.probes.extend(probes)
        self._probe_count += len(probes)

    # -- reporting -----------------------------------------------------------
    @property
    def total_probes(self) -> int:
        """Total cell-probes charged so far."""
        return self._probe_count

    @property
    def total_rounds(self) -> int:
        """Number of non-empty rounds (empty rounds are not charged)."""
        return sum(1 for r in self.rounds if r.size > 0)

    @property
    def probes_per_round(self) -> List[int]:
        """Probe counts per recorded round (including any empty rounds)."""
        return [r.size for r in self.rounds]

    def merge_parallel(self, other: "ProbeAccountant") -> None:
        """Merge another accountant that ran *in parallel* with this one.

        Round ``i`` of ``other`` is folded into round ``i`` of ``self``;
        this models independent repetitions executed side by side (success
        boosting, Section 2), which add probes but not rounds.
        """
        for i, rec in enumerate(other.rounds):
            while len(self.rounds) <= i:
                self.rounds.append(RoundRecord(index=len(self.rounds)))
            self.rounds[i].probes.extend(rec.probes)
            self._probe_count += rec.size

    def as_dict(self) -> dict:
        """Summary dictionary for reports."""
        return {
            "total_probes": self.total_probes,
            "total_rounds": self.total_rounds,
            "probes_per_round": self.probes_per_round,
        }
