"""Cell contents ("words") and their bit-size accounting.

The model's word size ``w`` bounds how many bits one cell may hold.  The
paper's schemes use words of ``O(d)`` bits: a cell stores either a database
point (``d`` bits plus an index tag), a small integer (the auxiliary tables
store a value in ``[1, s+1]``), or the distinguished EMPTY symbol.

Words are immutable value objects; :func:`word_bits` reports the bit count
a word occupies so schemes can assert they respect their declared ``w``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

__all__ = ["EMPTY", "EmptyWord", "IntWord", "PointWord", "Word", "word_bits"]


@dataclass(frozen=True)
class EmptyWord:
    """The distinguished EMPTY symbol (1 tag bit)."""

    def __repr__(self) -> str:
        return "EMPTY"


EMPTY = EmptyWord()


@dataclass(frozen=True)
class PointWord:
    """A database point stored in a cell.

    Stores the packed bits (the ``d``-bit payload the model charges for)
    together with the database index, which is convenience metadata for the
    simulator — the paper's cells store the point itself.
    """

    index: int
    packed: tuple  # tuple of ints for hashability
    d: int

    @classmethod
    def from_packed(cls, index: int, packed: np.ndarray, d: int) -> "PointWord":
        words = np.asarray(packed, dtype=np.uint64).ravel()
        return cls(int(index), tuple(words.tolist()), int(d))

    def packed_array(self) -> np.ndarray:
        """The stored point as a packed uint64 row."""
        return np.array(self.packed, dtype=np.uint64)

    def __repr__(self) -> str:
        return f"PointWord(index={self.index}, d={self.d})"


@dataclass(frozen=True)
class IntWord:
    """A small non-negative integer stored in a cell (aux tables)."""

    value: int
    max_value: int

    def __post_init__(self) -> None:
        if not (0 <= self.value <= self.max_value):
            raise ValueError(f"IntWord value {self.value} outside [0, {self.max_value}]")

    def __repr__(self) -> str:
        return f"IntWord({self.value})"


Word = Optional[object]  # EmptyWord | PointWord | IntWord


def word_bits(word: object) -> int:
    """Bits occupied by ``word`` under the model's accounting.

    EMPTY costs 1 tag bit; a point costs ``d`` payload bits plus the tag;
    an integer in ``[0, M]`` costs ``ceil(log2(M+1))`` bits plus the tag.
    """
    if isinstance(word, EmptyWord):
        return 1
    if isinstance(word, PointWord):
        return 1 + word.d
    if isinstance(word, IntWord):
        return 1 + max(1, int(word.max_value).bit_length())
    raise TypeError(f"not a word: {word!r}")
