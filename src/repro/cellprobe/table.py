"""Tables of the cell-probe model.

A :class:`Table` exposes read-only cells addressed by hashable addresses.
:class:`LazyTable` materializes cells on first read from a deterministic
content function — the exact content eager preprocessing would have stored
— and memoizes it, so repeated probes of the same address are consistent
(and property tests verify determinism across fresh instances).

Tables carry *logical* size metadata (cell count, word size) taken from the
scheme's closed-form accounting; the simulator never allocates ``n^{O(1)}``
cells.
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, Optional

from repro.cellprobe.words import word_bits

__all__ = ["LazyTable", "Table"]


class Table:
    """Abstract read-only table.

    Parameters
    ----------
    name : identifier used in probe traces
    logical_cells : number of cells the table has in the model (may be an
        astronomically large int; only used for size accounting)
    word_size_bits : the model's word size ``w`` for this table
    """

    def __init__(self, name: str, logical_cells: int, word_size_bits: int):
        self.name = str(name)
        self.logical_cells = int(logical_cells)
        self.word_size_bits = int(word_size_bits)

    def read(self, address: Hashable) -> object:
        """Return the content of ``address`` (no probe accounting here —
        reads must go through a :class:`~repro.cellprobe.session.ProbeSession`)."""
        raise NotImplementedError

    def size_bits(self) -> int:
        """Logical table size in bits (cells × word size)."""
        return self.logical_cells * self.word_size_bits

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"{type(self).__name__}(name={self.name!r}, cells={self.logical_cells}, "
            f"w={self.word_size_bits})"
        )


class LazyTable(Table):
    """A table whose cells are computed on demand by ``content_fn``.

    ``content_fn(address)`` must be a pure function of the address (given
    the database and randomness captured in its closure): the memo cache
    makes repeated reads cheap, and the purity requirement makes the lazy
    simulation indistinguishable from an eager build.

    The optional ``batch_content_fn(addresses)`` computes the contents of
    many addresses in one vectorized pass; it must agree elementwise with
    ``content_fn`` (tests assert this per structure).  The batched query
    engine uses it through :meth:`prefetch` to warm the memo cache for a
    whole round of probes across a query batch — after which every read
    returns exactly what the sequential path would have computed.

    The optional ``validate_words`` flag asserts each produced word fits
    the declared word size — tests enable it to check the ``O(d)`` word
    bound of every scheme.
    """

    def __init__(
        self,
        name: str,
        logical_cells: int,
        word_size_bits: int,
        content_fn: Callable[[Hashable], object],
        validate_words: bool = True,
        batch_content_fn: Optional[Callable[[list], list]] = None,
    ):
        super().__init__(name, logical_cells, word_size_bits)
        self._content_fn = content_fn
        self._batch_content_fn = batch_content_fn
        self._cache: Dict[Hashable, object] = {}
        self._validate_words = bool(validate_words)
        self.materialized_reads = 0  # content-function invocations (stats)
        self.prefetched_cells = 0  # cells filled through prefetch (stats)

    def _check_word(self, content: object) -> object:
        if self._validate_words:
            bits = word_bits(content)
            if bits > self.word_size_bits:
                raise ValueError(
                    f"table {self.name!r}: word of {bits} bits exceeds "
                    f"declared word size {self.word_size_bits}"
                )
        return content

    def read(self, address: Hashable) -> object:
        try:
            return self._cache[address]
        except KeyError:
            pass
        content = self._check_word(self._content_fn(address))
        self._cache[address] = content
        self.materialized_reads += 1
        return content

    @property
    def supports_prefetch(self) -> bool:
        """Whether this table has a vectorized batch content function."""
        return self._batch_content_fn is not None

    def prefetch(self, addresses) -> int:
        """Materialize many cells in one batched pass; returns #cells filled.

        Already-cached (and within-call duplicate) addresses are skipped,
        so prefetching changes only *when* cells are computed, never what
        they contain.
        """
        if self._batch_content_fn is None:
            return 0
        missing = []
        seen = set()
        for address in addresses:
            if address in self._cache or address in seen:
                continue
            seen.add(address)
            missing.append(address)
        if not missing:
            return 0
        contents = self._batch_content_fn(missing)
        if len(contents) != len(missing):
            raise ValueError(
                f"table {self.name!r}: batch content fn returned {len(contents)} "
                f"words for {len(missing)} addresses"
            )
        for address, content in zip(missing, contents):
            self._cache[address] = self._check_word(content)
            self.materialized_reads += 1
            self.prefetched_cells += 1
        return len(missing)

    def cached_cells(self) -> int:
        """Number of cells materialized so far (simulator statistic)."""
        return len(self._cache)

    def clear_cache(self) -> None:
        """Drop memoized cells (tests use this to re-check determinism)."""
        self._cache.clear()


class DictTable(Table):
    """A fully materialized table backed by a dict; absent addresses map to
    ``default``.  Used by small structures (perfect-hash membership tables
    in tests) and by the LSH baseline's bucket directory."""

    def __init__(
        self,
        name: str,
        logical_cells: int,
        word_size_bits: int,
        cells: Optional[Dict[Hashable, object]] = None,
        default: object = None,
    ):
        super().__init__(name, logical_cells, word_size_bits)
        self._cells: Dict[Hashable, object] = dict(cells or {})
        self._default = default

    def read(self, address: Hashable) -> object:
        return self._cells.get(address, self._default)

    def store(self, address: Hashable, content: object) -> None:
        """Preprocessing-time write (never charged as a probe)."""
        self._cells[address] = content

    def stored_cells(self) -> int:
        return len(self._cells)
