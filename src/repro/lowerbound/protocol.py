"""Cell-probing schemes as communication protocols (Proposition 18).

A k-round cell-probing scheme on a table of ``s`` cells and word size ``w``
induces a ``⟨A, B, 2k⟩ᴬ`` protocol: in round ``i`` Alice (the query
algorithm) sends the ``t_i`` probed addresses (``a_i = t_i ⌈log s⌉`` bits)
and Bob (the table) answers with the contents (``b_i = t_i w`` bits).  The
non-uniform message-size vectors ``A, B`` are exactly what Section 4.2's
generalized round elimination consumes.

:func:`trace_to_protocol` converts a real query trace (the probe
accountant of a :class:`~repro.core.result.QueryResult`) into its protocol
shape, so experiment E10 can tabulate communication costs of actual
executions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.cellprobe.accounting import ProbeAccountant
from repro.utils.intmath import ilog2_ceil

__all__ = ["ProtocolShape", "trace_to_protocol"]


@dataclass(frozen=True)
class ProtocolShape:
    """Message-size vectors of a ``⟨A, B, 2k⟩ᴬ`` protocol (bits)."""

    a: Tuple[float, ...]  # Alice's per-round message sizes
    b: Tuple[float, ...]  # Bob's per-round message sizes

    def __post_init__(self) -> None:
        if len(self.a) != len(self.b):
            raise ValueError("A and B must have the same number of rounds")
        if any(v < 0 for v in self.a) or any(v < 0 for v in self.b):
            raise ValueError("message sizes must be non-negative")

    @property
    def k(self) -> int:
        """Number of cell-probe rounds (= half the communication rounds)."""
        return len(self.a)

    @property
    def communication_rounds(self) -> int:
        """Communication rounds: ``2k`` (Alice and Bob alternate)."""
        return 2 * len(self.a)

    @property
    def alice_bits(self) -> float:
        return float(sum(self.a))

    @property
    def bob_bits(self) -> float:
        return float(sum(self.b))

    @property
    def total_bits(self) -> float:
        return self.alice_bits + self.bob_bits

    def suffix(self, start: int) -> "ProtocolShape":
        """The sub-protocol from round ``start`` on (0-based) — the
        ``A^{(i+1)−}`` operation of the round-elimination lemma."""
        return ProtocolShape(self.a[start:], self.b[start:])

    def scale_alice(self, factor: float) -> "ProtocolShape":
        """Scale Alice's messages (the ``(1 + 2a₁/(δ p a₂)) A`` operation)."""
        if factor < 1:
            raise ValueError("scaling factor must be >= 1")
        return ProtocolShape(tuple(factor * v for v in self.a), self.b)

    def rows(self) -> List[dict]:
        """Per-round rows for reporting."""
        return [
            {"round": i + 1, "alice_bits": self.a[i], "bob_bits": self.b[i]}
            for i in range(self.k)
        ]


def trace_to_protocol(
    accountant: ProbeAccountant, table_cells: int, word_bits: int
) -> ProtocolShape:
    """Proposition 18 applied to a recorded query execution.

    Round ``i`` with ``t_i`` probes becomes ``a_i = t_i ⌈log₂ s⌉`` and
    ``b_i = t_i w``; empty rounds are dropped (the paper requires
    ``t_i > 0``).
    """
    if table_cells < 2:
        raise ValueError("table must have at least 2 cells")
    if word_bits < 1:
        raise ValueError("word size must be >= 1 bit")
    addr_bits = ilog2_ceil(table_cells)
    sizes = [r.size for r in accountant.rounds if r.size > 0]
    a = tuple(float(t * addr_bits) for t in sizes)
    b = tuple(float(t * word_bits) for t in sizes)
    return ProtocolShape(a, b)
