"""The LPM → ANNS reduction (Lemma 14), executable.

Strings map to ball-tree leaf centers: database string ``s`` maps to the
center of the ball reached by descending child ``s₁, s₂, …``; the query
string maps the same way.  By γ-separation (Lemma 16), if two strings
share a prefix of length ``ℓ`` their points lie in one depth-``ℓ`` ball
(distance ``≤ 2 r_ℓ``) but distinct depth-``ℓ+1`` balls (distance
``> γ · 2 r_{ℓ+1} = r_ℓ / 4``); consequently a deeper common prefix means
a point more than a factor γ closer, and **any** γ-approximate nearest
neighbor of the mapped query must realize the maximal common prefix.
:meth:`LPMToANNSReduction.recover` inverts the point map, turning an ANNS
answer back into an LPM answer; tests drive this end-to-end against both
an exact solver and the paper's own Algorithm 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Sequence, Tuple

import numpy as np

from repro.hamming.points import PackedPoints
from repro.lowerbound.balltree import SeparatedBallTree
from repro.lowerbound.lpm import LPMInstance, common_prefix_length

__all__ = ["LPMToANNSReduction", "ReductionCheck"]


@dataclass(frozen=True)
class ReductionCheck:
    """Outcome of one end-to-end reduction query (analysis only)."""

    query: Tuple[int, ...]
    returned_index: int
    returned_lcp: int
    optimal_lcp: int

    @property
    def correct(self) -> bool:
        """LPM answered correctly iff the returned LCP is maximal."""
        return self.returned_lcp == self.optimal_lcp


class LPMToANNSReduction:
    """Maps one LPM instance into an ANNS instance over ``{0,1}^d``.

    Parameters
    ----------
    instance : the LPM database
    tree : a γ-separated ball tree with ``fanout ≥ sigma`` and
        ``depth ≥ m``
    """

    def __init__(self, instance: LPMInstance, tree: SeparatedBallTree):
        if tree.fanout < instance.sigma:
            raise ValueError(
                f"tree fanout {tree.fanout} < alphabet size {instance.sigma}"
            )
        if tree.depth < instance.m:
            raise ValueError(f"tree depth {tree.depth} < string length {instance.m}")
        self.instance = instance
        self.tree = tree
        rows = [tree.leaf_center(s[: tree.depth]) for s in instance.strings]
        self.database = PackedPoints(np.vstack(rows), tree.d)
        self._by_point: Dict[bytes, int] = {
            self.database.row(i).tobytes(): i for i in range(len(self.database))
        }

    # -- mapping -----------------------------------------------------------
    def map_query(self, query: Sequence[int]) -> np.ndarray:
        """The ANNS query point for an LPM query string."""
        q = tuple(int(c) for c in query)
        if len(q) != self.instance.m:
            raise ValueError(f"query length {len(q)} != m={self.instance.m}")
        if any(not (0 <= c < self.instance.sigma) for c in q):
            raise ValueError("query symbol outside alphabet")
        return self.tree.leaf_center(q)

    def recover(self, answer_packed: np.ndarray) -> int:
        """Database string index for a returned ANNS point."""
        key = np.asarray(answer_packed, dtype=np.uint64).tobytes()
        try:
            return self._by_point[key]
        except KeyError:
            raise ValueError("returned point is not a mapped database point") from None

    # -- separation guarantee (what makes the reduction sound) ----------------
    def gamma_gap(self, query: Sequence[int]) -> float:
        """Ratio between the closest non-maximal-LCP point and the farthest
        maximal-LCP point (> γ certifies the instance is unconfusable)."""
        x = self.map_query(query)
        dists = self.database.distances_from(x)
        lcps = np.array(
            [common_prefix_length(query, s) for s in self.instance.strings]
        )
        best = int(lcps.max())
        at_best = dists[lcps == best]
        below = dists[lcps < best]
        if below.size == 0:
            return float("inf")
        return float(below.min()) / float(max(1, at_best.max()))

    # -- end-to-end ---------------------------------------------------------
    def solve_with(
        self,
        ann_query: Callable[[PackedPoints, np.ndarray], np.ndarray],
        query: Sequence[int],
    ) -> ReductionCheck:
        """Run an ANNS solver on the mapped instance and score the answer.

        ``ann_query(database, x)`` must return the packed answer point.
        """
        x = self.map_query(query)
        answer = ann_query(self.database, x)
        idx = self.recover(answer)
        returned_lcp = common_prefix_length(query, self.instance.strings[idx])
        _, optimal_lcp = self.instance.brute_force(query)
        return ReductionCheck(
            query=tuple(int(c) for c in query),
            returned_index=idx,
            returned_lcp=returned_lcp,
            optimal_lcp=optimal_lcp,
        )
