"""Claim 26, executable: zero-communication protocols for ``LPM^Σ_{1,1}``
succeed with probability at most ``1/|Σ|``.

This is the anchor of the whole lower bound — after ``k`` round
eliminations, the surviving protocol has no messages left, yet Claim 25
says its error is ≤ 7/8, i.e. success ≥ 1/8 > 1/|Σ|.  Contradiction.

The claim itself is a one-line averaging argument (a silent Alice can only
output a fixed — or privately randomized — symbol, which matches a uniform
database symbol with probability 1/|Σ|); this module makes it *measurable*
so experiment E13 can show the gap numerically, and exposes the exact
success bound the ledger compares against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

__all__ = ["SilentProtocolResult", "best_silent_success", "simulate_silent_protocol"]


@dataclass(frozen=True)
class SilentProtocolResult:
    """Measured success of a zero-communication LPM₁,₁ strategy."""

    sigma: int
    trials: int
    successes: int

    @property
    def rate(self) -> float:
        return self.successes / self.trials

    @property
    def bound(self) -> float:
        """Claim 26's ceiling: ``1/|Σ|``."""
        return 1.0 / self.sigma


def best_silent_success(sigma: int) -> float:
    """The optimal silent success probability on uniform inputs: ``1/|Σ|``.

    With ``m = n = 1``, Alice must output a database symbol having seen
    only her own query symbol; the (unseen) database symbol is uniform, so
    any output — deterministic or randomized, query-dependent or not —
    matches with probability exactly ``1/σ``.
    """
    if sigma < 2:
        raise ValueError(f"alphabet size must be >= 2, got {sigma}")
    return 1.0 / sigma


def simulate_silent_protocol(
    sigma: int,
    trials: int,
    rng: np.random.Generator,
    strategy: Optional[Callable[[int], int]] = None,
) -> SilentProtocolResult:
    """Monte-Carlo a silent strategy against uniform LPM₁,₁ instances.

    ``strategy(query_symbol) -> output_symbol`` defaults to echoing the
    query (as good as any other silent strategy, per Claim 26).  A success
    is an output equal to the hidden database symbol — for ``m = 1`` that
    is the only way to realize the maximal common prefix when the database
    symbol differs from every wrong guess, and matching it is required
    whenever the query equals the database symbol, so symbol equality is
    the (strictest) success criterion the claim bounds.
    """
    if trials < 1:
        raise ValueError("need at least one trial")
    if strategy is None:
        strategy = lambda q: q  # noqa: E731 - tiny default
    queries = rng.integers(0, sigma, size=trials)
    database = rng.integers(0, sigma, size=trials)
    successes = sum(int(strategy(int(q)) == int(b)) for q, b in zip(queries, database))
    return SilentProtocolResult(sigma=sigma, trials=trials, successes=successes)
