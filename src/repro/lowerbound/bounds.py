"""Closed-form bound curves for the tradeoff plots (experiments E1–E3).

These are the analytic envelopes of the four statements the experiments
compare against:

* ``lb_tradeoff``       — Theorem 4's  ``Ω((1/k)(log_γ d)^{1/k})``;
* ``ub_algorithm1``     — Theorem 2's  ``O(k (log d)^{1/k})``;
* ``ub_algorithm2``     — Theorem 3's  ``O(k + ((log d)/k)^{c/k})``;
* ``cr_fully_adaptive_bound`` — Chakrabarti–Regev's
  ``Θ(log log d / log log log d)`` for unbounded rounds (Theorem 1);
* ``phase_transition_k`` — the round count at which Theorem 3 reaches one
  probe per round (the paper's "phase transition" regime).

Constant factors are 1 by default — experiments fit shapes, not constants.
"""

from __future__ import annotations

import math

__all__ = [
    "cr_fully_adaptive_bound",
    "lb_tradeoff",
    "lb_valid_k_max",
    "phase_transition_k",
    "ub_algorithm1",
    "ub_algorithm2",
]


def _check(d: int, k: int | None = None) -> None:
    if d < 16:
        raise ValueError(f"bound curves need d >= 16, got {d}")
    if k is not None and k < 1:
        raise ValueError(f"k must be >= 1, got {k}")


def lb_tradeoff(k: int, d: int, gamma: float = 2.0, c3: float = 1.0) -> float:
    """Theorem 4's lower bound envelope ``(c₃/k)(log_γ d)^{1/k}``."""
    _check(d, k)
    if gamma <= 1:
        raise ValueError("gamma must be > 1")
    log_gamma_d = math.log(d, gamma)
    return (c3 / k) * log_gamma_d ** (1.0 / k)


def ub_algorithm1(k: int, d: int, c: float = 1.0) -> float:
    """Theorem 2's upper bound envelope ``c · k (log₂ d)^{1/k}``."""
    _check(d, k)
    return c * k * (math.log2(d)) ** (1.0 / k)


def ub_algorithm2(k: int, d: int, c: float = 3.0, scale: float = 1.0) -> float:
    """Theorem 3's upper bound envelope ``scale·(k + ((log₂ d)/k)^{c/k})``."""
    _check(d, k)
    if c <= 2:
        raise ValueError("Theorem 3 requires c > 2")
    return scale * (k + (math.log2(d) / k) ** (c / k))


def cr_fully_adaptive_bound(d: int) -> float:
    """Theorem 1's fully-adaptive bound ``log log d / log log log d``."""
    _check(d)
    lld = math.log2(math.log2(d))
    llld = math.log2(max(2.0, lld))
    return lld / max(1.0, llld)


def phase_transition_k(d: int) -> int:
    """The ``k = Θ(log log d / log log log d)`` regime boundary (rounded)."""
    return max(1, round(cr_fully_adaptive_bound(d)))


def lb_valid_k_max(d: int) -> int:
    """Largest ``k`` Theorem 4 covers: ``⌊log log d / (2 log log log d)⌋``."""
    _check(d)
    lld = math.log2(math.log2(d))
    llld = math.log2(max(2.0, lld))
    return max(1, math.floor(lld / (2.0 * max(1.0, llld))))
