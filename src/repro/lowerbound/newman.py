"""Newman-style public→private coin accounting (Lemma 5 / Proposition 6).

Lemma 5 is a counting argument: a public-coin k-round scheme with table
size ``s`` becomes a private-coin scheme with table size
``(log|𝒜| + log|ℬ| + O(1)) · s`` — the public random strings are reduced
to ``ℓ = log(log|𝒜| + log|ℬ| + O(1))`` bits by Newman's theorem and one
table copy is stored per random string.  For ANNS (Proposition 6)
``log|𝒜| = d`` and ``log|ℬ| = log₂ C(2^d, n) ≈ n·d``, giving the paper's
``O(dn·s)``.  These functions compute the exact blowups the size reports
quote; no algorithmic transformation is needed (the public-coin scheme
stays executable).
"""

from __future__ import annotations

import math

__all__ = [
    "log2_database_universe",
    "newman_private_coin_cells",
    "newman_random_bits",
    "proposition6_cells",
]

#: The additive O(1) slack of Lemma 5 (any constant ≥ 1 works; the paper
#: leaves it unspecified).
O1_SLACK = 8


def log2_database_universe(n: int, d: int) -> float:
    """``log₂ |ℬ| = log₂ C(2^d, n)`` via the entropy bound.

    Exact binomials of ``2^d`` choose ``n`` are astronomically large; the
    standard bound ``log₂ C(N, n) ≤ n log₂(Ne/n)`` with ``N = 2^d`` gives
    ``n (d + log₂ e − log₂ n)``, which is tight to ``O(n)`` in this regime.
    """
    if n < 1 or d < 1:
        raise ValueError("n and d must be >= 1")
    return n * (d + math.log2(math.e) - math.log2(n))


def newman_random_bits(log_query_universe: float, log_db_universe: float) -> float:
    """Newman's theorem: public random bits reduce to
    ``ℓ = log₂(log|𝒜| + log|ℬ| + O(1))``."""
    total = log_query_universe + log_db_universe + O1_SLACK
    if total <= 0:
        raise ValueError("universe sizes must be positive")
    return math.log2(total)


def newman_private_coin_cells(
    public_cells: int, log_query_universe: float, log_db_universe: float
) -> int:
    """Lemma 5's private-coin table size: ``s · 2^ℓ`` cells."""
    if public_cells < 1:
        raise ValueError("public table must have >= 1 cell")
    blowup = log_query_universe + log_db_universe + O1_SLACK
    return int(math.ceil(public_cells * blowup))


def proposition6_cells(public_cells: int, n: int, d: int) -> int:
    """Proposition 6's ANNS specialization: table size ``O(dn · s)``."""
    return newman_private_coin_cells(
        public_cells, float(d), log2_database_universe(n, d)
    )
