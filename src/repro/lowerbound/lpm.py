"""The longest prefix match problem ``LPM^Σ_{m,n}`` (Definition 13).

Given a database of ``n`` strings of length ``m`` over alphabet ``Σ`` and
a query string, return a database string with the longest common prefix
with the query.  The paper reduces LPM to ANNS (Lemma 14); this module
provides the problem itself: instances, an exact trie solver, and a brute
force reference for tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

__all__ = ["LPMInstance", "LPMTrie", "common_prefix_length", "random_lpm_instance"]

String = Tuple[int, ...]


def common_prefix_length(a: Sequence[int], b: Sequence[int]) -> int:
    """Length of the longest common prefix of two symbol sequences."""
    length = 0
    for x, y in zip(a, b):
        if x != y:
            break
        length += 1
    return length


@dataclass(frozen=True)
class LPMInstance:
    """An LPM database: ``n`` length-``m`` strings over ``{0..sigma-1}``."""

    strings: Tuple[String, ...]
    sigma: int

    def __post_init__(self) -> None:
        if not self.strings:
            raise ValueError("LPM database must be non-empty")
        m = len(self.strings[0])
        for s in self.strings:
            if len(s) != m:
                raise ValueError("all database strings must share one length")
            if any(not (0 <= c < self.sigma) for c in s):
                raise ValueError("symbol outside alphabet")

    @property
    def m(self) -> int:
        return len(self.strings[0])

    @property
    def n(self) -> int:
        return len(self.strings)

    def brute_force(self, query: Sequence[int]) -> Tuple[int, int]:
        """``(index, lcp)`` of a best match by exhaustive scan (reference)."""
        best_idx, best_lcp = 0, -1
        for i, s in enumerate(self.strings):
            lcp = common_prefix_length(query, s)
            if lcp > best_lcp:
                best_idx, best_lcp = i, lcp
        return best_idx, best_lcp


class _TrieNode:
    __slots__ = ("children", "string_index")

    def __init__(self) -> None:
        self.children: Dict[int, "_TrieNode"] = {}
        self.string_index: int = -1  # any database string through this node


class LPMTrie:
    """Exact LPM solver: a trie over the database strings.

    ``query`` walks the trie as deep as the query allows and returns any
    database string passing through the deepest reached node — by the trie
    invariant, a string of maximal common prefix.
    """

    def __init__(self, instance: LPMInstance):
        self.instance = instance
        self._root = _TrieNode()
        for idx, s in enumerate(instance.strings):
            node = self._root
            if node.string_index < 0:
                node.string_index = idx
            for symbol in s:
                node = node.children.setdefault(symbol, _TrieNode())
                if node.string_index < 0:
                    node.string_index = idx

    def query(self, query: Sequence[int]) -> Tuple[int, int]:
        """``(index, lcp)`` of a database string with maximal LCP."""
        node = self._root
        depth = 0
        for symbol in query:
            child = node.children.get(symbol)
            if child is None:
                break
            node = child
            depth += 1
        return node.string_index, depth


def random_lpm_instance(
    rng: np.random.Generator, m: int, n: int, sigma: int, skew: float = 0.0
) -> Tuple[LPMInstance, List[String]]:
    """A random LPM database plus query strings sharing prefixes with it.

    ``skew > 0`` biases queries toward copying prefixes of database strings
    (making the LPM answer nontrivial); ``skew = 0`` gives uniform queries.
    Returns the instance and ``n`` query strings.
    """
    if sigma < 2:
        raise ValueError(f"alphabet size must be >= 2, got {sigma}")
    if m < 1 or n < 1:
        raise ValueError("m and n must be >= 1")
    seen = set()
    strings: List[String] = []
    while len(strings) < n:
        s = tuple(int(v) for v in rng.integers(0, sigma, size=m))
        if s not in seen:
            seen.add(s)
            strings.append(s)
    instance = LPMInstance(tuple(strings), sigma)
    queries: List[String] = []
    for _ in range(n):
        if skew > 0 and rng.random() < skew:
            base = strings[int(rng.integers(0, n))]
            keep = int(rng.integers(0, m + 1))
            tail = tuple(int(v) for v in rng.integers(0, sigma, size=m - keep))
            queries.append(base[:keep] + tail)
        else:
            queries.append(tuple(int(v) for v in rng.integers(0, sigma, size=m)))
    return instance, queries
