"""Lower-bound machinery of Section 4 (Theorem 4 / Theorem 12).

The lower bound is a proof; what this package makes executable is every
machine-checkable ingredient of it:

* :mod:`~repro.lowerbound.lpm` — the longest-prefix-match data-structure
  problem, with an exact trie solver and instance generators;
* :mod:`~repro.lowerbound.balltree` — the γ-separated Hamming-ball tree
  behind the reduction (Lemmas 15/16), constructed explicitly with its
  separation invariant programmatically verified;
* :mod:`~repro.lowerbound.reduction` — the LPM → ANNS instance mapping
  (Lemma 14) with end-to-end answer recovery;
* :mod:`~repro.lowerbound.protocol` — the cell-probe-scheme ⇒
  communication-protocol view (Proposition 18) with non-uniform message
  sizes, executable on real query traces;
* :mod:`~repro.lowerbound.roundelim` — a numeric ledger replaying the
  round-elimination recurrence of Lemma 19 / Claim 25;
* :mod:`~repro.lowerbound.bounds` — closed-form curves for the tradeoff
  plots (lower bound, both upper bounds, Chakrabarti–Regev);
* :mod:`~repro.lowerbound.newman` — Lemma 5 / Proposition 6 private-coin
  table-size accounting.
"""

from repro.lowerbound.balltree import SeparatedBallTree
from repro.lowerbound.claim26 import best_silent_success, simulate_silent_protocol
from repro.lowerbound.bounds import (
    cr_fully_adaptive_bound,
    lb_tradeoff,
    phase_transition_k,
    ub_algorithm1,
    ub_algorithm2,
)
from repro.lowerbound.lpm import LPMInstance, LPMTrie, random_lpm_instance
from repro.lowerbound.newman import newman_private_coin_cells, proposition6_cells
from repro.lowerbound.protocol import ProtocolShape, trace_to_protocol
from repro.lowerbound.reduction import LPMToANNSReduction
from repro.lowerbound.roundelim import RoundEliminationLedger

__all__ = [
    "LPMInstance",
    "LPMToANNSReduction",
    "LPMTrie",
    "ProtocolShape",
    "RoundEliminationLedger",
    "SeparatedBallTree",
    "best_silent_success",
    "simulate_silent_protocol",
    "cr_fully_adaptive_bound",
    "lb_tradeoff",
    "newman_private_coin_cells",
    "phase_transition_k",
    "proposition6_cells",
    "random_lpm_instance",
    "trace_to_protocol",
    "ub_algorithm1",
    "ub_algorithm2",
]
