"""The γ-separated Hamming-ball tree behind the LPM → ANNS reduction
(Lemmas 15 and 16).

The paper's tree has fan-out ``⌈2^{d^{0.99}}⌉`` — existential, never
materialized.  The machine-checkable content of Lemma 16 is the invariant
list:

1. children are nested inside their parents,
2. every non-leaf has exactly ``fanout`` children,
3. depth-``i`` balls have radius ``d/(8γ)^i``,
4. depth-``i`` balls form a γ-separated family (pairwise point-to-point
   distance across distinct balls exceeds ``γ`` times any ball diameter),
5. leaves sit at a prescribed depth.

We build such a tree explicitly for fan-outs that fit in memory: child
centers are the parent's center with ``⌊radius/2⌋`` random bit flips,
accepted greedily while every same-depth pair of centers keeps distance
``> 2·r_child·(γ + 1)`` — by the triangle inequality that implies property
4 exactly (two points in distinct balls are at distance
``> 2 r (γ+1) − 2r = γ · 2r``).  :meth:`SeparatedBallTree.verify` re-checks
all five properties from scratch; tests and experiment E7 call it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.hamming.distance import hamming_distance, pairwise_distances
from repro.hamming.packing import packed_words
from repro.hamming.sampling import flip_random_bits, random_points

__all__ = ["SeparatedBallTree", "max_feasible_depth"]


def max_feasible_depth(d: int, gamma: float, min_radius: float = 4.0) -> int:
    """Largest depth whose ball radius ``d/(8γ)^depth`` stays ≥ min_radius."""
    if gamma <= 0:
        raise ValueError("gamma must be positive")
    depth = 0
    r = float(d)
    while r / (8.0 * gamma) >= min_radius:
        r /= 8.0 * gamma
        depth += 1
    return depth


@dataclass(frozen=True)
class _Node:
    depth: int
    path: Tuple[int, ...]  # child indices from the root
    center: tuple  # packed words as a tuple (hashable)


class SeparatedBallTree:
    """An explicit γ-separated ball tree of given fan-out and depth.

    Parameters
    ----------
    d : ambient dimension
    gamma : separation factor γ > 1
    fanout : children per non-leaf (the reduction needs ``fanout ≥ |Σ|``)
    depth : leaf depth (the reduction needs ``depth ≥ m``)
    rng : randomness for center placement
    max_attempts : rejection-sampling budget per child
    """

    def __init__(
        self,
        d: int,
        gamma: float,
        fanout: int,
        depth: int,
        rng: np.random.Generator,
        max_attempts: int = 2000,
    ):
        if gamma <= 1:
            raise ValueError(f"gamma must be > 1, got {gamma}")
        if fanout < 2:
            raise ValueError(f"fanout must be >= 2, got {fanout}")
        if depth < 1:
            raise ValueError(f"depth must be >= 1, got {depth}")
        feasible = max_feasible_depth(d, gamma)
        if depth > feasible:
            raise ValueError(
                f"depth {depth} infeasible for d={d}, γ={gamma}: "
                f"radius would drop below 4 (max depth {feasible})"
            )
        self.d = int(d)
        self.gamma = float(gamma)
        self.fanout = int(fanout)
        self.depth = int(depth)
        self._nodes: Dict[Tuple[int, ...], _Node] = {}
        root_center = random_points(rng, 1, d)[0]
        self._nodes[()] = _Node(0, (), tuple(int(v) for v in root_center))
        self._build(rng, max_attempts)

    # -- geometry -----------------------------------------------------------
    def radius(self, depth: int) -> float:
        """Ball radius at ``depth``: ``d/(8γ)^depth``."""
        return self.d / ((8.0 * self.gamma) ** depth)

    def _separation_needed(self, child_depth: int) -> float:
        """Center separation implying γ-separation of the child balls."""
        return 2.0 * self.radius(child_depth) * (self.gamma + 1.0)

    def _build(self, rng: np.random.Generator, max_attempts: int) -> None:
        frontier: List[Tuple[int, ...]] = [()]
        for depth in range(self.depth):
            child_depth = depth + 1
            flip = max(1, int(self.radius(depth) // 2))
            needed = self._separation_needed(child_depth)
            next_frontier: List[Tuple[int, ...]] = []
            for path in frontier:
                parent = self._nodes[path]
                parent_center = np.array(parent.center, dtype=np.uint64)
                accepted: List[np.ndarray] = []
                attempts = 0
                while len(accepted) < self.fanout:
                    attempts += 1
                    if attempts > max_attempts * self.fanout:
                        raise RuntimeError(
                            f"could not place {self.fanout} separated children at "
                            f"depth {child_depth} (d={self.d}, γ={self.gamma}); "
                            "reduce fanout or depth"
                        )
                    candidate = flip_random_bits(rng, parent_center, flip, self.d)
                    if all(
                        hamming_distance(candidate, other) > needed for other in accepted
                    ):
                        accepted.append(candidate)
                for ci, center in enumerate(accepted):
                    child_path = path + (ci,)
                    self._nodes[child_path] = _Node(
                        child_depth, child_path, tuple(int(v) for v in center)
                    )
                    next_frontier.append(child_path)
            frontier = next_frontier

    # -- access -----------------------------------------------------------
    def center(self, path: Tuple[int, ...]) -> np.ndarray:
        """Packed center of the ball addressed by a child-index path."""
        node = self._nodes[tuple(path)]
        return np.array(node.center, dtype=np.uint64)

    def leaf_center(self, symbols: Tuple[int, ...]) -> np.ndarray:
        """Center of the leaf reached by following ``symbols``; the path
        may be shorter than the tree depth (an internal ball center)."""
        return self.center(tuple(symbols))

    def nodes_at_depth(self, depth: int) -> List[Tuple[int, ...]]:
        """All node paths at a given depth."""
        return [p for p, node in self._nodes.items() if node.depth == depth]

    @property
    def num_nodes(self) -> int:
        return len(self._nodes)

    # -- invariant verification (Lemma 16's property list) ---------------------
    def verify(self) -> Dict[str, bool]:
        """Re-check all five Lemma 16 properties; returns per-property flags."""
        results = {
            "nesting": True,
            "fanout": True,
            "radii_positive": True,
            "separation": True,
            "leaf_depth": True,
        }
        # Property 3 is definitional (radius() is the formula); check > 0.
        for depth in range(self.depth + 1):
            if self.radius(depth) <= 0:
                results["radii_positive"] = False
        # Properties 1 & 2: nesting and exact fan-out.
        for path, node in self._nodes.items():
            if node.depth < self.depth:
                children = [
                    p for p in self._nodes if len(p) == len(path) + 1 and p[: len(path)] == path
                ]
                if len(children) != self.fanout:
                    results["fanout"] = False
                parent_center = self.center(path)
                r_parent = self.radius(node.depth)
                r_child = self.radius(node.depth + 1)
                for child in children:
                    # Ball nesting: center distance + child radius ≤ parent radius.
                    dist = hamming_distance(parent_center, self.center(child))
                    if dist + r_child > r_parent:
                        results["nesting"] = False
        # Property 4: pairwise separation at every depth via center distances.
        for depth in range(1, self.depth + 1):
            paths = self.nodes_at_depth(depth)
            if not paths:
                results["leaf_depth"] = False
                continue
            centers = np.vstack([self.center(p) for p in paths])
            needed = self._separation_needed(depth)
            dmat = pairwise_distances(centers)
            np.fill_diagonal(dmat, np.iinfo(np.int64).max)
            if int(dmat.min()) <= needed:
                results["separation"] = False
        # Property 5: leaves exist exactly at self.depth.
        if len(self.nodes_at_depth(self.depth)) != self.fanout**self.depth:
            results["leaf_depth"] = False
        return results

    def verification_margin(self) -> float:
        """Smallest ratio of observed center separation to the required
        separation across depths (> 1 means the invariant holds with room)."""
        worst = math.inf
        for depth in range(1, self.depth + 1):
            paths = self.nodes_at_depth(depth)
            centers = np.vstack([self.center(p) for p in paths])
            if centers.shape[0] < 2:
                continue
            dmat = pairwise_distances(centers).astype(np.float64)
            np.fill_diagonal(dmat, np.inf)
            worst = min(worst, float(dmat.min()) / self._separation_needed(depth))
        return worst
