"""A numeric ledger replaying the round-elimination argument
(Lemma 19 → Claim 25 → Theorem 24).

The lower-bound proof assumes a k-round protocol for ``LPM^Σ_{m,n}`` with
cell-probe-induced message sizes ``a_i = c₁ t_i log n``, ``b_i = t_i d^{c₂}``
and repeatedly eliminates its first two communication rounds, shrinking the
problem from ``(m_i, n_i)`` to ``(m_{i+1}, n_{i+1})`` while the error grows
by ``≤ 3δ`` per step (``δ = 1/(4k)``).  After ``k`` steps, a protocol with
**no communication** would solve ``LPM_{1,1}`` with error ``≤ 7/8`` —
impossible, since guessing succeeds with probability ``1/|Σ| ≪ 1/8``
(Claim 26).  Hence no such protocol exists and ``t = Σ t_i`` must exceed
``Θ((1/k) m^{1/k})``.

The ledger tracks every quantity of Claim 25 in log space (the ``b_i`` and
``q_i`` are astronomically large) and records, per step, whether each side
condition of Lemma 19 holds:

* ``cond_p`` — ``2 p_{i+1} ≤ m_i`` (enough string blocks to split);
* ``cond_q`` — ``q_{i+1} ≤ |Σ|`` (enough symbols to prefix-tag);
* ``cond_C`` — ``2 a_{i,1} / p_{i+1} ≥ C`` (message-compression premise);
* ``cond_delta`` — ``δ' ≤ δ`` (the delicate error-growth check that the
  choice ``t = ξ/(c₅ + 16 c₁ e¹⁶)`` makes true).

``contradiction_derived`` is True when every step's conditions hold and
the final error stays ≤ 7/8: exactly the event "the assumed protocol is
impossible", i.e. the lower bound applies to this ``t``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

__all__ = ["LedgerResult", "RoundEliminationLedger", "StepRecord", "lpm_string_length"]

#: The universal constant ``C`` of Lemma 19 (any fixed value; the paper
#: leaves it implicit — what matters is that it is a constant).
UNIVERSAL_C = 64.0

#: ``c₄ = 2 log 201`` from the definition of β (equation (5)).
C4 = 2.0 * math.log2(201.0)


def lpm_string_length(d: int, gamma: float) -> int:
    """The reduction's string length ``m = ⌊(log d)^{ηβ}⌋`` (Lemma 14).

    With ``η = 1 − log log γ / log log d`` and ``β = 1 − c₄ / log log d``;
    the paper notes ``m = Θ(log_γ d)``.  Requires ``γ ≥ 3``.  The β factor
    is a second-order correction that only departs from 1 when
    ``log log d ≫ c₄ = 2 log 201 ≈ 15.3`` — i.e. for ``d > 2^{2^15}`` —
    so at any numerically representable scale we apply β = 1 (its exact
    value for ``d → ∞`` limits the same Θ(log_γ d) scale, which is what
    the ledger's curves check).
    """
    if gamma < 3:
        raise ValueError(f"Theorem 24 assumes γ ≥ 3, got {gamma}")
    if d < 16:
        raise ValueError(f"d too small: {d}")
    return lpm_string_length_from_log(math.log2(d), gamma)


def lpm_string_length_from_log(log2_d: float, gamma: float) -> int:
    """As :func:`lpm_string_length` but from ``log₂ d`` directly, so the
    ledger can run at the asymptotic scales the theorem's regime needs
    (``m > k^{2k}`` forces ``d`` far beyond any representable integer for
    ``k ≥ 3``)."""
    if gamma < 3:
        raise ValueError(f"Theorem 24 assumes γ ≥ 3, got {gamma}")
    if log2_d < 4:
        raise ValueError(f"log2_d too small: {log2_d}")
    log_d = float(log2_d)
    loglog_d = math.log2(log_d)
    eta = 1.0 - math.log2(math.log2(gamma)) / loglog_d if math.log2(gamma) > 0 else 1.0
    beta = 1.0 - C4 / loglog_d if loglog_d > 2.0 * C4 else 1.0
    return max(1, math.floor(log_d ** (eta * beta)))


@dataclass
class StepRecord:
    """One round-elimination step (eliminates 2 communication rounds)."""

    index: int
    log2_m: float  # log2 of the string length after the step
    log2_n: float  # log2 of the database size after the step
    p: float  # the block count p_{i+1} used
    log2_q: float  # log2 of the symbol split q_{i+1}
    a_first: float  # first-entry a_{i,1} of the inflated Alice vector
    log2_delta_prime: float
    error: float  # cumulative error bound after the step
    cond_p: bool
    cond_q: bool
    cond_C: bool
    cond_delta: bool

    @property
    def all_ok(self) -> bool:
        return self.cond_p and self.cond_q and self.cond_C and self.cond_delta


@dataclass
class LedgerResult:
    """Outcome of replaying all ``k`` elimination steps."""

    t_total: float
    k: int
    m: int
    xi: float  # the target scale ξ = m^{1/k}/k
    trivially_large: bool  # t > m^{1/k}: nothing to prove
    steps: List[StepRecord] = field(default_factory=list)

    @property
    def contradiction_derived(self) -> bool:
        """All side conditions held and the final error stayed ≤ 7/8 —
        the assumed t-probe protocol is impossible."""
        if self.trivially_large or not self.steps:
            return False
        return all(s.all_ok for s in self.steps) and self.steps[-1].error <= 7.0 / 8.0 + 1e-9

    @property
    def failing_condition(self) -> Optional[str]:
        """Name of the first failing condition, if any."""
        for s in self.steps:
            for name in ("cond_p", "cond_q", "cond_C", "cond_delta"):
                if not getattr(s, name):
                    return f"step{s.index}:{name}"
        if self.steps and self.steps[-1].error > 7.0 / 8.0 + 1e-9:
            return "final-error"
        return None


class RoundEliminationLedger:
    """Replays Claim 25 numerically for concrete parameters.

    Parameters
    ----------
    n, d : problem scale (the theorem's regime is ``d ≤ 2^√(log n)``,
        ``n ≤ 2^{d^{0.99}}``; the ledger runs outside it too and simply
        reports which condition breaks)
    gamma : approximation ratio (γ ≥ 3 for Lemma 14's parameterization)
    k : number of probe rounds
    c1, c2 : the table-size/word-size exponents (``s ≤ n^{c1}``,
        ``w ≤ d^{c2}``)
    """

    def __init__(
        self,
        n: Optional[int] = None,
        d: Optional[int] = None,
        gamma: float = 3.0,
        k: int = 2,
        c1: float = 2.0,
        c2: float = 1.0,
        universal_c: float = UNIVERSAL_C,
        log2_n: Optional[float] = None,
        log2_d: Optional[float] = None,
    ):
        """Either ``(n, d)`` as integers or ``(log2_n, log2_d)`` directly —
        the log form admits the asymptotic scales the theorem needs
        (e.g. ``log2_d = 10^6``, i.e. d = 2^{10^6})."""
        if log2_n is None:
            if n is None or n < 4:
                raise ValueError("need n >= 4 (or log2_n)")
            log2_n = math.log2(n)
        if log2_d is None:
            if d is None or d < 16:
                raise ValueError("need d >= 16 (or log2_d)")
            log2_d = math.log2(d)
        if k < 1:
            raise ValueError("k must be >= 1")
        self.log2_n = float(log2_n)
        self.log2_d = float(log2_d)
        self.gamma = float(gamma)
        self.k = int(k)
        self.c1 = float(c1)
        self.c2 = float(c2)
        self.universal_c = float(universal_c)
        self.m = lpm_string_length_from_log(self.log2_d, gamma)

    @property
    def regime_ok(self) -> bool:
        """The theorem's regime checks: ``d ≤ 2^√(log n)``,
        ``n ≤ 2^{d^0.99}``, ``k ≤ log log d / (2 log log log d)``, and the
        proof's working condition (9) ``m > k^{2k}``."""
        lld = math.log2(self.log2_d)
        llld = math.log2(max(2.0, lld))
        return (
            self.log2_d <= math.sqrt(self.log2_n)
            and math.log2(self.log2_n) <= 0.99 * self.log2_d
            and self.k <= lld / (2.0 * max(1.0, llld))
            and self.m > self.k ** (2 * self.k)
        )

    def run(self, t_per_round: Sequence[float] | float) -> LedgerResult:
        """Replay the ``k`` elimination steps for the given probe schedule.

        ``t_per_round`` is either the per-round probe counts ``t_1..t_k``
        or a single total (split uniformly).
        """
        if isinstance(t_per_round, (int, float)):
            t = [float(t_per_round) / self.k] * self.k
        else:
            t = [float(v) for v in t_per_round]
            if len(t) != self.k:
                raise ValueError(f"need {self.k} per-round counts, got {len(t)}")
        if any(v <= 0 for v in t):
            raise ValueError("per-round probe counts must be positive")
        total = sum(t)
        m, k = self.m, self.k
        xi = m ** (1.0 / k) / k
        result = LedgerResult(
            t_total=total,
            k=k,
            m=m,
            xi=xi,
            trivially_large=total > m ** (1.0 / k),
        )
        if result.trivially_large:
            return result

        log2_n = self.log2_n
        delta = 1.0 / (4.0 * k)
        p = m ** (1.0 / k) / 2.0
        # Cyclic extension a_{k+1} = a_1 etc. (equation (8)).
        t_ext = t + [t[0], t[0]]
        a = [self.c1 * ti * log2_n for ti in t_ext]  # a_1..a_{k+2} (0-based)
        log2_b = [math.log2(ti) + self.c2 * self.log2_d for ti in t_ext]

        log2_m_i = math.log2(m)
        log2_n_i = log2_n
        prefix = 1.0  # Π_{j≤i} (1 + 2a_j/(a_{j+1} δ p))
        error = 1.0 / 8.0
        for i in range(k):
            a_cur, a_next = a[i], a[i + 1]
            p_next = (a_cur / a_next) * p
            log2_q = (t_ext[i + 1] / total) * log2_n
            a_first = a_cur * prefix
            exponent = 2.0 * a_first / (delta * p_next)
            log2_delta_prime = 0.5 * (log2_b[i + 1] + exponent - log2_q)
            delta_prime = 2.0**log2_delta_prime if log2_delta_prime < 10 else 1.0
            # The error ledger follows the proof: 2δ from Part I plus δ'
            # from Part II (clamped at 1; when cond_delta holds, δ' ≤ δ and
            # the step adds at most 3δ in total).
            error = error + 2.0 * delta + min(1.0, delta_prime)
            step = StepRecord(
                index=i + 1,
                log2_m=log2_m_i - math.log2(2.0 * p_next),
                log2_n=log2_n_i - log2_q,
                p=p_next,
                log2_q=log2_q,
                a_first=a_first,
                log2_delta_prime=log2_delta_prime,
                error=error,
                cond_p=math.log2(max(1e-300, 2.0 * p_next)) <= log2_m_i,
                cond_q=math.log2(max(1e-300, log2_q)) <= 0.99 * self.log2_d,
                cond_C=2.0 * a_first / p_next >= self.universal_c,
                cond_delta=log2_delta_prime <= math.log2(delta),
            )
            result.steps.append(step)
            log2_m_i = step.log2_m
            log2_n_i = step.log2_n
            prefix *= 1.0 + 2.0 * a_cur / (a_next * delta * p)
        return result

    # -- bound extraction -------------------------------------------------
    def implied_lower_bound(
        self, t_grid: Optional[Sequence[float]] = None
    ) -> tuple[float, LedgerResult]:
        """Largest ``t`` on a grid for which the contradiction still derives.

        Any such ``t`` is *infeasible* for a real protocol, so the returned
        value is (the grid approximation of) the probe lower bound; compare
        it against the theorem's scale ``ξ = m^{1/k}/k``.
        """
        if t_grid is None:
            # The proof's constant 16·c₁·e¹⁶ is astronomically large, so
            # the grid must reach far below ξ; 1500 geometric steps span
            # ~20 orders of magnitude.
            top = max(2.0, self.m ** (1.0 / self.k))
            t_grid = [top * (0.97**j) for j in range(1500)]
        best_t = 0.0
        best_result = self.run(max(1e-6, min(t_grid)))
        for t in sorted(t_grid):
            if t <= 0:
                continue
            res = self.run(t)
            if res.contradiction_derived and t > best_t:
                best_t, best_result = t, res
        return best_t, best_result
