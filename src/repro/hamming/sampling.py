"""Sampling utilities for Hamming-cube workloads.

Provides uniform points, controlled-distance perturbations (exactly ``r``
bit flips), and geometric shells — the building blocks the workload
generators combine into the experiment inputs.
"""

from __future__ import annotations

import numpy as np

from repro.hamming.packing import packed_words, random_packed, tail_mask

__all__ = [
    "flip_random_bits",
    "point_at_distance",
    "random_points",
    "shell_points",
]


def random_points(rng: np.random.Generator, m: int, d: int) -> np.ndarray:
    """``m`` uniform packed points of ``{0,1}^d``."""
    return random_packed(rng, m, d)


def flip_random_bits(
    rng: np.random.Generator, x: np.ndarray, count: int, d: int
) -> np.ndarray:
    """Return a copy of packed point ``x`` with exactly ``count`` distinct
    uniformly chosen bit positions flipped."""
    if count < 0 or count > d:
        raise ValueError(f"flip count must be in [0, {d}], got {count}")
    out = np.array(x, dtype=np.uint64, copy=True).ravel()
    if count == 0:
        return out
    positions = rng.choice(d, size=count, replace=False)
    words = positions // 64
    bits = positions % 64
    np.bitwise_xor.at(out, words, np.uint64(1) << bits.astype(np.uint64))
    out[-1] &= np.uint64(tail_mask(d))
    return out


def point_at_distance(
    rng: np.random.Generator, x: np.ndarray, distance: int, d: int
) -> np.ndarray:
    """A uniform point at exact Hamming distance ``distance`` from ``x``."""
    return flip_random_bits(rng, x, distance, d)


def shell_points(
    rng: np.random.Generator,
    center: np.ndarray,
    radii: np.ndarray,
    d: int,
) -> np.ndarray:
    """Points at the exact distances ``radii`` (one per radius) from
    ``center``; returns a packed ``(len(radii), W)`` batch.

    Used by the geometric-shell workload: database points planted on shells
    of radius ``αⁱ`` exercise every level of the scheme's multi-way search.
    """
    w = packed_words(d)
    out = np.empty((len(radii), w), dtype=np.uint64)
    for i, r in enumerate(np.asarray(radii)):
        out[i] = flip_random_bits(rng, center, int(r), d)
    return out
