"""Pluggable popcount/XOR-distance kernel backends (the *kernel seam*).

Every layer of the project — lockstep sweeps, the batch engine, sharded
and out-of-core serving — ultimately bottoms out in ``popcount(x XOR y)``
over packed uint64 words.  This module turns that hot path into a seam:
:mod:`repro.hamming.distance` validates arguments and dispatches to the
*active* :class:`KernelBackend`, so accelerated implementations can be
swapped in without touching a single call site (ARCHITECTURE invariant
#7; rule R007 keeps call sites from bypassing the seam).

Backends
--------
``reference``
    The NumPy ``np.bitwise_count`` implementation — always available and
    the bitwise ground truth every other backend is checked against.
``cbits``
    A small C library compiled on demand with the system C compiler and
    loaded through ``ctypes``: fused XOR+popcount loops, no Python-level
    temporaries.  Registers only when a working compiler is found (set
    ``REPRO_NO_CBITS=1`` to skip the build entirely).
``numba``
    ``@njit(parallel=True)`` SWAR popcount kernels.  Registers only when
    numba is importable.

Selection flows through exactly one runtime surface:

* :func:`set_kernel` / :func:`use_kernel` in process,
* env ``REPRO_KERNEL`` at import (unknown names warn and fall back to
  ``reference`` — loud but graceful),
* ``--kernel`` on the ``bench``/``serve``/``shard-serve``/``route`` CLI
  verbs, which just calls :func:`set_kernel`.

The hard contract: every registered backend returns **bitwise-identical**
results to ``reference`` for all five seam functions.  A quick
differential self-check runs before any optional backend registers, and
``tests/hamming/test_kernel_equivalence.py`` holds the full property
suite over adversarial shapes.
"""

from __future__ import annotations

import importlib
import os
import threading
import warnings
from contextlib import contextmanager
from typing import Dict, Iterator, List, Tuple

import numpy as np

__all__ = [
    "ENV_VAR",
    "KNOWN_KERNELS",
    "KernelBackend",
    "ScratchPool",
    "active_backend",
    "active_kernel",
    "available_kernels",
    "get_kernel",
    "kernel_info",
    "register_kernel",
    "set_kernel",
    "unavailable_kernels",
    "use_kernel",
]

ENV_VAR = "REPRO_KERNEL"

# Every backend name this build knows how to construct, available or not.
# Test suites parametrize over this tuple so missing backends show up as
# explicit skips instead of silently shrinking coverage.
KNOWN_KERNELS: Tuple[str, ...] = ("reference", "cbits", "numba")


class ScratchPool:
    """Reusable flat scratch buffers, one growable arena per dtype *per thread*.

    ``take(count, dtype)`` returns a length-``count`` view into a pooled
    allocation, growing it only when a request exceeds the high-water
    mark — so a steady stream of same-shaped kernel calls (the batch
    engine's per-flush sweeps) allocates exactly once instead of once
    per call.  Views alias the pool: a buffer is dead the moment the
    next ``take`` of the same dtype happens *on the same thread*, which
    is exactly the lifetime of a per-chunk XOR/count temporary.

    Arenas live in ``threading.local`` storage, so concurrent callers of
    the public distance API (the default backend is a module-global
    singleton) never see each other's temporaries — each thread pays one
    warm-up allocation and then reuses its own arenas lock-free.  The
    ``hits``/``misses`` counters are best-effort under concurrency
    (unlocked increments); they are provenance, not answers.
    """

    def __init__(self) -> None:
        self._local = threading.local()
        # Every thread's arena dict, for stats(); guarded by _lock.  Held
        # strongly: per-thread footprint is bounded by the high-water mark.
        self._all_arenas: List[Dict[str, np.ndarray]] = []
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def _arenas(self) -> Dict[str, np.ndarray]:
        arenas = getattr(self._local, "arenas", None)
        if arenas is None:
            arenas = self._local.arenas = {}
            with self._lock:
                self._all_arenas.append(arenas)
        return arenas

    def take(self, count: int, dtype) -> np.ndarray:
        arenas = self._arenas()
        key = np.dtype(dtype).str
        arena = arenas.get(key)
        if arena is None or arena.size < count:
            arenas[key] = arena = np.empty(count, dtype=dtype)
            self.misses += 1
        else:
            self.hits += 1
        return arena[:count]

    def stats(self) -> dict:
        with self._lock:
            nbytes = sum(
                a.nbytes for arenas in self._all_arenas for a in arenas.values()
            )
        return {
            "hits": self.hits,
            "misses": self.misses,
            "bytes": nbytes,
        }


class KernelBackend:
    """One popcount/XOR-distance implementation behind the seam.

    Subclasses implement the four primitive kernels below.  Inputs are
    pre-validated by :mod:`repro.hamming.distance`: uint64 ndarrays
    (possibly non-contiguous views) with ``m >= 1`` rows and ``w >= 1``
    words — the degenerate shapes are answered by the dispatchers, so a
    backend never sees them.  Outputs must be exact int64 counts,
    bitwise-identical to the ``reference`` backend.
    """

    name = "abstract"
    description = ""

    def popcount_rows(self, rows: np.ndarray) -> np.ndarray:
        """``(m, w) -> (m,)`` set-bit count per row."""
        raise NotImplementedError

    def hamming_distance(self, x: np.ndarray, y: np.ndarray) -> int:
        """Distance between two ``(w,)`` points."""
        raise NotImplementedError

    def hamming_distance_many(self, x: np.ndarray, rows: np.ndarray) -> np.ndarray:
        """``(w,) vs (m, w) -> (m,)`` one-vs-many distances."""
        raise NotImplementedError

    def cross_distances(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """``(ma, w) vs (mb, w) -> (ma, mb)`` all-pairs distances."""
        raise NotImplementedError

    def paired_distances(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """``(m, w) vs (m, w) -> (m,)`` row-paired distances."""
        return self.popcount_rows(np.bitwise_xor(a, b))


_REGISTRY: Dict[str, KernelBackend] = {}
_UNAVAILABLE: Dict[str, str] = {}
_ACTIVE: KernelBackend


def register_kernel(backend: KernelBackend) -> KernelBackend:
    """Add a backend to the registry (last registration of a name wins)."""
    _REGISTRY[backend.name] = backend
    _UNAVAILABLE.pop(backend.name, None)
    return backend


def available_kernels() -> List[str]:
    """Names of the backends that registered successfully, in order."""
    return [name for name in KNOWN_KERNELS if name in _REGISTRY] + [
        name for name in _REGISTRY if name not in KNOWN_KERNELS
    ]


def unavailable_kernels() -> Dict[str, str]:
    """``name -> reason`` for every known backend that failed to register."""
    return dict(_UNAVAILABLE)


def get_kernel(name: str) -> KernelBackend:
    backend = _REGISTRY.get(name)
    if backend is None:
        detail = ""
        if name in _UNAVAILABLE:
            detail = f" ({name!r} unavailable: {_UNAVAILABLE[name]})"
        raise ValueError(
            f"unknown kernel {name!r}; available: {', '.join(available_kernels())}"
            + detail
        )
    return backend


def active_backend() -> KernelBackend:
    return _ACTIVE


def active_kernel() -> str:
    """Name of the backend currently serving the seam (provenance)."""
    return _ACTIVE.name


def set_kernel(name: str) -> str:
    """Select the active backend; returns the previous backend's name.

    The ONE runtime switch: CLI ``--kernel`` and env ``REPRO_KERNEL``
    both land here.  Raises ``ValueError`` (naming the available
    backends and why the requested one is missing) on unknown names.
    """
    global _ACTIVE
    previous = _ACTIVE.name
    _ACTIVE = get_kernel(name)
    return previous


@contextmanager
def use_kernel(name: str) -> Iterator[KernelBackend]:
    """Scoped :func:`set_kernel` — restores the previous backend on exit."""
    previous = set_kernel(name)
    try:
        yield _ACTIVE
    finally:
        set_kernel(previous)


def kernel_info() -> dict:
    """Provenance snapshot: active backend, alternatives, failure reasons."""
    return {
        "active": _ACTIVE.name,
        "available": available_kernels(),
        "unavailable": unavailable_kernels(),
    }


def _self_check(backend: KernelBackend) -> None:
    """Cheap differential gate run before an optional backend registers.

    Not the full property suite (tests/hamming/test_kernel_equivalence.py
    is), just enough to refuse a miscompiled library at import time.
    """
    reference = _REGISTRY["reference"]
    # Deterministic well-mixed words (a Weyl sequence) — no RNG needed,
    # the check is differential, not statistical.
    base = np.arange(36, dtype=np.uint64) * np.uint64(0x9E3779B97F4A7C15)
    a = (base[:15] ^ np.uint64(0xDEADBEEFCAFEBABE)).reshape(5, 3)
    b = base[15:36].reshape(7, 3).copy()
    b[0] = ~np.uint64(0)
    b[1] = 0
    checks = [
        (backend.popcount_rows(a), reference.popcount_rows(a)),
        (backend.hamming_distance(a[0], a[1]), reference.hamming_distance(a[0], a[1])),
        (backend.hamming_distance_many(a[0], b), reference.hamming_distance_many(a[0], b)),
        (backend.cross_distances(a, b), reference.cross_distances(a, b)),
        (backend.paired_distances(a, a[::-1]), reference.paired_distances(a, a[::-1])),
    ]
    for got, want in checks:
        if not np.array_equal(np.asarray(got), np.asarray(want)):
            raise RuntimeError(
                f"kernel {backend.name!r} failed the differential self-check "
                f"against 'reference': {got!r} != {want!r}"
            )


def _discover() -> None:
    """Register the reference backend, then try each optional one.

    Optional backends fail *loudly but gracefully*: any exception during
    import/build/self-check is recorded in :func:`unavailable_kernels`
    (surfaced by ``set_kernel`` errors and ``kernel_info``) instead of
    breaking import — the seam always works on ``reference``.
    """
    global _ACTIVE
    from repro.hamming._reference import ReferenceBackend

    _ACTIVE = register_kernel(ReferenceBackend())

    for name, module in (
        ("cbits", "repro.hamming._cbits"),
        ("numba", "repro.hamming._numba_backend"),
    ):
        try:
            backend = importlib.import_module(module).build_backend()
            _self_check(backend)
            register_kernel(backend)
        except Exception as exc:  # noqa: BLE001 - record, never break import
            _UNAVAILABLE[name] = f"{type(exc).__name__}: {exc}"


def _apply_env() -> None:
    choice = os.environ.get(ENV_VAR, "").strip()
    if not choice:
        return
    try:
        set_kernel(choice)
    except ValueError as exc:
        warnings.warn(
            f"{ENV_VAR}={choice!r} ignored ({exc}); staying on 'reference'",
            RuntimeWarning,
            stacklevel=2,
        )


_discover()
_apply_env()
