"""The :class:`PackedPoints` container: an immutable batch of packed points.

This is the database type consumed by every scheme.  It pins together the
packed word matrix and the logical dimension ``d`` so downstream code never
has to thread ``d`` separately (and cannot mix dimensions by accident).
"""

from __future__ import annotations

from typing import Iterable, Iterator

import numpy as np

from repro.hamming.distance import hamming_distance_many
from repro.hamming.packing import pack_bits, packed_words, unpack_bits, validate_packed

__all__ = ["PackedPoints"]


class PackedPoints:
    """An immutable ``(n, W)`` batch of packed points of ``{0,1}^d``.

    Parameters
    ----------
    words : uint64 array of shape ``(n, W)`` with ``W = ceil(d/64)``
    d : logical dimension

    Examples
    --------
    >>> import numpy as np
    >>> pts = PackedPoints.from_bits(np.array([[1, 0, 1], [0, 1, 1]], dtype=np.uint8))
    >>> len(pts), pts.d
    (2, 3)
    >>> pts.distances_from(pts.row(0)).tolist()
    [0, 2]
    """

    __slots__ = ("_words", "_d")

    def __init__(self, words: np.ndarray, d: int):
        arr = validate_packed(words, d)
        arr = np.ascontiguousarray(arr, dtype=np.uint64)
        arr.setflags(write=False)
        self._words = arr
        self._d = int(d)

    # -- constructors -----------------------------------------------------
    @classmethod
    def from_bits(cls, bits: np.ndarray) -> "PackedPoints":
        """Build from an ``(n, d)`` 0/1 array."""
        bits = np.asarray(bits)
        if bits.ndim != 2:
            raise ValueError(f"expected (n, d) bit array, got shape {bits.shape}")
        return cls(pack_bits(bits), bits.shape[1])

    @classmethod
    def from_packed_rows(cls, rows: Iterable[np.ndarray], d: int) -> "PackedPoints":
        """Build from an iterable of packed ``(W,)`` rows."""
        stacked = np.vstack([np.asarray(r, dtype=np.uint64).ravel() for r in rows])
        return cls(stacked, d)

    @classmethod
    def from_validated(cls, words: np.ndarray, d: int) -> "PackedPoints":
        """Wrap an already-validated word matrix without the padding scan.

        The normal constructor scans every row's last word for stray
        padding bits — an O(n) pass that would page the entire file into
        memory when ``words`` is a memory-mapped snapshot payload.  This
        constructor performs only the cheap dtype/shape checks and keeps
        the given array (no copy), so a memmap stays a memmap.  Callers
        must guarantee the padding invariant themselves; the persistence
        codec does, because every saved snapshot was packed through the
        validating path.
        """
        if not isinstance(words, np.ndarray) or words.dtype != np.uint64:
            raise ValueError(
                f"from_validated needs a uint64 ndarray, got "
                f"{getattr(words, 'dtype', type(words).__name__)}"
            )
        if words.ndim != 2 or words.shape[1] != packed_words(d):
            raise ValueError(
                f"from_validated needs shape (n, {packed_words(d)}) for d={d}, "
                f"got {words.shape}"
            )
        if not words.flags.c_contiguous:
            raise ValueError("from_validated needs a C-contiguous word matrix")
        obj = cls.__new__(cls)
        if words.flags.writeable:
            words.setflags(write=False)
        obj._words = words
        obj._d = int(d)
        return obj

    # -- basic protocol ----------------------------------------------------
    @property
    def d(self) -> int:
        """Logical dimension of the Hamming cube."""
        return self._d

    @property
    def words(self) -> np.ndarray:
        """The read-only ``(n, W)`` uint64 word matrix."""
        return self._words

    @property
    def word_count(self) -> int:
        """Words per point, ``ceil(d/64)``."""
        return packed_words(self._d)

    def __len__(self) -> int:
        return self._words.shape[0]

    def __iter__(self) -> Iterator[np.ndarray]:
        for i in range(len(self)):
            yield self._words[i]

    def row(self, i: int) -> np.ndarray:
        """The ``i``-th point as a packed ``(W,)`` row (read-only view)."""
        return self._words[int(i)]

    def take(self, indices) -> "PackedPoints":
        """A new batch containing rows ``indices`` (in order)."""
        return PackedPoints(self._words[np.asarray(indices, dtype=np.int64)], self._d)

    def to_bits(self) -> np.ndarray:
        """Unpack to an ``(n, d)`` uint8 0/1 array (for tests/inspection)."""
        return unpack_bits(self._words, self._d)

    # -- geometry ----------------------------------------------------------
    def distances_from(self, x: np.ndarray) -> np.ndarray:
        """Hamming distance from packed point ``x`` to every row."""
        return hamming_distance_many(x, self._words)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PackedPoints(n={len(self)}, d={self._d})"
