"""Vectorized Hamming distances on packed uint64 arrays.

All distances are exact integers computed as ``popcount(x XOR y)`` over the
packed words.  ``np.bitwise_count`` (NumPy >= 2.0) provides the hardware
popcount; every function chunks its work so peak memory stays bounded even
for one-vs-a-million queries.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "cross_distances",
    "hamming_distance",
    "hamming_distance_many",
    "pairwise_distances",
    "popcount_rows",
]

# Rows processed per chunk in one-vs-many computations; 1<<18 words keeps
# the temporary XOR buffer around 2 MB regardless of database size.
_CHUNK_WORD_BUDGET = 1 << 18


def popcount_rows(words: np.ndarray) -> np.ndarray:
    """Sum of set bits in each row of a 2-D uint64 array (returns int64)."""
    arr = np.asarray(words, dtype=np.uint64)
    if arr.ndim == 1:
        arr = arr[None, :]
    return np.bitwise_count(arr).sum(axis=1, dtype=np.int64)


def hamming_distance(x: np.ndarray, y: np.ndarray) -> int:
    """Exact Hamming distance between two packed points (1-D uint64)."""
    xv = np.asarray(x, dtype=np.uint64).ravel()
    yv = np.asarray(y, dtype=np.uint64).ravel()
    if xv.shape != yv.shape:
        raise ValueError(f"shape mismatch: {xv.shape} vs {yv.shape}")
    return int(np.bitwise_count(xv ^ yv).sum(dtype=np.int64))


def hamming_distance_many(x: np.ndarray, batch: np.ndarray) -> np.ndarray:
    """Distances from a single packed point ``x`` to every row of ``batch``.

    Parameters
    ----------
    x : uint64 array of shape ``(W,)``
    batch : uint64 array of shape ``(m, W)``

    Returns
    -------
    int64 array of shape ``(m,)``
    """
    xv = np.asarray(x, dtype=np.uint64).ravel()
    rows = np.asarray(batch, dtype=np.uint64)
    if rows.ndim == 1:
        rows = rows[None, :]
    if rows.shape[1] != xv.shape[0]:
        raise ValueError(f"word-count mismatch: point {xv.shape[0]}, batch {rows.shape[1]}")
    m, w = rows.shape
    out = np.empty(m, dtype=np.int64)
    chunk = max(1, _CHUNK_WORD_BUDGET // max(1, w))
    for start in range(0, m, chunk):
        stop = min(m, start + chunk)
        xored = rows[start:stop] ^ xv[None, :]
        out[start:stop] = np.bitwise_count(xored).sum(axis=1, dtype=np.int64)
    return out


def cross_distances(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """All-pairs ``(ma, mb)`` distance matrix between packed batches.

    The many-vs-many sibling of :func:`hamming_distance_many`: one
    broadcast XOR + popcount per chunk of ``a`` rows instead of a Python
    loop per row, which is what makes batched table prefetching pay off.
    Results are exact integers, identical to per-row calls.
    """
    av = np.asarray(a, dtype=np.uint64)
    bv = np.asarray(b, dtype=np.uint64)
    if av.ndim == 1:
        av = av[None, :]
    if bv.ndim == 1:
        bv = bv[None, :]
    if av.shape[1] != bv.shape[1]:
        raise ValueError(f"word-count mismatch: {av.shape[1]} vs {bv.shape[1]}")
    ma, w = av.shape
    mb = bv.shape[0]
    if ma == 0 or mb == 0:
        return np.empty((ma, mb), dtype=np.int64)
    if w <= 4:
        # Few words: accumulate per-word 2-D popcounts, no 3-D buffer.
        acc = np.bitwise_count(av[:, 0][:, None] ^ bv[None, :, 0]).astype(np.int64)
        for j in range(1, w):
            acc += np.bitwise_count(av[:, j][:, None] ^ bv[None, :, j])
        return acc
    out = np.empty((ma, mb), dtype=np.int64)
    # Chunk rows of `a` so the (chunk, mb, w) XOR buffer stays bounded.
    chunk = max(1, _CHUNK_WORD_BUDGET // max(1, mb * w))
    for start in range(0, ma, chunk):
        stop = min(ma, start + chunk)
        xored = av[start:stop, None, :] ^ bv[None, :, :]
        out[start:stop] = np.bitwise_count(xored).sum(axis=2, dtype=np.int64)
    return out


def pairwise_distances(a: np.ndarray, b: np.ndarray | None = None) -> np.ndarray:
    """All-pairs distance matrix between packed batches ``a`` and ``b``.

    ``b`` defaults to ``a``.  Delegates to :func:`cross_distances`.
    """
    av = np.asarray(a, dtype=np.uint64)
    bv = av if b is None else np.asarray(b, dtype=np.uint64)
    return cross_distances(av, bv)
