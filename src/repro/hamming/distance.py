"""Vectorized Hamming distances on packed uint64 arrays (the seam's API).

All distances are exact integers computed as ``popcount(x XOR y)`` over
the packed words.  Since v1.9 these functions are thin *dispatchers*:
each one normalizes dtypes/shapes, enforces the shared error contract,
answers the degenerate shapes (zero rows / zero words) directly, and
hands real work to the active :class:`~repro.hamming.kernels.KernelBackend`
(``reference`` = NumPy ``np.bitwise_count``; see
:mod:`repro.hamming.kernels` for ``set_kernel``/``REPRO_KERNEL``).
Validation living here — not in backends — is what makes the error
contract identical under every backend by construction.

Every backend chunks its work so peak memory stays bounded even for
one-vs-a-million queries; ``_CHUNK_WORD_BUDGET`` below remains the knob.
"""

from __future__ import annotations

import numpy as np

# Rows processed per chunk in one-vs-many computations; 1<<18 words keeps
# the temporary XOR buffer around 2 MB regardless of database size.  The
# reference backend reads this at call time, so patching it still works.
# Assigned *before* the kernels import: backend discovery below runs a
# differential self-check whose reference side already needs the knob.
_CHUNK_WORD_BUDGET = 1 << 18

from repro.hamming import kernels  # noqa: E402

__all__ = [
    "cross_distances",
    "hamming_distance",
    "hamming_distance_many",
    "paired_distances",
    "pairwise_distances",
    "popcount_rows",
    "popcount_sum",
]


def _as_rows(arr) -> np.ndarray:
    rows = np.asarray(arr, dtype=np.uint64)
    if rows.ndim == 1:
        rows = rows[None, :]
    return rows


def popcount_rows(words: np.ndarray) -> np.ndarray:
    """Sum of set bits in each row of a 2-D uint64 array (returns int64)."""
    arr = _as_rows(words)
    m, w = arr.shape
    if m == 0 or w == 0:
        return np.zeros(m, dtype=np.int64)
    return kernels.active_backend().popcount_rows(arr)


def popcount_sum(words: np.ndarray, axis=-1, dtype=np.int64) -> np.ndarray:
    """Popcount reduced along ``axis`` with an explicit accumulator dtype.

    The escape hatch for *non-distance* bit counting (e.g. the sketch
    layer's parity sums, which deliberately accumulate mod 256 in uint8).
    Always computed by the NumPy reference path — backend dispatch covers
    the five distance kernels only — but living here keeps every popcount
    behind ``repro/hamming/`` (rule R007).
    """
    return np.bitwise_count(np.asarray(words, dtype=np.uint64)).sum(
        axis=axis, dtype=dtype
    )


def hamming_distance(x: np.ndarray, y: np.ndarray) -> int:
    """Exact Hamming distance between two packed points (1-D uint64)."""
    xv = np.asarray(x, dtype=np.uint64).ravel()
    yv = np.asarray(y, dtype=np.uint64).ravel()
    if xv.shape != yv.shape:
        raise ValueError(f"shape mismatch: {xv.shape} vs {yv.shape}")
    if xv.shape[0] == 0:
        return 0
    return int(kernels.active_backend().hamming_distance(xv, yv))


def hamming_distance_many(x: np.ndarray, batch: np.ndarray) -> np.ndarray:
    """Distances from a single packed point ``x`` to every row of ``batch``.

    Parameters
    ----------
    x : uint64 array of shape ``(W,)``
    batch : uint64 array of shape ``(m, W)``

    Returns
    -------
    int64 array of shape ``(m,)``
    """
    xv = np.asarray(x, dtype=np.uint64).ravel()
    rows = _as_rows(batch)
    if rows.shape[1] != xv.shape[0]:
        raise ValueError(f"word-count mismatch: point {xv.shape[0]}, batch {rows.shape[1]}")
    m, w = rows.shape
    if m == 0 or w == 0:
        return np.zeros(m, dtype=np.int64)
    return kernels.active_backend().hamming_distance_many(xv, rows)


def cross_distances(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """All-pairs ``(ma, mb)`` distance matrix between packed batches.

    The many-vs-many sibling of :func:`hamming_distance_many`: one
    broadcast XOR + popcount per chunk of ``a`` rows instead of a Python
    loop per row, which is what makes batched table prefetching pay off.
    Results are exact integers, identical to per-row calls.
    """
    av = _as_rows(a)
    bv = _as_rows(b)
    if av.shape[1] != bv.shape[1]:
        raise ValueError(f"word-count mismatch: {av.shape[1]} vs {bv.shape[1]}")
    ma, w = av.shape
    mb = bv.shape[0]
    if ma == 0 or mb == 0:
        return np.empty((ma, mb), dtype=np.int64)
    if w == 0:
        return np.zeros((ma, mb), dtype=np.int64)
    return kernels.active_backend().cross_distances(av, bv)


def paired_distances(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Row-paired distances: ``out[i] = d(a[i], b[i])`` (int64, shape ``(m,)``).

    The third sibling — one-to-one where ``hamming_distance_many`` is
    one-vs-many and ``cross_distances`` is many-vs-many.  Used where
    candidate pairs are gathered first (e.g. the perfect-hash screen).
    """
    av = _as_rows(a)
    bv = _as_rows(b)
    if av.shape != bv.shape:
        raise ValueError(f"shape mismatch: {av.shape} vs {bv.shape}")
    m, w = av.shape
    if m == 0 or w == 0:
        return np.zeros(m, dtype=np.int64)
    return kernels.active_backend().paired_distances(av, bv)


def pairwise_distances(a: np.ndarray, b: np.ndarray | None = None) -> np.ndarray:
    """All-pairs distance matrix between packed batches ``a`` and ``b``.

    ``b`` defaults to ``a``.  Delegates to :func:`cross_distances`.
    """
    av = np.asarray(a, dtype=np.uint64)
    bv = av if b is None else np.asarray(b, dtype=np.uint64)
    return cross_distances(av, bv)
