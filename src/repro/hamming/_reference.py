"""The NumPy reference kernel backend: ``np.bitwise_count`` + pooling.

This is the always-available ground truth of the kernel seam — the
implementations that lived in :mod:`repro.hamming.distance` through
v1.8, with one change: per-chunk XOR/count temporaries come from a
:class:`~repro.hamming.kernels.ScratchPool` instead of fresh
allocations, so the batch engine's steady stream of same-shaped sweeps
reuses two per-thread arenas instead of allocating per flush (the pool
keeps scratch in ``threading.local`` storage, so the module-global
singleton backend stays safe under concurrent callers).  Pooling only swaps
``a ^ b`` for ``np.bitwise_xor(a, b, out=...)`` (and likewise for
``bitwise_count``/``sum``) — elementwise-identical, so results stay
bitwise-equal to the historical code path.
"""

from __future__ import annotations

import numpy as np

from repro.hamming.kernels import KernelBackend, ScratchPool

__all__ = ["ReferenceBackend"]


def _chunk_budget() -> int:
    # Late-bound on purpose: tests (and callers tuning memory) patch
    # repro.hamming.distance._CHUNK_WORD_BUDGET, and that knob must keep
    # steering the chunk loops now that they live behind the seam.
    from repro.hamming import distance

    return distance._CHUNK_WORD_BUDGET


class ReferenceBackend(KernelBackend):
    name = "reference"
    description = "NumPy np.bitwise_count (always available; the bitwise ground truth)"

    def __init__(self) -> None:
        self.pool = ScratchPool()

    # -- primitives --------------------------------------------------------
    def popcount_rows(self, rows: np.ndarray) -> np.ndarray:
        return np.bitwise_count(rows).sum(axis=1, dtype=np.int64)

    def hamming_distance(self, x: np.ndarray, y: np.ndarray) -> int:
        return int(np.bitwise_count(x ^ y).sum(dtype=np.int64))

    def hamming_distance_many(self, x: np.ndarray, rows: np.ndarray) -> np.ndarray:
        m, w = rows.shape
        out = np.empty(m, dtype=np.int64)
        chunk = max(1, _chunk_budget() // max(1, w))
        for start in range(0, m, chunk):
            stop = min(m, start + chunk)
            n = stop - start
            xored = self.pool.take(n * w, np.uint64).reshape(n, w)
            np.bitwise_xor(rows[start:stop], x[None, :], out=xored)
            counts = self.pool.take(n * w, np.uint8).reshape(n, w)
            np.bitwise_count(xored, out=counts)
            np.sum(counts, axis=1, dtype=np.int64, out=out[start:stop])
        return out

    def cross_distances(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        ma, w = a.shape
        mb = b.shape[0]
        if w <= 4:
            # Few words: accumulate per-word 2-D popcounts, no 3-D buffer.
            acc = np.bitwise_count(a[:, 0][:, None] ^ b[None, :, 0]).astype(np.int64)
            for j in range(1, w):
                acc += np.bitwise_count(a[:, j][:, None] ^ b[None, :, j])
            return acc
        out = np.empty((ma, mb), dtype=np.int64)
        # Chunk rows of `a` so the (chunk, mb, w) XOR buffer stays bounded.
        chunk = max(1, _chunk_budget() // max(1, mb * w))
        for start in range(0, ma, chunk):
            stop = min(ma, start + chunk)
            n = stop - start
            xored = self.pool.take(n * mb * w, np.uint64).reshape(n, mb, w)
            np.bitwise_xor(a[start:stop, None, :], b[None, :, :], out=xored)
            counts = self.pool.take(n * mb * w, np.uint8).reshape(n, mb, w)
            np.bitwise_count(xored, out=counts)
            np.sum(counts, axis=2, dtype=np.int64, out=out[start:stop])
        return out

    def paired_distances(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        m, w = a.shape
        out = np.empty(m, dtype=np.int64)
        chunk = max(1, _chunk_budget() // max(1, w))
        for start in range(0, m, chunk):
            stop = min(m, start + chunk)
            n = stop - start
            xored = self.pool.take(n * w, np.uint64).reshape(n, w)
            np.bitwise_xor(a[start:stop], b[start:stop], out=xored)
            counts = self.pool.take(n * w, np.uint8).reshape(n, w)
            np.bitwise_count(xored, out=counts)
            np.sum(counts, axis=1, dtype=np.int64, out=out[start:stop])
        return out
